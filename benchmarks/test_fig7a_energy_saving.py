"""Fig. 7(a): overall energy-saving comparison across policies."""

from repro.evaluation import fig7
from repro.evaluation.reporting import format_fig7


def test_fig7a_energy_saving(benchmark, report):
    result = benchmark.pedantic(fig7, rounds=3, iterations=1)
    report(format_fig7(result))
    assert result.netmaster_mean_saving > 0.55  # paper: 0.778
    assert result.netmaster_mean_saving > 2 * result.delay_batch_mean_saving
    assert result.worst_oracle_gap < 0.2  # paper worst case: 0.112
