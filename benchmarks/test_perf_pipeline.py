"""Perf pipeline benchmark: caching, parallel fan-out, FPTAS batch.

Unlike the figure benchmarks this one times the *infrastructure* — the
content-addressed trace cache, the process-parallel policy sweep and the
packed-bits knapsack DP — and writes ``BENCH_perf.json`` at the repo
root so successive PRs can track the perf trajectory.

Run it alone with::

    pytest benchmarks/test_perf_pipeline.py -q -s
"""

from __future__ import annotations

import json
import os
from pathlib import Path

from repro.runtime.bench import (
    bench_cohort,
    bench_fptas_batch,
    bench_policy_sweep,
    run_bench,
)

#: Worker count for the sweep benchmarks (never more than the machine has).
JOBS = max(2, min(4, os.cpu_count() or 2))


def test_cohort_cache_cold_vs_warm(report):
    """A warm in-process cache hit beats regeneration by >= 10x."""
    result = bench_cohort(n_days=21, seed=2014)
    report(
        f"cohort generation: cold {result['cold_s']:.3f}s, "
        f"warm {result['warm_s']:.5f}s ({result['warm_speedup']:.0f}x)"
    )
    assert result["cache"]["hits"] >= 1
    assert result["warm_speedup"] >= 10.0


def test_policy_sweep_parallel_matches_serial(report):
    """The N-worker sweep is bit-identical to serial (and times both)."""
    result = bench_policy_sweep(jobs=JOBS, n_days=14, n_history_days=10)
    report(
        f"policy sweep ({result['n_tasks']} tasks): "
        f"serial {result['serial_s']:.3f}s, jobs={result['jobs']} "
        f"{result['parallel_s']:.3f}s ({result['speedup']:.2f}x)"
    )
    # bench_policy_sweep raises AssertionError itself if results diverge.
    assert result["identical_results"]
    assert result["n_tasks"] == result["n_users"] * 6


def test_fptas_batch(report):
    """Batch of per-slot FPTAS solves through the packed-bits DP."""
    result = bench_fptas_batch()
    report(
        f"fptas batch: {result['n_solves']} solves in {result['batch_s']:.3f}s "
        f"({result['solves_per_s']:.1f}/s)"
    )
    assert result["total_profit"] > 0.0


def test_write_bench_report(report, tmp_path_factory):
    """Full harness writes a well-formed ``BENCH_perf.json`` at repo root."""
    out = Path(__file__).resolve().parent.parent / "BENCH_perf.json"
    written = run_bench(out, jobs=JOBS)
    on_disk = json.loads(out.read_text())
    assert on_disk["schema"] == 1
    for section in ("cohort_generation", "policy_sweep", "fptas_batch"):
        assert section in on_disk
    assert on_disk["cohort_generation"]["warm_speedup"] >= 10.0
    assert on_disk["policy_sweep"]["identical_results"]
    report(
        "BENCH_perf.json: cohort warm speedup "
        f"{written['cohort_generation']['warm_speedup']:.0f}x, "
        f"sweep jobs={written['policy_sweep']['jobs']} speedup "
        f"{written['policy_sweep']['speedup']:.2f}x"
    )
