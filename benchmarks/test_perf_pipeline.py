"""Perf pipeline benchmark: caching, parallel fan-out, solver + replay kernels.

Unlike the figure benchmarks this one times the *infrastructure* — the
content-addressed trace cache (memory and disk tiers), the chunked
process-parallel policy sweep, the numpy FPTAS kernels and the
vectorized RRC replay engine — and writes ``BENCH_perf.json`` at the
repo root so successive PRs can track the perf trajectory.

Run it alone with::

    pytest benchmarks/test_perf_pipeline.py -q -s
"""

from __future__ import annotations

import json
import os
from pathlib import Path

import pytest

from repro.runtime.bench import (
    bench_cohort,
    bench_fptas_batch,
    bench_policy_sweep,
    bench_replay_kernel,
    run_bench,
)
from repro.runtime.cache import configure_cache, default_cache

#: Worker count for the sweep benchmarks (never more than the machine has).
JOBS = max(2, min(4, os.cpu_count() or 2))


@pytest.fixture()
def tmp_cache_dir(tmp_path):
    """Point the default cache at a throwaway on-disk store."""
    prev = default_cache().cache_dir
    configure_cache(cache_dir=tmp_path / "trace-cache")
    yield tmp_path / "trace-cache"
    configure_cache(cache_dir=prev)


def test_cohort_cache_cold_vs_warm(report, tmp_cache_dir):
    """A warm in-process cache hit beats regeneration by >= 10x, and the
    on-disk store sees real traffic (stores on cold, hits on disk-warm)."""
    result = bench_cohort(n_days=21, seed=2014)
    report(
        f"cohort generation: cold {result['cold_s']:.3f}s, "
        f"warm {result['warm_s']:.5f}s ({result['warm_speedup']:.0f}x), "
        f"disk-warm {result['disk_warm_s']:.4f}s"
    )
    assert result["cache"]["hits"] >= 1
    assert result["warm_speedup"] >= 10.0
    assert result["disk_stores"] > 0
    assert result["disk_hits"] >= 1


def test_policy_sweep_parallel_matches_serial(report):
    """The N-worker sweep is bit-identical to serial (and times both)."""
    result = bench_policy_sweep(jobs=JOBS, n_days=14, n_history_days=10)
    report(
        f"policy sweep ({result['n_tasks']} tasks): "
        f"serial {result['serial_s']:.3f}s, jobs={result['jobs']} "
        f"{result['parallel_s']:.3f}s ({result['speedup']:.2f}x)"
        + (" [regression]" if result["parallel_regression"] else "")
    )
    # bench_policy_sweep raises AssertionError itself if results diverge.
    assert result["identical_results"]
    assert result["n_tasks"] == result["n_users"] * 6
    if result["parallel_regression"]:
        # Hardware-bound exception: with one core the pool can only lose.
        assert (os.cpu_count() or 1) == 1, (
            "parallel sweep regressed on a multi-core host: "
            f"{result['parallel_s']:.3f}s vs {result['serial_s']:.3f}s serial"
        )


def test_fptas_batch(report):
    """Per-slot FPTAS solver tier: scalar loop vs batched vs memo-warm."""
    result = bench_fptas_batch()
    report(
        f"fptas batch: {result['n_solves']} solves in {result['batch_s']:.3f}s "
        f"({result['solves_per_s']:.1f}/s single, "
        f"{result['batch_solves_per_s']:.1f}/s batched, "
        f"{result['memo_warm_solves_per_s']:.1f}/s memo-warm)"
    )
    assert result["total_profit"] > 0.0
    # The numpy DP must stay comfortably clear of the pure-Python loops'
    # ~16 solves/s (committed pre-kernel baseline); 2x headroom under the
    # measured ~80/s keeps the gate robust to a loaded runner.
    assert result["solves_per_s"] >= 40.0
    assert result["memo_warm_solves_per_s"] > result["batch_solves_per_s"]


def test_replay_kernel(report):
    """Vectorized RRC interval engine throughput."""
    result = bench_replay_kernel()
    report(
        f"replay kernel: {result['n_sims']} sims x {result['n_windows']} "
        f"windows in {result['replay_s']:.3f}s "
        f"({result['sims_per_s']:.0f} sims/s, "
        f"{result['windows_per_s']:.0f} windows/s)"
    )
    assert result["total_energy_j"] > 0.0
    assert result["sims_per_s"] > 0.0


def test_write_bench_report(report, tmp_path_factory):
    """Full harness writes a well-formed ``BENCH_perf.json`` at repo root."""
    out = Path(__file__).resolve().parent.parent / "BENCH_perf.json"
    written = run_bench(out, jobs=JOBS)
    on_disk = json.loads(out.read_text())
    assert on_disk["schema"] == 1
    for section in (
        "cohort_generation",
        "policy_sweep",
        "fptas_batch",
        "replay_kernel",
    ):
        assert section in on_disk
    assert on_disk["cohort_generation"]["warm_speedup"] >= 10.0
    assert on_disk["cohort_generation"]["disk_stores"] > 0
    assert on_disk["policy_sweep"]["identical_results"]
    report(
        "BENCH_perf.json: cohort warm speedup "
        f"{written['cohort_generation']['warm_speedup']:.0f}x, "
        f"sweep jobs={written['policy_sweep']['jobs']} speedup "
        f"{written['policy_sweep']['speedup']:.2f}x, "
        f"fptas {written['fptas_batch']['solves_per_s']:.1f} solves/s"
    )
