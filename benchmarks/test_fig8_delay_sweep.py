"""Figs. 8(a)-(c): off-line analysis of the pure delay method."""

from repro.evaluation import fig8
from repro.evaluation.reporting import format_fig8


def test_fig8_delay_sweep(benchmark, report):
    result = benchmark.pedantic(fig8, rounds=3, iterations=1)
    report(format_fig8(result))
    # Savings and user impact both grow with the interval; the gap
    # between them never closes (the paper's conclusion).
    assert result.energy_saving[-1] > result.energy_saving[5]
    assert result.affected_ratio[-1] > result.affected_ratio[5]
    assert result.energy_saving[-1] < 0.4
