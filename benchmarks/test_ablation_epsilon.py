"""Ablation: FPTAS ε — solution quality vs DP cost.

The paper fixes ε = 0.1 "to guarantee good performance while control the
computational overhead".  This bench sweeps ε on random overlapped-MKP
instances and reports realized quality (vs the exact optimum) next to
the solve time, showing ε = 0.1 sits comfortably past the knee.
"""

import numpy as np

from repro.core import MKPItem, MKPSlot, solve_exact_bruteforce, solve_overlapped


def _instances(seed=11, n=40):
    rng = np.random.default_rng(seed)
    out = []
    for _ in range(n):
        n_slots = int(rng.integers(2, 5))
        slots = [MKPSlot(i, float(rng.uniform(5, 25))) for i in range(n_slots)]
        items = []
        for j in range(int(rng.integers(3, 11))):
            first = int(rng.integers(0, n_slots))
            cands = [first] if rng.random() < 0.3 else [first, (first + 1) % n_slots]
            profits = {s: float(rng.uniform(0.5, 10.0)) for s in cands}
            items.append(MKPItem(j, float(rng.uniform(0.5, 12.0)), profits))
        out.append((slots, items))
    return out


def _quality(instances, eps):
    ratios = []
    for slots, items in instances:
        approx = solve_overlapped(slots, items, eps=eps)
        exact = solve_exact_bruteforce(slots, items)
        if exact.total_profit > 0:
            ratios.append(approx.total_profit / exact.total_profit)
    return float(np.mean(ratios)), float(np.min(ratios))


def test_ablation_epsilon(benchmark, report):
    instances = _instances()

    def sweep():
        return {eps: _quality(instances, eps) for eps in (0.5, 0.3, 0.1, 0.05, 0.01)}

    results = benchmark.pedantic(sweep, rounds=2, iterations=1)
    lines = ["Ablation — FPTAS epsilon (paper default: 0.1)"]
    lines.append("  eps    mean-ratio  worst-ratio  bound=(1-eps)/2")
    for eps, (mean_r, worst_r) in results.items():
        lines.append(f"  {eps:5.2f}  {mean_r:10.4f}  {worst_r:11.4f}  {((1-eps)/2):15.3f}")
    report("\n".join(lines))
    for eps, (_, worst) in results.items():
        assert worst >= (1 - eps) / 2 - 1e-9
    # Tightening eps below the paper's 0.1 buys almost nothing.
    assert results[0.01][0] - results[0.1][0] < 0.02
