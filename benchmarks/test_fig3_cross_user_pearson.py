"""Fig. 3: Pearson parameters across all user pairs."""

from repro.evaluation import fig3
from repro.evaluation.reporting import format_fig3


def test_fig3_cross_user_pearson(benchmark, report):
    result = benchmark(fig3)
    report(format_fig3(result))
    assert result.average < 0.35  # paper: 0.1353 (weak correlation)
