"""Extension: habit-model learning curve.

How much history does the mining component need before its slot
predictions are reliable?  (The paper trains on ~3 weeks; a week turns
out to be enough on this substrate.)
"""

from repro.evaluation import learning_curve


def test_ext_learning_curve(benchmark, report):
    result = benchmark.pedantic(learning_curve, rounds=2, iterations=1)
    lines = ["Extension — prediction accuracy vs training days"]
    lines.append("  days  accuracy")
    for days, acc in zip(result.history_days, result.accuracy):
        lines.append(f"  {days:4d}  {acc:8.3f}")
    report("\n".join(lines))
    assert result.accuracy[-1] > 0.9
