"""Fig. 7(c): bandwidth-utilization improvement ratios."""

from repro.evaluation import fig7


def test_fig7c_bandwidth(benchmark, report):
    result = benchmark.pedantic(fig7, rounds=3, iterations=1)
    lines = ["Fig 7(c) — bandwidth utilization improvement (NetMaster/baseline)"]
    for vol in result.volunteers:
        r = vol.bandwidth_ratio["netmaster_vs_baseline"]
        lines.append(
            f"  {vol.user_id}: down-avg {r['down_avg']:.2f}x  up-avg {r['up_avg']:.2f}x  "
            f"down-peak {r['down_peak']:.2f}x  up-peak {r['up_peak']:.2f}x"
        )
    lines.append(
        f"  means: down {result.mean_down_ratio:.2f}x (paper 3.84), "
        f"up {result.mean_up_ratio:.2f}x (paper 2.63), "
        f"peaks ~{result.mean_peak_down_ratio:.2f}x (paper ~1)"
    )
    report("\n".join(lines))
    assert result.mean_down_ratio > 2.0
    assert 0.8 < result.mean_peak_down_ratio < 1.3
