"""Fig. 10(c): prediction accuracy vs energy saving over δ."""

from repro.evaluation import fig10c
from repro.evaluation.reporting import format_fig10c


def test_fig10c_threshold(benchmark, report):
    result = benchmark.pedantic(fig10c, rounds=2, iterations=1)
    report(format_fig10c(result))
    assert result.accuracy[0] >= result.accuracy[-1]
    assert result.energy_saving[-1] >= result.energy_saving[0] - 0.02
    assert 0.0 <= result.crossover <= 0.5  # paper: 0.37
