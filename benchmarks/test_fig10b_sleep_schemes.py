"""Fig. 10(b): wake-up counts of exponential vs fixed vs random sleep."""

from repro.evaluation import fig10b
from repro.evaluation.reporting import format_fig10b


def test_fig10b_sleep_schemes(benchmark, report):
    result = benchmark(fig10b)
    report(format_fig10b(result))
    assert result.exponential[-1] < result.fixed[-1] / 5
    assert result.exponential[-1] < result.random[-1] / 5
