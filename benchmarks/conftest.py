"""Benchmark harness configuration.

Every benchmark in this directory regenerates one of the paper's tables
or figures: it times the experiment driver with pytest-benchmark and then
prints the same rows/series the paper reports (with the paper's headline
number alongside), so

    pytest benchmarks/ --benchmark-only -s

doubles as the full results reproduction.  Printing happens through the
``report`` fixture so the output survives pytest's capture when ``-s`` is
not given (``--capture=no`` equivalents are not required; pytest shows
the captured block for each benchmark at the end with ``-rA``).
"""

from __future__ import annotations

import pytest


@pytest.fixture
def report(capsys):
    """Print a formatted experiment report, bypassing capture."""

    def _report(text: str) -> None:
        with capsys.disabled():
            print()
            print(text)

    return _report
