"""Benchmark harness configuration.

Every benchmark in this directory regenerates one of the paper's tables
or figures: it times the experiment driver with pytest-benchmark and then
prints the same rows/series the paper reports (with the paper's headline
number alongside), so

    pytest benchmarks/ --benchmark-only -s

doubles as the full results reproduction.  Printing happens through the
``report`` fixture so the output survives pytest's capture when ``-s`` is
not given (``--capture=no`` equivalents are not required; pytest shows
the captured block for each benchmark at the end with ``-rA``).
"""

from __future__ import annotations

import pytest

from repro.runtime.cache import default_cache
from repro.traces.generator import generate_cohort, generate_volunteers


@pytest.fixture(scope="session", autouse=True)
def warm_trace_cache():
    """Pre-generate the standard cohorts once per benchmark session.

    Every figure benchmark starts by regenerating the same profiling
    cohort (21 days, seed 2014) or volunteer cohort (14 days, seed 43).
    Generating them once here primes the content-addressed trace cache,
    so the per-benchmark cost collapses to a cache hit and the timings
    measure the experiment drivers, not cohort synthesis.
    """
    cache = default_cache()
    was_enabled = cache.enabled
    cache.enabled = True
    generate_cohort(21, seed=2014)
    generate_cohort(7, seed=2014)  # fig5's shorter window
    generate_volunteers(14, seed=43)
    yield
    cache.enabled = was_enabled


@pytest.fixture(scope="session")
def profiling_cohort(warm_trace_cache):
    """The paper's 8-user, 3-week profiling cohort (cache-served)."""
    return generate_cohort(21, seed=2014)


@pytest.fixture(scope="session")
def volunteer_cohort(warm_trace_cache):
    """The 3 evaluation volunteers of Section VI (cache-served)."""
    return generate_volunteers(14, seed=43)


@pytest.fixture
def report(capsys):
    """Print a formatted experiment report, bypassing capture."""

    def _report(text: str) -> None:
        with capsys.disabled():
            print()
            print(text)

    return _report
