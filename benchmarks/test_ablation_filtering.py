"""Ablation: Algorithm 1 step-4 filtering rule.

Compares the max-profit filtering (ours, Lemma-preserving under
slot-dependent penalties), the paper's literal smaller-residual rule,
and a naive keep-first rule on random instances with asymmetric ΔP.
"""

import numpy as np

from repro.core import MKPItem, MKPSlot, solve_exact_bruteforce, solve_overlapped


def _instances(seed=13, n=60):
    rng = np.random.default_rng(seed)
    out = []
    for _ in range(n):
        n_slots = int(rng.integers(2, 5))
        slots = [MKPSlot(i, float(rng.uniform(5, 25))) for i in range(n_slots)]
        items = []
        for j in range(int(rng.integers(3, 11))):
            first = int(rng.integers(0, n_slots))
            cands = [first] if rng.random() < 0.2 else [first, (first + 1) % n_slots]
            # Asymmetric profits model distance-dependent ΔP.
            profits = {s: float(rng.uniform(0.5, 10.0)) for s in cands}
            items.append(MKPItem(j, float(rng.uniform(0.5, 12.0)), profits))
        out.append((slots, items))
    return out


def test_ablation_filtering(benchmark, report):
    instances = _instances()

    def sweep():
        results = {}
        for rule in ("best", "residual", "first"):
            ratios = []
            for slots, items in instances:
                approx = solve_overlapped(slots, items, filter_rule=rule)
                exact = solve_exact_bruteforce(slots, items)
                if exact.total_profit > 0:
                    ratios.append(approx.total_profit / exact.total_profit)
            results[rule] = (float(np.mean(ratios)), float(np.min(ratios)))
        return results

    results = benchmark.pedantic(sweep, rounds=2, iterations=1)
    lines = ["Ablation — duplicated-item filtering rule (Algorithm 1, step 4)"]
    lines.append("  rule       mean-ratio  worst-ratio")
    for rule, (mean_r, worst_r) in results.items():
        lines.append(f"  {rule:9s}  {mean_r:10.4f}  {worst_r:11.4f}")
    report("\n".join(lines))
    # Max-profit filtering dominates on mean quality and is the only rule
    # guaranteed to hold the (1-eps)/2 bound with asymmetric profits.
    assert results["best"][0] >= results["residual"][0] - 1e-9
    assert results["best"][0] >= results["first"][0] - 1e-9
    assert results["best"][1] >= (1 - 0.1) / 2
