"""Extension: channel-aware batch placement (the peak-rate future work).

NetMaster cannot improve peak rates because it is blind to channel
state; placing each slot's deferred batch in the slot's best-signal
window raises effective rates and cuts per-byte transmit energy.
"""

from repro.evaluation import channel_extension


def test_ext_channel_aware(benchmark, report):
    result = benchmark.pedantic(channel_extension, rounds=2, iterations=1)
    lines = ["Extension — channel-aware batch placement (vs slot-start packing)"]
    lines.append(f"  batches placed:             {result.n_batches}")
    lines.append(f"  per-byte energy multiplier: -{result.energy_multiplier_gain:.3f}")
    lines.append(f"  effective-rate improvement: {result.rate_gain:.2f}x")
    report("\n".join(lines))
    assert result.rate_gain >= 1.0
    assert result.energy_multiplier_gain >= 0.0
