"""Lemma IV.1: empirical (1-eps)/2 approximation verification."""

from repro.evaluation import approximation_ratio
from repro.evaluation.reporting import format_approximation


def test_approximation_ratio(benchmark, report):
    result = benchmark.pedantic(
        approximation_ratio, kwargs={"trials": 60}, rounds=2, iterations=1
    )
    report(format_approximation(result))
    assert result.worst_ratio >= result.bound
