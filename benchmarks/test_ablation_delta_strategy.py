"""Ablation: δ-threshold strategy.

Compares the paper's weekday/weekend split (0.2/0.1) against a single
balanced δ (the Fig. 10(c) crossover region) and the impact-based
strategy, on end-to-end energy and interrupt rate.
"""

from repro.core import NetMasterConfig
from repro.baselines import NaivePolicy, NetMasterPolicy
from repro.evaluation import run_policy_over_days, split_history
from repro.habits import FixedDelta, ImpactBasedDelta, WeekdayWeekendDelta
from repro.radio import wcdma_model
from repro.traces import generate_volunteers


def _sweep():
    model = wcdma_model()
    volunteers = generate_volunteers(14, seed=43)
    split = [split_history(t, 10) for t in volunteers]
    base_e = sum(
        m.energy_j
        for _, days in split
        for m in run_policy_over_days(NaivePolicy(), days, model)
    )
    strategies = {
        "paper-0.2/0.1": WeekdayWeekendDelta(),
        "fixed-0.37": FixedDelta(0.37),
        "impact-1%": ImpactBasedDelta(interrupt_budget=0.01),
    }
    results = {}
    for name, strategy in strategies.items():
        total = interrupts = interactions = 0.0
        for history, days in split:
            policy = NetMasterPolicy(history, NetMasterConfig(delta=strategy))
            for day in days:
                outcome = policy.execute_day(day)
                total += outcome.energy(model).energy_j
                interrupts += outcome.interrupts
                interactions += outcome.user_interactions
        results[name] = (1.0 - total / base_e, interrupts / interactions)
    return results


def test_ablation_delta_strategy(benchmark, report):
    results = benchmark.pedantic(_sweep, rounds=2, iterations=1)
    lines = ["Ablation — delta strategy"]
    lines.append("  strategy        energy-saving  interrupt-ratio")
    for name, (saving, ratio) in results.items():
        lines.append(f"  {name:14s}  {saving:13.3f}  {ratio:15.4f}")
    report("\n".join(lines))
    for name, (saving, ratio) in results.items():
        assert saving > 0.5, name
        assert ratio < 0.01, name
