"""Fig. 4: day-by-day Pearson parameters for one user."""

from repro.evaluation import fig3, fig4
from repro.evaluation.reporting import format_fig4


def test_fig4_intra_user_pearson(benchmark, report):
    result = benchmark(fig4)
    report(format_fig4(result))
    assert result.average > 0.35  # paper: 0.8171 (strong daily habit)
    assert result.average > fig3().average + 0.2
