"""Fig. 5: one-week per-app usage pattern (Special Apps)."""

from repro.evaluation import fig5
from repro.evaluation.reporting import format_fig5


def test_fig5_app_patterns(benchmark, report):
    result = benchmark(fig5)
    report(format_fig5(result))
    assert 4 <= result.n_active <= 10  # paper: 8 of 23
    assert result.top_share > 0.4  # paper: weChat at 59%
