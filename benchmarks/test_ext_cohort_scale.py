"""Extension: more volunteers (the paper's stated next step).

Runs the NetMaster-vs-baseline comparison across a randomized cohort of
personas to show the savings are a property of habit structure, not of
the three hand-built volunteers.
"""

from repro.evaluation import cohort_scale


def test_ext_cohort_scale(benchmark, report):
    result = benchmark.pedantic(
        cohort_scale, kwargs={"n_users": 10}, rounds=1, iterations=1
    )
    lines = [f"Extension — randomized cohort of {result.n_users} personas"]
    lines.append("  savings: " + " ".join(f"{s:.3f}" for s in sorted(result.savings)))
    lines.append(
        f"  mean {result.mean_saving:.3f}  min {result.min_saving:.3f}  "
        f"max {result.max_saving:.3f}"
    )
    report("\n".join(lines))
    assert result.min_saving > 0.4
    assert result.mean_saving > 0.55
