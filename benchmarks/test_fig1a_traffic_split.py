"""Fig. 1(a): network activity distribution (screen-on vs screen-off)."""

from repro.evaluation import fig1a
from repro.evaluation.reporting import format_fig1a


def test_fig1a_traffic_split(benchmark, report):
    result = benchmark(fig1a)
    report(format_fig1a(result))
    assert 0.3 < result.average_off_fraction < 0.55  # paper: 0.4098
