"""Fig. 2: screen-on time utilization profiling."""

from repro.evaluation import fig2
from repro.evaluation.reporting import format_fig2


def test_fig2_screen_utilization(benchmark, report):
    result = benchmark(fig2)
    report(format_fig2(result))
    assert 0.3 < result.average_utilization < 0.6  # paper: 0.4514
