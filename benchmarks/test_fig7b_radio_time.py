"""Fig. 7(b): radio-on time under NetMaster vs default."""

from repro.evaluation import fig7


def test_fig7b_radio_time(benchmark, report):
    result = benchmark.pedantic(fig7, rounds=3, iterations=1)
    lines = ["Fig 7(b) — radio-on time (seconds over the test window)"]
    for vol in result.volunteers:
        lines.append(
            f"  {vol.user_id}: power-on {vol.power_on_s:8.0f}  "
            f"default {vol.radio_on_s['baseline']:8.0f}  "
            f"netmaster {vol.radio_on_s['netmaster']:8.0f}"
        )
    lines.append(
        f"  mean inefficient radio-on time saved: "
        f"{result.mean_radio_time_saving:.3f}   (paper: 0.754)"
    )
    report("\n".join(lines))
    assert 0.6 < result.mean_radio_time_saving < 0.9
