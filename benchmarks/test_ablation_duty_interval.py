"""Ablation: duty-cycle initial sleep interval T (paper default: 30 s).

End-to-end NetMaster energy across the volunteer test window for several
initial sleep intervals — the deployment-level counterpart of Fig. 10(a).
"""

from repro.core import NetMasterConfig
from repro.baselines import NaivePolicy, NetMasterPolicy
from repro.evaluation import run_policy_over_days, split_history
from repro.radio import wcdma_model
from repro.traces import generate_volunteers


def _sweep():
    model = wcdma_model()
    volunteers = generate_volunteers(14, seed=43)
    split = [split_history(t, 10) for t in volunteers]
    base_e = sum(
        m.energy_j
        for _, days in split
        for m in run_policy_over_days(NaivePolicy(), days, model)
    )
    results = {}
    for initial in (5.0, 30.0, 120.0, 360.0):
        total = wakes = 0.0
        for history, days in split:
            policy = NetMasterPolicy(history, NetMasterConfig(duty_initial_s=initial))
            for day in days:
                outcome = policy.execute_day(day)
                total += outcome.energy(model).energy_j
                wakes += len(outcome.extra_windows)
        results[initial] = (1.0 - total / base_e, wakes / (3 * 4))
    return results


def test_ablation_duty_interval(benchmark, report):
    results = benchmark.pedantic(_sweep, rounds=2, iterations=1)
    lines = ["Ablation — duty-cycle initial sleep T (paper default: 30 s)"]
    lines.append("  T (s)   energy-saving   idle wake-ups/day")
    for initial, (saving, wakes) in results.items():
        lines.append(f"  {initial:5.0f}   {saving:13.3f}   {wakes:17.1f}")
    report("\n".join(lines))
    # Longer sleeps mean fewer idle wake-ups (monotone)…
    wake_counts = [results[t][1] for t in sorted(results)]
    assert wake_counts == sorted(wake_counts, reverse=True)
    # …but the saving moves by only a few points across a 72x range:
    savings = [results[t][0] for t in results]
    assert max(savings) - min(savings) < 0.1
