"""Robustness sweep: energy saving vs fault rate, delay bound honoured."""

from repro.evaluation import robustness
from repro.evaluation.reporting import format_robustness


def test_robustness(benchmark, report):
    result = benchmark.pedantic(robustness, rounds=3, iterations=1)
    report(format_robustness(result))
    # Savings shrink monotonically as the fault rate rises.
    for policy in result.policies:
        series = result.series(policy)
        assert all(a >= b - 1e-12 for a, b in zip(series, series[1:]))
    # NetMaster still beats delay&batch even on a hostile radio.
    assert result.points[-1].energy_saving["netmaster"] > 0.3
    assert (
        result.points[-1].energy_saving["netmaster"]
        > result.points[-1].energy_saving["delay-batch-60s"]
    )
    # The retry policy's max-delay bound is never violated.
    assert sum(p.delay_violations for p in result.points) == 0
    assert max(
        p.added_delay_max_s[n] for p in result.points for n in result.policies
    ) <= result.max_delay_s + 1e-6
