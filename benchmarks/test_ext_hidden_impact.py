"""Extension: the Limitations section's "hidden impact", quantified.

How long does NetMaster hold a screen-off push back?  The delay
distribution is the user-experience cost the paper names but does not
measure.
"""

from repro.evaluation import hidden_impact


def test_ext_hidden_impact(benchmark, report):
    result = benchmark.pedantic(hidden_impact, rounds=2, iterations=1)
    lines = ["Extension — deferral latency of screen-off traffic"]
    lines.append(f"  deferred (>1 s) fraction: {result.deferred_fraction:.1%}")
    lines.append(f"  mean delay:  {result.mean_delay_s:8.1f} s")
    lines.append(f"  p50 delay:   {result.p50_delay_s:8.1f} s")
    lines.append(f"  p95 delay:   {result.p95_delay_s:8.1f} s")
    lines.append(f"  max delay:   {result.max_delay_s:8.1f} s")
    report("\n".join(lines))
    assert result.p50_delay_s < 7200.0
