"""Generality: the Fig. 7 comparison on an LTE radio model.

The paper claims "good generalizability"; the tail-energy structure that
NetMaster exploits exists on LTE too (one long continuous-reception tail
instead of the 3G DCH/FACH pair), so the ordering of policies should be
preserved under the LTE constants of Huang et al.
"""

from repro.core import NetMasterConfig
from repro.evaluation import fig7
from repro.radio import lte_model


def test_lte_generality(benchmark, report):
    result = benchmark.pedantic(
        fig7,
        kwargs={"model": lte_model(), "config": NetMasterConfig(power=lte_model())},
        rounds=2,
        iterations=1,
    )
    lines = ["Generality — Fig. 7 comparison on the LTE power model"]
    lines.append(f"  NetMaster mean saving: {result.netmaster_mean_saving:.3f}")
    lines.append(f"  oracle mean saving:    {result.oracle_mean_saving:.3f}")
    lines.append(f"  delay&batch saving:    {result.delay_batch_mean_saving:.3f}")
    lines.append(f"  radio-on time saving:  {result.mean_radio_time_saving:.3f}")
    report("\n".join(lines))
    assert result.netmaster_mean_saving > 0.5
    assert result.netmaster_mean_saving > 2 * result.delay_batch_mean_saving
    assert result.netmaster_mean_saving <= result.oracle_mean_saving + 0.02
