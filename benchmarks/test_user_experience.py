"""Section VI-B: wrong-decision rate under NetMaster."""

from repro.evaluation import user_experience
from repro.evaluation.reporting import format_user_experience


def test_user_experience(benchmark, report):
    result = benchmark.pedantic(user_experience, rounds=3, iterations=1)
    report(format_user_experience(result))
    assert result.interrupt_ratio < 0.01  # paper: < 1%
