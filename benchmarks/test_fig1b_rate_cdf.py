"""Fig. 1(b): transfer-rate CDFs by screen state."""

from repro.evaluation import fig1b
from repro.evaluation.reporting import format_fig1b


def test_fig1b_rate_cdf(benchmark, report):
    result = benchmark(fig1b)
    report(format_fig1b(result))
    assert result.p90_off_kbps < 1.5  # paper: 90% below 1 kBps
    assert result.p90_on_kbps < 6.0  # paper: 90% below 5 kBps
