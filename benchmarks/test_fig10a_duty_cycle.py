"""Fig. 10(a): duty-cycle radio-on time vs wake-up count."""

from repro.evaluation import fig10a
from repro.evaluation.reporting import format_fig10a


def test_fig10a_duty_cycle(benchmark, report):
    result = benchmark(fig10a)
    report(format_fig10a(result))
    # Longer initial sleeps always give lower radio-on fractions.
    for k_idx in range(len(result.wakeup_counts)):
        column = [result.fractions[t][k_idx] for t in result.sleep_intervals_s]
        assert column == sorted(column, reverse=True)
