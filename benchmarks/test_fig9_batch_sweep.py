"""Figs. 9(a)-(b): off-line analysis of the pure batch method."""

from repro.evaluation import fig9
from repro.evaluation.reporting import format_fig9


def test_fig9_batch_sweep(benchmark, report):
    result = benchmark.pedantic(fig9, rounds=3, iterations=1)
    report(format_fig9(result))
    idx5 = result.batch_sizes.index(5)
    assert result.radio_time_saving[idx5] > 0.08  # paper: 0.177
    # Saturation past 5 batched activities.
    assert result.energy_saving[-1] - result.energy_saving[idx5] < 0.05
