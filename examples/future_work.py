"""Future work, implemented: the extensions the paper names but defers.

Runs the four extension studies:

1. channel-aware batch placement (the "peak rate" item of Section VI-A);
2. the "hidden impact" of deferral on push latency (Limitations);
3. cohort scaling over randomized personas ("recruit more volunteers");
4. the habit model's learning curve and online (incremental) updates.

Run:  python examples/future_work.py
"""

from __future__ import annotations

from repro import HabitModel, generate_volunteers
from repro.evaluation import (
    channel_extension,
    cohort_scale,
    hidden_impact,
    learning_curve,
    split_history,
)


def main() -> None:
    print("=== 1. channel-aware batch placement ===")
    channel = channel_extension()
    print(f"  {channel.n_batches} slot batches placed")
    print(f"  per-byte energy multiplier reduced by {channel.energy_multiplier_gain:.3f}")
    print(f"  effective batch rate improved {channel.rate_gain:.2f}x")
    print("  (the paper: 'the peak rate is determined by the channel state...'"
          " — scheduling into good-channel windows lifts that ceiling)")

    print("\n=== 2. hidden impact: how late do pushes arrive? ===")
    impact = hidden_impact()
    print(f"  {impact.deferred_fraction:.0%} of screen-off transfers are deferred")
    print(f"  delay: mean {impact.mean_delay_s / 60:.1f} min, "
          f"median {impact.p50_delay_s / 60:.1f} min, "
          f"p95 {impact.p95_delay_s / 3600:.1f} h, "
          f"max {impact.max_delay_s / 3600:.1f} h")

    print("\n=== 3. cohort scaling: 10 randomized personas ===")
    scale = cohort_scale(n_users=10)
    print("  savings:", " ".join(f"{s:.2f}" for s in sorted(scale.savings)))
    print(f"  mean {scale.mean_saving:.3f}, range "
          f"[{scale.min_saving:.3f}, {scale.max_saving:.3f}]")

    print("\n=== 4. learning curve + online updates ===")
    curve = learning_curve()
    for days, accuracy in zip(curve.history_days, curve.accuracy):
        print(f"  {days:2d} training days -> {accuracy:.3f} slot-prediction accuracy")
    trace = generate_volunteers(14, seed=43)[0]
    history, days = split_history(trace, 10)
    model = HabitModel.fit(history)
    for day in days:
        model = model.updated_with(day)  # O(24) nightly refresh
    print(f"  online model now covers {model.n_weekdays} weekdays + "
          f"{model.n_weekends} weekend days without a batch refit")


if __name__ == "__main__":
    main()
