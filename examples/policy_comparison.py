"""Policy comparison: the paper's Section VI evaluation scenario.

Runs the full policy zoo — stock baseline, delay, batch, combined
delay&batch, NetMaster, and the offline oracle — over the three
evaluation volunteers' held-out days, and prints the energy / radio-time
/ bandwidth / user-impact comparison of Figs. 7-9.

Run:  python examples/policy_comparison.py
"""

from __future__ import annotations

from repro import (
    BatchPolicy,
    DelayBatchPolicy,
    DelayPolicy,
    NaivePolicy,
    NetMasterPolicy,
    OraclePolicy,
    generate_volunteers,
    wcdma_model,
)
from repro.evaluation import run_policy_over_days, split_history


def main() -> None:
    model = wcdma_model()
    volunteers = generate_volunteers(14, seed=43)

    for trace in volunteers:
        history, days = split_history(trace, 10)
        policies = [
            NaivePolicy(),
            DelayPolicy(60.0),
            BatchPolicy(5),
            DelayBatchPolicy(60.0),
            NetMasterPolicy(history),
            OraclePolicy(),
        ]
        print(f"\n=== {trace.user_id} ({len(days)} test days) ===")
        print(f"{'policy':18s} {'energy J':>10s} {'saving':>8s} {'radio s':>9s} "
              f"{'down kBps':>10s} {'affected':>9s} {'interrupts':>10s}")
        base_energy = base_radio = None
        for policy in policies:
            metrics = run_policy_over_days(policy, days, model)
            energy = sum(m.energy_j for m in metrics)
            radio = sum(m.radio_on_s for m in metrics)
            if base_energy is None:
                base_energy, base_radio = energy, radio
            saving = 1.0 - energy / base_energy
            down = sum(m.bandwidth.avg_down_bps * m.radio_on_s for m in metrics) / radio
            affected = sum(m.affected_user_activities for m in metrics)
            interactions = sum(m.user_interactions for m in metrics)
            interrupts = sum(m.interrupts for m in metrics)
            print(
                f"{policy.name:18s} {energy:10.1f} {saving:8.1%} {radio:9.0f} "
                f"{down / 1000:10.2f} {affected / interactions:9.1%} {interrupts:10d}"
            )
        print("  (paper: NetMaster saves 77.8% on average, within ~11% of the oracle;"
              " delay&batch saves 22.5%)")


if __name__ == "__main__":
    main()
