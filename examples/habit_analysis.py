"""Habit analysis: reproduce the paper's Section III motivation study.

Generates the 8-user, 3-week profiling cohort and runs every analysis
behind Figs. 1-5: the screen-off traffic share, transfer-rate
percentiles, screen-on utilization, the cross-user and intra-user
Pearson structure, and Special-App dominance.

Run:  python examples/habit_analysis.py
"""

from __future__ import annotations

import numpy as np

from repro import SpecialAppRegistry, generate_cohort
from repro.habits import cross_user_matrix, day_matrix, intra_user_average, mean_offdiagonal
from repro.traces import (
    cohort_traffic_split,
    cohort_utilization,
    rate_percentile,
)


def main() -> None:
    cohort = generate_cohort(21, seed=2014)

    print("=== Fig 1(a): screen-off share of network activities ===")
    splits, avg_off = cohort_traffic_split(cohort)
    for split in splits:
        print(f"  {split.user_id}: {split.off_fraction:.1%} "
              f"({split.off_count}/{split.total_count} activities)")
    print(f"  average: {avg_off:.1%}   (paper: 40.98%)")

    print("\n=== Fig 1(b): transfer-rate percentiles ===")
    print(f"  p90 screen-off rate: {rate_percentile(cohort, 0.9, screen_on=False):.2f} kBps"
          "   (paper: < 1 kBps)")
    print(f"  p90 screen-on  rate: {rate_percentile(cohort, 0.9, screen_on=True):.2f} kBps"
          "   (paper: < 5 kBps)")

    print("\n=== Fig 2: screen-on time utilization ===")
    stats, avg_util = cohort_utilization(cohort)
    for stat in stats:
        print(f"  {stat.user_id}: avg session {stat.avg_session_s:5.1f}s, "
              f"utilized {stat.avg_utilized_s:4.1f}s "
              f"({stat.utilization_ratio:.0%})")
    print(f"  average utilization: {avg_util:.1%}   (paper: 45.14%)")

    print("\n=== Fig 3: cross-user Pearson (habits differ across users) ===")
    matrix = cross_user_matrix(cohort)
    print("  " + "\n  ".join(" ".join(f"{v:5.2f}" for v in row) for row in matrix))
    print(f"  average: {mean_offdiagonal(matrix):.4f}   (paper: 0.1353)")

    print("\n=== Fig 4: day-to-day Pearson (one user's habit is stable) ===")
    for trace in cohort:
        print(f"  {trace.user_id}: {intra_user_average(trace):.3f}")
    user4 = day_matrix(cohort[3], n_days=8)
    print(f"  user4 over 8 days: {mean_offdiagonal(user4):.4f}   (paper: 0.8171)")
    print(f"  cohort mean: {np.mean([intra_user_average(t) for t in cohort]):.3f}"
          "   (paper: 0.54)")

    print("\n=== Fig 5: Special Apps (user 3) ===")
    registry = SpecialAppRegistry.from_trace(cohort[2])
    print(f"  {len(registry.special)} of 23 installed apps are special")
    for app, share in sorted(registry.usage_share().items(), key=lambda kv: -kv[1]):
        print(f"  {app:35s} {share:6.1%}")
    dominant = registry.dominant_app()
    assert dominant is not None
    print(f"  dominant: {dominant[0]} at {dominant[1]:.0%}   (paper: weChat, 59%)")


if __name__ == "__main__":
    main()
