"""Device replay: close the monitor → mine → schedule loop on the DES.

Replays a day on the simulated handset (screen model, RRC radio, 500 KB
write-cached monitoring store), then feeds the *monitored* store back
into the mining pipeline — demonstrating that NetMaster's components run
end-to-end on the device substrate, exactly as Fig. 6 wires them.

Run:  python examples/device_replay.py
"""

from __future__ import annotations

from repro import NetMasterPolicy, SpecialAppRegistry, generate_volunteers, wcdma_model
from repro.device import DeviceSimulator
from repro.evaluation import split_history
from repro.radio import TruncatedTail


def main() -> None:
    trace = generate_volunteers(14, seed=43)[1]
    history, days = split_history(trace, 10)
    day = days[0]

    print("=== stock replay ===")
    simulator = DeviceSimulator(model=wcdma_model())
    stock = simulator.replay(day)
    print(f"  transfers: {stock.transfers}, payload {stock.payload_bytes / 1000:.1f} kB")
    print(f"  energy: {stock.energy.energy_j:.1f} J, radio-on {stock.energy.radio_on_s:.0f} s")
    print(f"  monitor: {len(stock.store.screen_sessions)} sessions recorded, "
          f"{stock.monitor_samples} byte-counter samples, "
          f"{stock.store.cache.flush_count} flash flushes")

    print("\n=== NetMaster schedule through the same device ===")
    outcome = NetMasterPolicy(history).execute_day(day)
    scheduled = simulator.replay(
        day, schedule=outcome.activities, tail_policy=TruncatedTail(1.0)
    )
    saving = 1.0 - scheduled.energy.energy_j / stock.energy.energy_j
    print(f"  energy: {scheduled.energy.energy_j:.1f} J ({saving:.1%} saving)")
    print(f"  radio-on: {scheduled.energy.radio_on_s:.0f} s "
          f"(was {stock.energy.radio_on_s:.0f} s)")

    print("\n=== mining the monitored store (loop closed) ===")
    store = stock.store
    probs = store.screen_use_matrix().mean(axis=0)
    active_hours = [h for h in range(24) if probs[h] >= 0.5]
    print(f"  hours the monitor saw the user active: {active_hours}")
    registry = SpecialAppRegistry.from_store(store)
    print(f"  special apps detected on-device: {sorted(registry.special)}")


if __name__ == "__main__":
    main()
