"""Quickstart: train NetMaster on two weeks of history, replay a day.

Runs the full middleware pipeline on one synthetic user:

1. generate a habit-driven usage trace (the library's stand-in for the
   paper's on-phone trace collection);
2. train NetMaster's mining component on the first 10 days;
3. replay a held-out day through the scheduling component;
4. price both schedules with the WCDMA RRC model and report the saving.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

from repro import NetMaster, NetMasterConfig, generate_volunteers, simulate, wcdma_model
from repro.evaluation import split_history
from repro.radio import activities_energy


def main() -> None:
    # 1. A two-week trace for one evaluation volunteer.
    trace = generate_volunteers(14, seed=43)[0]
    history, test_days = split_history(trace, 10)
    print(f"user {trace.user_id}: {len(history.activities)} activities in history, "
          f"{len(test_days)} held-out days")

    # 2. Train the middleware (monitoring store + habit model + scheduler).
    netmaster = NetMaster(NetMasterConfig())
    habit = netmaster.train(history)
    weekday_slots = habit.user_slots(weekend=False)
    print(f"predicted weekday active slots (delta={weekday_slots.delta}):")
    for slot in weekday_slots.slots:
        print(f"  {slot.start / 3600:5.1f}h .. {slot.end / 3600:5.1f}h")

    # 3+4. Replay each held-out day and compare energy.
    model = wcdma_model()
    print("\nday  stock J   netmaster J   saving   deferred  duty  interrupts")
    for i, day in enumerate(test_days):
        execution = netmaster.execute_day(day)
        before = activities_energy(day.activities, model)
        after = simulate(
            [a.interval for a in execution.activities],
            model,
            window_tails=execution.activity_tails,
        )
        saving = 1.0 - after.energy_j / before.energy_j
        print(
            f"{10 + i:3d}  {before.energy_j:7.1f}   {after.energy_j:11.1f}   "
            f"{saving:6.1%}   {execution.deferred_to_slots:8d}  "
            f"{execution.duty_serviced + execution.carried_to_gap_end:4d}  "
            f"{execution.interrupts:10d}"
        )


if __name__ == "__main__":
    main()
