"""Parameter tuning: the paper's Section VI-D analysis, hands-on.

Sweeps the two knobs NetMaster exposes to deployments — the prediction
threshold δ and the duty-cycle initial sleep interval T — and prints how
energy saving, prediction accuracy, and wake-up overhead respond
(Figs. 10(a)-(c)).

Run:  python examples/parameter_tuning.py
"""

from __future__ import annotations

from repro import (
    ExponentialSleep,
    FixedDelta,
    NaivePolicy,
    NetMasterConfig,
    NetMasterPolicy,
    generate_volunteers,
    wcdma_model,
)
from repro.core import radio_on_fraction_after, wakeup_count
from repro.evaluation import run_policy_over_days, split_history
from repro.habits import HabitModel, prediction_accuracy


def sweep_delta() -> None:
    print("=== delta sweep (Fig 10(c)) ===")
    model = wcdma_model()
    volunteers = generate_volunteers(14, seed=43)
    split = [split_history(t, 10) for t in volunteers]
    base = sum(
        m.energy_j
        for _, days in split
        for m in run_policy_over_days(NaivePolicy(), days, model)
    )
    print(f"{'delta':>6s} {'accuracy':>9s} {'saving':>8s}")
    for delta in (0.0, 0.1, 0.2, 0.3, 0.4, 0.5):
        total = acc_num = acc_den = 0.0
        for history, days in split:
            habit = HabitModel.fit(history)
            policy = NetMasterPolicy(
                history,
                NetMasterConfig(delta=FixedDelta(delta), optimize_in_slot_traffic=False),
            )
            for day in days:
                total += policy.execute_day(day).energy(model).energy_j
                pred = habit.user_slots(
                    weekend=day.is_weekend_day(0), strategy=FixedDelta(delta)
                )
                acc_num += prediction_accuracy(pred, day) * len(day.usages)
                acc_den += len(day.usages)
        print(f"{delta:6.2f} {acc_num / acc_den:9.3f} {1 - total / base:8.3f}")
    print("(paper: accuracy falls and saving rises with delta; balance near 0.37,\n"
          " deployed values 0.2 weekdays / 0.1 weekends keep interrupts < 1%)")


def sweep_duty_cycle() -> None:
    print("\n=== duty-cycle sleep interval (Fig 10(a)-(b)) ===")
    print(f"{'T (s)':>6s} {'wakeups/30min':>14s} {'radio-on frac @10 wakes':>24s}")
    for initial in (5.0, 10.0, 20.0, 30.0, 120.0, 360.0):
        count = wakeup_count(ExponentialSleep(initial_s=initial), 1800.0)
        fraction = radio_on_fraction_after(ExponentialSleep(initial_s=initial), 10)
        print(f"{initial:6.0f} {count:14d} {fraction:24.4f}")
    print("(paper: exponential sleeping needs ~8 wake-ups in 30 min at T=5s where\n"
          " fixed sleeping needs 300; larger T cuts radio-on time further)")


if __name__ == "__main__":
    sweep_delta()
    sweep_duty_cycle()
