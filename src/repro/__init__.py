"""NetMaster reproduction: habit-driven scheduling of smartphone network
activities for energy saving (Zhang et al., ICPP 2014).

Public API tour
---------------

Trace substrate (replaces the paper's on-phone collection)::

    from repro import generate_cohort, generate_volunteers
    cohort = generate_cohort(21, seed=2014)     # the 8 profiling users

Habit mining::

    from repro import HabitModel
    model = HabitModel.fit(cohort[0])
    slots = model.user_slots(weekend=False)     # predicted user-active slots

The middleware itself::

    from repro import NetMaster, NetMasterConfig
    nm = NetMaster(NetMasterConfig())
    nm.train(history_trace)
    execution = nm.execute_day(held_out_day)

Policy comparison and paper experiments::

    from repro.evaluation import fig7
    from repro.evaluation.reporting import format_fig7
    print(format_fig7(fig7()))

See ``DESIGN.md`` for the full system inventory and ``EXPERIMENTS.md``
for paper-vs-measured numbers.
"""

from repro.baselines import (
    BatchPolicy,
    DelayBatchPolicy,
    DelayPolicy,
    NaivePolicy,
    NetMasterPolicy,
    OraclePolicy,
    PolicyOutcome,
    SchedulingPolicy,
)
from repro.core import (
    DayExecution,
    DayPlan,
    ExponentialSleep,
    FixedSleep,
    NetMaster,
    NetMasterConfig,
    NetMasterScheduler,
    ProfitParams,
    RandomSleep,
    knapsack_exact,
    knapsack_fptas,
    knapsack_greedy,
    solve_overlapped,
)
from repro.faults import (
    CircuitBreaker,
    FaultInjector,
    FaultPlan,
    RetryPolicy,
    apply_faults,
)
from repro.habits import (
    DataSufficiency,
    FixedDelta,
    HabitModel,
    ImpactBasedDelta,
    SlotPrediction,
    SpecialAppRegistry,
    WeekdayWeekendDelta,
    pearson,
    prediction_accuracy,
)
from repro.runtime import (
    ParallelRunner,
    PolicyTask,
    PolicyTaskError,
    TraceCache,
    cache_stats,
    clear_cache,
    configure_cache,
    parallel_map,
    run_policy_tasks,
)
from repro.telemetry import (
    MetricsRegistry,
    Tracer,
    metrics,
    tracer,
)
from repro.radio import (
    FullTail,
    LinkModel,
    RadioPowerModel,
    TruncatedTail,
    lte_model,
    simulate,
    wcdma_model,
)
from repro.traces import (
    AppCatalog,
    AppModel,
    AppUsage,
    NetworkActivity,
    ScreenSession,
    Trace,
    TraceGenerator,
    TraceStore,
    UserProfile,
    default_catalog,
    default_profiles,
    generate_cohort,
    generate_volunteers,
    volunteer_profiles,
)

__version__ = "1.0.0"

__all__ = [
    "AppCatalog",
    "AppModel",
    "AppUsage",
    "BatchPolicy",
    "CircuitBreaker",
    "DataSufficiency",
    "DayExecution",
    "DayPlan",
    "DelayBatchPolicy",
    "DelayPolicy",
    "ExponentialSleep",
    "FaultInjector",
    "FaultPlan",
    "FixedDelta",
    "FixedSleep",
    "FullTail",
    "HabitModel",
    "ImpactBasedDelta",
    "LinkModel",
    "MetricsRegistry",
    "NaivePolicy",
    "NetMaster",
    "NetMasterConfig",
    "NetMasterPolicy",
    "NetMasterScheduler",
    "NetworkActivity",
    "OraclePolicy",
    "ParallelRunner",
    "PolicyOutcome",
    "PolicyTask",
    "PolicyTaskError",
    "ProfitParams",
    "RadioPowerModel",
    "RandomSleep",
    "RetryPolicy",
    "SchedulingPolicy",
    "ScreenSession",
    "SlotPrediction",
    "SpecialAppRegistry",
    "Trace",
    "TraceCache",
    "Tracer",
    "TraceGenerator",
    "TraceStore",
    "TruncatedTail",
    "UserProfile",
    "WeekdayWeekendDelta",
    "apply_faults",
    "cache_stats",
    "clear_cache",
    "configure_cache",
    "default_catalog",
    "default_profiles",
    "generate_cohort",
    "generate_volunteers",
    "knapsack_exact",
    "knapsack_fptas",
    "knapsack_greedy",
    "lte_model",
    "metrics",
    "parallel_map",
    "pearson",
    "prediction_accuracy",
    "run_policy_tasks",
    "simulate",
    "solve_overlapped",
    "tracer",
    "volunteer_profiles",
    "wcdma_model",
    "__version__",
]
