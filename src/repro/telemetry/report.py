"""Telemetry directory layout, export writer, and the summary report.

A ``--telemetry-out DIR`` run leaves four files behind:

* ``metrics.json`` — the full registry snapshot plus a per-experiment
  delta (counters/histograms attributed to each experiment that ran);
* ``spans.jsonl`` — every recorded span, one JSON object per line;
* ``trace.json`` — the same spans in Chrome trace-event format (open in
  ``chrome://tracing`` or https://ui.perfetto.dev);
* ``results.json`` — machine-readable figure results next to the
  paper's reference numbers (see
  :func:`repro.evaluation.reporting.results_to_json`).

``python -m repro telemetry-report DIR`` reads them back and renders a
per-experiment summary: top counters, histogram percentiles, slowest
wall-clock spans, and the measured-vs-paper headline table.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.telemetry.registry import Histogram

#: File names inside a telemetry output directory.
METRICS_FILE = "metrics.json"
SPANS_FILE = "spans.jsonl"
TRACE_FILE = "trace.json"
RESULTS_FILE = "results.json"

#: Rows shown per table in the rendered report.
TOP_COUNTERS = 14
TOP_SPANS = 12


def write_telemetry(
    out_dir: str | Path,
    registry,
    tracer,
    *,
    per_experiment: dict[str, dict] | None = None,
    results: dict | None = None,
) -> list[Path]:
    """Write the full telemetry export; returns the written paths."""
    out = Path(out_dir)
    out.mkdir(parents=True, exist_ok=True)
    written: list[Path] = []

    metrics_path = out / METRICS_FILE
    payload = {
        "schema": 1,
        "overall": registry.snapshot(),
        "per_experiment": per_experiment or {},
        "dropped_spans": getattr(tracer, "dropped", 0),
    }
    metrics_path.write_text(json.dumps(payload, indent=1) + "\n", encoding="utf-8")
    written.append(metrics_path)

    spans_path = out / SPANS_FILE
    tracer.to_jsonl(spans_path)
    written.append(spans_path)

    trace_path = out / TRACE_FILE
    tracer.write_chrome(trace_path)
    written.append(trace_path)

    if results is not None:
        results_path = out / RESULTS_FILE
        results_path.write_text(
            json.dumps(results, indent=1, sort_keys=True) + "\n", encoding="utf-8"
        )
        written.append(results_path)
    return written


# ----------------------------------------------------------------------
# report rendering
# ----------------------------------------------------------------------


def _histogram_from_snapshot(name: str, snap: dict) -> Histogram:
    h = Histogram(name, tuple(snap["bounds"]))
    h.counts = list(snap["counts"])
    h.count = snap["count"]
    h.sum_micro = snap["sum_micro"]
    return h


def _fmt_value(v: float) -> str:
    if v == float("inf"):
        return "inf"
    if v >= 1000 or v == int(v):
        return f"{v:,.0f}"
    return f"{v:.4g}"


def _counter_table(counters: dict[str, int], indent: str = "  ") -> list[str]:
    rows = sorted(counters.items(), key=lambda kv: (-kv[1], kv[0]))[:TOP_COUNTERS]
    if not rows:
        return [f"{indent}(no counters)"]
    width = max(len(name) for name, _ in rows)
    return [f"{indent}{name:<{width}}  {value:>12,d}" for name, value in rows]


def _histogram_table(histograms: dict[str, dict], indent: str = "  ") -> list[str]:
    if not histograms:
        return [f"{indent}(no histograms)"]
    width = max(len(name) for name in histograms)
    lines = [
        f"{indent}{'histogram':<{width}}  {'count':>9}  {'mean':>10}  "
        f"{'p50':>10}  {'p90':>10}  {'p99':>10}"
    ]
    for name in sorted(histograms):
        h = _histogram_from_snapshot(name, histograms[name])
        lines.append(
            f"{indent}{name:<{width}}  {h.count:>9,d}  {_fmt_value(h.mean):>10}  "
            f"{_fmt_value(h.percentile(0.5)):>10}  "
            f"{_fmt_value(h.percentile(0.9)):>10}  "
            f"{_fmt_value(h.percentile(0.99)):>10}"
        )
    return lines


def _monitor_table(counters: dict[str, int], indent: str = "  ") -> list[str]:
    """The ``monitor.*`` counter family, alphabetical and complete.

    Alert counts are tiny next to event counters, so the generic
    top-by-value table would crowd them out exactly when the fleet is
    healthy; a service operator reading a snapshot should still see the
    alert/quarantine/sink-error state at a glance.
    """
    rows = sorted(
        (name, value)
        for name, value in counters.items()
        if name.startswith("monitor.")
    )
    if not rows:
        return []
    width = max(len(name) for name, _ in rows)
    return [f"{indent}{name:<{width}}  {value:>12,d}" for name, value in rows]


def _load_spans(path: Path) -> list[dict]:
    spans: list[dict] = []
    if not path.exists():
        return spans
    with open(path, encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if line:
                spans.append(json.loads(line))
    return spans


def _span_table(spans: list[dict], indent: str = "  ") -> list[str]:
    wall = [s for s in spans if s.get("domain") == "wall"]
    wall.sort(key=lambda s: -s["dur_s"])
    rows = wall[:TOP_SPANS]
    if not rows:
        return [f"{indent}(no wall-clock spans)"]
    lines = [f"{indent}{'span':<40}  {'dur':>10}  track"]
    for s in rows:
        label = s["name"][:40]
        lines.append(f"{indent}{label:<40}  {s['dur_s']:>9.3f}s  {s['track']}")
    return lines


def _headline_table(results: dict, indent: str = "  ") -> list[str]:
    lines: list[str] = []
    for name in sorted(results.get("experiments", {})):
        headlines = results["experiments"][name].get("headlines", [])
        if not headlines:
            continue
        lines.append(f"{indent}{name}:")
        for row in headlines:
            paper = row.get("paper")
            ref = f"   (paper: {paper:.4g})" if paper is not None else ""
            lines.append(
                f"{indent}  {row['label']:<42} {row['measured']:.4g}{ref}"
            )
    return lines or [f"{indent}(no headline results)"]


def format_snapshot_report(path: str | Path) -> str:
    """Render a report from one metrics snapshot *file*.

    Accepts either a telemetry directory's ``metrics.json`` or a
    ``GET /metrics`` response saved by the fleet service (``python -m
    repro serve --load --metrics-out PATH``) — both carry the same
    ``{"schema": 1, "overall": <registry snapshot>, ...}`` shape, which
    is deliberate: service runs and offline runs share one reporting
    path.  A bare registry snapshot (``{"counters": ...}``) works too.
    """
    source = Path(path)
    payload = json.loads(source.read_text(encoding="utf-8"))
    if not isinstance(payload, dict):
        raise ValueError(f"{source} does not hold a metrics snapshot object")
    # Tolerate a bare registry snapshot with no envelope around it.
    overall = payload.get("overall", payload if "counters" in payload else {})
    lines = [f"Metrics snapshot — {source}"]
    lines.append("  top counters:")
    lines.extend(_counter_table(overall.get("counters", {}), indent="    "))
    monitor_rows = _monitor_table(overall.get("counters", {}), indent="    ")
    if monitor_rows:
        lines.append("  monitoring:")
        lines.extend(monitor_rows)
    lines.extend(_histogram_table(overall.get("histograms", {}), indent="  "))
    if payload.get("dropped_spans"):
        lines.append(f"  (dropped {payload['dropped_spans']} spans past the cap)")
    return "\n".join(lines)


def format_report(telemetry_dir: str | Path) -> str:
    """Render the per-experiment telemetry summary for one output dir.

    Given a *file* instead of a directory — a saved ``/metrics``
    snapshot from the fleet service, say — delegates to
    :func:`format_snapshot_report`.
    """
    root = Path(telemetry_dir)
    if root.is_file():
        return format_snapshot_report(root)
    metrics_path = root / METRICS_FILE
    if not metrics_path.exists():
        raise FileNotFoundError(
            f"no telemetry found: {metrics_path} is missing "
            "(run an experiment with --telemetry-out first, or pass a "
            "saved GET /metrics snapshot file)"
        )
    payload = json.loads(metrics_path.read_text(encoding="utf-8"))
    overall = payload.get("overall", {})
    per_experiment = payload.get("per_experiment", {})
    spans = _load_spans(root / SPANS_FILE)

    lines = [f"Telemetry report — {root}"]
    for name in per_experiment:
        delta = per_experiment[name]
        lines.append("")
        lines.append(f"== {name} ==")
        lines.append("  top counters:")
        lines.extend(_counter_table(delta.get("counters", {}), indent="    "))
        if delta.get("histograms"):
            lines.extend(_histogram_table(delta["histograms"], indent="    "))

    lines.append("")
    lines.append("== overall ==")
    lines.append("  top counters:")
    lines.extend(_counter_table(overall.get("counters", {}), indent="    "))
    lines.extend(_histogram_table(overall.get("histograms", {}), indent="  "))
    lines.append("  slowest wall-clock spans:")
    lines.extend(_span_table(spans, indent="    "))
    if payload.get("dropped_spans"):
        lines.append(f"  (dropped {payload['dropped_spans']} spans past the cap)")

    results_path = root / RESULTS_FILE
    if results_path.exists():
        lines.append("")
        lines.append("== results vs paper ==")
        lines.extend(
            _headline_table(json.loads(results_path.read_text(encoding="utf-8")))
        )
    return "\n".join(lines)
