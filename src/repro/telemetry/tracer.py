"""Span-based tracing over two clocks: simulation time and wall time.

The evaluation pipeline lives on two timelines at once.  *Simulation
time* is the deterministic second-of-day axis the DES and the RRC
machine run on — RRC state residencies, screen sessions, duty-cycle wake
windows and gap-servicer decisions are spans there.  *Wall time* is
where the pipeline's own cost lives — trace generation, habit mining,
knapsack solves and per-day policy replays are spans there.

A :class:`Span` is ``(name, cat, domain, track, start_s, dur_s, pid,
args)``.  ``domain`` is ``"sim"`` or ``"wall"``; ``track`` names the
horizontal lane the span renders on (the tracer's *context* — typically
``"<policy>:<user>:d<day>"`` — prefixes it so concurrent replays of the
same simulated day don't collide).

Exports:

* :meth:`Tracer.to_jsonl` — one span dict per line, grep/pandas food;
* :meth:`Tracer.chrome_trace_events` / :meth:`Tracer.write_chrome` —
  the Chrome trace-event JSON array (``chrome://tracing`` / Perfetto):
  complete events (``"ph": "X"``) with microsecond timestamps, sim-time
  spans under a synthetic pid with one named thread per track, wall
  spans under their real process id.

:class:`NullTracer` is the disabled twin (the default): ``enabled`` is
False, :meth:`span` hands out a shared no-op context manager, and every
record call returns immediately — hot loops guard on ``tracer.enabled``
and pay a single attribute load when tracing is off.
"""

from __future__ import annotations

import json
import os
import time
from contextlib import contextmanager
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Iterator

#: Synthetic pid grouping all simulation-time tracks in chrome exports.
SIM_PID = 1

#: Default cap on retained spans; past it spans are dropped and counted.
DEFAULT_MAX_SPANS = 500_000


@dataclass(slots=True)
class Span:
    """One recorded interval on either timeline."""

    name: str
    cat: str
    domain: str  # "sim" | "wall"
    track: str
    start_s: float
    dur_s: float
    pid: int
    args: dict | None = None

    def as_dict(self) -> dict:
        """JSONL-ready plain dict."""
        out = {
            "name": self.name,
            "cat": self.cat,
            "domain": self.domain,
            "track": self.track,
            "start_s": self.start_s,
            "dur_s": self.dur_s,
            "pid": self.pid,
        }
        if self.args:
            out["args"] = self.args
        return out


class Tracer:
    """Collects :class:`Span` records and exports them."""

    enabled = True

    def __init__(self, max_spans: int = DEFAULT_MAX_SPANS) -> None:
        if max_spans < 1:
            raise ValueError(f"max_spans must be >= 1, got {max_spans}")
        self.max_spans = max_spans
        self.spans: list[Span] = []
        self.dropped = 0
        #: Lane prefix for sim-domain spans (set per replayed day).
        self.context = ""
        self._epoch = time.perf_counter()

    # -- recording ------------------------------------------------------
    def set_context(self, label: str) -> None:
        """Set the lane prefix applied to subsequent sim-domain spans."""
        self.context = label

    @contextmanager
    def sim_context(self, label: str) -> Iterator[None]:
        """Temporarily switch the sim-span lane prefix."""
        previous = self.context
        self.context = label
        try:
            yield
        finally:
            self.context = previous

    def record_span(
        self,
        name: str,
        cat: str,
        start_s: float,
        end_s: float,
        *,
        domain: str = "sim",
        track: str | None = None,
        args: dict | None = None,
    ) -> None:
        """Record one interval; ``end_s < start_s`` is clamped to empty."""
        if len(self.spans) >= self.max_spans:
            self.dropped += 1
            return
        lane = track if track is not None else cat
        if domain == "sim" and self.context:
            lane = f"{self.context}/{lane}"
        self.spans.append(
            Span(
                name=name,
                cat=cat,
                domain=domain,
                track=lane,
                start_s=float(start_s),
                dur_s=max(0.0, float(end_s) - float(start_s)),
                pid=os.getpid(),
                args=args,
            )
        )

    @contextmanager
    def span(
        self, name: str, cat: str = "wall", *, track: str | None = None, **args
    ) -> Iterator[None]:
        """Wall-clock span context manager (perf_counter based)."""
        start = time.perf_counter() - self._epoch
        try:
            yield
        finally:
            end = time.perf_counter() - self._epoch
            self.record_span(
                name,
                cat,
                start,
                end,
                domain="wall",
                track=track,
                args=args or None,
            )

    # -- shipping between processes ------------------------------------
    def export_spans(self) -> list[dict]:
        """Picklable span list (for worker → parent shipping)."""
        return [s.as_dict() for s in self.spans]

    def ingest(self, spans: Iterable[dict]) -> None:
        """Fold shipped span dicts back in (order preserved)."""
        for s in spans:
            if len(self.spans) >= self.max_spans:
                self.dropped += 1
                continue
            self.spans.append(
                Span(
                    name=s["name"],
                    cat=s["cat"],
                    domain=s["domain"],
                    track=s["track"],
                    start_s=s["start_s"],
                    dur_s=s["dur_s"],
                    pid=s["pid"],
                    args=s.get("args"),
                )
            )

    # -- exports --------------------------------------------------------
    def to_jsonl(self, path: str | Path) -> None:
        """One span per line."""
        with open(path, "w", encoding="utf-8") as fh:
            for span in self.spans:
                fh.write(json.dumps(span.as_dict(), sort_keys=True) + "\n")

    def chrome_trace_events(self) -> list[dict]:
        """The trace-event list for ``chrome://tracing`` / Perfetto.

        Sim spans share :data:`SIM_PID` with one named thread per track;
        wall spans keep their real pid with one thread per track.  Every
        (pid, track) pair gets ``process_name`` / ``thread_name``
        metadata so the viewer labels the lanes.
        """
        events: list[dict] = []
        tids: dict[tuple[int, str], int] = {}
        next_tid: dict[int, int] = {}

        def lane(pid: int, track: str) -> int:
            key = (pid, track)
            tid = tids.get(key)
            if tid is None:
                tid = next_tid.get(pid, 1)
                next_tid[pid] = tid + 1
                tids[key] = tid
                events.append(
                    {
                        "ph": "M",
                        "name": "thread_name",
                        "pid": pid,
                        "tid": tid,
                        "args": {"name": track},
                    }
                )
            return tid

        seen_pids: set[int] = set()

        def process(pid: int, label: str) -> None:
            if pid not in seen_pids:
                seen_pids.add(pid)
                events.append(
                    {
                        "ph": "M",
                        "name": "process_name",
                        "pid": pid,
                        "args": {"name": label},
                    }
                )

        for span in self.spans:
            if span.domain == "sim":
                pid = SIM_PID
                process(pid, "simulation time")
            else:
                pid = span.pid + SIM_PID + 1  # keep clear of the sim pid
                process(pid, f"wall clock (pid {span.pid})")
            event = {
                "ph": "X",
                "name": span.name,
                "cat": span.cat,
                "pid": pid,
                "tid": lane(pid, span.track),
                "ts": round(span.start_s * 1e6, 3),
                "dur": round(span.dur_s * 1e6, 3),
            }
            if span.args:
                event["args"] = span.args
            events.append(event)
        return events

    def write_chrome(self, path: str | Path) -> None:
        """Write the trace-event JSON (``{"traceEvents": [...]}``)."""
        payload = {
            "traceEvents": self.chrome_trace_events(),
            "displayTimeUnit": "ms",
        }
        Path(path).write_text(json.dumps(payload) + "\n", encoding="utf-8")

    def clear(self) -> None:
        """Drop all recorded spans."""
        self.spans.clear()
        self.dropped = 0


@contextmanager
def _null_span() -> Iterator[None]:
    yield


class NullTracer(Tracer):
    """Disabled tracer: records nothing, exports nothing."""

    enabled = False

    def __init__(self) -> None:
        self.max_spans = 0
        self.spans = []
        self.dropped = 0
        self.context = ""
        self._epoch = 0.0

    def set_context(self, label: str) -> None:
        pass

    @contextmanager
    def sim_context(self, label: str) -> Iterator[None]:
        yield

    def record_span(self, *args, **kwargs) -> None:
        pass

    def span(self, name: str, cat: str = "wall", *, track=None, **args):
        return _null_span()

    def ingest(self, spans: Iterable[dict]) -> None:
        pass
