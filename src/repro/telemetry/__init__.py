"""Telemetry subsystem: metrics registry, span tracer, exports, report.

Process-global state with two independent switches:

* the **metrics registry** (:func:`metrics`) is on by default — counters,
  gauges and fixed-bucket histograms are cheap enough to leave running
  under every figure reproduction.  ``REPRO_TELEMETRY=0`` (or
  :func:`configure(metrics_enabled=False)`) swaps in a
  :class:`~repro.telemetry.registry.NullRegistry` whose methods are
  no-ops, which is the zero-overhead-disabled path;
* the **tracer** (:func:`tracer`) is off by default (a
  :class:`~repro.telemetry.tracer.NullTracer`) because span collection
  is proportional to simulated work; the CLI's ``--telemetry-out DIR``
  (or :func:`configure(tracing_enabled=True)`) turns it on.

Neither switch affects any computed result: instrumentation only ever
*observes*.  Figure outputs are bit-identical with telemetry on or off,
and at fixed seeds the registry contents are themselves deterministic —
which is what lets :func:`repro.runtime.parallel.run_policy_tasks` ship
per-worker registries back and merge them (in task order) into exactly
the registry a serial run would have produced.

:func:`isolated` temporarily installs a fresh enabled registry/tracer
pair — the worker-side capture primitive, also handy in tests.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from typing import Iterator

from repro.telemetry.registry import (
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullRegistry,
    diff_snapshots,
)
from repro.telemetry.tracer import NullTracer, Span, Tracer

__all__ = [
    "Counter",
    "DEFAULT_BUCKETS",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NullRegistry",
    "NullTracer",
    "Span",
    "Tracer",
    "configure",
    "diff_snapshots",
    "isolated",
    "metrics",
    "metrics_enabled",
    "reset_metrics",
    "tracer",
    "tracing_enabled",
]


def _default_registry() -> MetricsRegistry:
    if os.environ.get("REPRO_TELEMETRY", "1") == "0":
        return NullRegistry()
    return MetricsRegistry()


_registry: MetricsRegistry = _default_registry()
_tracer: Tracer = NullTracer()


def metrics() -> MetricsRegistry:
    """The process-global metrics registry (possibly a no-op)."""
    return _registry


def tracer() -> Tracer:
    """The process-global tracer (a no-op unless tracing is enabled)."""
    return _tracer


def metrics_enabled() -> bool:
    """Whether the global registry records anything."""
    return _registry.enabled


def tracing_enabled() -> bool:
    """Whether the global tracer records anything."""
    return _tracer.enabled


def configure(
    *,
    metrics_enabled: bool | None = None,
    tracing_enabled: bool | None = None,
) -> tuple[MetricsRegistry, Tracer]:
    """Flip either telemetry switch; returns the (registry, tracer) pair.

    Enabling an already-enabled side keeps its accumulated state;
    disabling swaps in the null implementation (state is dropped).
    """
    global _registry, _tracer
    if metrics_enabled is not None:
        if metrics_enabled and not _registry.enabled:
            _registry = MetricsRegistry()
        elif not metrics_enabled and _registry.enabled:
            _registry = NullRegistry()
    if tracing_enabled is not None:
        if tracing_enabled and not _tracer.enabled:
            _tracer = Tracer()
        elif not tracing_enabled and _tracer.enabled:
            _tracer = NullTracer()
    return _registry, _tracer


def reset_metrics() -> MetricsRegistry:
    """Clear the global registry (keeps its enabled/disabled state)."""
    _registry.clear()
    return _registry


@contextmanager
def isolated(
    *, with_tracing: bool = True
) -> Iterator[tuple[MetricsRegistry, Tracer]]:
    """Run a block against a fresh enabled registry/tracer pair.

    The previous globals are restored on exit; the fresh pair is yielded
    so the caller can snapshot what the block recorded.  This is how
    worker processes capture exactly one task's telemetry regardless of
    what a forked parent left in the globals.
    """
    global _registry, _tracer
    prev_registry, prev_tracer = _registry, _tracer
    _registry = MetricsRegistry()
    _tracer = Tracer() if with_tracing else NullTracer()
    try:
        yield _registry, _tracer
    finally:
        _registry, _tracer = prev_registry, prev_tracer
