"""Process-local metrics: counters, gauges, fixed-bucket histograms.

A :class:`MetricsRegistry` is the cheap always-on half of the telemetry
subsystem.  Three instrument kinds cover the pipeline's needs:

* :class:`Counter` — monotonically increasing integer (events, items);
* :class:`Gauge` — last-written float (sizes, configuration echoes);
* :class:`Histogram` — fixed-bucket distribution of float observations.

Two properties make the registry safe to leave on during figure
reproduction and to fan over worker processes:

* **determinism** — every instrument state is a function of the sequence
  of updates alone, never of the clock.  Histogram sums accumulate in
  integer micro-units, so merging per-worker registries in task order
  produces *exactly* the serial run's registry (float summation order
  cannot leak in);
* **mergeability** — :meth:`MetricsRegistry.snapshot` produces a plain
  JSON-able dict (picklable across process pools) and
  :meth:`MetricsRegistry.merge_snapshot` folds such snapshots back in.
  Counters and histograms add; gauges take the incoming value
  (merge-order wins, matching serial last-write-wins).

:class:`NullRegistry` is the disabled twin: same surface, every method a
no-op, ``snapshot()`` empty — instrumented call sites pay one attribute
lookup and a no-op call, nothing more.
"""

from __future__ import annotations

from bisect import bisect_left

#: Scale factor for exact integer accumulation of histogram sums.
_MICRO = 1_000_000

#: Default histogram bucket upper bounds (seconds-flavoured, log-spaced).
#: The final implicit bucket is +inf (the overflow bucket).
DEFAULT_BUCKETS: tuple[float, ...] = (
    0.001,
    0.005,
    0.01,
    0.05,
    0.1,
    0.5,
    1.0,
    5.0,
    10.0,
    60.0,
    300.0,
    1800.0,
    3600.0,
    21600.0,
    86400.0,
)


class Counter:
    """A monotonically increasing integer instrument."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def inc(self, n: int = 1) -> None:
        """Add ``n`` (must be >= 0) to the counter."""
        if n < 0:
            raise ValueError(f"counter {self.name!r}: increment must be >= 0, got {n}")
        self.value += int(n)


class Gauge:
    """A last-write-wins float instrument."""

    __slots__ = ("name", "value", "written")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0
        self.written = False

    def set(self, value: float) -> None:
        """Record the current value of the tracked quantity."""
        self.value = float(value)
        self.written = True


class Histogram:
    """A fixed-bucket distribution of float observations.

    ``bounds`` are the inclusive upper edges of the finite buckets; one
    implicit overflow bucket catches everything above the last bound.
    The sum is kept in integer micro-units so merges are exact and
    order-independent.
    """

    __slots__ = ("name", "bounds", "counts", "count", "sum_micro")

    def __init__(self, name: str, bounds: tuple[float, ...] = DEFAULT_BUCKETS) -> None:
        if not bounds:
            raise ValueError(f"histogram {name!r} needs >= 1 bucket bound")
        if list(bounds) != sorted(bounds) or len(set(bounds)) != len(bounds):
            raise ValueError(f"histogram {name!r}: bounds must be strictly increasing")
        self.name = name
        self.bounds = tuple(float(b) for b in bounds)
        self.counts = [0] * (len(bounds) + 1)
        self.count = 0
        self.sum_micro = 0

    def observe(self, value: float) -> None:
        """Record one observation."""
        self.counts[bisect_left(self.bounds, value)] += 1
        self.count += 1
        self.sum_micro += int(round(value * _MICRO))

    @property
    def sum(self) -> float:
        """Total of all observations (micro-unit precision)."""
        return self.sum_micro / _MICRO

    @property
    def mean(self) -> float:
        """Mean observation, 0.0 when empty."""
        return self.sum / self.count if self.count else 0.0

    def percentile(self, q: float) -> float:
        """Bucket-resolution estimate of the ``q``-quantile (0 <= q <= 1).

        Returns the upper bound of the bucket containing the quantile
        rank; observations in the overflow bucket report ``inf``.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"q must be in [0, 1], got {q}")
        if self.count == 0:
            return 0.0
        rank = q * self.count
        seen = 0
        for i, c in enumerate(self.counts):
            seen += c
            if seen >= rank and c:
                return self.bounds[i] if i < len(self.bounds) else float("inf")
        return float("inf")


class MetricsRegistry:
    """A named collection of counters, gauges and histograms."""

    enabled = True

    def __init__(self) -> None:
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}

    # -- instrument access ---------------------------------------------
    def counter(self, name: str) -> Counter:
        """The counter called ``name`` (created on first use)."""
        c = self._counters.get(name)
        if c is None:
            c = self._counters[name] = Counter(name)
        return c

    def gauge(self, name: str) -> Gauge:
        """The gauge called ``name`` (created on first use)."""
        g = self._gauges.get(name)
        if g is None:
            g = self._gauges[name] = Gauge(name)
        return g

    def histogram(
        self, name: str, bounds: tuple[float, ...] | None = None
    ) -> Histogram:
        """The histogram called ``name`` (created on first use).

        ``bounds`` applies only at creation; a later conflicting bounds
        request for an existing histogram raises.
        """
        h = self._histograms.get(name)
        if h is None:
            h = self._histograms[name] = Histogram(name, bounds or DEFAULT_BUCKETS)
        elif bounds is not None and tuple(bounds) != h.bounds:
            raise ValueError(
                f"histogram {name!r} already exists with bounds {h.bounds}"
            )
        return h

    # -- convenience updates -------------------------------------------
    def inc(self, name: str, n: int = 1) -> None:
        """Increment counter ``name`` by ``n``."""
        self.counter(name).inc(n)

    def set_gauge(self, name: str, value: float) -> None:
        """Set gauge ``name`` to ``value``."""
        self.gauge(name).set(value)

    def observe(
        self, name: str, value: float, bounds: tuple[float, ...] | None = None
    ) -> None:
        """Record ``value`` in histogram ``name``."""
        self.histogram(name, bounds).observe(value)

    # -- snapshot / merge ----------------------------------------------
    def snapshot(self) -> dict:
        """Plain-dict state (sorted keys, JSON- and pickle-friendly)."""
        return {
            "counters": {
                name: self._counters[name].value for name in sorted(self._counters)
            },
            "gauges": {
                name: self._gauges[name].value
                for name in sorted(self._gauges)
                if self._gauges[name].written
            },
            "histograms": {
                name: {
                    "bounds": list(self._histograms[name].bounds),
                    "counts": list(self._histograms[name].counts),
                    "count": self._histograms[name].count,
                    "sum_micro": self._histograms[name].sum_micro,
                }
                for name in sorted(self._histograms)
            },
        }

    def merge_snapshot(self, snap: dict) -> None:
        """Fold a :meth:`snapshot` into this registry.

        Counters and histograms add, gauges take the snapshot value.
        Call in task order to reproduce a serial run exactly.
        """
        for name, value in snap.get("counters", {}).items():
            self.counter(name).inc(value)
        for name, value in snap.get("gauges", {}).items():
            self.gauge(name).set(value)
        for name, h in snap.get("histograms", {}).items():
            mine = self.histogram(name, tuple(h["bounds"]))
            if list(mine.bounds) != list(h["bounds"]):
                raise ValueError(
                    f"histogram {name!r}: cannot merge differing bounds"
                )
            for i, c in enumerate(h["counts"]):
                mine.counts[i] += c
            mine.count += h["count"]
            mine.sum_micro += h["sum_micro"]

    def merge(self, other: "MetricsRegistry") -> None:
        """Fold another registry into this one (via its snapshot)."""
        self.merge_snapshot(other.snapshot())

    def clear(self) -> None:
        """Drop every instrument."""
        self._counters.clear()
        self._gauges.clear()
        self._histograms.clear()


def diff_snapshots(before: dict, after: dict) -> dict:
    """The updates that happened between two snapshots of one registry.

    Counters and histogram counts/sums subtract; gauges report the
    ``after`` value.  Used for per-experiment attribution in the CLI.
    """
    counters = {}
    for name, value in after.get("counters", {}).items():
        delta = value - before.get("counters", {}).get(name, 0)
        if delta:
            counters[name] = delta
    histograms = {}
    for name, h in after.get("histograms", {}).items():
        prev = before.get("histograms", {}).get(
            name, {"counts": [0] * len(h["counts"]), "count": 0, "sum_micro": 0}
        )
        count = h["count"] - prev["count"]
        if count:
            histograms[name] = {
                "bounds": h["bounds"],
                "counts": [a - b for a, b in zip(h["counts"], prev["counts"])],
                "count": count,
                "sum_micro": h["sum_micro"] - prev["sum_micro"],
            }
    return {
        "counters": counters,
        "gauges": dict(after.get("gauges", {})),
        "histograms": histograms,
    }


class _NullInstrument:
    """Shared do-nothing counter/gauge/histogram."""

    __slots__ = ()
    name = ""
    value = 0
    count = 0
    sum_micro = 0
    bounds: tuple[float, ...] = ()

    def inc(self, n: int = 1) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def observe(self, value: float) -> None:
        pass


_NULL_INSTRUMENT = _NullInstrument()


class NullRegistry(MetricsRegistry):
    """Disabled registry: same surface, no state, no side effects."""

    enabled = False

    def __init__(self) -> None:  # no dicts — nothing is ever stored
        pass

    def counter(self, name: str):  # type: ignore[override]
        return _NULL_INSTRUMENT

    def gauge(self, name: str):  # type: ignore[override]
        return _NULL_INSTRUMENT

    def histogram(self, name: str, bounds=None):  # type: ignore[override]
        return _NULL_INSTRUMENT

    def inc(self, name: str, n: int = 1) -> None:
        pass

    def set_gauge(self, name: str, value: float) -> None:
        pass

    def observe(self, name: str, value: float, bounds=None) -> None:
        pass

    def snapshot(self) -> dict:
        return {"counters": {}, "gauges": {}, "histograms": {}}

    def merge_snapshot(self, snap: dict) -> None:
        pass

    def merge(self, other: MetricsRegistry) -> None:
        pass

    def clear(self) -> None:
        pass
