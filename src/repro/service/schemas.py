"""Wire documents of the fleet service (the schema layer).

Requests and responses are plain JSON documents.  Event batches reuse
the trace JSONL record schema (``kind``-tagged ``screen`` / ``usage`` /
``network`` objects, :mod:`repro.traces.io`) so a phone upload, a trace
file, and an HTTP ingest batch are one format.  Response documents are
derived from engine outputs with no lossy formatting — floats are
emitted as Python floats, which survive JSON bit-exactly — so the
byte-equality contract between the HTTP surface and the library
(:func:`repro.service.gateway.reference_decisions`) is meaningful.

Everything that can reject a request raises :class:`SchemaError`; the
HTTP layer maps it to a 400 response.
"""

from __future__ import annotations

from repro.evaluation.metrics import PolicyDayMetrics
from repro.stream.online_netmaster import CompletedDay
from repro.traces.events import AppUsage, NetworkActivity, ScreenSession
from repro.traces.io import TraceRecord, _parse_record

#: Hard cap on records per ingest batch (a schema concern: one batch is
#: one admission unit through the single-writer queue, and an unbounded
#: batch would let one client monopolize the worker).
MAX_BATCH_EVENTS = 50_000


class SchemaError(ValueError):
    """A request document failed validation (HTTP 400)."""


def _require_object(doc: object, what: str) -> dict:
    if not isinstance(doc, dict):
        raise SchemaError(f"{what} must be a JSON object, got {type(doc).__name__}")
    return doc


def parse_event_batch(doc: object) -> tuple[list[TraceRecord], int]:
    """Parse a ``POST .../events`` body into trace records.

    The body is ``{"events": [<record>, ...]}`` with an optional
    ``"start_weekday"`` (0..6, used only when the batch creates the
    user).  Each record is a JSONL trace record object: ``{"kind":
    "screen", "start": s, "end": e}``, ``{"kind": "usage", "time": t,
    "app": a, "duration": d}`` or ``{"kind": "network", ...}``.
    Returns ``(records, start_weekday)``.
    """
    doc = _require_object(doc, "event batch")
    events = doc.get("events")
    if not isinstance(events, list):
        raise SchemaError("event batch needs an 'events' list")
    if len(events) > MAX_BATCH_EVENTS:
        raise SchemaError(
            f"event batch holds {len(events)} records; "
            f"the per-batch cap is {MAX_BATCH_EVENTS}"
        )
    start_weekday = doc.get("start_weekday", 0)
    if not isinstance(start_weekday, int) or not 0 <= start_weekday < 7:
        raise SchemaError(
            f"start_weekday must be an integer in [0, 7), got {start_weekday!r}"
        )
    records: list[TraceRecord] = []
    for i, obj in enumerate(events):
        obj = _require_object(obj, f"events[{i}]")
        try:
            records.append(_parse_record(obj.get("kind"), obj))
        except (KeyError, TypeError, ValueError) as exc:
            raise SchemaError(f"events[{i}] is malformed: {exc}") from exc
    return records, start_weekday


def record_to_doc(record: TraceRecord) -> dict:
    """One trace record as its wire object (inverse of the parse)."""
    if isinstance(record, ScreenSession):
        return {"kind": "screen", "start": record.start, "end": record.end}
    if isinstance(record, AppUsage):
        return {
            "kind": "usage",
            "time": record.time,
            "app": record.app,
            "duration": record.duration,
        }
    if isinstance(record, NetworkActivity):
        return {
            "kind": "network",
            "time": record.time,
            "app": record.app,
            "down_bytes": record.down_bytes,
            "up_bytes": record.up_bytes,
            "duration": record.duration,
            "screen_on": record.screen_on,
        }
    raise TypeError(f"not a trace record: {type(record).__name__}")


def parse_finish(doc: object) -> int:
    """Parse a ``POST .../finish`` body: ``{"n_days": N}``."""
    doc = _require_object(doc, "finish request")
    n_days = doc.get("n_days")
    if not isinstance(n_days, int) or n_days < 1:
        raise SchemaError(f"n_days must be a positive integer, got {n_days!r}")
    return n_days


def parse_checkpoint(doc: object) -> str | None:
    """Parse a checkpoint/restore body: ``{"path": ...}`` (optional)."""
    if doc is None:
        return None
    doc = _require_object(doc, "checkpoint request")
    path = doc.get("path")
    if path is None:
        return None
    if not isinstance(path, str) or not path:
        raise SchemaError(f"path must be a non-empty string, got {path!r}")
    return path


def saving_of(energy_j: float, naive_energy_j: float) -> float:
    """Energy saving vs the always-on baseline (0.0 when unmeasurable)."""
    if naive_energy_j > 0:
        return 1.0 - energy_j / naive_energy_j
    return 0.0


def decision_doc(
    day: CompletedDay, priced: PolicyDayMetrics, naive: PolicyDayMetrics
) -> dict:
    """One causally executed day as its wire record.

    Every field is a pure function of the engine's execution and the
    shared RRC pricing, so a record served over HTTP is byte-equal to
    one computed by driving the library directly.
    """
    ex = day.execution
    return {
        "day": day.day_index,
        "weekday": day.trace.start_weekday,
        "policy": priced.policy,
        "degraded": ex.degraded,
        "planned": ex.plan is not None,
        "activities": len(ex.activities),
        "wake_windows": len(ex.wake_windows),
        "immediate": ex.immediate,
        "deferred": priced.deferred,
        "interrupts": priced.interrupts,
        "user_interactions": priced.user_interactions,
        "energy_j": priced.energy_j,
        "radio_on_s": priced.radio_on_s,
        "transfer_s": priced.transfer_s,
        "naive_energy_j": naive.energy_j,
        "saving": saving_of(priced.energy_j, naive.energy_j),
    }
