"""Async load driver for the fleet service.

Replays a generated cohort against a *running* server over real
sockets: N worker tasks share a queue of users, each worker holds one
keep-alive connection and drives its users through the full lifecycle —
event batches in causal order, ``finish``, then the ``decisions`` and
``savings`` reads.  Every request's wall-clock latency is recorded, and
the report carries sustained events/s plus p50/p95/p99 — the
``service_load`` section of ``BENCH_perf.json``.

The driver is stdlib-only (``asyncio.open_connection`` + hand-rolled
HTTP/1.1), mirroring the server's own transport, so the benchmark
numbers measure the service and not a client framework.
"""

from __future__ import annotations

import asyncio
import json
import math
import time
from dataclasses import dataclass, field

from repro.service.schemas import record_to_doc
from repro.stream.experiment import fleet_specs
from repro.stream.fleet import FleetUserSpec, _spec_trace
from repro.stream.ingest import stream_trace

#: Default records per ingest batch — roughly one day of events for the
#: generated cohorts, so batches and day closes interleave realistically.
DEFAULT_BATCH_EVENTS = 256


@dataclass
class LoadOptions:
    """Shape of one load run."""

    host: str = "127.0.0.1"
    port: int = 8341
    n_users: int = 8
    n_days: int = 9
    seed: int = 2014
    concurrency: int = 4
    batch_events: int = DEFAULT_BATCH_EVENTS
    #: Close every stream (``finish``) and read decisions + savings.
    full_lifecycle: bool = True


@dataclass
class _Tally:
    """Mutable counters shared by the worker tasks."""

    events: int = 0
    requests: int = 0
    errors: int = 0
    days_closed: int = 0
    latencies_s: list[float] = field(default_factory=list)


class _Client:
    """One keep-alive HTTP/1.1 connection to the service."""

    def __init__(self, host: str, port: int) -> None:
        self.host = host
        self.port = port
        self._reader: asyncio.StreamReader | None = None
        self._writer: asyncio.StreamWriter | None = None

    async def connect(self) -> None:
        self._reader, self._writer = await asyncio.open_connection(
            self.host, self.port
        )

    async def close(self) -> None:
        if self._writer is not None:
            self._writer.close()
            try:
                await self._writer.wait_closed()
            except (ConnectionError, RuntimeError):
                pass
            self._reader = self._writer = None

    async def request(
        self, method: str, path: str, doc: object | None = None
    ) -> tuple[int, dict]:
        """One request/response round trip on the persistent connection."""
        if self._writer is None:
            await self.connect()
        assert self._reader is not None and self._writer is not None
        body = b"" if doc is None else json.dumps(doc).encode("utf-8")
        head = (
            f"{method} {path} HTTP/1.1\r\n"
            f"Host: {self.host}\r\n"
            f"Content-Type: application/json\r\n"
            f"Content-Length: {len(body)}\r\n"
            "\r\n"
        )
        self._writer.write(head.encode("latin-1") + body)
        await self._writer.drain()
        status, length, close = await self._read_head()
        payload = await self._reader.readexactly(length) if length else b"{}"
        if close:
            await self.close()
        return status, json.loads(payload)

    async def _read_head(self) -> tuple[int, int, bool]:
        assert self._reader is not None
        status_line = await self._reader.readline()
        if not status_line:
            raise ConnectionError("server closed the connection")
        status = int(status_line.split(b" ", 2)[1])
        length, close = 0, False
        while True:
            line = await self._reader.readline()
            if line in (b"\r\n", b"\n", b""):
                break
            name, _, value = line.decode("latin-1").partition(":")
            name = name.strip().lower()
            if name == "content-length":
                length = int(value.strip())
            elif name == "connection" and value.strip().lower() == "close":
                close = True
        return status, length, close


def _batches(spec: FleetUserSpec, batch_events: int) -> list[list[dict]]:
    """A user's whole trace as causally ordered wire batches."""
    records = [record_to_doc(r) for r in stream_trace(_spec_trace(spec))]
    return [
        records[i : i + batch_events]
        for i in range(0, len(records), batch_events)
    ] or [[]]


def percentile(sorted_values: list[float], q: float) -> float:
    """The q-quantile of an ascending list (nearest-rank, 0 on empty)."""
    if not sorted_values:
        return 0.0
    rank = max(1, math.ceil(q * len(sorted_values)))
    return sorted_values[rank - 1]


async def _timed(client: _Client, tally: _Tally, method: str, path: str,
                 doc: object | None = None) -> tuple[int, dict]:
    start = time.perf_counter()
    status, payload = await client.request(method, path, doc)
    tally.latencies_s.append(time.perf_counter() - start)
    tally.requests += 1
    if status != 200:
        tally.errors += 1
    return status, payload


async def _worker(
    options: LoadOptions, queue: asyncio.Queue, tally: _Tally
) -> None:
    client = _Client(options.host, options.port)
    await client.connect()
    try:
        while True:
            try:
                spec = queue.get_nowait()
            except asyncio.QueueEmpty:
                return
            base = f"/v1/users/{spec.user_id}"
            trace = _spec_trace(spec)
            for batch in _batches(spec, options.batch_events):
                status, doc = await _timed(
                    client, tally, "POST", f"{base}/events",
                    {"events": batch, "start_weekday": trace.start_weekday},
                )
                if status == 200:
                    tally.events += doc.get("accepted", 0)
                    tally.days_closed += doc.get("days_closed", 0)
            if options.full_lifecycle:
                status, doc = await _timed(
                    client, tally, "POST", f"{base}/finish",
                    {"n_days": trace.n_days},
                )
                if status == 200:
                    tally.days_closed += doc.get("days_closed", 0)
                await _timed(client, tally, "GET", f"{base}/decisions")
                await _timed(client, tally, "GET", f"{base}/savings")
            queue.task_done()
    finally:
        await client.close()


async def run_load(options: LoadOptions | None = None) -> dict:
    """Drive one full load run; returns the ``service_load`` report."""
    options = options or LoadOptions()
    specs = fleet_specs(
        seed=options.seed, n_users=options.n_users, n_days=options.n_days
    )
    queue: asyncio.Queue = asyncio.Queue()
    for spec in specs:
        queue.put_nowait(spec)
    tally = _Tally()
    start = time.perf_counter()
    workers = [
        asyncio.create_task(_worker(options, queue, tally))
        for _ in range(max(1, options.concurrency))
    ]
    await asyncio.gather(*workers)
    elapsed = time.perf_counter() - start

    probe = _Client(options.host, options.port)
    health = metrics_doc = alerts_doc = {}
    try:
        _, health = await probe.request("GET", "/health")
        _, metrics_doc = await probe.request("GET", "/metrics")
        _, alerts_doc = await probe.request("GET", "/v1/alerts")
    finally:
        await probe.close()

    lat = sorted(tally.latencies_s)
    return {
        "n_users": options.n_users,
        "n_days": options.n_days,
        "concurrency": options.concurrency,
        "batch_events": options.batch_events,
        "events": tally.events,
        "requests": tally.requests,
        "errors": tally.errors,
        "days_closed": tally.days_closed,
        "elapsed_s": elapsed,
        "service_events_per_s": tally.events / elapsed if elapsed > 0 else 0.0,
        "requests_per_s": tally.requests / elapsed if elapsed > 0 else 0.0,
        "latency_p50_s": percentile(lat, 0.50),
        "latency_p95_s": percentile(lat, 0.95),
        "latency_p99_s": percentile(lat, 0.99),
        "health": health,
        "alerts": {
            "monitoring": alerts_doc.get("monitoring", False),
            "published": alerts_doc.get("published", 0),
            "by_kind": alerts_doc.get("by_kind", {}),
            "quarantined_users": alerts_doc.get("quarantined_users", 0),
            "sink_errors": alerts_doc.get("sink_errors", 0),
        },
        "metrics_counters": len(
            metrics_doc.get("overall", {}).get("counters", {})
        ),
    }
