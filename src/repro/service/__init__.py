"""Fleet-as-a-service: an async HTTP control plane over the fleet engine.

The package layers, top to bottom, in the routes → schemas → service
style the roadmap calls for:

* :mod:`repro.service.http` — a stdlib-only asyncio HTTP/1.1 front end
  (:class:`ServiceApp`, :func:`serve`): request parsing, per-route
  counters and micro-unit latency histograms, graceful signal-driven
  shutdown with a final atomic checkpoint;
* :mod:`repro.service.routes` — the endpoint table and its handlers
  (event ingest, decisions, savings, finish, checkpoint/restore,
  health, metrics), every gateway mutation funneled through the app's
  single-writer worker queue;
* :mod:`repro.service.schemas` — wire documents: event-batch parsing
  (the JSONL trace record schema over HTTP), per-day decision records,
  savings summaries — all derived bit-exactly from engine outputs;
* :mod:`repro.service.gateway` — :class:`FleetGateway`, the synchronous
  single-writer session layer over :class:`~repro.stream.online_netmaster.
  OnlineNetMaster` engines: same decisions, byte for byte, as driving
  :class:`~repro.stream.fleet.FleetService` directly;
* :mod:`repro.service.loadgen` — an asyncio load driver replaying
  generated cohorts over real sockets (sustained events/s + tail
  latency, the ``service_load`` section of ``BENCH_perf.json``).

Run it::

    python -m repro serve --port 8341 --checkpoint state.json
    python -m repro serve --load --quick        # in-process load drill
"""

from __future__ import annotations

from repro.service.gateway import (
    CausalityError,
    FleetGateway,
    ServiceOverloadError,
    UnknownUserError,
    reference_decisions,
)
from repro.service.http import HttpError, ServiceApp, serve
from repro.service.schemas import SchemaError, parse_event_batch, record_to_doc

__all__ = [
    "CausalityError",
    "FleetGateway",
    "HttpError",
    "SchemaError",
    "ServiceApp",
    "ServiceOverloadError",
    "UnknownUserError",
    "parse_event_batch",
    "record_to_doc",
    "reference_decisions",
    "serve",
]
