"""``python -m repro serve`` — run the fleet service (or load-drill it).

Two modes share one flag set:

* **serve** (default): bind the HTTP control plane and run until
  SIGTERM/SIGINT.  The ready line ``repro-service listening on
  HOST:PORT`` is printed (and flushed) once the socket is bound, so
  supervisors and tests can parse the actual port when ``--port 0``
  asked the kernel to pick one.  With ``--checkpoint PATH`` the signal
  path writes a final atomic checkpoint before the loop exits, and
  ``--restore PATH`` resumes from one byte-identically.
* **load** (``--load``): start the same server in-process on an
  ephemeral port, replay a generated cohort through
  :mod:`repro.service.loadgen`, print the sustained-throughput /
  tail-latency report, and exit non-zero if any request failed.
  ``--out`` writes the JSON report; ``--metrics-out`` snapshots
  ``GET /metrics`` to a file that ``python -m repro telemetry-report``
  can render.
"""

from __future__ import annotations

import argparse
import asyncio
import logging
import sys

from repro._util import write_json_atomic
from repro.core.netmaster import NetMasterConfig
from repro.service.schemas import SchemaError
from repro.stream.fleet import FleetConfig
from repro.stream.online_netmaster import CheckpointError

#: ``--quick`` load-mode overrides (mirrors the ``stream`` experiment's
#: quick shape: 7 training days keep the knapsack path exercised).
_QUICK_LOAD = {"users": 4, "days": 9, "train_days": 7}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro serve",
        description="Run the NetMaster fleet HTTP control plane.",
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument(
        "--port", type=int, default=8341,
        help="listen port; 0 lets the kernel pick (default: 8341)",
    )
    parser.add_argument(
        "--checkpoint", metavar="PATH", default=None,
        help="write the final (and on-demand POST /v1/checkpoint) "
        "service checkpoint here",
    )
    parser.add_argument(
        "--checkpoint-dir", metavar="DIR", default=None,
        help="allow POST /v1/checkpoint and /v1/restore bodies to name "
        "paths inside DIR (client-supplied paths are rejected with 403 "
        "without this)",
    )
    parser.add_argument(
        "--restore", metavar="PATH", default=None,
        help="load a service checkpoint before accepting traffic",
    )
    parser.add_argument(
        "--train-days", type=int, default=7, metavar="N",
        help="per-user training horizon before causal execution "
        "(default: 7)",
    )
    parser.add_argument(
        "--retention", type=int, default=None, metavar="N",
        help="retain at most N per-day decision records per user "
        "(older days are evicted into the savings aggregate; "
        "default: retain everything)",
    )
    parser.add_argument(
        "--checkpoint-every", type=int, default=None, metavar="N",
        help="round-trip each engine through its checkpoint codec every "
        "N executed days (the fleet's in-line self-check)",
    )
    parser.add_argument(
        "--event-budget", type=int, default=None, metavar="N",
        help="shed ingest batches whole once N events were accepted "
        "fleet-wide (HTTP 429)",
    )
    parser.add_argument(
        "--monitor", action="store_true",
        help="attach the per-user anomaly monitor (default thresholds); "
        "alerts surface on GET /v1/alerts and in /metrics counters",
    )
    parser.add_argument(
        "--max-body-bytes", type=int, default=8 << 20, metavar="N",
        help="reject request bodies larger than N bytes with HTTP 413",
    )
    parser.add_argument(
        "--load", action="store_true",
        help="load-drill an in-process server instead of serving",
    )
    parser.add_argument("--users", type=int, default=8, metavar="N",
                        help="[load] cohort size (default: 8)")
    parser.add_argument("--days", type=int, default=9, metavar="N",
                        help="[load] trace horizon per user (default: 9)")
    parser.add_argument("--concurrency", type=int, default=4, metavar="N",
                        help="[load] concurrent client connections")
    parser.add_argument("--batch-events", type=int, default=256, metavar="N",
                        help="[load] records per ingest batch")
    parser.add_argument("--seed", type=int, default=2014,
                        help="[load] cohort generator seed")
    parser.add_argument(
        "--quick", action="store_true",
        help="[load] shrunk drill (4 users, 9 days, 7 training days)",
    )
    parser.add_argument(
        "--out", metavar="PATH", default=None,
        help="[load] write the JSON load report to PATH",
    )
    parser.add_argument(
        "--metrics-out", metavar="PATH", default=None,
        help="[load] snapshot GET /metrics to PATH "
        "(telemetry-report can read it)",
    )
    parser.add_argument(
        "--log-level",
        choices=("debug", "info", "warning", "error", "critical"),
        default="info",
    )
    return parser


def _config(args: argparse.Namespace) -> FleetConfig:
    monitor = None
    if args.monitor:
        from repro.monitor import MonitorConfig

        monitor = MonitorConfig()
    return FleetConfig(
        train_days=args.train_days,
        retention_days=args.retention,
        checkpoint_every_days=args.checkpoint_every,
        event_budget=args.event_budget,
        monitor=monitor,
        # Determinism over graceful degradation: the service's decisions
        # must be byte-equal to the library drive regardless of wall
        # clock, so the latency circuit breaker stays out of the loop.
        netmaster=NetMasterConfig(enable_circuit_breaker=False),
    )


async def _run_load(args: argparse.Namespace) -> int:
    from repro.service.gateway import FleetGateway
    from repro.service.http import ServiceApp
    from repro.service.loadgen import LoadOptions, run_load

    if args.quick:
        args.users = _QUICK_LOAD["users"]
        args.days = _QUICK_LOAD["days"]
        args.train_days = _QUICK_LOAD["train_days"]
    app = ServiceApp(
        FleetGateway(_config(args)),
        checkpoint_path=args.checkpoint,
        max_body_bytes=args.max_body_bytes,
    )
    host, port = await app.start(args.host, 0)
    print(f"repro-service listening on {host}:{port}", flush=True)
    report = await run_load(
        LoadOptions(
            host=host,
            port=port,
            n_users=args.users,
            n_days=args.days,
            seed=args.seed,
            concurrency=args.concurrency,
            batch_events=args.batch_events,
        )
    )
    metrics_doc = None
    if args.metrics_out is not None:
        from repro.service.loadgen import _Client

        probe = _Client(host, port)
        try:
            _, metrics_doc = await probe.request("GET", "/metrics")
        finally:
            await probe.close()
    await app.shutdown(reason="load drill complete")
    print(
        f"service_load: {report['events']} events over "
        f"{report['requests']} requests in {report['elapsed_s']:.2f}s "
        f"({report['service_events_per_s']:.0f} events/s, "
        f"{report['errors']} errors)"
    )
    print(
        f"latency: p50 {report['latency_p50_s'] * 1e3:.2f}ms  "
        f"p95 {report['latency_p95_s'] * 1e3:.2f}ms  "
        f"p99 {report['latency_p99_s'] * 1e3:.2f}ms"
    )
    if args.out is not None:
        write_json_atomic(args.out, report, indent=1)
        print(f"load report written to {args.out}")
    if metrics_doc is not None:
        write_json_atomic(args.metrics_out, metrics_doc, indent=1)
        print(f"metrics snapshot written to {args.metrics_out}")
    return 1 if report["errors"] else 0


async def _run_serve(args: argparse.Namespace) -> int:
    from repro.service.http import ServeOptions, serve

    await serve(
        ServeOptions(
            host=args.host,
            port=args.port,
            checkpoint_path=args.checkpoint,
            checkpoint_dir=args.checkpoint_dir,
            restore_path=args.restore,
            max_body_bytes=args.max_body_bytes,
            config=_config(args),
            on_ready=lambda addr: print(
                f"repro-service listening on {addr[0]}:{addr[1]}", flush=True
            ),
        )
    )
    return 0


def main(argv: list[str] | None = None) -> int:
    """Entry point for ``python -m repro serve ...``."""
    args = build_parser().parse_args(argv)
    logging.basicConfig(format="%(levelname)s %(name)s: %(message)s")
    logging.getLogger().setLevel(getattr(logging, args.log_level.upper()))
    try:
        if args.load:
            return asyncio.run(_run_load(args))
        return asyncio.run(_run_serve(args))
    except KeyboardInterrupt:  # SIGINT before the handler is installed
        return 130
    # Bind failure, unreadable --restore path (surfaced as SchemaError by
    # FleetGateway.restore), corrupt checkpoint document, ...
    except (OSError, SchemaError, CheckpointError) as exc:
        print(f"serve: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    raise SystemExit(main())
