"""The endpoint table of the fleet service (the routes layer).

Routes own URL shape and HTTP semantics only; every gateway *mutation*
is funneled through :meth:`~repro.service.http.ServiceApp.call` onto
the single-writer worker queue, so handlers never touch engine state
concurrently.  Cheap read-only endpoints (health, metrics) read
directly — the event loop is single-threaded and the worker applies
mutations between, never during, handler steps.

The surface::

    POST /v1/users/{uid}/events     ingest one event batch (JSONL schema)
    POST /v1/users/{uid}/finish     close the stream at a known horizon
    GET  /v1/users/{uid}/decisions  retained per-day decision records
    GET  /v1/users/{uid}/savings    compacted savings aggregate
    GET  /v1/users                  every admitted user id
    GET  /v1/alerts                 monitor alert window + hold counters
    POST /v1/checkpoint             atomic whole-service checkpoint
    POST /v1/restore                load a checkpoint back in

Checkpoint/restore default to the server-configured ``--checkpoint``
path; a client-supplied ``{"path": ...}`` is honoured only inside the
operator-declared ``--checkpoint-dir`` (resolved-prefix checked, 403
otherwise) — never an arbitrary filesystem location.
    GET  /health                    liveness + fleet-wide counters
    GET  /metrics                   telemetry registry snapshot (JSON)
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import TYPE_CHECKING, Awaitable, Callable

from repro.service.http import HttpError, HttpRequest
from repro.service.schemas import parse_checkpoint, parse_event_batch, parse_finish
from repro.telemetry import metrics, tracer

if TYPE_CHECKING:  # import cycle: http builds the router at runtime
    from repro.service.http import ServiceApp

Handler = Callable[..., Awaitable[tuple[int, object]]]


@dataclass(frozen=True)
class Route:
    """One endpoint: a method, a compiled path pattern, a handler."""

    name: str
    method: str
    pattern: re.Pattern[str]
    handler: Handler


class Router:
    """Match ``(method, path)`` to a route; 404/405 on misses."""

    def __init__(self, routes: list[Route]) -> None:
        self.routes = routes

    def match(self, method: str, path: str) -> tuple[Route, dict[str, str]]:
        path_matched = False
        for route in self.routes:
            found = route.pattern.fullmatch(path)
            if found is None:
                continue
            path_matched = True
            if route.method == method:
                return route, found.groupdict()
        if path_matched:
            raise HttpError(405, "method-not-allowed",
                            f"{method} is not supported on {path}")
        raise HttpError(404, "not-found", f"no such route: {path}")


# ----------------------------------------------------------------------
# handlers
# ----------------------------------------------------------------------
async def ingest(app: "ServiceApp", request: HttpRequest, *, user_id: str):
    records, start_weekday = parse_event_batch(request.json())
    result = await app.call(
        lambda gw: gw.ingest(user_id, records, start_weekday=start_weekday)
    )
    return 200, result


async def finish(app: "ServiceApp", request: HttpRequest, *, user_id: str):
    n_days = parse_finish(request.json())
    return 200, await app.call(lambda gw: gw.finish(user_id, n_days))


async def decisions(app: "ServiceApp", request: HttpRequest, *, user_id: str):
    return 200, await app.call(lambda gw: gw.decisions(user_id))


async def savings(app: "ServiceApp", request: HttpRequest, *, user_id: str):
    return 200, await app.call(lambda gw: gw.savings(user_id))


async def users(app: "ServiceApp", request: HttpRequest):
    return 200, {"users": await app.call(lambda gw: gw.user_ids())}


async def alerts(app: "ServiceApp", request: HttpRequest):
    # Through the worker queue like the other gateway reads: the alert
    # ring mutates on ingest, so serialization keeps the window stable.
    return 200, await app.call(lambda gw: gw.alerts_doc())


def _checkpoint_target(app: "ServiceApp", request: HttpRequest) -> str:
    path = parse_checkpoint(request.json_optional())
    if path is None:
        if app.checkpoint_path is not None:
            return str(app.checkpoint_path)
        raise HttpError(
            400,
            "no-checkpoint-path",
            "no 'path' in the request and the server was started without "
            "--checkpoint",
        )
    # A client-supplied path is an arbitrary-filesystem-write (checkpoint)
    # and file-probe (restore) primitive for anyone who can reach the
    # port, so it is only honoured inside the operator-declared
    # --checkpoint-dir, after symlink/.. resolution.
    if app.checkpoint_dir is None:
        raise HttpError(
            403,
            "path-forbidden",
            "client-supplied checkpoint paths are disabled; start the "
            "server with --checkpoint-dir to allow them",
        )
    root = app.checkpoint_dir.resolve()
    resolved = (root / path).resolve()
    if root not in resolved.parents:
        raise HttpError(
            403,
            "path-forbidden",
            f"checkpoint path {path!r} escapes the checkpoint directory",
        )
    return str(resolved)


async def checkpoint(app: "ServiceApp", request: HttpRequest):
    target = _checkpoint_target(app, request)
    written = await app.call(lambda gw: gw.checkpoint(target))
    return 200, {"path": str(written), "bytes": written.stat().st_size}


async def restore(app: "ServiceApp", request: HttpRequest):
    target = _checkpoint_target(app, request)
    await app.call(lambda gw: gw.restore(target))
    return 200, {"path": target, **app.gateway.stats()}


async def health(app: "ServiceApp", request: HttpRequest):
    return 200, {
        "status": "stopping" if app.stopping else "ok",
        "queue_depth": app.queue_depth,
        **app.gateway.stats(),
    }


async def metrics_snapshot(app: "ServiceApp", request: HttpRequest):
    # Same document shape as the telemetry run directory's metrics.json,
    # so ``python -m repro telemetry-report <file>`` reads both.
    return 200, {
        "schema": 1,
        "overall": metrics().snapshot(),
        "dropped_spans": getattr(tracer(), "dropped", 0),
    }


def build_router() -> Router:
    """The service's route table (order matters only for readability)."""
    uid = r"(?P<user_id>[^/]+)"
    table = [
        ("ingest", "POST", rf"/v1/users/{uid}/events", ingest),
        ("finish", "POST", rf"/v1/users/{uid}/finish", finish),
        ("decisions", "GET", rf"/v1/users/{uid}/decisions", decisions),
        ("savings", "GET", rf"/v1/users/{uid}/savings", savings),
        ("users", "GET", r"/v1/users", users),
        ("alerts", "GET", r"/v1/alerts", alerts),
        ("checkpoint", "POST", r"/v1/checkpoint", checkpoint),
        ("restore", "POST", r"/v1/restore", restore),
        ("health", "GET", r"/health", health),
        ("metrics", "GET", r"/metrics", metrics_snapshot),
    ]
    return Router(
        [Route(name, method, re.compile(pattern), handler)
         for name, method, pattern, handler in table]
    )
