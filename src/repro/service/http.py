"""Stdlib-only asyncio HTTP/1.1 front end of the fleet service.

No web framework — the repo is numpy-only — so this module implements
the minimum honest subset of HTTP/1.1 the control plane needs: request
line + headers + ``Content-Length`` bodies, keep-alive connections,
JSON in and JSON out.  Three design points carry the subsystem:

* **single writer** — the fleet engine is synchronous and admits one
  mutation at a time, so :class:`ServiceApp` owns it behind one worker
  task fed by an :class:`asyncio.Queue`.  Handlers stay non-blocking
  (they ``await`` a future), requests are applied in arrival order, and
  the engine never sees concurrency — which is what makes decisions
  byte-equal to driving the library directly;
* **observable by construction** — every dispatch bumps a per-route
  request counter and feeds a micro-unit latency histogram in the
  process :func:`~repro.telemetry.metrics` registry, which is exactly
  what ``GET /metrics`` snapshots back out;
* **graceful exit** — :func:`serve` installs SIGTERM/SIGINT handlers;
  shutdown stops accepting, drains the worker queue, and writes a final
  checkpoint through the atomic :meth:`~repro.service.gateway.
  FleetGateway.checkpoint` path before the event loop exits.
"""

from __future__ import annotations

import asyncio
import json
import logging
import signal
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Awaitable, Callable

from repro.service.gateway import (
    CausalityError,
    FleetGateway,
    ServiceOverloadError,
    UnknownUserError,
)
from repro.service.schemas import SchemaError
from repro.stream.online_netmaster import CheckpointError
from repro.telemetry import metrics

logger = logging.getLogger("repro.service")

#: Latency histogram bucket bounds (seconds): request handling is
#: sub-millisecond to tens of ms, far below the seconds-flavoured
#: telemetry defaults.  Sums still accumulate in exact micro-units.
LATENCY_BUCKETS: tuple[float, ...] = (
    0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01,
    0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 5.0,
)

#: Default cap on request bodies (413 past it).
DEFAULT_MAX_BODY_BYTES = 8 << 20

#: Reason phrases for every status the service emits.
_REASONS = {
    200: "OK",
    400: "Bad Request",
    403: "Forbidden",
    404: "Not Found",
    405: "Method Not Allowed",
    409: "Conflict",
    413: "Payload Too Large",
    429: "Too Many Requests",
    500: "Internal Server Error",
    503: "Service Unavailable",
}


class HttpError(Exception):
    """A request that maps to a non-200 response.

    ``code`` is the machine-readable error tag clients branch on;
    ``close`` forces the connection shut after the response (used when
    the request stream cannot be trusted further, e.g. an unread
    oversized body).
    """

    def __init__(
        self, status: int, code: str, message: str, *, close: bool = False
    ) -> None:
        super().__init__(message)
        self.status = status
        self.code = code
        self.message = message
        self.close = close

    def doc(self) -> dict:
        """The JSON error body."""
        return {"error": {"code": self.code, "message": self.message}}


@dataclass(slots=True)
class HttpRequest:
    """One parsed request."""

    method: str
    path: str
    query: str
    headers: dict[str, str]
    body: bytes = b""

    def json(self) -> object:
        """The body parsed as JSON; 400 on anything malformed."""
        if not self.body:
            raise HttpError(400, "bad-json", "request body is empty, expected JSON")
        try:
            return json.loads(self.body)
        except json.JSONDecodeError as exc:
            raise HttpError(400, "bad-json", f"request body is not JSON: {exc}")

    def json_optional(self) -> object | None:
        """The body parsed as JSON, or ``None`` when there is no body."""
        if not self.body:
            return None
        return self.json()

    @property
    def wants_close(self) -> bool:
        return self.headers.get("connection", "").lower() == "close"


async def read_request(
    reader: asyncio.StreamReader, *, max_body_bytes: int
) -> HttpRequest | None:
    """Parse one request off the stream; ``None`` on a clean EOF."""
    try:
        line = await reader.readline()
    except (ConnectionError, ValueError):
        return None
    if not line:
        return None
    parts = line.decode("latin-1", "replace").split()
    if len(parts) != 3 or not parts[2].startswith("HTTP/"):
        raise HttpError(
            400, "bad-request-line", f"malformed request line: {line!r}", close=True
        )
    method, target = parts[0].upper(), parts[1]
    path, _, query = target.partition("?")
    headers: dict[str, str] = {}
    while True:
        try:
            raw = await reader.readline()
        except ValueError as exc:
            raise HttpError(400, "bad-header", f"oversized header line: {exc}",
                            close=True)
        if raw in (b"\r\n", b"\n", b""):
            break
        name, sep, value = raw.decode("latin-1", "replace").partition(":")
        if not sep:
            raise HttpError(400, "bad-header", f"malformed header: {raw!r}", close=True)
        name = name.strip().lower()
        # Duplicate Content-Length headers are a request-smuggling vector
        # (last-wins here could disagree with a proxy's first-wins), so
        # they are rejected outright rather than reconciled.
        if name == "content-length" and name in headers:
            raise HttpError(
                400, "bad-header", "duplicate Content-Length header", close=True
            )
        headers[name] = value.strip()
        if len(headers) > 128:
            raise HttpError(400, "bad-header", "too many headers", close=True)
    if "transfer-encoding" in headers:
        # This parser only speaks Content-Length bodies.  Treating a
        # chunked body as zero-length would desync the keep-alive stream
        # (the payload would parse as pipelined requests), so refuse it.
        raise HttpError(
            400,
            "bad-header",
            "Transfer-Encoding is not supported; send a Content-Length body",
            close=True,
        )
    raw_length = headers.get("content-length", "0") or "0"
    try:
        length = int(raw_length)
    except ValueError:
        raise HttpError(
            400, "bad-header", f"invalid Content-Length: {raw_length!r}", close=True
        )
    if length < 0:
        raise HttpError(
            400, "bad-header", f"invalid Content-Length: {raw_length!r}", close=True
        )
    if length > max_body_bytes:
        # The body is never read — the connection cannot be reused.
        raise HttpError(
            413,
            "body-too-large",
            f"request body of {length} bytes exceeds the "
            f"{max_body_bytes}-byte cap",
            close=True,
        )
    body = b""
    if length:
        try:
            body = await reader.readexactly(length)
        except asyncio.IncompleteReadError:
            return None
    return HttpRequest(method=method, path=path, query=query, headers=headers,
                       body=body)


def render_response(status: int, doc: object, *, close: bool) -> bytes:
    """One full HTTP/1.1 response as bytes."""
    payload = (json.dumps(doc) + "\n").encode("utf-8")
    head = (
        f"HTTP/1.1 {status} {_REASONS.get(status, 'Unknown')}\r\n"
        f"Content-Type: application/json\r\n"
        f"Content-Length: {len(payload)}\r\n"
        f"Connection: {'close' if close else 'keep-alive'}\r\n"
        "\r\n"
    )
    return head.encode("latin-1") + payload


class ServiceApp:
    """The running service: gateway + single-writer queue + listener."""

    def __init__(
        self,
        gateway: FleetGateway | None = None,
        *,
        checkpoint_path: str | Path | None = None,
        checkpoint_dir: str | Path | None = None,
        max_body_bytes: int = DEFAULT_MAX_BODY_BYTES,
    ) -> None:
        self.gateway = gateway or FleetGateway()
        self.checkpoint_path = (
            Path(checkpoint_path) if checkpoint_path is not None else None
        )
        #: The only directory client-supplied checkpoint/restore paths
        #: may land in (resolved-prefix checked); ``None`` disables
        #: client paths entirely — they are a filesystem write/probe
        #: primitive for anyone who can reach the port otherwise.
        self.checkpoint_dir = (
            Path(checkpoint_dir) if checkpoint_dir is not None else None
        )
        self.max_body_bytes = max_body_bytes
        # Imported here, not at module top: routes needs HttpError from
        # this module, so the dependency must point routes -> http only.
        from repro.service import routes as routes_mod

        self.router = routes_mod.build_router()
        self.stopping = False
        self.stop_event: asyncio.Event | None = None
        self._queue: asyncio.Queue | None = None
        self._worker: asyncio.Task | None = None
        self._server: asyncio.base_events.Server | None = None
        self._writers: set[asyncio.StreamWriter] = set()
        self.address: tuple[str, int] | None = None

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    async def start(self, host: str = "127.0.0.1", port: int = 0) -> tuple[str, int]:
        """Bind the listener and start the single-writer worker task."""
        self.stop_event = asyncio.Event()
        self._queue = asyncio.Queue()
        self._worker = asyncio.create_task(self._worker_loop(), name="fleet-writer")
        self._server = await asyncio.start_server(self._handle_connection, host, port)
        sock = self._server.sockets[0].getsockname()
        self.address = (sock[0], sock[1])
        logger.info("service listening on %s:%d", *self.address)
        return self.address

    def request_stop(self) -> None:
        """Ask :func:`serve` to exit (signal handlers land here)."""
        if self.stop_event is not None:
            self.stop_event.set()

    async def shutdown(self, *, reason: str = "stop") -> None:
        """Stop accepting, drop connections, drain the queue, checkpoint."""
        if self.stopping:
            return
        self.stopping = True
        logger.info("service shutting down (%s)", reason)
        if self._server is not None:
            self._server.close()
        # Close every live connection BEFORE awaiting wait_closed():
        # since Python 3.12.1 wait_closed() blocks until all connection
        # handlers return, and an idle keep-alive handler sits in
        # readline() until its transport dies — waiting first would
        # deadlock shutdown and lose the final checkpoint.  Closing the
        # transport EOFs the reader; mutations already enqueued by
        # in-flight handlers still apply via the queue drain below.
        for writer in list(self._writers):
            writer.close()
        if self._queue is not None:
            await self._queue.join()
        if self._worker is not None:
            self._worker.cancel()
            try:
                await self._worker
            except asyncio.CancelledError:
                pass
        if self._server is not None:
            try:
                await asyncio.wait_for(self._server.wait_closed(), timeout=5.0)
            except asyncio.TimeoutError:
                # Never let a straggling handler hold the checkpoint hostage.
                logger.warning("connection handlers did not exit within 5s")
        if self.checkpoint_path is not None:
            written = self.gateway.checkpoint(self.checkpoint_path)
            logger.info(
                "final checkpoint written to %s (%d users, %d events)",
                written,
                *(lambda s: (s["users"], s["events"]))(self.gateway.stats()),
            )
        metrics().inc("service.shutdowns")

    @property
    def queue_depth(self) -> int:
        """Mutations waiting for the single writer."""
        return self._queue.qsize() if self._queue is not None else 0

    # ------------------------------------------------------------------
    # the single writer
    # ------------------------------------------------------------------
    async def _worker_loop(self) -> None:
        assert self._queue is not None
        while True:
            fn, future = await self._queue.get()
            try:
                if not future.cancelled():
                    future.set_result(fn(self.gateway))
            except Exception as exc:  # handed back to the waiting handler
                if not future.cancelled():
                    future.set_exception(exc)
            finally:
                self._queue.task_done()

    def call(self, fn: Callable[[FleetGateway], object]) -> Awaitable[object]:
        """Run ``fn(gateway)`` on the single-writer task, in queue order."""
        assert self._queue is not None, "ServiceApp.start() was never awaited"
        future: asyncio.Future = asyncio.get_running_loop().create_future()
        self._queue.put_nowait((fn, future))
        return future

    # ------------------------------------------------------------------
    # connections
    # ------------------------------------------------------------------
    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self._writers.add(writer)
        try:
            while True:
                try:
                    request = await read_request(
                        reader, max_body_bytes=self.max_body_bytes
                    )
                except HttpError as exc:
                    metrics().inc("service.requests")
                    metrics().inc(f"service.status.{exc.status}")
                    await self._write(writer, exc.status, exc.doc(), close=True)
                    return
                if request is None:
                    return
                status, doc, close = await self._dispatch(request)
                close = close or request.wants_close or self.stopping
                try:
                    await self._write(writer, status, doc, close=close)
                except (ConnectionError, RuntimeError):
                    return
                if close:
                    return
        finally:
            self._writers.discard(writer)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, RuntimeError):
                pass

    async def _write(
        self, writer: asyncio.StreamWriter, status: int, doc: object, *, close: bool
    ) -> None:
        writer.write(render_response(status, doc, close=close))
        await writer.drain()

    async def _dispatch(self, request: HttpRequest) -> tuple[int, object, bool]:
        """Route one request; returns ``(status, body_doc, close)``."""
        registry = metrics()
        registry.inc("service.requests")
        start = time.perf_counter()
        route = None
        try:
            route, params = self.router.match(request.method, request.path)
            status, doc = await route.handler(self, request, **params)
            return status, doc, False
        except HttpError as exc:
            return exc.status, exc.doc(), exc.close
        except SchemaError as exc:
            return 400, HttpError(400, "bad-request", str(exc)).doc(), False
        except UnknownUserError as exc:
            return 404, HttpError(404, "unknown-user", str(exc)).doc(), False
        except CausalityError as exc:
            return 409, HttpError(409, "causality", str(exc)).doc(), False
        except ServiceOverloadError as exc:
            return 429, HttpError(429, "overloaded", str(exc)).doc(), False
        except CheckpointError as exc:
            return 409, HttpError(409, "bad-checkpoint", str(exc)).doc(), False
        except Exception:
            logger.exception(
                "unhandled error serving %s %s", request.method, request.path
            )
            return 500, HttpError(500, "internal", "internal server error").doc(), True
        finally:
            elapsed = time.perf_counter() - start
            name = route.name if route is not None else "unrouted"
            registry.inc(f"service.req.{name}")
            registry.observe(f"service.latency_s.{name}", elapsed, LATENCY_BUCKETS)


@dataclass
class ServeOptions:
    """Knobs of a :func:`serve` run (the CLI maps straight onto this)."""

    host: str = "127.0.0.1"
    port: int = 8341
    checkpoint_path: str | Path | None = None
    checkpoint_dir: str | Path | None = None
    restore_path: str | Path | None = None
    max_body_bytes: int = DEFAULT_MAX_BODY_BYTES
    config: object | None = None  # FleetConfig
    install_signal_handlers: bool = True
    #: Called with the bound (host, port) once the listener is up.
    on_ready: Callable[[tuple[str, int]], None] | None = field(default=None)


async def serve(options: ServeOptions | None = None) -> ServiceApp:
    """Run the service until SIGTERM/SIGINT (or a programmatic stop).

    The final act of a signal-driven exit is an atomic checkpoint
    through :meth:`FleetGateway.checkpoint` (when a checkpoint path is
    configured), so a restarted server resumes byte-identically.
    Returns the (stopped) app, mainly for tests.
    """
    options = options or ServeOptions()
    gateway = FleetGateway(options.config)
    if options.restore_path is not None:
        gateway.restore(options.restore_path)
        logger.info("state restored from %s", options.restore_path)
    app = ServiceApp(
        gateway,
        checkpoint_path=options.checkpoint_path,
        checkpoint_dir=options.checkpoint_dir,
        max_body_bytes=options.max_body_bytes,
    )
    await app.start(options.host, options.port)
    loop = asyncio.get_running_loop()
    installed: list[signal.Signals] = []
    if options.install_signal_handlers:
        for sig in (signal.SIGINT, signal.SIGTERM):
            try:
                loop.add_signal_handler(sig, app.request_stop)
                installed.append(sig)
            except (NotImplementedError, RuntimeError):  # non-unix loops
                pass
    if options.on_ready is not None:
        options.on_ready(app.address)
    try:
        assert app.stop_event is not None
        await app.stop_event.wait()
        await app.shutdown(reason="signal")
    finally:
        for sig in installed:
            loop.remove_signal_handler(sig)
    return app
