"""The service layer: a single-writer, multi-tenant session over engines.

:class:`FleetGateway` is what the HTTP worker task owns.  It is fully
synchronous — one call at a time, in arrival order — which is exactly
the discipline :class:`~repro.stream.fleet.FleetService` imposes by
construction, so every decision it makes is byte-equal to driving the
library directly.  Per user it keeps:

* one :class:`~repro.stream.online_netmaster.OnlineNetMaster` engine
  (the causal scheduler, checkpoint-exact);
* the compacted scalar aggregate
  (:class:`~repro.stream.fleet.SummaryAccumulator` plus the naive
  always-on baseline totals) — this is what the savings endpoint reads,
  and it covers *every* closed day regardless of retention;
* a bounded window of per-day decision records:
  :attr:`~repro.stream.fleet.FleetConfig.retention_days` caps how many
  day documents survive per user.  Older days are evicted right after
  they close — the service-lifetime answer to the fleet's
  summaries-accumulate-forever RSS leak — and only their scalar residue
  remains in the aggregate.

The ingest path validates a batch's causal order *before* touching the
engine, so a rejected out-of-order batch leaves no partial state behind
(:class:`CausalityError`, HTTP 409).  Checkpoints serialize the whole
gateway — engines, aggregates, retained decisions — to one JSON
document written through :func:`repro._util.write_json_atomic`, and a
restored gateway continues byte-identically.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro._util import peak_rss_bytes, write_json_atomic
from repro.baselines.naive import NaivePolicy
from repro.evaluation.metrics import measure_outcome
from repro.monitor import MonitorHub, RingAlertSink, UserMonitor, signal_of
from repro.service.schemas import SchemaError, decision_doc, saving_of
from repro.stream.fleet import FleetConfig, SummaryAccumulator
from repro.stream.ingest import event_time, stream_trace
from repro.stream.online_netmaster import (
    CheckpointError,
    CompletedDay,
    OnlineNetMaster,
)
from repro.telemetry import metrics
from repro.traces.events import Trace
from repro.traces.io import TraceRecord

#: Schema version of the gateway checkpoint document.
_SERVICE_CHECKPOINT_FORMAT = 1


class UnknownUserError(KeyError):
    """A read endpoint named a user the service has never seen (404)."""

    def __str__(self) -> str:  # KeyError quotes its arg; keep it readable
        return self.args[0] if self.args else ""


class CausalityError(ValueError):
    """An event batch would move a user's stream backwards (409)."""


class ServiceOverloadError(RuntimeError):
    """The fleet-wide event budget is exhausted; batch shed whole (429)."""


class _UserSession:
    """One tenant's serving state (engine + compacted aggregate + window)."""

    __slots__ = ("engine", "acc", "naive_energy_j", "naive_radio_on_s",
                 "decisions", "evicted_days", "monitor")

    def __init__(self, engine: OnlineNetMaster) -> None:
        self.engine = engine
        self.acc = SummaryAccumulator()
        self.naive_energy_j = 0.0
        self.naive_radio_on_s = 0.0
        self.decisions: list[dict] = []
        self.evicted_days = 0
        #: Per-user anomaly monitor; ``None`` unless the fleet config
        #: carries a :class:`~repro.monitor.detectors.MonitorConfig`.
        self.monitor: UserMonitor | None = None


class FleetGateway:
    """Synchronous multi-user service core (the single writer)."""

    def __init__(self, config: FleetConfig | None = None) -> None:
        self.config = config or FleetConfig()
        self._users: dict[str, _UserSession] = {}
        #: Total events accepted across all users (the budget meter).
        self.events_total = 0
        # Pre-register the fleet-scale instruments so /metrics exposes
        # them from the first scrape, not only after a batch lands.
        # Counters surface on creation; gauges only once written.
        registry = metrics()
        registry.counter("fleet.summaries_spilled")
        registry.counter("monitor.alerts")
        registry.counter("monitor.quarantined_users")
        registry.counter("monitor.sink_errors")
        registry.set_gauge("fleet.active_users", 0)
        rss = peak_rss_bytes()
        if rss is not None:
            registry.set_gauge("fleet.peak_rss_bytes", rss)
        #: Alert fan-out: the ring is what ``GET /v1/alerts`` reads; more
        #: sinks can be attached by the embedding process via ``hub``.
        self.alert_ring = RingAlertSink(capacity=1024)
        self.hub = MonitorHub([self.alert_ring])

    # ------------------------------------------------------------------
    # sessions
    # ------------------------------------------------------------------
    def ensure_user(self, user_id: str, *, start_weekday: int = 0) -> _UserSession:
        """The session for ``user_id``, created on first ingest."""
        session = self._users.get(user_id)
        if session is None:
            config = self.config
            engine = OnlineNetMaster(
                user_id,
                config=config.netmaster,
                start_weekday=start_weekday,
                train_days=config.train_days,
                update_model=config.update_model,
                window_days=config.window_days,
                decay=config.decay,
            )
            session = self._users[user_id] = _UserSession(engine)
            if config.monitor is not None:
                session.monitor = UserMonitor(user_id, config.monitor)
            registry = metrics()
            registry.inc("service.users_created")
            # Sessions are never dropped, so the live count is also the
            # gateway's high-water mark.
            registry.set_gauge("fleet.active_users", len(self._users))
        return session

    def session(self, user_id: str) -> _UserSession:
        """The existing session for ``user_id``; raises on strangers."""
        session = self._users.get(user_id)
        if session is None:
            raise UnknownUserError(f"unknown user: {user_id!r}")
        return session

    def user_ids(self) -> list[str]:
        """Every user the service holds state for, in admission order."""
        return list(self._users)

    # ------------------------------------------------------------------
    # ingest
    # ------------------------------------------------------------------
    def ingest(
        self,
        user_id: str,
        records: list[TraceRecord],
        *,
        start_weekday: int = 0,
    ) -> dict:
        """Fold one event batch into a user's stream.

        The batch is validated against the causal order *before* any
        record reaches the engine: an out-of-order batch raises
        :class:`CausalityError` and leaves the session untouched.
        Records are then observed one by one — days close exactly as in
        :func:`repro.stream.fleet.stream_one_user`, including the
        ``checkpoint_every_days`` in-line round-trip cadence — so the
        decisions are byte-equal to the library drive.
        """
        budget = self.config.event_budget
        if budget is not None and self.events_total >= budget:
            metrics().inc("service.shed_batches")
            raise ServiceOverloadError(
                f"event budget exhausted ({self.events_total} >= {budget}); "
                "batch shed whole"
            )
        session = self.ensure_user(user_id, start_weekday=start_weekday)
        engine = session.engine
        prev = engine.last_time
        for i, record in enumerate(records):
            t = event_time(record)
            if t < prev:
                raise CausalityError(
                    f"stream went backwards: events[{i}] at t={t} after "
                    f"t={prev}; batch rejected whole"
                )
            prev = t
        every = self.config.checkpoint_every_days
        days_closed = 0
        for record in records:
            engine.observe(record)
            done = engine.drain()
            if done:
                days_closed += self._absorb(session, done)
                if every and engine.days_executed % every == 0:
                    session.engine = engine = OnlineNetMaster.from_json(
                        engine.to_json()
                    )
                    session.acc.checkpoints += 1
        self.events_total += len(records)
        metrics().inc("service.events_ingested", len(records))
        return {
            "user_id": user_id,
            "accepted": len(records),
            "days_closed": days_closed,
            "day": engine.day,
            "events": engine.events,
        }

    def finish(self, user_id: str, n_days: int) -> dict:
        """Close a user's stream through day ``n_days`` (horizon known).

        Mirrors the ``engine.finish`` tail of
        :func:`~repro.stream.fleet.stream_one_user`: remaining days are
        closed and priced with no checkpoint cadence applied.
        """
        session = self.session(user_id)
        days_closed = self._absorb(session, session.engine.finish(n_days))
        return {
            "user_id": user_id,
            "n_days": n_days,
            "days_closed": days_closed,
            "days_executed": session.engine.days_executed,
        }

    def _absorb(self, session: _UserSession, completed: list[CompletedDay]) -> int:
        """Price completed days, fold the aggregate, retain the window."""
        power = self.config.netmaster.power
        retention = self.config.retention_days
        acc = session.acc
        monitor = session.monitor
        drift_total = session.engine.habits.drift_alerts
        for day in completed:
            priced = measure_outcome(day.outcome(), power, day.trace)
            naive = measure_outcome(
                NaivePolicy().execute_day(day.trace), power, day.trace
            )
            # Same fold order and arithmetic as SummaryAccumulator.consume,
            # so the aggregate equals the library drive bit for bit.
            acc.energy_j += priced.energy_j
            acc.radio_on_s += priced.radio_on_s
            acc.interrupts += priced.interrupts
            acc.user_interactions += priced.user_interactions
            acc.deferred += priced.deferred
            session.naive_energy_j += naive.energy_j
            session.naive_radio_on_s += naive.radio_on_s
            session.decisions.append(decision_doc(day, priced, naive))
            if monitor is not None:
                # The naive pricing is already on hand here, so the
                # signal assembly costs no extra policy run.
                alerts = monitor.feed(
                    session.engine,
                    [signal_of(day, priced, naive, drift_alerts_total=drift_total)],
                )
                if alerts:
                    self.hub.publish_many(alerts)
            metrics().inc("service.days_closed")
            if retention is not None:
                while len(session.decisions) > retention:
                    session.decisions.pop(0)
                    session.evicted_days += 1
                    metrics().inc("service.days_evicted")
        return len(completed)

    # ------------------------------------------------------------------
    # reads
    # ------------------------------------------------------------------
    def decisions(self, user_id: str) -> dict:
        """The retained per-day decision records of one user."""
        session = self.session(user_id)
        return {
            "user_id": user_id,
            "days_executed": session.engine.days_executed,
            "evicted_days": session.evicted_days,
            "retained": [dict(doc) for doc in session.decisions],
        }

    def savings(self, user_id: str) -> dict:
        """One user's energy-savings summary, read from the compacted
        aggregate — complete even when retention evicted the day records."""
        session = self.session(user_id)
        engine = session.engine
        acc = session.acc
        return {
            "user_id": user_id,
            "events": engine.events,
            "day": engine.day,
            "days_executed": engine.days_executed,
            "degraded_days": engine.days_degraded,
            "drift_alerts": engine.habits.drift_alerts,
            "retained_days": len(session.decisions),
            "evicted_days": session.evicted_days,
            "checkpoints": acc.checkpoints,
            "energy_j": acc.energy_j,
            "naive_energy_j": session.naive_energy_j,
            "saving": saving_of(acc.energy_j, session.naive_energy_j),
            "radio_on_s": acc.radio_on_s,
            "naive_radio_on_s": session.naive_radio_on_s,
            "interrupts": acc.interrupts,
            "user_interactions": acc.user_interactions,
            "interrupt_ratio": (
                acc.interrupts / acc.user_interactions
                if acc.user_interactions
                else 0.0
            ),
            "deferred": acc.deferred,
        }

    def alerts_doc(self) -> dict:
        """The monitoring read: published alerts plus hub/hold counters.

        Served even when monitoring is off (``monitoring: false``, empty
        window) so the endpoint's shape is stable for scrapers.  The
        ``alerts`` list is the ring window — the most recent 1024
        fleet-wide — while ``published`` counts everything ever fanned
        out.
        """
        return {
            "monitoring": self.config.monitor is not None,
            "published": self.hub.published,
            "by_kind": dict(self.hub.by_kind),
            "sink_errors": self.hub.sink_errors,
            "quarantined_users": sum(
                1
                for s in self._users.values()
                if s.monitor is not None and s.monitor.active
            ),
            "alerts": [a.as_dict() for a in self.alert_ring.alerts()],
        }

    def stats(self) -> dict:
        """Fleet-wide counters for the health endpoint (cheap, read-only)."""
        return {
            "users": len(self._users),
            "events": self.events_total,
            "days_executed": sum(
                s.engine.days_executed for s in self._users.values()
            ),
            "retained_decisions": sum(
                len(s.decisions) for s in self._users.values()
            ),
            "evicted_days": sum(s.evicted_days for s in self._users.values()),
        }

    # ------------------------------------------------------------------
    # checkpoint / restore
    # ------------------------------------------------------------------
    def state_dict(self) -> dict:
        """The whole gateway as one JSON-safe document (bit-exact).

        The per-user ``monitor`` key appears only when a monitor is
        attached, so an unmonitored gateway's checkpoint bytes are
        unchanged by this feature existing.
        """
        users = {}
        for user_id, session in self._users.items():
            doc = {
                "engine": session.engine.state_dict(),
                "acc": session.acc.state_dict(),
                "naive_energy_j": session.naive_energy_j,
                "naive_radio_on_s": session.naive_radio_on_s,
                "decisions": session.decisions,
                "evicted_days": session.evicted_days,
            }
            if session.monitor is not None:
                doc["monitor"] = session.monitor.state_dict()
            users[user_id] = doc
        return {
            "format": _SERVICE_CHECKPOINT_FORMAT,
            "events_total": self.events_total,
            "users": users,
        }

    def load_state(self, state: object) -> None:
        """Replace this gateway's sessions with a checkpointed state."""
        if not isinstance(state, dict):
            raise CheckpointError(
                f"service checkpoint is not a JSON object "
                f"(got {type(state).__name__})"
            )
        fmt = state.get("format")
        if fmt != _SERVICE_CHECKPOINT_FORMAT:
            raise CheckpointError(
                f"unsupported service checkpoint format: {fmt!r} "
                f"(this build reads format {_SERVICE_CHECKPOINT_FORMAT})"
            )
        users: dict[str, _UserSession] = {}
        try:
            for user_id, doc in state["users"].items():
                session = _UserSession(OnlineNetMaster.from_state(doc["engine"]))
                session.acc = SummaryAccumulator.from_state(doc["acc"])
                session.naive_energy_j = float(doc["naive_energy_j"])
                session.naive_radio_on_s = float(doc["naive_radio_on_s"])
                session.decisions = [dict(d) for d in doc["decisions"]]
                session.evicted_days = int(doc["evicted_days"])
                monitor_state = doc.get("monitor")
                if monitor_state is not None:
                    session.monitor = UserMonitor.load_state(
                        monitor_state,
                        user_id=str(user_id),
                        config=self.config.monitor,
                    )
                users[str(user_id)] = session
            events_total = int(state["events_total"])
        except CheckpointError:
            raise
        except (AttributeError, KeyError, TypeError, ValueError) as exc:
            raise CheckpointError(
                f"corrupt service checkpoint: {type(exc).__name__}: {exc}"
            ) from exc
        self._users = users
        self.events_total = events_total

    def checkpoint(self, path: str | Path) -> Path:
        """Persist the gateway atomically (temp file + ``os.replace``)."""
        metrics().inc("service.checkpoints")
        return write_json_atomic(path, self.state_dict(), indent=1)

    def restore(self, path: str | Path) -> None:
        """Load a :meth:`checkpoint` document back into this gateway."""
        try:
            state = json.loads(Path(path).read_text(encoding="utf-8"))
        except OSError as exc:
            raise SchemaError(
                f"cannot read service checkpoint {path}: {exc}"
            ) from exc
        except json.JSONDecodeError as exc:
            raise CheckpointError(
                f"service checkpoint {path} is truncated or corrupt: {exc}"
            ) from exc
        self.load_state(state)
        metrics().inc("service.restores")


def reference_decisions(trace: Trace, *, config: FleetConfig | None = None) -> dict:
    """Drive the library directly and emit the service's wire documents.

    This is the parity oracle: one engine streamed record by record
    (exactly :func:`repro.stream.fleet.stream_one_user`'s loop shape,
    checkpoint cadence included), every closed day priced and rendered
    through the same :func:`~repro.service.schemas.decision_doc`.
    Decisions served over HTTP must equal this output byte for byte.
    """
    gateway = FleetGateway(config)
    records = list(stream_trace(trace))
    gateway.ingest(trace.user_id, records, start_weekday=trace.start_weekday)
    gateway.finish(trace.user_id, trace.n_days)
    return {
        "decisions": gateway.decisions(trace.user_id),
        "savings": gateway.savings(trace.user_id),
    }
