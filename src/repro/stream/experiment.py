"""The streaming-fleet experiment behind ``python -m repro stream``.

Drives a fleet of randomized personas through the online engine —
every decision causal, checkpoints exercised in-line — then replays the
same users' held-out days through the offline
:class:`~repro.baselines.netmaster_policy.NetMasterPolicy` (full-history
training, the Section-VI harness) and a naive baseline.  The comparison
answers the question the offline figures cannot: how much of NetMaster's
saving survives when the middleware only ever sees the past?

The default fleet — 72 users × 14 days — streams 1 008 user-days; the
measured throughput (``events_per_s``) is the serving-shaped headline
tracked in ``BENCH_perf.json``.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.baselines import NaivePolicy, NetMasterPolicy
from repro.evaluation.experiments import split_history
from repro.runtime.parallel import PolicyTask, run_policy_tasks
from repro.stream.fleet import (
    FleetConfig,
    FleetService,
    FleetUserSpec,
    _spec_trace,
)
from repro.stream.specgen import iter_fleet_specs
from repro.telemetry import tracer

DEFAULT_SEED = 2014
DEFAULT_USERS = 72
DEFAULT_DAYS = 14
DEFAULT_TRAIN_DAYS = 10


@dataclass(frozen=True)
class StreamResult:
    """Everything the streaming-fleet experiment measured."""

    n_users: int
    n_days: int
    train_days: int
    users_streamed: int
    shed_users: int
    user_days_streamed: int
    days_executed: int
    events: int
    elapsed_s: float
    events_per_s: float
    checkpoints: int
    drift_alerts: int
    degraded_days: int
    naive_energy_j: float
    online_energy_j: float
    offline_energy_j: float
    online_saving: float
    offline_saving: float
    online_interrupt_ratio: float
    offline_interrupt_ratio: float

    @property
    def online_offline_gap(self) -> float:
        """Saving the causality constraint costs vs offline training."""
        return self.offline_saving - self.online_saving


def fleet_specs(
    *, seed: int = DEFAULT_SEED, n_users: int = DEFAULT_USERS, n_days: int = DEFAULT_DAYS
) -> list[FleetUserSpec]:
    """Deterministic persona specs for a fleet of ``n_users``.

    The eager form of :func:`repro.stream.specgen.iter_fleet_specs` —
    spec for spec identical; use the iterator for cohorts too large to
    hold.
    """
    return list(iter_fleet_specs(seed=seed, n_users=n_users, n_days=n_days))


def stream_experiment(
    *,
    seed: int = DEFAULT_SEED,
    n_users: int = DEFAULT_USERS,
    n_days: int = DEFAULT_DAYS,
    train_days: int = DEFAULT_TRAIN_DAYS,
    jobs: int = 1,
    batch_size: int = 16,
    checkpoint_every_days: int | None = 2,
    event_budget: int | None = None,
    retain_summaries: bool = True,
) -> StreamResult:
    """Streaming fleet: causal online NetMaster vs the offline harness.

    Every fleet-side statistic is read off the O(1)
    :class:`~repro.stream.rollup.FleetRollup` counters, so the
    experiment also runs with ``retain_summaries=False`` (constant-RSS
    fleets that keep no per-user summary list).
    """
    config = FleetConfig(
        train_days=train_days,
        batch_size=batch_size,
        checkpoint_every_days=checkpoint_every_days,
        event_budget=event_budget,
        retain_summaries=retain_summaries,
    )
    specs = fleet_specs(seed=seed, n_users=n_users, n_days=n_days)
    trc = tracer()
    with trc.span("fleet-stream", "stream", users=n_users, days=n_days):
        fleet = FleetService(config).run(specs, jobs=jobs)

    # Offline comparison on the users that actually streamed: NetMaster
    # trained on the full history prefix (the Fig. 7 harness) and the
    # naive always-on baseline, over the same held-out days the online
    # engine executed.
    power = config.netmaster.power
    nm_tasks: list[PolicyTask] = []
    naive_tasks: list[PolicyTask] = []
    with trc.span("fleet-offline-reference", "stream", users=fleet.users):
        for spec in specs[: fleet.users]:
            trace = _spec_trace(spec)
            history, test_days = split_history(trace, train_days)
            nm_tasks.append(
                PolicyTask(
                    name=f"nm:{spec.user_id}",
                    policy=NetMasterPolicy(history, config.netmaster),
                    days=tuple(test_days),
                    model=power,
                )
            )
            naive_tasks.append(
                PolicyTask(
                    name=f"naive:{spec.user_id}",
                    policy=NaivePolicy(),
                    days=tuple(test_days),
                    model=power,
                )
            )
        nm_grid = run_policy_tasks(nm_tasks, jobs=jobs)
        naive_grid = run_policy_tasks(naive_tasks, jobs=jobs)

    naive_energy = sum(m.energy_j for metrics in naive_grid for m in metrics)
    offline_energy = sum(m.energy_j for metrics in nm_grid for m in metrics)
    offline_interrupts = sum(m.interrupts for metrics in nm_grid for m in metrics)
    offline_interactions = sum(
        m.user_interactions for metrics in nm_grid for m in metrics
    )
    # O(1) rollup reads, not O(N) re-sums over fleet.summaries — which
    # would also raise when the run retained nothing (no list, no spill).
    online_energy = fleet.rollup.energy_j
    online_interrupts = fleet.rollup.interrupts
    online_interactions = fleet.rollup.user_interactions

    def saving(energy: float) -> float:
        return 1.0 - energy / naive_energy if naive_energy > 0 else 0.0

    def ratio(interrupts: int, interactions: int) -> float:
        return interrupts / interactions if interactions > 0 else 0.0

    return StreamResult(
        n_users=n_users,
        n_days=n_days,
        train_days=train_days,
        users_streamed=fleet.users,
        shed_users=fleet.shed_users,
        user_days_streamed=fleet.user_days_streamed,
        days_executed=fleet.days_executed,
        events=fleet.events,
        elapsed_s=fleet.elapsed_s,
        events_per_s=fleet.events_per_s,
        checkpoints=fleet.rollup.checkpoints,
        drift_alerts=fleet.rollup.drift_alerts,
        degraded_days=fleet.rollup.degraded_days,
        naive_energy_j=naive_energy,
        online_energy_j=online_energy,
        offline_energy_j=offline_energy,
        online_saving=saving(online_energy),
        offline_saving=saving(offline_energy),
        online_interrupt_ratio=ratio(online_interrupts, online_interactions),
        offline_interrupt_ratio=ratio(offline_interrupts, offline_interactions),
    )
