"""Streaming fleet rollup: O(1)-memory aggregates over user summaries.

At million-user scale the fleet cannot keep one
:class:`~repro.stream.fleet.UserStreamSummary` per user in memory — that
tuple is exactly the linear-RSS term the scale work removes.
:class:`FleetRollup` is its replacement: every summary is folded into
running aggregates the moment the user's last day closes, then dropped.
What survives per fleet (not per user!) is a fixed set of scalars:

* **counters** — users, events, user-days, executed days, checkpoints,
  drift alerts, degraded days, interrupts, interactions, deferrals,
  fleet- and shard-level shed counts, spilled summaries;
* **energy totals** — summed ``energy_j`` / ``radio_on_s`` (the inputs
  to every savings comparison: ``saving = 1 - energy/naive_energy``);
* **savings moments** — min / max / sum / sum-of-squares of each user's
  energy per executed day, plus a fixed-bucket histogram of the same
  quantity, so the per-user energy-footprint distribution survives
  eviction at resolution enough for fleet dashboards.

Folding happens in admission order, which both the list- and the
iterator-sourced admission loops share, so rollups are byte-identical
across spec sources, batch sizes and ``jobs=N`` — and
:meth:`FleetRollup.state_dict` round-trips through JSON bit-exactly,
which is what lets a fleet checkpoint carry the rollup instead of the
summary tuple.

:class:`SummarySpill` is the optional escape hatch for consumers that
do need the full per-user documents: an append-only JSONL sink
(``summaries.jsonl``) written next to the run and published atomically
on close (tempfile + ``os.replace``, the discipline of
:func:`repro._util.write_text_atomic`), which
:class:`~repro.stream.fleet.FleetResult` re-reads lazily.
"""

from __future__ import annotations

import json
import os
import tempfile
from bisect import bisect_left
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING, Iterator

from repro.telemetry import metrics

if TYPE_CHECKING:  # import cycle: fleet.py imports this module
    from repro.stream.fleet import UserStreamSummary

#: Schema version of the rollup state document.
_ROLLUP_FORMAT = 1

#: Upper bucket edges (joules per executed day) of the savings
#: histogram; one implicit overflow bucket catches everything above.
SAVINGS_BUCKETS_J: tuple[float, ...] = (
    1.0, 2.0, 5.0, 10.0, 20.0, 50.0, 100.0,
    200.0, 500.0, 1000.0, 2000.0, 5000.0,
)


@dataclass
class FleetRollup:
    """Running aggregates of a fleet run; O(1) memory, fold-in-order."""

    users: int = 0
    events: int = 0
    user_days: int = 0
    days_executed: int = 0
    checkpoints: int = 0
    drift_alerts: int = 0
    degraded_days: int = 0
    interrupts: int = 0
    user_interactions: int = 0
    deferred: int = 0
    shed_users: int = 0
    shard_shed_users: int = 0
    spilled: int = 0
    energy_j: float = 0.0
    radio_on_s: float = 0.0
    #: Moments of per-user energy per executed day (J/day).
    energy_day_min: float | None = None
    energy_day_max: float | None = None
    energy_day_sum: float = 0.0
    energy_day_sumsq: float = 0.0
    #: Fixed-bucket histogram of the same quantity (last bucket = overflow).
    savings_hist: list[int] = field(
        default_factory=lambda: [0] * (len(SAVINGS_BUCKETS_J) + 1)
    )

    # ------------------------------------------------------------------
    # folding
    # ------------------------------------------------------------------
    def fold(self, summary: "UserStreamSummary") -> None:
        """Fold one fully streamed user in; the summary is then garbage."""
        self.users += 1
        self.events += summary.events
        self.user_days += summary.n_days
        self.days_executed += summary.days_executed
        self.checkpoints += summary.checkpoints
        self.drift_alerts += summary.drift_alerts
        self.degraded_days += summary.degraded_days
        self.interrupts += summary.interrupts
        self.user_interactions += summary.user_interactions
        self.deferred += summary.deferred
        self.energy_j += summary.energy_j
        self.radio_on_s += summary.radio_on_s
        per_day = summary.energy_j / max(1, summary.days_executed)
        if self.energy_day_min is None or per_day < self.energy_day_min:
            self.energy_day_min = per_day
        if self.energy_day_max is None or per_day > self.energy_day_max:
            self.energy_day_max = per_day
        self.energy_day_sum += per_day
        self.energy_day_sumsq += per_day * per_day
        self.savings_hist[bisect_left(SAVINGS_BUCKETS_J, per_day)] += 1

    # ------------------------------------------------------------------
    # derived
    # ------------------------------------------------------------------
    @property
    def energy_day_mean(self) -> float:
        """Mean per-user energy per executed day (0.0 when empty)."""
        return self.energy_day_sum / self.users if self.users else 0.0

    def savings_fraction(self, naive_energy_j: float) -> float:
        """Fleet saving against a supplied always-on baseline total."""
        if naive_energy_j <= 0:
            return 0.0
        return 1.0 - self.energy_j / naive_energy_j

    # ------------------------------------------------------------------
    # checkpoint round-trip
    # ------------------------------------------------------------------
    def state_dict(self) -> dict:
        """JSON-safe state; floats survive serialization bit-exactly."""
        return {
            "format": _ROLLUP_FORMAT,
            "users": self.users,
            "events": self.events,
            "user_days": self.user_days,
            "days_executed": self.days_executed,
            "checkpoints": self.checkpoints,
            "drift_alerts": self.drift_alerts,
            "degraded_days": self.degraded_days,
            "interrupts": self.interrupts,
            "user_interactions": self.user_interactions,
            "deferred": self.deferred,
            "shed_users": self.shed_users,
            "shard_shed_users": self.shard_shed_users,
            "spilled": self.spilled,
            "energy_j": self.energy_j,
            "radio_on_s": self.radio_on_s,
            "energy_day_min": self.energy_day_min,
            "energy_day_max": self.energy_day_max,
            "energy_day_sum": self.energy_day_sum,
            "energy_day_sumsq": self.energy_day_sumsq,
            "savings_buckets_j": list(SAVINGS_BUCKETS_J),
            "savings_hist": list(self.savings_hist),
        }

    @classmethod
    def from_state(cls, state: dict) -> "FleetRollup":
        """Rebuild from :meth:`state_dict` output, bit-identical.

        Raises :class:`ValueError` on an unknown format or a histogram
        whose bucket layout this build does not use (aggregates across
        different bucketings cannot be merged meaningfully).
        """
        fmt = state.get("format")
        if fmt != _ROLLUP_FORMAT:
            raise ValueError(
                f"unsupported rollup format {fmt!r} "
                f"(this build reads format {_ROLLUP_FORMAT})"
            )
        buckets = tuple(state.get("savings_buckets_j", SAVINGS_BUCKETS_J))
        if buckets != SAVINGS_BUCKETS_J:
            raise ValueError(
                "rollup savings histogram buckets differ from this build's"
            )
        hist = [int(c) for c in state["savings_hist"]]
        if len(hist) != len(SAVINGS_BUCKETS_J) + 1:
            raise ValueError(
                f"rollup savings histogram has {len(hist)} buckets, "
                f"expected {len(SAVINGS_BUCKETS_J) + 1}"
            )
        min_ = state["energy_day_min"]
        max_ = state["energy_day_max"]
        return cls(
            users=int(state["users"]),
            events=int(state["events"]),
            user_days=int(state["user_days"]),
            days_executed=int(state["days_executed"]),
            checkpoints=int(state["checkpoints"]),
            drift_alerts=int(state["drift_alerts"]),
            degraded_days=int(state["degraded_days"]),
            interrupts=int(state["interrupts"]),
            user_interactions=int(state["user_interactions"]),
            deferred=int(state["deferred"]),
            shed_users=int(state["shed_users"]),
            shard_shed_users=int(state["shard_shed_users"]),
            spilled=int(state["spilled"]),
            energy_j=float(state["energy_j"]),
            radio_on_s=float(state["radio_on_s"]),
            energy_day_min=None if min_ is None else float(min_),
            energy_day_max=None if max_ is None else float(max_),
            energy_day_sum=float(state["energy_day_sum"]),
            energy_day_sumsq=float(state["energy_day_sumsq"]),
            savings_hist=hist,
        )


class SummarySpill:
    """Append-only JSONL sink for full per-user summary documents.

    Lines accumulate in a hidden sibling temp file; :meth:`close`
    flushes, fsyncs and renames it over the target path, so readers
    only ever observe a complete spill file — the atomic-publish
    discipline of :func:`repro._util.write_text_atomic`, adapted to a
    file that is appended to for the whole run.  Each appended summary
    bumps the ``fleet.summaries_spilled`` counter.
    """

    def __init__(self, path: str | Path) -> None:
        self.path = Path(path)
        self.count = 0
        self.path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp_name = tempfile.mkstemp(
            prefix=f".{self.path.name}.", suffix=".partial", dir=self.path.parent
        )
        self._tmp = Path(tmp_name)
        self._fh = os.fdopen(fd, "w", encoding="utf-8")

    def append(self, summary: "UserStreamSummary") -> None:
        """Spill one summary document as a JSON line."""
        self._fh.write(json.dumps(summary.as_dict()) + "\n")
        self.count += 1
        metrics().inc("fleet.summaries_spilled")

    def close(self) -> Path:
        """Flush, fsync and atomically publish the spill file."""
        self._fh.flush()
        os.fsync(self._fh.fileno())
        self._fh.close()
        os.replace(self._tmp, self.path)
        return self.path

    def abort(self) -> None:
        """Discard the partial spill (run failed before completing)."""
        if not self._fh.closed:
            self._fh.close()
        self._tmp.unlink(missing_ok=True)


def iter_spilled(path: str | Path) -> Iterator["UserStreamSummary"]:
    """Stream the summaries back out of a published spill file."""
    from repro.stream.fleet import UserStreamSummary

    with open(path, encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if line:
                yield UserStreamSummary.from_dict(json.loads(line))


def read_spilled(path: str | Path) -> tuple["UserStreamSummary", ...]:
    """The whole spill file as a tuple (small cohorts / tests only)."""
    return tuple(iter_spilled(path))
