"""Multi-tenant fleet service: thousands of streamed user-days.

The fleet drives one :class:`~repro.stream.online_netmaster.OnlineNetMaster`
per user over that user's event stream, with three serving-shaped
properties the offline harness never needed:

* **bounded per-user memory** — finished days are buffered up to
  ``price_batch_days`` deep, priced in one columnar lane-kernel pass
  (:func:`repro.core.batch.measure_outcomes_columnar`, bit-identical to
  per-day :func:`repro.evaluation.metrics.measure_outcome`) and dropped;
  only a small numeric :class:`UserStreamSummary` survives per user;
* **admission batching** — users are admitted in batches over the
  existing :class:`~repro.runtime.parallel.ParallelRunner`, so a big
  fleet fans over worker processes with the same telemetry-merge
  discipline as the evaluation grids;
* **load shedding** — a configurable event budget: once the streamed
  event count crosses it, remaining users are shed whole (deterministic
  — admission order decides who), counted in ``stream.shed_users``.

Checkpointing is exercised in-line: with ``checkpoint_every_days`` set,
the engine is serialized to JSON and restored every N executed days, so
a fleet run continuously proves the kill/resume path on live state.
"""

from __future__ import annotations

import json
import time
from dataclasses import asdict, dataclass, field
from functools import partial
from pathlib import Path
from typing import Sequence

from repro._util import write_json_atomic
from repro.core.batch import measure_outcomes_columnar
from repro.core.netmaster import NetMasterConfig
from repro.evaluation.metrics import measure_outcome
from repro.runtime.parallel import shared_runner
from repro.stream.ingest import stream_trace
from repro.stream.online_netmaster import CheckpointError, OnlineNetMaster
from repro.telemetry import metrics, tracer
from repro.traces.events import Trace

#: Schema version of the fleet checkpoint document.
_FLEET_CHECKPOINT_FORMAT = 1


@dataclass(frozen=True)
class FleetConfig:
    """Tunables of the fleet service."""

    train_days: int = 10
    update_model: bool = True
    window_days: int | None = None
    decay: float | None = None
    #: Users admitted per runner submission round.
    batch_size: int = 16
    #: Total streamed-event budget; ``None`` admits everyone.
    event_budget: int | None = None
    #: Serialize/restore each engine every N executed days (``None`` off).
    checkpoint_every_days: int | None = None
    #: Completed days buffered before one columnar pricing pass; ``1``
    #: prices each day individually (the pre-lane-kernel behaviour).
    #: Totals are bit-identical either way — only batching changes.
    price_batch_days: int = 8
    #: Per-user day records retained by service-lifetime consumers (the
    #: HTTP gateway): after a day closes, only the newest N decision
    #: documents survive; older days are evicted and live on solely in
    #: the compacted scalar aggregate the savings endpoint reads.
    #: ``None`` retains every day (the pre-service behaviour — and the
    #: RSS leak a long-lived server cannot afford).
    retention_days: int | None = None
    netmaster: NetMasterConfig = field(default_factory=NetMasterConfig)

    def __post_init__(self) -> None:
        if self.train_days < 1:
            raise ValueError(f"train_days must be >= 1, got {self.train_days}")
        if self.batch_size < 1:
            raise ValueError(f"batch_size must be >= 1, got {self.batch_size}")
        if self.event_budget is not None and self.event_budget < 0:
            raise ValueError(f"event_budget must be >= 0, got {self.event_budget}")
        if self.checkpoint_every_days is not None and self.checkpoint_every_days < 1:
            raise ValueError(
                f"checkpoint_every_days must be >= 1, got {self.checkpoint_every_days}"
            )
        if self.price_batch_days < 1:
            raise ValueError(
                f"price_batch_days must be >= 1, got {self.price_batch_days}"
            )
        if self.retention_days is not None and self.retention_days < 0:
            raise ValueError(
                f"retention_days must be >= 0, got {self.retention_days}"
            )


@dataclass(frozen=True)
class FleetUserSpec:
    """One tenant: either an explicit trace or a persona seed.

    With ``trace=None`` the worker synthesizes the user from
    :func:`repro.evaluation.extensions.random_profile` seeded by
    ``seed`` — the fleet then never holds more than one full trace per
    worker at a time.
    """

    user_id: str
    n_days: int
    seed: int | None = None
    start_weekday: int = 0
    trace: Trace | None = None


@dataclass(frozen=True)
class UserStreamSummary:
    """The numeric residue of one fully streamed user."""

    user_id: str
    n_days: int
    days_executed: int
    events: int
    energy_j: float
    radio_on_s: float
    interrupts: int
    user_interactions: int
    deferred: int
    degraded_days: int
    drift_alerts: int
    checkpoints: int

    def as_dict(self) -> dict:
        """JSON-safe dump (floats survive bit-exactly)."""
        return asdict(self)

    @classmethod
    def from_dict(cls, doc: dict) -> "UserStreamSummary":
        """Rebuild from :meth:`as_dict` output, byte-identical."""
        return cls(
            user_id=str(doc["user_id"]),
            n_days=int(doc["n_days"]),
            days_executed=int(doc["days_executed"]),
            events=int(doc["events"]),
            energy_j=float(doc["energy_j"]),
            radio_on_s=float(doc["radio_on_s"]),
            interrupts=int(doc["interrupts"]),
            user_interactions=int(doc["user_interactions"]),
            deferred=int(doc["deferred"]),
            degraded_days=int(doc["degraded_days"]),
            drift_alerts=int(doc["drift_alerts"]),
            checkpoints=int(doc["checkpoints"]),
        )


@dataclass
class SummaryAccumulator:
    """Running scalar totals of one user's stream.

    Shared by :func:`stream_one_user` and the durable sharded streamer
    (:mod:`repro.stream.shards`): the accumulator is the part of a
    user's serving state that is *not* inside the engine, and it
    round-trips through JSON bit-exactly so a write-ahead log record can
    carry it next to the engine checkpoint.
    """

    energy_j: float = 0.0
    radio_on_s: float = 0.0
    interrupts: int = 0
    user_interactions: int = 0
    deferred: int = 0
    checkpoints: int = 0

    def consume(self, completed_days, power) -> int:
        """Price completed days and fold in the scalars.

        Multi-day lists go through the columnar lane kernel in one
        array pass (:func:`repro.core.batch.measure_outcomes_columnar`);
        single days take the scalar path.  Both produce bit-identical
        per-day metrics and the fold runs in day order either way, so
        the totals do not depend on the batching.
        """
        completed_days = list(completed_days)
        if len(completed_days) > 1:
            cells = [(c.outcome(), c.trace) for c in completed_days]
            priced = measure_outcomes_columnar(cells, power)
        else:
            priced = [
                measure_outcome(c.outcome(), power, c.trace)
                for c in completed_days
            ]
        for m in priced:
            self.energy_j += m.energy_j
            self.radio_on_s += m.radio_on_s
            self.interrupts += m.interrupts
            self.user_interactions += m.user_interactions
            self.deferred += m.deferred
        return len(completed_days)

    def state_dict(self) -> dict:
        """JSON-safe state (floats survive bit-exactly)."""
        return {
            "energy_j": self.energy_j,
            "radio_on_s": self.radio_on_s,
            "interrupts": self.interrupts,
            "user_interactions": self.user_interactions,
            "deferred": self.deferred,
            "checkpoints": self.checkpoints,
        }

    @classmethod
    def from_state(cls, state: dict) -> "SummaryAccumulator":
        """Rebuild from :meth:`state_dict` output."""
        return cls(
            energy_j=float(state["energy_j"]),
            radio_on_s=float(state["radio_on_s"]),
            interrupts=int(state["interrupts"]),
            user_interactions=int(state["user_interactions"]),
            deferred=int(state["deferred"]),
            checkpoints=int(state["checkpoints"]),
        )

    def summary(self, engine: OnlineNetMaster, n_days: int) -> UserStreamSummary:
        """Freeze the totals into the per-user fleet summary."""
        return UserStreamSummary(
            user_id=engine.user_id,
            n_days=n_days,
            days_executed=engine.days_executed,
            events=engine.events,
            energy_j=self.energy_j,
            radio_on_s=self.radio_on_s,
            interrupts=self.interrupts,
            user_interactions=self.user_interactions,
            deferred=self.deferred,
            degraded_days=engine.days_degraded,
            drift_alerts=engine.habits.drift_alerts,
            checkpoints=self.checkpoints,
        )


@dataclass(frozen=True)
class FleetResult:
    """Outcome of one fleet run."""

    summaries: tuple[UserStreamSummary, ...]
    shed_users: int
    elapsed_s: float

    @property
    def users(self) -> int:
        """Users fully streamed (admitted, not shed)."""
        return len(self.summaries)

    @property
    def events(self) -> int:
        """Total events streamed across the fleet."""
        return sum(s.events for s in self.summaries)

    @property
    def user_days_streamed(self) -> int:
        """Total days streamed through the engines (incl. training)."""
        return sum(s.n_days for s in self.summaries)

    @property
    def days_executed(self) -> int:
        """Causally executed (post-training) days across the fleet."""
        return sum(s.days_executed for s in self.summaries)

    @property
    def events_per_s(self) -> float:
        """Fleet-level streaming throughput."""
        if self.elapsed_s <= 0:
            return 0.0
        return self.events / self.elapsed_s


def stream_one_user(trace: Trace, *, config: FleetConfig) -> UserStreamSummary:
    """Drive one user's full stream through the online engine.

    Completed days are buffered up to ``config.price_batch_days`` and
    priced in one columnar pass through the lane kernel, then dropped —
    the per-user memory is the engine state plus a few days' buffers,
    and the totals are bit-identical to pricing each day individually.
    With ``checkpoint_every_days`` the engine round-trips through its
    JSON checkpoint on that cadence, proving resumability in-line.
    """
    engine = OnlineNetMaster(
        trace.user_id,
        config=config.netmaster,
        start_weekday=trace.start_weekday,
        train_days=config.train_days,
        update_model=config.update_model,
        window_days=config.window_days,
        decay=config.decay,
    )
    power = config.netmaster.power
    acc = SummaryAccumulator()
    every = config.checkpoint_every_days
    flush_at = config.price_batch_days
    pending: list = []

    for record in stream_trace(trace):
        engine.observe(record)
        done = engine.drain()
        pending.extend(done)
        if len(pending) >= flush_at:
            acc.consume(pending, power)
            pending = []
        if done and every and engine.days_executed % every == 0:
            engine = OnlineNetMaster.from_json(engine.to_json())
            acc.checkpoints += 1
    pending.extend(engine.finish(trace.n_days))
    acc.consume(pending, power)
    return acc.summary(engine, trace.n_days)


# ----------------------------------------------------------------------
# module-level workers (picklable for the process pool)
# ----------------------------------------------------------------------


def _spec_trace(spec: FleetUserSpec) -> Trace:
    if spec.trace is not None:
        return spec.trace
    if spec.seed is None:
        raise ValueError(f"user {spec.user_id!r} has neither a trace nor a seed")
    # Lazy import: evaluation.extensions pulls the policy stack in.
    import numpy as np

    from repro.evaluation.extensions import random_profile
    from repro.traces.generator import TraceGenerator

    rng = np.random.default_rng(spec.seed)
    profile = random_profile(spec.user_id, rng)
    return TraceGenerator(profile, rng).generate(
        spec.n_days, start_weekday=spec.start_weekday
    )


def _stream_spec(payload: tuple[FleetUserSpec, FleetConfig]) -> UserStreamSummary:
    spec, config = payload
    return stream_one_user(_spec_trace(spec), config=config)


def _stream_spec_shipped(
    payload: tuple[FleetUserSpec, FleetConfig], *, with_tracing: bool = True
):
    from repro import telemetry

    with telemetry.isolated(with_tracing=with_tracing) as (registry, trc):
        result = _stream_spec(payload)
        return result, registry.snapshot(), trc.export_spans()


class FleetService:
    """Admission-batched multi-tenant driver over the parallel runner."""

    def __init__(self, config: FleetConfig | None = None) -> None:
        self.config = config or FleetConfig()

    @staticmethod
    def checkpoint(path: str | Path, result: FleetResult) -> Path:
        """Persist a fleet document atomically (temp file + ``os.replace``).

        The whole document reaches the filesystem through
        :func:`repro._util.write_json_atomic` — the content-addressed
        trace store's discipline — so a crash mid-checkpoint leaves
        either the previous complete document or the new complete one,
        never a half-written fleet.  Scalars survive JSON bit-exactly,
        so :meth:`load_checkpoint` rebuilds an equal :class:`FleetResult`.
        """
        doc = {
            "format": _FLEET_CHECKPOINT_FORMAT,
            "summaries": [s.as_dict() for s in result.summaries],
            "shed_users": result.shed_users,
            "elapsed_s": result.elapsed_s,
        }
        metrics().inc("stream.fleet_checkpoints")
        return write_json_atomic(path, doc, indent=1)

    @staticmethod
    def load_checkpoint(path: str | Path) -> FleetResult:
        """Read a fleet document back; raises :class:`CheckpointError`
        on truncated/corrupt JSON or an unknown schema version."""
        try:
            doc = json.loads(Path(path).read_text())
        except (OSError, json.JSONDecodeError) as exc:
            raise CheckpointError(
                f"unreadable fleet checkpoint {path}: {type(exc).__name__}: {exc}"
            ) from exc
        fmt = doc.get("format") if isinstance(doc, dict) else None
        if fmt != _FLEET_CHECKPOINT_FORMAT:
            raise CheckpointError(
                f"unsupported fleet checkpoint format: {fmt!r} "
                f"(this build reads format {_FLEET_CHECKPOINT_FORMAT})"
            )
        try:
            return FleetResult(
                summaries=tuple(
                    UserStreamSummary.from_dict(s) for s in doc["summaries"]
                ),
                shed_users=int(doc["shed_users"]),
                elapsed_s=float(doc["elapsed_s"]),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise CheckpointError(
                f"corrupt fleet checkpoint {path}: {type(exc).__name__}: {exc}"
            ) from exc

    def run(self, specs: Sequence[FleetUserSpec], *, jobs: int = 1) -> FleetResult:
        """Stream every admitted user; returns summaries in spec order.

        Admission proceeds batch by batch; once the event budget is
        exhausted the remaining users are shed whole.  ``jobs > 1`` fans
        each batch over the shared process pool with worker telemetry
        merged back in admission order (deterministic registries).
        """
        config = self.config
        registry = metrics()
        start = time.perf_counter()
        summaries: list[UserStreamSummary] = []
        shed = 0
        events_streamed = 0
        batch_size = config.batch_size
        for offset in range(0, len(specs), batch_size):
            if config.event_budget is not None and events_streamed >= config.event_budget:
                shed = len(specs) - offset
                registry.inc("stream.shed_users", shed)
                break
            batch = list(specs[offset : offset + batch_size])
            registry.inc("stream.batches")
            results = self._run_batch(batch, jobs)
            summaries.extend(results)
            events_streamed += sum(s.events for s in results)
            registry.inc("stream.users", len(results))
        elapsed = time.perf_counter() - start
        return FleetResult(
            summaries=tuple(summaries), shed_users=shed, elapsed_s=elapsed
        )

    def _run_batch(
        self, batch: list[FleetUserSpec], jobs: int
    ) -> list[UserStreamSummary]:
        payloads = [(spec, self.config) for spec in batch]
        if jobs == 1 or len(payloads) <= 1:
            return [_stream_spec(p) for p in payloads]
        registry = metrics()
        trc = tracer()
        runner = shared_runner(jobs)
        if not (registry.enabled or trc.enabled):
            return runner.map(_stream_spec, payloads)
        fn = partial(_stream_spec_shipped, with_tracing=trc.enabled)
        out: list[UserStreamSummary] = []
        for summary, snap, spans in runner.map(fn, payloads):
            registry.merge_snapshot(snap)
            trc.ingest(spans)
            out.append(summary)
        return out
