"""Multi-tenant fleet service: thousands of streamed user-days.

The fleet drives one :class:`~repro.stream.online_netmaster.OnlineNetMaster`
per user over that user's event stream, with three serving-shaped
properties the offline harness never needed:

* **bounded per-user memory** — finished days are buffered up to
  ``price_batch_days`` deep, priced in one columnar lane-kernel pass
  (:func:`repro.core.batch.measure_outcomes_columnar`, bit-identical to
  per-day :func:`repro.evaluation.metrics.measure_outcome`) and dropped;
  only a small numeric :class:`UserStreamSummary` survives per user;
* **admission batching** — users are admitted in batches over the
  existing :class:`~repro.runtime.parallel.ParallelRunner`, so a big
  fleet fans over worker processes with the same telemetry-merge
  discipline as the evaluation grids;
* **load shedding** — a configurable event budget: once the streamed
  event count crosses it, remaining users are shed whole (deterministic
  — admission order decides who), counted in ``stream.shed_users``.

Checkpointing is exercised in-line: with ``checkpoint_every_days`` set,
the engine is serialized to JSON and restored every N executed days, so
a fleet run continuously proves the kill/resume path on live state.
"""

from __future__ import annotations

import json
import time
from dataclasses import asdict, dataclass, field
from functools import partial
from itertools import islice
from pathlib import Path
from typing import TYPE_CHECKING, Iterable

from repro._util import peak_rss_bytes, write_json_atomic
from repro.core.batch import measure_outcomes_columnar
from repro.core.netmaster import NetMasterConfig
from repro.evaluation.metrics import measure_outcome
from repro.runtime.parallel import shared_runner
from repro.stream.ingest import stream_trace
from repro.stream.online_netmaster import CheckpointError, OnlineNetMaster
from repro.stream.rollup import FleetRollup, SummarySpill, read_spilled
from repro.telemetry import metrics, tracer
from repro.traces.events import Trace

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.monitor.detectors import Alert, MonitorConfig
    from repro.monitor.sinks import MonitorHub

#: Schema version of the fleet checkpoint document.  Format 2 carries
#: the rollup aggregates (format 1 stored only the raw summary list);
#: old documents still load through ``load_checkpoint(strict=False)``.
_FLEET_CHECKPOINT_FORMAT = 2


@dataclass(frozen=True)
class FleetConfig:
    """Tunables of the fleet service."""

    train_days: int = 10
    update_model: bool = True
    window_days: int | None = None
    decay: float | None = None
    #: Users admitted per runner submission round.
    batch_size: int = 16
    #: Total streamed-event budget; ``None`` admits everyone.
    event_budget: int | None = None
    #: Serialize/restore each engine every N executed days (``None`` off).
    checkpoint_every_days: int | None = None
    #: Completed days buffered before one columnar pricing pass; ``1``
    #: prices each day individually (the pre-lane-kernel behaviour).
    #: Totals are bit-identical either way — only batching changes.
    price_batch_days: int = 8
    #: Per-user day records retained by service-lifetime consumers (the
    #: HTTP gateway): after a day closes, only the newest N decision
    #: documents survive; older days are evicted and live on solely in
    #: the compacted scalar aggregate the savings endpoint reads.
    #: ``None`` retains every day (the pre-service behaviour — and the
    #: RSS leak a long-lived server cannot afford).
    retention_days: int | None = None
    #: Keep every :class:`UserStreamSummary` on the result (the
    #: pre-scale behaviour, and an O(users) RSS term).  Scale runs turn
    #: this off and rely on the rollup aggregates and/or the spill file.
    retain_summaries: bool = True
    #: Append each user's summary document to this JSONL file as their
    #: last day closes (``None`` = no spill).  Published atomically when
    #: the run completes; ``FleetResult.summaries`` re-reads it lazily
    #: when summaries are not retained in memory.
    summary_spill: str | Path | None = None
    #: Attach per-user anomaly monitoring (:mod:`repro.monitor`) at the
    #: day-close seam.  ``None`` (the default) streams with zero
    #: monitor code on the hot path; a config builds one
    #: :class:`~repro.monitor.feedback.UserMonitor` per user, with
    #: alerts published through the hub passed to
    #: :meth:`FleetService.run`.  A quiet monitor leaves decisions and
    #: WAL bytes byte-identical to an unmonitored run.
    monitor: "MonitorConfig | None" = None
    netmaster: NetMasterConfig = field(default_factory=NetMasterConfig)

    def __post_init__(self) -> None:
        if self.train_days < 1:
            raise ValueError(f"train_days must be >= 1, got {self.train_days}")
        if self.batch_size < 1:
            raise ValueError(f"batch_size must be >= 1, got {self.batch_size}")
        if self.event_budget is not None and self.event_budget < 0:
            raise ValueError(f"event_budget must be >= 0, got {self.event_budget}")
        if self.checkpoint_every_days is not None and self.checkpoint_every_days < 1:
            raise ValueError(
                f"checkpoint_every_days must be >= 1, got {self.checkpoint_every_days}"
            )
        if self.price_batch_days < 1:
            raise ValueError(
                f"price_batch_days must be >= 1, got {self.price_batch_days}"
            )
        if self.retention_days is not None and self.retention_days < 0:
            raise ValueError(
                f"retention_days must be >= 0, got {self.retention_days}"
            )


@dataclass(frozen=True)
class FleetUserSpec:
    """One tenant: either an explicit trace or a persona seed.

    With ``trace=None`` the worker synthesizes the user from
    :func:`repro.evaluation.extensions.random_profile` seeded by
    ``seed`` — the fleet then never holds more than one full trace per
    worker at a time.
    """

    user_id: str
    n_days: int
    seed: int | None = None
    start_weekday: int = 0
    trace: Trace | None = None


@dataclass(frozen=True)
class UserStreamSummary:
    """The numeric residue of one fully streamed user."""

    user_id: str
    n_days: int
    days_executed: int
    events: int
    energy_j: float
    radio_on_s: float
    interrupts: int
    user_interactions: int
    deferred: int
    degraded_days: int
    drift_alerts: int
    checkpoints: int

    def as_dict(self) -> dict:
        """JSON-safe dump (floats survive bit-exactly)."""
        return asdict(self)

    @classmethod
    def from_dict(cls, doc: dict) -> "UserStreamSummary":
        """Rebuild from :meth:`as_dict` output, byte-identical."""
        return cls(
            user_id=str(doc["user_id"]),
            n_days=int(doc["n_days"]),
            days_executed=int(doc["days_executed"]),
            events=int(doc["events"]),
            energy_j=float(doc["energy_j"]),
            radio_on_s=float(doc["radio_on_s"]),
            interrupts=int(doc["interrupts"]),
            user_interactions=int(doc["user_interactions"]),
            deferred=int(doc["deferred"]),
            degraded_days=int(doc["degraded_days"]),
            drift_alerts=int(doc["drift_alerts"]),
            checkpoints=int(doc["checkpoints"]),
        )


@dataclass
class SummaryAccumulator:
    """Running scalar totals of one user's stream.

    Shared by :func:`stream_one_user` and the durable sharded streamer
    (:mod:`repro.stream.shards`): the accumulator is the part of a
    user's serving state that is *not* inside the engine, and it
    round-trips through JSON bit-exactly so a write-ahead log record can
    carry it next to the engine checkpoint.
    """

    energy_j: float = 0.0
    radio_on_s: float = 0.0
    interrupts: int = 0
    user_interactions: int = 0
    deferred: int = 0
    checkpoints: int = 0

    def consume(self, completed_days, power) -> list:
        """Price completed days and fold in the scalars.

        Multi-day lists go through the columnar lane kernel in one
        array pass (:func:`repro.core.batch.measure_outcomes_columnar`);
        single days take the scalar path.  Both produce bit-identical
        per-day metrics and the fold runs in day order either way, so
        the totals do not depend on the batching.

        Returns the priced per-day metric rows (truthiness-compatible
        with the old day count) so day-close consumers — the monitor's
        detectors, the WAL writer — can reuse the pricing pass instead
        of repeating it.
        """
        completed_days = list(completed_days)
        if len(completed_days) > 1:
            cells = [(c.outcome(), c.trace) for c in completed_days]
            priced = measure_outcomes_columnar(cells, power)
        else:
            priced = [
                measure_outcome(c.outcome(), power, c.trace)
                for c in completed_days
            ]
        for m in priced:
            self.energy_j += m.energy_j
            self.radio_on_s += m.radio_on_s
            self.interrupts += m.interrupts
            self.user_interactions += m.user_interactions
            self.deferred += m.deferred
        return priced

    def state_dict(self) -> dict:
        """JSON-safe state (floats survive bit-exactly)."""
        return {
            "energy_j": self.energy_j,
            "radio_on_s": self.radio_on_s,
            "interrupts": self.interrupts,
            "user_interactions": self.user_interactions,
            "deferred": self.deferred,
            "checkpoints": self.checkpoints,
        }

    @classmethod
    def from_state(cls, state: dict) -> "SummaryAccumulator":
        """Rebuild from :meth:`state_dict` output."""
        return cls(
            energy_j=float(state["energy_j"]),
            radio_on_s=float(state["radio_on_s"]),
            interrupts=int(state["interrupts"]),
            user_interactions=int(state["user_interactions"]),
            deferred=int(state["deferred"]),
            checkpoints=int(state["checkpoints"]),
        )

    def summary(self, engine: OnlineNetMaster, n_days: int) -> UserStreamSummary:
        """Freeze the totals into the per-user fleet summary."""
        return UserStreamSummary(
            user_id=engine.user_id,
            n_days=n_days,
            days_executed=engine.days_executed,
            events=engine.events,
            energy_j=self.energy_j,
            radio_on_s=self.radio_on_s,
            interrupts=self.interrupts,
            user_interactions=self.user_interactions,
            deferred=self.deferred,
            degraded_days=engine.days_degraded,
            drift_alerts=engine.habits.drift_alerts,
            checkpoints=self.checkpoints,
        )


@dataclass(frozen=True)
class FleetResult:
    """Outcome of one fleet run.

    The result is rollup-backed: every aggregate the old summaries
    tuple was re-summed for on each access (events, user-days, executed
    days) is an O(1) counter read off :class:`FleetRollup`.  The full
    per-user summaries remain reachable through :attr:`summaries` —
    from memory when the run retained them
    (:attr:`FleetConfig.retain_summaries`), else lazily re-read from
    the spill file — but a constant-RSS scale run carries neither and
    exposes only the rollup.
    """

    rollup: FleetRollup
    elapsed_s: float
    #: Published JSONL spill file, when the run was configured to write
    #: one (:attr:`FleetConfig.summary_spill`).
    spill_path: Path | None = None
    #: In-memory summary tuple, when retained (the compat default).
    retained: tuple[UserStreamSummary, ...] | None = None

    @property
    def summaries(self) -> tuple[UserStreamSummary, ...]:
        """Per-user summaries, from memory or the spill file.

        Raises :class:`RuntimeError` when the run neither retained
        summaries nor spilled them — a constant-RSS fleet deliberately
        keeps only the rollup aggregates.
        """
        if self.retained is not None:
            return self.retained
        if self.spill_path is not None:
            return read_spilled(self.spill_path)
        raise RuntimeError(
            "per-user summaries were neither retained nor spilled "
            "(retain_summaries=False and no summary_spill configured); "
            "only the rollup aggregates exist for this run"
        )

    @property
    def shed_users(self) -> int:
        """Users shed whole when the event budget ran out."""
        return self.rollup.shed_users

    @property
    def users(self) -> int:
        """Users fully streamed (admitted, not shed)."""
        return self.rollup.users

    @property
    def events(self) -> int:
        """Total events streamed across the fleet (O(1))."""
        return self.rollup.events

    @property
    def user_days_streamed(self) -> int:
        """Total days streamed through the engines (incl. training)."""
        return self.rollup.user_days

    @property
    def days_executed(self) -> int:
        """Causally executed (post-training) days across the fleet."""
        return self.rollup.days_executed

    @property
    def events_per_s(self) -> float:
        """Fleet-level streaming throughput."""
        if self.elapsed_s <= 0:
            return 0.0
        return self.events / self.elapsed_s


def stream_one_user(trace: Trace, *, config: FleetConfig) -> UserStreamSummary:
    """Drive one user's full stream through the online engine.

    Completed days are buffered up to ``config.price_batch_days`` and
    priced in one columnar pass through the lane kernel, then dropped —
    the per-user memory is the engine state plus a few days' buffers,
    and the totals are bit-identical to pricing each day individually.
    With ``checkpoint_every_days`` the engine round-trips through its
    JSON checkpoint on that cadence, proving resumability in-line.
    """
    engine = OnlineNetMaster(
        trace.user_id,
        config=config.netmaster,
        start_weekday=trace.start_weekday,
        train_days=config.train_days,
        update_model=config.update_model,
        window_days=config.window_days,
        decay=config.decay,
    )
    power = config.netmaster.power
    acc = SummaryAccumulator()
    every = config.checkpoint_every_days
    flush_at = config.price_batch_days
    pending: list = []

    for record in stream_trace(trace):
        engine.observe(record)
        done = engine.drain()
        pending.extend(done)
        if len(pending) >= flush_at:
            acc.consume(pending, power)
            pending = []
        if done and every and engine.days_executed % every == 0:
            engine = OnlineNetMaster.from_json(engine.to_json())
            acc.checkpoints += 1
    pending.extend(engine.finish(trace.n_days))
    acc.consume(pending, power)
    return acc.summary(engine, trace.n_days)


def stream_one_user_monitored(
    trace: Trace, *, config: FleetConfig
) -> "tuple[UserStreamSummary, list[Alert]]":
    """:func:`stream_one_user` with the anomaly monitor attached.

    Kept as a separate loop so the unmonitored hot path stays
    monitor-free.  Completed days are priced at every drain (the
    columnar batching guarantee makes the totals bit-identical to the
    buffered pricing of the plain loop), their signals feed the
    per-user :class:`~repro.monitor.feedback.UserMonitor`, and the
    feedback windows are applied *before* the checkpoint-cadence
    round-trip so a restored engine carries the hold.  When no alert
    fires the summary — and every engine checkpoint along the way — is
    byte-identical to the unmonitored drive.
    """
    from repro.monitor.detectors import MonitorConfig
    from repro.monitor.feedback import UserMonitor

    monitor = UserMonitor(trace.user_id, config.monitor or MonitorConfig())
    engine = OnlineNetMaster(
        trace.user_id,
        config=config.netmaster,
        start_weekday=trace.start_weekday,
        train_days=config.train_days,
        update_model=config.update_model,
        window_days=config.window_days,
        decay=config.decay,
    )
    power = config.netmaster.power
    acc = SummaryAccumulator()
    every = config.checkpoint_every_days
    alerts: list = []

    for record in stream_trace(trace):
        engine.observe(record)
        done = engine.drain()
        if done:
            priced = acc.consume(done, power)
            alerts.extend(monitor.feed_days(engine, done, priced))
            if every and engine.days_executed % every == 0:
                engine = OnlineNetMaster.from_json(engine.to_json())
                acc.checkpoints += 1
    final = engine.finish(trace.n_days)
    if final:
        priced = acc.consume(final, power)
        alerts.extend(monitor.feed_days(engine, final, priced))
    return acc.summary(engine, trace.n_days), alerts


# ----------------------------------------------------------------------
# module-level workers (picklable for the process pool)
# ----------------------------------------------------------------------


def _spec_trace(spec: FleetUserSpec) -> Trace:
    if spec.trace is not None:
        return spec.trace
    if spec.seed is None:
        raise ValueError(f"user {spec.user_id!r} has neither a trace nor a seed")
    # Lazy import: evaluation.extensions pulls the policy stack in.
    import numpy as np

    from repro.evaluation.extensions import random_profile
    from repro.traces.generator import TraceGenerator

    rng = np.random.default_rng(spec.seed)
    profile = random_profile(spec.user_id, rng)
    return TraceGenerator(profile, rng).generate(
        spec.n_days, start_weekday=spec.start_weekday
    )


def _stream_spec(payload: tuple[FleetUserSpec, FleetConfig]) -> UserStreamSummary:
    spec, config = payload
    return stream_one_user(_spec_trace(spec), config=config)


def _stream_spec_shipped(
    payload: tuple[FleetUserSpec, FleetConfig], *, with_tracing: bool = True
):
    from repro import telemetry

    with telemetry.isolated(with_tracing=with_tracing) as (registry, trc):
        result = _stream_spec(payload)
        return result, registry.snapshot(), trc.export_spans()


def _stream_spec_monitored(payload: tuple[FleetUserSpec, FleetConfig]):
    spec, config = payload
    return stream_one_user_monitored(_spec_trace(spec), config=config)


def _stream_spec_monitored_shipped(
    payload: tuple[FleetUserSpec, FleetConfig], *, with_tracing: bool = True
):
    from repro import telemetry

    with telemetry.isolated(with_tracing=with_tracing) as (registry, trc):
        summary, alerts = _stream_spec_monitored(payload)
        return summary, alerts, registry.snapshot(), trc.export_spans()


def _shed_remaining(batch: list, rest: Iterable) -> int:
    """Count the users shed whole: the drawn batch plus the iterator tail.

    For a list-sourced run this equals the old ``len(specs) - offset``;
    for an iterator source it drains the tail without materializing it.
    """
    return len(batch) + sum(1 for _ in rest)


def _note_batch_rss(registry, active: int, high_water: int) -> int:
    """Record the batch-boundary RSS/active-user gauges; returns the hwm."""
    if active > high_water:
        high_water = active
        registry.set_gauge("fleet.active_users", high_water)
    rss = peak_rss_bytes()
    if rss is not None:
        registry.set_gauge("fleet.peak_rss_bytes", rss)
    return high_water


@dataclass(frozen=True)
class FleetCheckpointLoad:
    """Outcome of a lenient fleet checkpoint load (``strict=False``).

    Mirrors :class:`repro.stream.online_netmaster.CheckpointLoad`:
    ``result`` is ``None`` when nothing was recoverable, otherwise a
    usable :class:`FleetResult` — possibly upgraded from a pre-rollup
    (format-1) document — and ``issues`` lists every repair made.
    """

    result: FleetResult | None
    issues: tuple[str, ...] = ()

    @property
    def ok(self) -> bool:
        """Whether the checkpoint loaded completely, with no repairs."""
        return self.result is not None and not self.issues

    @property
    def salvaged(self) -> bool:
        """Whether a damaged/old checkpoint still yielded a result."""
        return self.result is not None and bool(self.issues)


class FleetService:
    """Admission-batched multi-tenant driver over the parallel runner."""

    def __init__(self, config: FleetConfig | None = None) -> None:
        self.config = config or FleetConfig()

    @staticmethod
    def checkpoint(path: str | Path, result: FleetResult) -> Path:
        """Persist a fleet document atomically (temp file + ``os.replace``).

        The whole document reaches the filesystem through
        :func:`repro._util.write_json_atomic` — the content-addressed
        trace store's discipline — so a crash mid-checkpoint leaves
        either the previous complete document or the new complete one,
        never a half-written fleet.  The document carries the rollup
        state (bit-exact through JSON) plus, when the run retained
        them, the per-user summaries; scale runs checkpoint just the
        rollup, so the document stays O(1) no matter the cohort.
        """
        doc = {
            "format": _FLEET_CHECKPOINT_FORMAT,
            "rollup": result.rollup.state_dict(),
            "elapsed_s": result.elapsed_s,
            "spill_path": (
                str(result.spill_path) if result.spill_path is not None else None
            ),
            "summaries": (
                [s.as_dict() for s in result.retained]
                if result.retained is not None
                else None
            ),
        }
        metrics().inc("stream.fleet_checkpoints")
        return write_json_atomic(path, doc, indent=1)

    @staticmethod
    def load_checkpoint(
        path: str | Path, *, strict: bool = True
    ) -> FleetResult | FleetCheckpointLoad:
        """Read a fleet document back.

        ``strict=True`` (the default, and the historical signature)
        returns a :class:`FleetResult` and raises
        :class:`CheckpointError` on truncated/corrupt JSON or any
        schema version other than the current one.

        ``strict=False`` never raises: it returns a
        :class:`FleetCheckpointLoad` whose ``result`` is the loaded
        fleet when possible.  Pre-rollup format-1 documents are
        *upgraded* — their summary list is folded into a fresh
        :class:`FleetRollup` — with the upgrade reported in ``issues``;
        corrupt summary entries are dropped, one issue each.
        """
        try:
            doc = json.loads(Path(path).read_text())
        except (OSError, json.JSONDecodeError) as exc:
            msg = f"unreadable fleet checkpoint {path}: {type(exc).__name__}: {exc}"
            if strict:
                raise CheckpointError(msg) from exc
            return FleetCheckpointLoad(result=None, issues=(msg,))
        fmt = doc.get("format") if isinstance(doc, dict) else None
        if fmt != _FLEET_CHECKPOINT_FORMAT:
            msg = (
                f"unsupported fleet checkpoint format: {fmt!r} "
                f"(this build reads format {_FLEET_CHECKPOINT_FORMAT})"
            )
            if strict:
                raise CheckpointError(msg)
            if fmt == 1:
                return FleetService._upgrade_format_1(doc)
            return FleetCheckpointLoad(result=None, issues=(msg,))
        try:
            retained_docs = doc.get("summaries")
            spill = doc.get("spill_path")
            result = FleetResult(
                rollup=FleetRollup.from_state(doc["rollup"]),
                elapsed_s=float(doc["elapsed_s"]),
                spill_path=Path(spill) if spill is not None else None,
                retained=(
                    tuple(UserStreamSummary.from_dict(s) for s in retained_docs)
                    if retained_docs is not None
                    else None
                ),
            )
        except (KeyError, TypeError, ValueError) as exc:
            msg = f"corrupt fleet checkpoint {path}: {type(exc).__name__}: {exc}"
            if strict:
                raise CheckpointError(msg) from exc
            return FleetCheckpointLoad(result=None, issues=(msg,))
        if strict:
            return result
        return FleetCheckpointLoad(result=result)

    @staticmethod
    def _upgrade_format_1(doc: dict) -> FleetCheckpointLoad:
        """Salvage a pre-rollup document by refolding its summaries."""
        issues = [
            "fleet checkpoint format 1 is pre-rollup; "
            "salvaged by folding its summaries into a fresh rollup"
        ]
        rollup = FleetRollup()
        retained: list[UserStreamSummary] = []
        raw = doc.get("summaries")
        if not isinstance(raw, list):
            issues.append(
                f"summary list missing or malformed (got {type(raw).__name__}); "
                "salvaged as an empty fleet"
            )
            raw = []
        for idx, entry in enumerate(raw):
            try:
                summary = UserStreamSummary.from_dict(entry)
            except (KeyError, TypeError, ValueError) as exc:
                issues.append(
                    f"summary #{idx} corrupt ({type(exc).__name__}: {exc}); dropped"
                )
                continue
            rollup.fold(summary)
            retained.append(summary)
        for key, convert in (("shed_users", int), ("elapsed_s", float)):
            try:
                convert(doc[key])
            except (KeyError, TypeError, ValueError) as exc:
                issues.append(
                    f"field {key!r} unreadable ({type(exc).__name__}: {exc}); "
                    "salvaged as its reset value"
                )
        try:
            rollup.shed_users = int(doc["shed_users"])
        except (KeyError, TypeError, ValueError):
            rollup.shed_users = 0
        try:
            elapsed = float(doc["elapsed_s"])
        except (KeyError, TypeError, ValueError):
            elapsed = 0.0
        result = FleetResult(
            rollup=rollup, elapsed_s=elapsed, retained=tuple(retained)
        )
        return FleetCheckpointLoad(result=result, issues=tuple(issues))

    def run(
        self,
        specs: Iterable[FleetUserSpec],
        *,
        jobs: int = 1,
        monitor: "MonitorHub | None" = None,
    ) -> FleetResult:
        """Stream every admitted user; aggregates fold in spec order.

        ``specs`` may be any iterable — a list, or a lazy generator such
        as :func:`repro.stream.specgen.iter_fleet_specs` — and admission
        windows over it one ``islice`` batch at a time, so the cohort
        never materializes.  Once the event budget is exhausted the
        remaining users are shed whole (the iterator tail is drained
        only to count it).  ``jobs > 1`` fans each batch over the shared
        process pool with worker telemetry merged back in admission
        order (deterministic registries).  Decisions, aggregates and
        shed counts are byte-identical between list and iterator
        sources.

        Passing a :class:`~repro.monitor.sinks.MonitorHub` (or setting
        ``config.monitor``) attaches per-user anomaly monitoring:
        workers detect and apply feedback in-stream, and the parent
        publishes every user's alerts to the hub in admission order —
        identical serial or parallel.
        """
        config = self.config
        if monitor is not None and config.monitor is None:
            from dataclasses import replace

            from repro.monitor.detectors import MonitorConfig

            config = replace(config, monitor=MonitorConfig())
        registry = metrics()
        start = time.perf_counter()
        rollup = FleetRollup()
        spill = (
            SummarySpill(config.summary_spill)
            if config.summary_spill is not None
            else None
        )
        retained: list[UserStreamSummary] | None = (
            [] if config.retain_summaries else None
        )
        high_water = 0
        source = iter(specs)
        try:
            while True:
                batch = list(islice(source, config.batch_size))
                if not batch:
                    break
                if (
                    config.event_budget is not None
                    and rollup.events >= config.event_budget
                ):
                    rollup.shed_users = _shed_remaining(batch, source)
                    registry.inc("stream.shed_users", rollup.shed_users)
                    break
                registry.inc("stream.batches")
                if config.monitor is not None:
                    pairs = self._run_batch_monitored(batch, jobs, config)
                    results = [summary for summary, _ in pairs]
                    if monitor is not None:
                        for _, alerts in pairs:
                            monitor.publish_many(alerts)
                else:
                    results = self._run_batch(batch, jobs)
                for summary in results:
                    rollup.fold(summary)
                    if spill is not None:
                        spill.append(summary)
                    if retained is not None:
                        retained.append(summary)
                registry.inc("stream.users", len(results))
                high_water = _note_batch_rss(registry, len(batch), high_water)
        except BaseException:
            if spill is not None:
                spill.abort()
            raise
        spill_path = spill.close() if spill is not None else None
        if spill is not None:
            rollup.spilled = spill.count
        elapsed = time.perf_counter() - start
        return FleetResult(
            rollup=rollup,
            elapsed_s=elapsed,
            spill_path=spill_path,
            retained=tuple(retained) if retained is not None else None,
        )

    def _run_batch(
        self, batch: list[FleetUserSpec], jobs: int
    ) -> list[UserStreamSummary]:
        payloads = [(spec, self.config) for spec in batch]
        if jobs == 1 or len(payloads) <= 1:
            return [_stream_spec(p) for p in payloads]
        registry = metrics()
        trc = tracer()
        runner = shared_runner(jobs)
        if not (registry.enabled or trc.enabled):
            return runner.map(_stream_spec, payloads)
        fn = partial(_stream_spec_shipped, with_tracing=trc.enabled)
        out: list[UserStreamSummary] = []
        for summary, snap, spans in runner.map(fn, payloads):
            registry.merge_snapshot(snap)
            trc.ingest(spans)
            out.append(summary)
        return out

    def _run_batch_monitored(
        self, batch: list[FleetUserSpec], jobs: int, config: FleetConfig
    ) -> "list[tuple[UserStreamSummary, list[Alert]]]":
        """One admission batch with monitoring; returns (summary, alerts)
        per user, in admission order, identical serial or parallel."""
        payloads = [(spec, config) for spec in batch]
        if jobs == 1 or len(payloads) <= 1:
            return [_stream_spec_monitored(p) for p in payloads]
        registry = metrics()
        trc = tracer()
        runner = shared_runner(jobs)
        if not (registry.enabled or trc.enabled):
            return runner.map(_stream_spec_monitored, payloads)
        fn = partial(_stream_spec_monitored_shipped, with_tracing=trc.enabled)
        out: "list[tuple[UserStreamSummary, list[Alert]]]" = []
        for summary, alerts, snap, spans in runner.map(fn, payloads):
            registry.merge_snapshot(snap)
            trc.ingest(spans)
            out.append((summary, alerts))
        return out
