"""Bounded-memory event-stream ingestion (the online engine's front door).

A *stream* here is an iterator of trace records — screen sessions, app
usages, network activities — ordered by start time.  Everything in this
module is lazy: streams come from in-memory traces, from JSONL files via
the record reader in :mod:`repro.traces.io`, or from several users at
once through a `heapq.merge`-based chronological interleave that holds
one pending record per source, never a materialized
:class:`~repro.traces.events.Trace`.

Ordering contract: sources must already be time-ordered (trace event
lists are sorted on construction; the JSONL reader is merged per record
kind below).  ``heapq.merge`` is stable for equal keys — records from an
earlier source win ties, and records within one source never reorder —
so downstream accumulation (:mod:`repro.stream.online_habits`) sees the
exact per-kind, per-user event order the offline fit iterates in, which
is what makes bit-exact parity possible.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Iterable, Iterator, Mapping

from repro.traces.events import AppUsage, NetworkActivity, ScreenSession, Trace
from repro.traces.io import TraceHeader, TraceRecord, iter_trace_records


def event_time(record: TraceRecord) -> float:
    """The chronological sort key of a record: its start time."""
    if isinstance(record, ScreenSession):
        return record.start
    return record.time


@dataclass(frozen=True, slots=True)
class StreamEvent:
    """One record of a multi-user stream, tagged with its owner."""

    user_id: str
    time: float
    record: TraceRecord


def stream_trace(trace: Trace) -> Iterator[TraceRecord]:
    """All records of a trace in chronological (start-time) order.

    Sessions sort ahead of usages, and usages ahead of activities, on
    exact start-time ties (merge stability over source order) — the same
    precedence a phone's monitoring component would log them with.
    """
    return heapq.merge(
        trace.screen_sessions, trace.usages, trace.activities, key=event_time
    )


def stream_trace_jsonl(
    path, *, lenient: bool = False
) -> tuple[TraceHeader, Iterator[TraceRecord]]:
    """Chronological record stream from a trace JSONL file.

    Returns the validated header plus a lazy record iterator.  The file
    groups records by kind (sessions, then usages, then activities), so
    a chronological stream needs a three-way merge; each arm re-reads
    the file lazily, keeping memory at one record per kind instead of
    the whole trace.  With ``lenient`` malformed data lines are skipped,
    matching :func:`~repro.traces.io.trace_from_jsonl_lenient`.
    """

    def records_of(kind: type) -> Iterator[TraceRecord]:
        for record in iter_trace_records(path, lenient=lenient):
            if isinstance(record, kind):
                yield record

    probe = iter_trace_records(path, lenient=lenient)
    header = next(probe)
    assert isinstance(header, TraceHeader)
    probe.close()
    merged = heapq.merge(
        records_of(ScreenSession),
        records_of(AppUsage),
        records_of(NetworkActivity),
        key=event_time,
    )
    return header, merged


def merge_user_streams(
    streams: Mapping[str, Iterable[TraceRecord]],
) -> Iterator[StreamEvent]:
    """Interleave per-user record streams into one chronological stream.

    Holds one pending record per user — bounded memory no matter how
    many users or how long their histories.  Ties resolve by the
    mapping's iteration order (stable), so a fleet replay is fully
    deterministic.
    """

    def tagged(user_id: str, records: Iterable[TraceRecord]) -> Iterator[StreamEvent]:
        for record in records:
            yield StreamEvent(user_id=user_id, time=event_time(record), record=record)

    return heapq.merge(
        *(tagged(user_id, records) for user_id, records in streams.items()),
        key=lambda event: event.time,
    )
