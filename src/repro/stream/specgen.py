"""Lazy fleet spec source: seeded cohorts that never materialize.

:func:`iter_fleet_specs` yields the exact same
:class:`~repro.stream.fleet.FleetUserSpec` sequence as
:func:`repro.stream.experiment.fleet_specs` — same ids, same per-user
child seeds — but one spec at a time, so a million-user cohort costs a
few kilobytes of resident memory instead of a list of a million specs.
The per-user traces are rebuilt inside the workers from the spec seed
(:func:`repro.stream.fleet._spec_trace`), so the whole pipeline — spec
source, admission, streaming, pricing — is O(active users) end to end.

Determinism is the load-bearing property: the child seeds come from the
words of one ``numpy.random.SeedSequence`` stream, and a stream prefix
does not depend on how much of the stream is generated.  The generator
therefore draws seed words in fixed-size chunks (bounded memory) and
still produces, spec for spec, the same cohort the eager list would —
the byte-equality the fleet property tests pin.
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

from repro.stream.fleet import FleetUserSpec

#: Seed words drawn per chunk.  Small enough that resident memory stays
#: trivially bounded, large enough that the O(offset + chunk) cost of
#: re-deriving the stream prefix never matters.
_CHUNK = 4096


def iter_fleet_specs(
    *,
    seed: int,
    n_users: int,
    n_days: int,
    user_prefix: str = "stream-",
    start_weekday: int = 0,
) -> Iterator[FleetUserSpec]:
    """Yield ``n_users`` seeded persona specs without building the list.

    Spec ``i`` is identical to element ``i`` of
    ``fleet_specs(seed=seed, n_users=n_users, n_days=n_days)`` — same
    ``user_id`` (``stream-0000`` style), same child seed — for *any*
    ``n_users``, because a ``SeedSequence`` state stream's prefix is
    independent of its requested length.
    """
    if n_users < 0:
        raise ValueError(f"n_users must be >= 0, got {n_users}")
    sequence = np.random.SeedSequence(seed)
    for offset in range(0, n_users, _CHUNK):
        stop = min(offset + _CHUNK, n_users)
        # generate_state(k) returns the first k words of one fixed
        # stream, so slicing off the already-yielded prefix re-derives
        # exactly the words the eager path would have used.
        words = sequence.generate_state(stop)[offset:]
        for i, word in enumerate(words, start=offset):
            yield FleetUserSpec(
                user_id=f"{user_prefix}{i:04d}",
                n_days=n_days,
                seed=int(word),
                start_weekday=start_weekday,
            )
