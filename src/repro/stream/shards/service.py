"""Sharded durable fleet service: the fleet loop on top of shard WALs.

:class:`ShardedFleetService` makes the same admission and shedding
decisions as the plain :class:`~repro.stream.fleet.FleetService` — users
in spec order, batch-granular event budget, shed-whole semantics — while
every day a user closes is durably logged to that user's shard *before*
the service moves on.  Sharding is a durability and isolation concern,
not a scheduling one: the decisions (and hence the summaries) are
byte-identical to the single-process fleet at the same seeds, including
under load shedding.  Killing the process mid-fleet and constructing a
fresh service over the same root resumes exactly where the WALs end —
finished users are served from their logged summaries, the in-flight
user restarts from its last closed day, and untouched shards replay
nothing.

On top of the fleet semantics, shards add one orthogonal control: a
*per-shard* event budget (:attr:`ShardConfig.shard_event_budget`).  A
shard whose completed-event count has crossed the budget at the start of
a batch stops admitting new users — they are shed deterministically and
counted in ``shard.shed_users`` — while the other shards keep serving.
That is the failure-isolation story: one hot shard degrades alone.

Parallel mode (``jobs > 1``) fans user streams over the shared process
pool; workers *record* their day-close deltas instead of writing them,
and the parent appends every record to the owning shard in admission
order — the WALs end up byte-identical to a serial run.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from functools import partial
from itertools import islice
from pathlib import Path
from typing import Iterable

from repro.stream.fleet import (
    FleetConfig,
    FleetUserSpec,
    SummaryAccumulator,
    UserStreamSummary,
    _note_batch_rss,
    _shed_remaining,
    _spec_trace,
)
from repro.stream.rollup import FleetRollup, SummarySpill, read_spilled
from repro.stream.ingest import stream_trace
from repro.stream.online_netmaster import OnlineNetMaster
from repro.stream.shards.store import (
    RecoveryReport,
    ShardStore,
    UserShardState,
    shard_of,
)
from repro.telemetry import metrics, tracer
from repro.traces.events import Trace


@dataclass(frozen=True)
class ShardConfig:
    """Layout and budgets of the sharded store."""

    root: Path
    n_shards: int = 4
    #: Compact a shard once its WAL holds this many records.
    compact_every_records: int = 64
    #: fsync every WAL append (power-loss durability; slower).
    fsync: bool = False
    #: Completed events a single shard may hold before it stops
    #: admitting new users (``None`` = unbounded).  Orthogonal to the
    #: fleet-wide :attr:`~repro.stream.fleet.FleetConfig.event_budget`.
    shard_event_budget: int | None = None

    def __post_init__(self) -> None:
        object.__setattr__(self, "root", Path(self.root))
        if self.n_shards < 1:
            raise ValueError(f"n_shards must be >= 1, got {self.n_shards}")
        if self.shard_event_budget is not None and self.shard_event_budget < 0:
            raise ValueError(
                f"shard_event_budget must be >= 0, got {self.shard_event_budget}"
            )

    def shard_path(self, index: int) -> Path:
        return self.root / f"shard-{index:03d}"


class _RecordingSink:
    """Collects day-close payloads instead of writing them (for workers)."""

    def __init__(self) -> None:
        self.records: list[dict] = []

    def log_day(self, user_id: str, engine_state: dict, acc_state: dict) -> None:
        self.records.append(
            {"type": "day", "user_id": user_id, "engine": engine_state, "acc": acc_state}
        )

    def log_done(
        self, user_id: str, engine_state: dict, acc_state: dict, summary: dict
    ) -> None:
        self.records.append(
            {
                "type": "done",
                "user_id": user_id,
                "engine": engine_state,
                "acc": acc_state,
                "summary": summary,
            }
        )


def stream_user_durable(
    trace: Trace,
    *,
    config: FleetConfig,
    sink,
    resume: UserShardState | None = None,
    monitor=None,
    alert_log: list | None = None,
) -> UserStreamSummary:
    """Drive one user's stream, logging every day close to ``sink``.

    Mirrors :func:`repro.stream.fleet.stream_one_user` decision for
    decision (including the in-line checkpoint cadence), adding one
    side effect: after each completed day the engine and accumulator
    states go to ``sink.log_day`` — *after* any cadence round-trip, so a
    crash-resume replays the incremented checkpoint counter and stays
    byte-identical to the uninterrupted run.  With ``resume`` holding a
    prior day-close state, streaming restarts from the record after the
    last durable day (``engine.events`` counts observed records, so the
    resume offset is exact).

    ``monitor`` optionally attaches a
    :class:`~repro.monitor.feedback.UserMonitor`: each drained batch is
    fed *before* the cadence round-trip and the WAL append, so the
    logged engine state carries any quarantine window and a crash-resume
    keeps the hold.  Alerts are appended to ``alert_log``.  Monitor
    state itself is rebuilt fresh on resume (detector history restarts);
    a quiet monitor leaves the WAL bytes untouched.
    """
    if resume is not None and resume.resumable:
        engine = OnlineNetMaster.from_state(resume.engine_state)
        acc = SummaryAccumulator.from_state(resume.acc_state)
        stream = islice(stream_trace(trace), engine.events, None)
        metrics().inc("shard.resumed_users")
    else:
        engine = OnlineNetMaster(
            trace.user_id,
            config=config.netmaster,
            start_weekday=trace.start_weekday,
            train_days=config.train_days,
            update_model=config.update_model,
            window_days=config.window_days,
            decay=config.decay,
        )
        acc = SummaryAccumulator()
        stream = stream_trace(trace)
    power = config.netmaster.power
    every = config.checkpoint_every_days

    for record in stream:
        engine.observe(record)
        done = engine.drain()
        if done:
            priced = acc.consume(done, power)
            if monitor is not None:
                alerts = monitor.feed_days(engine, done, priced)
                if alert_log is not None:
                    alert_log.extend(alerts)
            if every and engine.days_executed % every == 0:
                engine = OnlineNetMaster.from_json(engine.to_json())
                acc.checkpoints += 1
            sink.log_day(trace.user_id, engine.state_dict(), acc.state_dict())
    final = engine.finish(trace.n_days)
    if final:
        priced = acc.consume(final, power)
        if monitor is not None:
            alerts = monitor.feed_days(engine, final, priced)
            if alert_log is not None:
                alert_log.extend(alerts)
    summary = acc.summary(engine, trace.n_days)
    sink.log_done(
        trace.user_id, engine.state_dict(), acc.state_dict(), summary.as_dict()
    )
    return summary


# ----------------------------------------------------------------------
# module-level workers (picklable for the process pool)
# ----------------------------------------------------------------------


def _make_monitor(spec: FleetUserSpec, config: FleetConfig):
    if config.monitor is None:
        return None
    from repro.monitor.feedback import UserMonitor

    return UserMonitor(spec.user_id, config.monitor)


def _stream_spec_durable(
    payload: tuple[FleetUserSpec, FleetConfig, dict | None],
) -> tuple[UserStreamSummary, list[dict], list]:
    spec, config, resume_doc = payload
    resume = None
    if resume_doc is not None:
        resume = UserShardState(
            user_id=spec.user_id,
            engine_state=resume_doc.get("engine"),
            acc_state=resume_doc.get("acc"),
        )
    sink = _RecordingSink()
    alerts: list = []
    summary = stream_user_durable(
        _spec_trace(spec),
        config=config,
        sink=sink,
        resume=resume,
        monitor=_make_monitor(spec, config),
        alert_log=alerts,
    )
    return summary, sink.records, alerts


def _stream_spec_durable_shipped(
    payload: tuple[FleetUserSpec, FleetConfig, dict | None],
    *,
    with_tracing: bool = True,
):
    from repro import telemetry

    with telemetry.isolated(with_tracing=with_tracing) as (registry, trc):
        summary, records, alerts = _stream_spec_durable(payload)
        return summary, records, alerts, registry.snapshot(), trc.export_spans()


@dataclass(frozen=True)
class ShardStats:
    """Durability accounting of one shard after a run."""

    shard: int
    users: int
    done_users: int
    events: int
    generation: int
    wal_records: int
    appends: int
    compactions: int
    shed_users: int


@dataclass(frozen=True)
class ShardedFleetResult:
    """Outcome of one sharded fleet run.

    Rollup-backed with exactly the
    :class:`~repro.stream.fleet.FleetResult` semantics — O(1) aggregate
    reads, summaries retained or spilled — plus the durability layer's
    accounting (per-shard stats, resumed/recovered user counts,
    shard-budget sheds).
    """

    rollup: FleetRollup
    elapsed_s: float
    resumed_users: int
    recovered_users: int
    shard_stats: tuple[ShardStats, ...]
    spill_path: Path | None = None
    retained: tuple[UserStreamSummary, ...] | None = None

    @property
    def summaries(self) -> tuple[UserStreamSummary, ...]:
        """Per-user summaries, from memory or the spill file."""
        if self.retained is not None:
            return self.retained
        if self.spill_path is not None:
            return read_spilled(self.spill_path)
        raise RuntimeError(
            "per-user summaries were neither retained nor spilled "
            "(retain_summaries=False and no summary_spill configured); "
            "only the rollup aggregates exist for this run"
        )

    @property
    def shed_users(self) -> int:
        """Users shed whole when the fleet event budget ran out."""
        return self.rollup.shed_users

    @property
    def shard_shed_users(self) -> int:
        """Users shed by their shard's own event budget."""
        return self.rollup.shard_shed_users

    @property
    def users(self) -> int:
        """Users fully streamed (admitted, not shed)."""
        return self.rollup.users

    @property
    def events(self) -> int:
        """Total events streamed across the fleet (O(1))."""
        return self.rollup.events

    @property
    def user_days_streamed(self) -> int:
        """Total days streamed through the engines (incl. training)."""
        return self.rollup.user_days

    @property
    def days_executed(self) -> int:
        """Causally executed (post-training) days across the fleet."""
        return self.rollup.days_executed

    @property
    def events_per_s(self) -> float:
        """Fleet-level streaming throughput."""
        if self.elapsed_s <= 0:
            return 0.0
        return self.events / self.elapsed_s


class ShardedFleetService:
    """Durable, crash-recoverable fleet over N WAL-backed shards."""

    def __init__(
        self, config: FleetConfig | None = None, *, shards: ShardConfig
    ) -> None:
        self.config = config or FleetConfig()
        self.shards = shards
        self.stores = [
            ShardStore(
                shards.shard_path(i),
                compact_every_records=shards.compact_every_records,
                fsync=shards.fsync,
            )
            for i in range(shards.n_shards)
        ]
        self.recoveries: tuple[RecoveryReport, ...] = ()

    def store_for(self, user_id: str) -> ShardStore:
        """The shard that owns ``user_id`` (pure routing function)."""
        return self.stores[shard_of(user_id, self.shards.n_shards)]

    def recover(self) -> tuple[RecoveryReport, ...]:
        """Replay every shard from disk; safe on an empty root."""
        trc = tracer()
        with trc.span("shard-recovery", "shards", shards=len(self.stores)):
            self.recoveries = tuple(store.recover() for store in self.stores)
        return self.recoveries

    def run(
        self,
        specs: Iterable[FleetUserSpec],
        *,
        jobs: int = 1,
        monitor=None,
    ) -> ShardedFleetResult:
        """Stream every admitted user durably; aggregates in spec order.

        The admission loop is the fleet loop: ``specs`` may be any
        iterable (a list or a lazy generator), windowed one ``islice``
        batch at a time, global event budget checked at batch starts,
        remaining users shed whole.  Users whose shard already holds
        their completed summary (prior run, recovered) are served from
        the log without recomputation — their events still count
        against the budget, so the decisions match an uninterrupted
        single run.

        Passing a :class:`~repro.monitor.sinks.MonitorHub` (or setting
        ``config.monitor``) attaches anomaly monitoring exactly as in
        :meth:`repro.stream.fleet.FleetService.run`; alerts publish to
        the hub in admission order, identical serial or parallel.
        """
        config = self.config
        if monitor is not None and config.monitor is None:
            from dataclasses import replace

            from repro.monitor.detectors import MonitorConfig

            config = replace(config, monitor=MonitorConfig())
        registry = metrics()
        start = time.perf_counter()
        rollup = FleetRollup()
        spill = (
            SummarySpill(config.summary_spill)
            if config.summary_spill is not None
            else None
        )
        retained: list[UserStreamSummary] | None = (
            [] if config.retain_summaries else None
        )
        resumed = 0
        recovered = 0
        high_water = 0
        source = iter(specs)
        try:
            while True:
                batch = list(islice(source, config.batch_size))
                if not batch:
                    break
                if (
                    config.event_budget is not None
                    and rollup.events >= config.event_budget
                ):
                    rollup.shed_users = _shed_remaining(batch, source)
                    registry.inc("stream.shed_users", rollup.shed_users)
                    break
                registry.inc("stream.batches")
                # Per-shard admission: budgets are read once, at the start
                # of the batch, so jobs=1 and jobs=N make the same calls.
                over_budget = self._over_budget_shards()
                slots: list[UserStreamSummary | None] = [None] * len(batch)
                todo: list[tuple[int, FleetUserSpec, dict | None]] = []
                for i, spec in enumerate(batch):
                    state = self.store_for(spec.user_id).get(spec.user_id)
                    if state is not None and state.done and state.summary is not None:
                        slots[i] = UserStreamSummary.from_dict(state.summary)
                        recovered += 1
                        continue
                    if shard_of(spec.user_id, self.shards.n_shards) in over_budget:
                        rollup.shard_shed_users += 1
                        registry.inc("shard.shed_users")
                        continue
                    resume_doc = None
                    if state is not None and state.resumable:
                        resume_doc = {
                            "engine": state.engine_state,
                            "acc": state.acc_state,
                        }
                        resumed += 1
                    todo.append((i, spec, resume_doc))
                alert_slots: list[list] = [[] for _ in batch]
                for i, summary, alerts in self._run_batch(todo, jobs, config):
                    slots[i] = summary
                    alert_slots[i] = alerts
                streamed = 0
                for i, summary in enumerate(slots):
                    if summary is None:
                        continue
                    streamed += 1
                    rollup.fold(summary)
                    if spill is not None:
                        spill.append(summary)
                    if retained is not None:
                        retained.append(summary)
                    if monitor is not None and alert_slots[i]:
                        monitor.publish_many(alert_slots[i])
                registry.inc("stream.users", streamed)
                high_water = _note_batch_rss(registry, len(batch), high_water)
        except BaseException:
            if spill is not None:
                spill.abort()
            raise
        spill_path = spill.close() if spill is not None else None
        if spill is not None:
            rollup.spilled = spill.count
        elapsed = time.perf_counter() - start
        return ShardedFleetResult(
            rollup=rollup,
            elapsed_s=elapsed,
            resumed_users=resumed,
            recovered_users=recovered,
            shard_stats=self.stats(rollup.shard_shed_users),
            spill_path=spill_path,
            retained=tuple(retained) if retained is not None else None,
        )

    def _over_budget_shards(self) -> frozenset[int]:
        budget = self.shards.shard_event_budget
        if budget is None:
            return frozenset()
        return frozenset(
            i for i, store in enumerate(self.stores) if store.events >= budget
        )

    def stats(self, shard_shed: int = 0) -> tuple[ShardStats, ...]:
        """Per-shard durability accounting (shed count is fleet-wide)."""
        out = []
        for i, store in enumerate(self.stores):
            users = store.users
            out.append(
                ShardStats(
                    shard=i,
                    users=len(users),
                    done_users=sum(1 for s in users.values() if s.done),
                    events=store.events,
                    generation=store.generation,
                    wal_records=store.wal_records,
                    appends=store.appends,
                    compactions=store.compactions,
                    shed_users=shard_shed,
                )
            )
        return tuple(out)

    # ------------------------------------------------------------------
    # batch execution
    # ------------------------------------------------------------------
    def _run_batch(
        self,
        todo: list[tuple[int, FleetUserSpec, dict | None]],
        jobs: int,
        config: FleetConfig,
    ) -> list[tuple[int, UserStreamSummary, list]]:
        if not todo:
            return []
        if jobs == 1 or len(todo) <= 1:
            out = []
            for i, spec, resume_doc in todo:
                store = self.store_for(spec.user_id)
                resume = store.get(spec.user_id) if resume_doc is not None else None
                alerts: list = []
                summary = stream_user_durable(
                    _spec_trace(spec),
                    config=config,
                    sink=store,
                    resume=resume,
                    monitor=_make_monitor(spec, config),
                    alert_log=alerts,
                )
                out.append((i, summary, alerts))
            return out
        return self._run_batch_parallel(todo, jobs, config)

    def _run_batch_parallel(
        self,
        todo: list[tuple[int, FleetUserSpec, dict | None]],
        jobs: int,
        config: FleetConfig,
    ) -> list[tuple[int, UserStreamSummary, list]]:
        from repro.runtime.parallel import shared_runner

        registry = metrics()
        trc = tracer()
        runner = shared_runner(jobs)
        payloads = [(spec, config, resume_doc) for _, spec, resume_doc in todo]
        if not (registry.enabled or trc.enabled):
            results = runner.map(_stream_spec_durable, payloads)
            shipped = [
                (summary, records, alerts, None, None)
                for summary, records, alerts in results
            ]
        else:
            fn = partial(_stream_spec_durable_shipped, with_tracing=trc.enabled)
            shipped = runner.map(fn, payloads)
        out: list[tuple[int, UserStreamSummary, list]] = []
        # Appends happen in admission order, so the WALs are
        # byte-identical to what a serial run would have written.
        for (i, spec, _), (summary, records, alerts, snap, spans) in zip(todo, shipped):
            if snap is not None:
                registry.merge_snapshot(snap)
            if spans is not None:
                trc.ingest(spans)
            store = self.store_for(spec.user_id)
            for record in records:
                store.append(record)
            out.append((i, summary, alerts))
        return out
