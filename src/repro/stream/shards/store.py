"""Sharded durable state store: snapshot + WAL generations per shard.

Disk layout of one shard directory::

    shard-000/
      MANIFEST.json          <- commit point (atomic os.replace)
      snapshot-00000003.json <- compacted state, sha256 in the manifest
      wal-00000003.jsonl     <- CRC-framed day-close records since the snapshot

The manifest names the current *generation*: one snapshot (absent at
generation 0) plus the WAL of everything since it.  Recovery is
``snapshot ∘ replay(WAL tail)`` — cost proportional to the records since
the last compaction, not to the shard's lifetime.  Compaction folds the
live state into a new snapshot generation and switches the manifest
atomically, so a crash at any byte of the process leaves either the old
generation or the new one, never a hybrid.

Fault tolerance is lenient by construction: a torn or corrupt WAL tail
is truncated back to the last durable record, a missing or corrupt
snapshot salvages whatever full states the WAL still holds, and a lost
manifest falls back to scanning the directory for the newest
generation.  Every salvage path logs a warning and is counted — nothing
in recovery raises for damaged state.

Telemetry: ``shard.recoveries``, ``wal.replayed_records``,
``compaction.runs`` (plus ``wal.appends`` from the WAL layer).
"""

from __future__ import annotations

import hashlib
import json
import logging
import re
from dataclasses import dataclass, field
from pathlib import Path

from repro._util import write_json_atomic, write_text_atomic
from repro.stream.shards.wal import append_record, read_wal, repair_wal
from repro.telemetry import metrics

logger = logging.getLogger(__name__)

MANIFEST_NAME = "MANIFEST.json"
_MANIFEST_FORMAT = 1
_SNAPSHOT_FORMAT = 1

_GENERATION_RE = re.compile(r"^(?:wal|snapshot)-(\d{8})\.(?:jsonl|json)$")


def shard_of(user_id: str, n_shards: int) -> int:
    """Deterministic user→shard routing (stable across processes).

    Uses SHA-256 rather than :func:`hash` so the routing survives
    interpreter restarts and ``PYTHONHASHSEED`` — a user's shard is a
    pure function of their id, forever.
    """
    if n_shards < 1:
        raise ValueError(f"n_shards must be >= 1, got {n_shards}")
    digest = hashlib.sha256(user_id.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big") % n_shards


@dataclass
class UserShardState:
    """One user's durable residue inside a shard.

    ``engine_state``/``acc_state`` are the JSON documents of the last
    day-close WAL record (or the final state for a ``done`` user);
    ``summary`` is the frozen fleet summary, present only once done.
    """

    user_id: str
    engine_state: dict | None = None
    acc_state: dict | None = None
    done: bool = False
    summary: dict | None = None

    @property
    def resumable(self) -> bool:
        """Whether a mid-stream resume can start from this state."""
        return not self.done and self.engine_state is not None


@dataclass(frozen=True)
class RecoveryReport:
    """What one :meth:`ShardStore.recover` call found and fixed."""

    existed: bool
    users: int = 0
    done_users: int = 0
    resumable_users: int = 0
    replayed_records: int = 0
    wal_damaged: bool = False
    issues: tuple[str, ...] = ()


@dataclass
class ShardStore:
    """Durable state of one shard: append-only WAL + compacted snapshots."""

    path: Path
    #: Compact (snapshot + new WAL generation) once the current WAL
    #: holds this many records.
    compact_every_records: int = 64
    #: fsync every WAL append (survives power loss, not just crashes).
    fsync: bool = False

    #: Records appended by this process (not counting replayed history).
    appends: int = field(default=0, init=False)
    #: Compactions run by this process.
    compactions: int = field(default=0, init=False)

    def __post_init__(self) -> None:
        self.path = Path(self.path)
        if self.compact_every_records < 1:
            raise ValueError(
                f"compact_every_records must be >= 1, got {self.compact_every_records}"
            )
        self._users: dict[str, UserShardState] = {}
        self._generation = 0
        self._wal_records = 0
        self._done_events = 0
        self._initialized = False

    # ------------------------------------------------------------------
    # paths
    # ------------------------------------------------------------------
    def _wal_path(self, generation: int) -> Path:
        return self.path / f"wal-{generation:08d}.jsonl"

    def _snapshot_path(self, generation: int) -> Path:
        return self.path / f"snapshot-{generation:08d}.json"

    @property
    def manifest_path(self) -> Path:
        return self.path / MANIFEST_NAME

    @property
    def wal_path(self) -> Path:
        """The live WAL file of the current generation."""
        return self._wal_path(self._generation)

    @property
    def generation(self) -> int:
        return self._generation

    @property
    def wal_records(self) -> int:
        """Records in the current WAL segment (replayed + appended)."""
        return self._wal_records

    # ------------------------------------------------------------------
    # live state
    # ------------------------------------------------------------------
    def get(self, user_id: str) -> UserShardState | None:
        """The durable state of one user (``None`` if never logged)."""
        return self._users.get(user_id)

    @property
    def users(self) -> dict[str, UserShardState]:
        """Live view of every user's durable state (do not mutate)."""
        return self._users

    @property
    def events(self) -> int:
        """Completed (done-user) events in this shard — the admission
        currency for per-shard load shedding.

        A running counter maintained as records fold in, so the
        per-batch budget read is O(1) instead of re-summing every done
        user's summary (O(users) per batch, O(users²) per run)."""
        return self._done_events

    @staticmethod
    def _summary_events(summary: dict | None) -> int:
        """Event count of a done-user summary (0 for damaged docs)."""
        if isinstance(summary, dict):
            try:
                return int(summary.get("events", 0))
            except (TypeError, ValueError):
                return 0
        return 0

    # ------------------------------------------------------------------
    # appends
    # ------------------------------------------------------------------
    def _ensure_initialized(self) -> None:
        if self._initialized:
            return
        self.path.mkdir(parents=True, exist_ok=True)
        if not self.manifest_path.exists():
            self._write_manifest(snapshot=None, snapshot_sha256=None)
        self._initialized = True

    def append(self, payload: dict) -> None:
        """Durably log one record, fold it in, maybe compact.

        The record is on disk (written + flushed) before the in-memory
        state changes — the WAL is *ahead* of everything else.
        """
        self._ensure_initialized()
        append_record(self.wal_path, payload, fsync=self.fsync)
        self.appends += 1
        self._wal_records += 1
        self._apply(payload, during_replay=False)
        if self._wal_records >= self.compact_every_records:
            self.compact()

    def log_day(self, user_id: str, engine_state: dict, acc_state: dict) -> None:
        """Log one day-close delta: the user's state after that day."""
        self.append(
            {
                "type": "day",
                "user_id": user_id,
                "engine": engine_state,
                "acc": acc_state,
            }
        )

    def log_done(
        self, user_id: str, engine_state: dict, acc_state: dict, summary: dict
    ) -> None:
        """Log a user's completion with their frozen summary."""
        self.append(
            {
                "type": "done",
                "user_id": user_id,
                "engine": engine_state,
                "acc": acc_state,
                "summary": summary,
            }
        )

    def _apply(self, payload: dict, *, during_replay: bool) -> None:
        kind = payload.get("type")
        user_id = payload.get("user_id")
        if not isinstance(user_id, str):
            if during_replay:
                logger.warning(
                    "shard %s: WAL record without user_id (type=%r); skipping",
                    self.path.name,
                    kind,
                )
                return
            raise ValueError(f"WAL payload has no user_id: {payload!r}")
        if kind == "day":
            self._users[user_id] = UserShardState(
                user_id=user_id,
                engine_state=payload.get("engine"),
                acc_state=payload.get("acc"),
            )
        elif kind == "done":
            # Eviction point: once a user is done, only the done flag
            # and the frozen summary stay resident — the engine and
            # accumulator states are durable in the WAL record just
            # written (or being replayed) and are never consulted again
            # (``resumable`` requires not-done).  This is what keeps a
            # long-lived shard's memory proportional to its *summaries*,
            # not its engines.
            prev = self._users.get(user_id)
            if prev is not None and prev.done:
                self._done_events -= self._summary_events(prev.summary)
            summary = payload.get("summary")
            self._users[user_id] = UserShardState(
                user_id=user_id,
                done=True,
                summary=summary,
            )
            self._done_events += self._summary_events(summary)
        elif during_replay:
            logger.warning(
                "shard %s: unknown WAL record type %r for user %s; skipping",
                self.path.name,
                kind,
                user_id,
            )
        else:
            raise ValueError(f"unknown WAL payload type: {kind!r}")

    # ------------------------------------------------------------------
    # compaction
    # ------------------------------------------------------------------
    def compact(self) -> None:
        """Fold WAL + snapshot into a new snapshot generation (atomic).

        Writes the new snapshot (content-hashed into the manifest),
        starts an empty WAL, switches the manifest with ``os.replace``
        — the commit point — and only then deletes the old generation's
        files.  Recovery after a crash anywhere in this sequence finds
        either the old complete generation or the new one.
        """
        self._ensure_initialized()
        old_generation = self._generation
        new_generation = old_generation + 1
        doc = {
            "format": _SNAPSHOT_FORMAT,
            "generation": new_generation,
            "users": {
                user_id: {
                    "engine": state.engine_state,
                    "acc": state.acc_state,
                    "done": state.done,
                    "summary": state.summary,
                }
                for user_id, state in sorted(self._users.items())
            },
        }
        body = json.dumps(doc, indent=1) + "\n"
        snapshot = self._snapshot_path(new_generation)
        write_text_atomic(snapshot, body)
        new_wal = self._wal_path(new_generation)
        new_wal.touch()
        self._write_manifest(
            snapshot=snapshot.name,
            snapshot_sha256=hashlib.sha256(body.encode("utf-8")).hexdigest(),
            generation=new_generation,
        )
        self._generation = new_generation
        self._wal_records = 0
        self.compactions += 1
        metrics().inc("compaction.runs")
        # Only now is the old generation garbage.
        self._wal_path(old_generation).unlink(missing_ok=True)
        self._snapshot_path(old_generation).unlink(missing_ok=True)

    def _write_manifest(
        self,
        *,
        snapshot: str | None,
        snapshot_sha256: str | None,
        generation: int | None = None,
    ) -> None:
        generation = self._generation if generation is None else generation
        write_json_atomic(
            self.manifest_path,
            {
                "format": _MANIFEST_FORMAT,
                "generation": generation,
                "snapshot": snapshot,
                "snapshot_sha256": snapshot_sha256,
                "wal": self._wal_path(generation).name,
            },
            indent=1,
        )

    # ------------------------------------------------------------------
    # recovery
    # ------------------------------------------------------------------
    def recover(self) -> RecoveryReport:
        """Rebuild the live state from disk: snapshot, then WAL tail.

        Never raises for damaged state — every salvage decision is
        logged, reported, and counted.  After recovery the WAL is
        repaired (truncated to its last durable record) so appends
        resume on a clean boundary.
        """
        issues: list[str] = []
        self._users = {}
        self._generation = 0
        self._wal_records = 0
        self._done_events = 0
        existed = self.path.is_dir() and any(self.path.iterdir())
        if not existed:
            self._initialized = False
            return RecoveryReport(existed=False)

        manifest = self._read_manifest(issues)
        if manifest is None:
            generation, snapshot_name, snapshot_sha = self._scan_fallback(issues)
        else:
            generation = int(manifest.get("generation", 0))
            snapshot_name = manifest.get("snapshot")
            snapshot_sha = manifest.get("snapshot_sha256")
        self._generation = generation

        if snapshot_name is not None:
            self._load_snapshot(snapshot_name, snapshot_sha, issues)

        result = read_wal(self.wal_path)
        if result.damaged:
            issues.append(f"WAL {self.wal_path.name}: {result.issue}")
            repair_wal(self.wal_path, result)
        for payload in result.records:
            self._apply(payload, during_replay=True)
        self._wal_records = len(result.records)
        metrics().inc("wal.replayed_records", len(result.records))
        metrics().inc("shard.recoveries")
        self._initialized = True

        report = RecoveryReport(
            existed=True,
            users=len(self._users),
            done_users=sum(1 for s in self._users.values() if s.done),
            resumable_users=sum(1 for s in self._users.values() if s.resumable),
            replayed_records=len(result.records),
            wal_damaged=result.damaged,
            issues=tuple(issues),
        )
        if issues:
            logger.warning(
                "shard %s recovered with %d issue(s): %s",
                self.path.name,
                len(issues),
                "; ".join(issues),
            )
        return report

    def _read_manifest(self, issues: list[str]) -> dict | None:
        try:
            manifest = json.loads(self.manifest_path.read_text())
        except FileNotFoundError:
            issues.append("manifest missing; scanning for the newest generation")
            return None
        except (OSError, json.JSONDecodeError) as exc:
            issues.append(
                f"manifest unreadable ({type(exc).__name__}: {exc}); "
                "scanning for the newest generation"
            )
            return None
        if (
            not isinstance(manifest, dict)
            or manifest.get("format") != _MANIFEST_FORMAT
        ):
            issues.append(
                f"manifest format {manifest.get('format') if isinstance(manifest, dict) else manifest!r} "
                f"unsupported (expected {_MANIFEST_FORMAT}); scanning for the newest generation"
            )
            return None
        return manifest

    def _scan_fallback(
        self, issues: list[str]
    ) -> tuple[int, str | None, str | None]:
        """Without a manifest, trust the newest generation on disk."""
        generations: set[int] = set()
        for entry in self.path.iterdir():
            match = _GENERATION_RE.match(entry.name)
            if match:
                generations.add(int(match.group(1)))
        if not generations:
            return 0, None, None
        generation = max(generations)
        snapshot = self._snapshot_path(generation)
        if snapshot.exists():
            # No manifest, so no recorded digest: load unverified.
            return generation, snapshot.name, None
        return generation, None, None

    def _load_snapshot(
        self, name: str, sha256: str | None, issues: list[str]
    ) -> None:
        path = self.path / name
        try:
            body = path.read_bytes()
        except FileNotFoundError:
            issues.append(
                f"snapshot {name} is missing; salvaging from the WAL tail only"
            )
            return
        except OSError as exc:
            issues.append(
                f"snapshot {name} unreadable ({exc}); salvaging from the WAL tail only"
            )
            return
        if sha256 is not None and hashlib.sha256(body).hexdigest() != sha256:
            issues.append(
                f"snapshot {name} failed its content hash; "
                "salvaging from the WAL tail only"
            )
            return
        try:
            doc = json.loads(body.decode("utf-8"))
            if doc.get("format") != _SNAPSHOT_FORMAT:
                raise ValueError(f"unsupported snapshot format {doc.get('format')!r}")
            users = doc["users"]
            if not isinstance(users, dict):
                raise ValueError("snapshot users is not an object")
        except (ValueError, KeyError, UnicodeDecodeError) as exc:
            issues.append(
                f"snapshot {name} corrupt ({type(exc).__name__}: {exc}); "
                "salvaging from the WAL tail only"
            )
            return
        for user_id, state in users.items():
            if bool(state.get("done", False)):
                # Same eviction as the live fold: done users keep only
                # their summary in memory (and in future snapshots).
                summary = state.get("summary")
                self._users[str(user_id)] = UserShardState(
                    user_id=str(user_id), done=True, summary=summary
                )
                self._done_events += self._summary_events(summary)
            else:
                self._users[str(user_id)] = UserShardState(
                    user_id=str(user_id),
                    engine_state=state.get("engine"),
                    acc_state=state.get("acc"),
                )
