"""The crash-recovery experiment behind ``python -m repro shards``.

Runs the fleet twice over the same sharded store root:

1. **first pass** — the first half of the fleet streams durably, then
   the service object is dropped on the floor (standing in for a crash:
   nothing is flushed or closed beyond what every day-close append
   already made durable);
2. **recovery pass** — a brand-new service over the same root replays
   every shard (snapshot + WAL tail) and runs the *full* fleet: the
   first half is served straight from the logs, the second half streams
   fresh.

The recovered fleet is then compared field-for-field against an
uninterrupted single-process :class:`~repro.stream.fleet.FleetService`
run — the experiment's headline, ``matches_baseline``, is the
durability contract of the shards layer: a crash plus recovery is
observationally identical to never having crashed.
"""

from __future__ import annotations

import tempfile
import time
from dataclasses import dataclass
from pathlib import Path

from repro.stream.experiment import (
    DEFAULT_DAYS,
    DEFAULT_SEED,
    DEFAULT_TRAIN_DAYS,
    DEFAULT_USERS,
    fleet_specs,
)
from repro.stream.fleet import FleetConfig, FleetService
from repro.stream.shards.service import ShardConfig, ShardedFleetService
from repro.telemetry import tracer


@dataclass(frozen=True)
class ShardsResult:
    """Everything the sharded crash-recovery experiment measured."""

    n_users: int
    n_days: int
    train_days: int
    n_shards: int
    users_streamed: int
    events: int
    events_per_s: float
    elapsed_s: float
    first_pass_users: int
    recovered_users: int
    resumed_users: int
    replayed_records: int
    recovery_s: float
    wal_appends: int
    compactions: int
    matches_baseline: bool


def shards_experiment(
    *,
    seed: int = DEFAULT_SEED,
    n_users: int = DEFAULT_USERS,
    n_days: int = DEFAULT_DAYS,
    train_days: int = DEFAULT_TRAIN_DAYS,
    n_shards: int = 4,
    compact_every_records: int = 64,
    checkpoint_every_days: int | None = 2,
    jobs: int = 1,
    root: str | Path | None = None,
) -> ShardsResult:
    """Sharded durable fleet: crash, recover, equal the unbroken run."""
    config = FleetConfig(
        train_days=train_days, checkpoint_every_days=checkpoint_every_days
    )
    specs = fleet_specs(seed=seed, n_users=n_users, n_days=n_days)
    trc = tracer()

    tmp = None
    if root is None:
        tmp = tempfile.TemporaryDirectory(prefix="repro-shards-")
        root = tmp.name
    try:
        shards = ShardConfig(
            root=Path(root),
            n_shards=n_shards,
            compact_every_records=compact_every_records,
        )

        first_half = specs[: max(1, n_users // 2)]
        with trc.span("shards-first-pass", "shards", users=len(first_half)):
            first = ShardedFleetService(config, shards=shards)
            first.run(first_half, jobs=jobs)
        # The first service is simply abandoned here — every durable
        # byte it will ever contribute is already on disk.

        second = ShardedFleetService(config, shards=shards)
        t0 = time.perf_counter()
        reports = second.recover()
        recovery_s = time.perf_counter() - t0
        with trc.span("shards-recovered-run", "shards", users=n_users):
            result = second.run(specs, jobs=jobs)

        with trc.span("shards-baseline", "shards", users=n_users):
            baseline = FleetService(config).run(specs, jobs=jobs)

        return ShardsResult(
            n_users=n_users,
            n_days=n_days,
            train_days=train_days,
            n_shards=n_shards,
            users_streamed=result.users,
            events=result.events,
            events_per_s=result.events_per_s,
            elapsed_s=result.elapsed_s,
            first_pass_users=len(first_half),
            recovered_users=result.recovered_users,
            resumed_users=result.resumed_users,
            replayed_records=sum(r.replayed_records for r in reports),
            recovery_s=recovery_s,
            wal_appends=sum(store.appends for store in first.stores)
            + sum(store.appends for store in second.stores),
            compactions=sum(store.compactions for store in first.stores)
            + sum(store.compactions for store in second.stores),
            matches_baseline=result.summaries == baseline.summaries,
        )
    finally:
        if tmp is not None:
            tmp.cleanup()
