"""Sharded durable fleet state: per-shard WAL, snapshots, recovery.

Users hash deterministically onto N shards (:func:`shard_of`); each
shard owns an append-only CRC-framed write-ahead log of day-close
deltas, periodically compacted into content-hashed snapshots
(:class:`ShardStore`).  :class:`ShardedFleetService` runs the fleet
admission loop on top — byte-identical decisions to the plain
:class:`~repro.stream.fleet.FleetService`, plus crash recovery and
per-shard load shedding.  See DESIGN.md, "Durability architecture".
"""

from repro.stream.shards.experiment import ShardsResult, shards_experiment
from repro.stream.shards.service import (
    ShardConfig,
    ShardedFleetResult,
    ShardedFleetService,
    ShardStats,
    stream_user_durable,
)
from repro.stream.shards.store import (
    RecoveryReport,
    ShardStore,
    UserShardState,
    shard_of,
)
from repro.stream.shards.wal import (
    WalReadResult,
    append_record,
    decode_record,
    encode_record,
    read_wal,
    repair_wal,
)

__all__ = [
    "RecoveryReport",
    "ShardConfig",
    "ShardStats",
    "ShardStore",
    "ShardedFleetResult",
    "ShardedFleetService",
    "ShardsResult",
    "UserShardState",
    "WalReadResult",
    "append_record",
    "decode_record",
    "encode_record",
    "read_wal",
    "repair_wal",
    "shard_of",
    "shards_experiment",
    "stream_user_durable",
]
