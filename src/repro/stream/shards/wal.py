"""Per-shard write-ahead log: CRC-framed, append-only, torn-tail safe.

One WAL is one JSON-lines file; each line frames a single record as

    ``<crc32-hex8> <canonical-json-payload>``

where the checksum covers the exact payload bytes.  The framing buys the
two properties the durability layer is built on:

* **append is the only mutation** — a record, once written and flushed,
  is never rewritten, so the prefix of the file up to the last complete
  line is immutable history;
* **damage is detectable and local** — a torn final write (process
  killed mid-``write``), a truncated file, or a flipped byte fails the
  CRC (or the line framing) at a specific record, and everything before
  it is still trustworthy.  :func:`read_wal` therefore always returns
  the longest valid prefix plus a description of the damage, and
  :func:`repair_wal` truncates the file back to that prefix so appends
  can resume on a clean boundary.

Every append increments the ``wal.appends`` telemetry counter; replay
accounting (``wal.replayed_records``) lives with the recovery path in
:mod:`repro.stream.shards.store`.
"""

from __future__ import annotations

import json
import logging
import os
import signal
import zlib
from dataclasses import dataclass
from pathlib import Path

from repro.telemetry import metrics

logger = logging.getLogger(__name__)

#: Test/CI hook: when set to an integer N, the process SIGKILLs itself
#: after the N-th WAL append — a real mid-run crash for recovery drills
#: (see ``repro.stream.crash_demo``).  Unset (the default) costs one
#: environment lookup per append and changes nothing.
KILL_AFTER_ENV = "REPRO_WAL_KILL_AFTER"

_appends_this_process = 0


def encode_record(payload: dict) -> str:
    """One WAL line (no trailing newline) framing ``payload``."""
    body = json.dumps(payload, separators=(",", ":"))
    crc = zlib.crc32(body.encode("utf-8")) & 0xFFFFFFFF
    return f"{crc:08x} {body}"


def decode_record(line: bytes) -> dict:
    """Parse one WAL line; raises :class:`ValueError` on any damage."""
    crc_hex, sep, body = line.partition(b" ")
    if not sep or len(crc_hex) != 8:
        raise ValueError("malformed WAL frame (missing checksum prefix)")
    try:
        expected = int(crc_hex, 16)
    except ValueError:
        raise ValueError("malformed WAL frame (non-hex checksum)") from None
    if zlib.crc32(body) & 0xFFFFFFFF != expected:
        raise ValueError("WAL record failed its CRC check")
    payload = json.loads(body.decode("utf-8"))
    if not isinstance(payload, dict):
        raise ValueError("WAL payload is not a JSON object")
    return payload


def _maybe_kill() -> None:
    """SIGKILL this process when the crash-drill env threshold is hit."""
    global _appends_this_process
    raw = os.environ.get(KILL_AFTER_ENV)
    if not raw:
        return
    try:
        limit = int(raw)
    except ValueError:
        logger.warning("%s=%r is not an integer; ignoring", KILL_AFTER_ENV, raw)
        return
    _appends_this_process += 1
    if _appends_this_process >= limit:
        logger.warning(
            "%s=%d reached after %d appends; SIGKILLing self (crash drill)",
            KILL_AFTER_ENV,
            limit,
            _appends_this_process,
        )
        os.kill(os.getpid(), signal.SIGKILL)


def append_record(path: str | Path, payload: dict, *, fsync: bool = False) -> None:
    """Durably append one record to the WAL at ``path``.

    The line is written and flushed in one call; with ``fsync`` the
    kernel is also asked to reach the platter before returning (slower,
    but survives power loss as well as process death).
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with open(path, "a", encoding="utf-8") as fh:
        fh.write(encode_record(payload) + "\n")
        fh.flush()
        if fsync:
            os.fsync(fh.fileno())
    metrics().inc("wal.appends")
    _maybe_kill()


@dataclass(frozen=True)
class WalReadResult:
    """The longest valid prefix of a WAL plus damage diagnostics."""

    records: tuple[dict, ...]
    #: Byte offset of the end of the last valid record (truncation point).
    good_bytes: int
    #: Whether anything after the valid prefix was damaged or torn.
    damaged: bool = False
    issue: str | None = None


def read_wal(path: str | Path) -> WalReadResult:
    """Read every valid record from the start of the WAL.

    A missing file is an empty (undamaged) log.  Parsing stops at the
    first damaged line — a torn final write, a truncated record, or a
    corrupt byte — and reports it; records before the damage are
    returned and remain authoritative.
    """
    path = Path(path)
    try:
        data = path.read_bytes()
    except FileNotFoundError:
        return WalReadResult(records=(), good_bytes=0)
    records: list[dict] = []
    pos = 0
    while pos < len(data):
        newline = data.find(b"\n", pos)
        if newline == -1:
            return WalReadResult(
                records=tuple(records),
                good_bytes=pos,
                damaged=True,
                issue=f"torn final write: record {len(records) + 1} has no "
                f"line terminator ({len(data) - pos} trailing bytes)",
            )
        try:
            records.append(decode_record(data[pos:newline]))
        except ValueError as exc:
            return WalReadResult(
                records=tuple(records),
                good_bytes=pos,
                damaged=True,
                issue=f"record {len(records) + 1} is damaged: {exc}",
            )
        pos = newline + 1
    return WalReadResult(records=tuple(records), good_bytes=pos)


def repair_wal(path: str | Path, result: WalReadResult) -> bool:
    """Truncate a damaged WAL back to its last valid record.

    Returns whether a truncation happened.  After repair, appends
    continue on a clean line boundary and a subsequent
    :func:`read_wal` sees no damage.
    """
    if not result.damaged:
        return False
    path = Path(path)
    with open(path, "r+b") as fh:
        fh.truncate(result.good_bytes)
    logger.warning(
        "WAL %s repaired: truncated to %d bytes (%d records) — %s",
        path,
        result.good_bytes,
        len(result.records),
        result.issue,
    )
    return True
