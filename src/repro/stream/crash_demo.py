"""A real kill-mid-run crash drill for the sharded fleet.

``python -m repro.stream.crash_demo`` spawns a child interpreter that
streams a small fleet durably with ``REPRO_WAL_KILL_AFTER=N`` set, so
the child SIGKILLs *itself* after its N-th WAL append — no cooperation,
no atexit handlers, no flushes beyond what every append already did.
The parent then recovers the shards in-process, finishes the fleet, and
asserts the summaries equal an uninterrupted run.

This is the script behind the CI ``recovery-smoke`` job and the
EXPERIMENTS.md crash-recovery recipe; the same machinery is unit-tested
in ``tests/stream/test_restart.py``.
"""

from __future__ import annotations

import argparse
import os
import signal
import subprocess
import sys
from dataclasses import dataclass
from pathlib import Path

from repro.stream.experiment import fleet_specs
from repro.stream.fleet import FleetConfig, FleetService
from repro.stream.shards import ShardConfig, ShardedFleetService
from repro.stream.shards.wal import KILL_AFTER_ENV

DEFAULT_SEED = 617
DEFAULT_USERS = 6
DEFAULT_DAYS = 9
DEFAULT_TRAIN_DAYS = 7
DEFAULT_SHARDS = 2
DEFAULT_KILL_AFTER = 5


@dataclass(frozen=True)
class CrashDrillReport:
    """What one parent-side crash drill observed."""

    child_exit: int
    killed_by_sigkill: bool
    recovered_shards: int
    replayed_records: int
    damaged_wals: int
    resumed_users: int
    recovered_users: int
    matches_baseline: bool

    @property
    def ok(self) -> bool:
        """The drill's pass condition: a real SIGKILL, then equality."""
        return self.killed_by_sigkill and self.matches_baseline


def _config(train_days: int) -> FleetConfig:
    return FleetConfig(train_days=train_days, checkpoint_every_days=2, batch_size=4)


def _shards(root: Path, n_shards: int) -> ShardConfig:
    return ShardConfig(root=root, n_shards=n_shards, compact_every_records=16)


def run_child(
    root: Path,
    *,
    seed: int,
    n_users: int,
    n_days: int,
    train_days: int,
    n_shards: int,
) -> None:
    """The victim: stream the fleet durably until the kill switch fires."""
    specs = fleet_specs(seed=seed, n_users=n_users, n_days=n_days)
    service = ShardedFleetService(_config(train_days), shards=_shards(root, n_shards))
    service.recover()
    service.run(specs)


def run_crash_drill(
    root: str | Path,
    *,
    seed: int = DEFAULT_SEED,
    n_users: int = DEFAULT_USERS,
    n_days: int = DEFAULT_DAYS,
    train_days: int = DEFAULT_TRAIN_DAYS,
    n_shards: int = DEFAULT_SHARDS,
    kill_after: int = DEFAULT_KILL_AFTER,
) -> CrashDrillReport:
    """Kill a child fleet mid-run, recover its shards, prove equality."""
    root = Path(root)
    child_args = [
        sys.executable,
        "-m",
        "repro.stream.crash_demo",
        "--child",
        "--root",
        str(root),
        "--seed",
        str(seed),
        "--users",
        str(n_users),
        "--days",
        str(n_days),
        "--train-days",
        str(train_days),
        "--shards",
        str(n_shards),
    ]
    env = dict(os.environ, **{KILL_AFTER_ENV: str(kill_after)})
    proc = subprocess.run(child_args, env=env, capture_output=True, text=True)
    killed = proc.returncode == -signal.SIGKILL

    service = ShardedFleetService(
        _config(train_days), shards=_shards(root, n_shards)
    )
    reports = service.recover()
    specs = fleet_specs(seed=seed, n_users=n_users, n_days=n_days)
    result = service.run(specs)
    baseline = FleetService(_config(train_days)).run(specs)
    return CrashDrillReport(
        child_exit=proc.returncode,
        killed_by_sigkill=killed,
        recovered_shards=sum(1 for r in reports if r.existed),
        replayed_records=sum(r.replayed_records for r in reports),
        damaged_wals=sum(1 for r in reports if r.wal_damaged),
        resumed_users=result.resumed_users,
        recovered_users=result.recovered_users,
        matches_baseline=result.summaries == baseline.summaries,
    )


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.stream.crash_demo",
        description="SIGKILL a durable fleet mid-run, recover, verify.",
    )
    parser.add_argument("--root", required=True, help="shard store directory")
    parser.add_argument("--seed", type=int, default=DEFAULT_SEED)
    parser.add_argument("--users", type=int, default=DEFAULT_USERS)
    parser.add_argument("--days", type=int, default=DEFAULT_DAYS)
    parser.add_argument("--train-days", type=int, default=DEFAULT_TRAIN_DAYS)
    parser.add_argument("--shards", type=int, default=DEFAULT_SHARDS)
    parser.add_argument(
        "--kill-after",
        type=int,
        default=DEFAULT_KILL_AFTER,
        metavar="N",
        help="child SIGKILLs itself after its N-th WAL append",
    )
    parser.add_argument(
        "--child", action="store_true", help=argparse.SUPPRESS
    )
    args = parser.parse_args(argv)

    if args.child:
        run_child(
            Path(args.root),
            seed=args.seed,
            n_users=args.users,
            n_days=args.days,
            train_days=args.train_days,
            n_shards=args.shards,
        )
        # Reaching here means the kill threshold was never hit.
        print("child finished without being killed", file=sys.stderr)
        return 0

    report = run_crash_drill(
        args.root,
        seed=args.seed,
        n_users=args.users,
        n_days=args.days,
        train_days=args.train_days,
        n_shards=args.shards,
        kill_after=args.kill_after,
    )
    print(f"child exit code     : {report.child_exit} (SIGKILL={report.killed_by_sigkill})")
    print(f"recovered shards    : {report.recovered_shards}")
    print(f"replayed records    : {report.replayed_records}")
    print(f"damaged WALs        : {report.damaged_wals}")
    print(f"resumed users       : {report.resumed_users}")
    print(f"recovered users     : {report.recovered_users}")
    print(f"matches baseline    : {report.matches_baseline}")
    if not report.ok:
        print("CRASH DRILL FAILED", file=sys.stderr)
        return 1
    print("crash drill passed: kill + recovery == uninterrupted run")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
