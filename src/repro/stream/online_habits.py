"""Incremental habit mining: the offline fit, one event at a time.

:class:`OnlineHabitModel` consumes a chronological record stream and
maintains exactly the per-day hour-level rows the offline fit
(:meth:`repro.habits.prediction.HabitModel._fit`) derives from a full
trace: screen-use indicators, screen-off network counts/bytes/seconds,
and screen-on seconds.  The arithmetic below is a literal port of the
matrix builders in :mod:`repro.habits.intensity` and
:mod:`repro.habits.prediction` — same operations, same order, same
scalars — so after streaming a complete history and closing every day,
:meth:`OnlineHabitModel.to_model` reproduces ``HabitModel.fit`` on that
history **bit-exactly** (``habit_models_equal`` exact-byte equality).

Causality: contributions land in *pending* per-day rows as events
arrive; a day only influences :meth:`to_model` once it is *closed*
(:meth:`close_day`), which the scheduling layer does at day boundaries.
Closing also emits a drift score — how far the finished day's screen-use
row sits from the learned profile — so a fleet can flag users whose
habits are moving away from their model.

Retention is configurable: the default keeps every closed day (the
bit-exact mode); ``window_days`` keeps a sliding window per day type;
``decay`` replaces storage entirely with exponentially-weighted sums.
Both alternatives trade exact offline parity for adaptivity.
"""

from __future__ import annotations

from collections import deque
from typing import Iterable

import numpy as np

from repro._util import DAY, HOUR, HOURS_PER_DAY, is_weekend
from repro.habits.prediction import HabitModel
from repro.habits.special_apps import SpecialAppRegistry
from repro.telemetry import metrics
from repro.traces.events import AppUsage, NetworkActivity, ScreenSession
from repro.traces.io import TraceRecord

_STATE_FORMAT = 1

#: The five per-day row kinds feeding the fitted model's statistics.
_KINDS = ("use", "net_counts", "net_bytes", "net_seconds", "screen_seconds")

#: Default drift level that counts as an alert (mean absolute deviation
#: of a day's 0/1 screen-use row from the learned hour probabilities; a
#: fully habitual day scores near the profile's own variance, a fully
#: out-of-profile day approaches 1.0).
DEFAULT_DRIFT_THRESHOLD = 0.5


def _zero_rows() -> dict[str, np.ndarray]:
    return {kind: np.zeros(HOURS_PER_DAY, dtype=np.float64) for kind in _KINDS}


class OnlineHabitModel:
    """Streaming accumulator equivalent to the offline habit fit.

    Feed records with :meth:`observe` (in chronological order), close
    days with :meth:`close_day` as stream time crosses midnights, and
    materialize the current model with :meth:`to_model`.  All state is
    JSON-checkpointable via :meth:`state_dict`/:meth:`load_state` with
    exact float round-trip.
    """

    def __init__(
        self,
        user_id: str,
        *,
        start_weekday: int = 0,
        window_days: int | None = None,
        decay: float | None = None,
        drift_threshold: float = DEFAULT_DRIFT_THRESHOLD,
    ) -> None:
        if not 0 <= start_weekday < 7:
            raise ValueError(f"start_weekday must be in [0, 7), got {start_weekday}")
        if window_days is not None and window_days < 1:
            raise ValueError(f"window_days must be >= 1, got {window_days}")
        if decay is not None and not 0.0 < decay <= 1.0:
            raise ValueError(f"decay must be in (0, 1], got {decay}")
        if window_days is not None and decay is not None:
            raise ValueError("window_days and decay are mutually exclusive")
        self.user_id = user_id
        self.start_weekday = int(start_weekday)
        self.window_days = window_days
        self.decay = decay
        self.drift_threshold = float(drift_threshold)
        #: Next day index to close; days close strictly in order.
        self.next_day = 0
        #: When frozen, :meth:`close_day` still scores drift but folds
        #: nothing — the model stops learning (fixed-model deployments).
        self.frozen = False
        self.last_drift = 0.0
        self.drift_alerts = 0
        # Open (pending) per-day state: rows + special-app observations.
        self._pending_rows: dict[int, dict[str, np.ndarray]] = {}
        self._pending_apps: dict[int, dict] = {}
        # Closed-day state per day type.
        self._counts = {"weekday": 0, "weekend": 0}
        if decay is None:
            maxlen = window_days  # None → unbounded (bit-exact mode)
            self._rows = {
                "weekday": deque(maxlen=maxlen),
                "weekend": deque(maxlen=maxlen),
            }
            self._sums = self._weights = None
        else:
            self._rows = None
            self._sums = {"weekday": _zero_rows(), "weekend": _zero_rows()}
            self._weights = {"weekday": 0.0, "weekend": 0.0}
        # Special-app knowledge from closed days only.
        self._used: set[str] = set()
        self._networked: set[str] = set()
        self._usage_counts: dict[str, int] = {}

    # ------------------------------------------------------------------
    # observation (one event at a time)
    # ------------------------------------------------------------------
    def observe(self, record: TraceRecord) -> None:
        """Fold one record into the pending per-day rows."""
        if isinstance(record, ScreenSession):
            self.observe_session(record)
        elif isinstance(record, AppUsage):
            self.observe_usage(record)
        elif isinstance(record, NetworkActivity):
            self.observe_activity(record)
        else:  # pragma: no cover - TraceRecord is a closed union
            raise TypeError(f"not a trace record: {type(record).__name__}")

    def observe_many(self, records: Iterable[TraceRecord]) -> None:
        """Fold a chronological record iterable."""
        for record in records:
            self.observe(record)

    def _rows_for(self, day: int) -> dict[str, np.ndarray]:
        rows = self._pending_rows.get(day)
        if rows is None:
            rows = self._pending_rows[day] = _zero_rows()
        return rows

    def _apps_for(self, day: int) -> dict:
        apps = self._pending_apps.get(day)
        if apps is None:
            apps = self._pending_apps[day] = {"usage_counts": {}, "networked": set()}
        return apps

    def observe_session(self, session: ScreenSession) -> None:
        """Port of the screen-use and screen-seconds matrix walks."""
        # screen_use_matrix: binary used-in-hour indicators.
        t = session.start
        last = max(session.start, session.end - 1e-9)
        while True:
            day = int(t // DAY)
            hour = int((t % DAY) // HOUR)
            self._rows_for(day)["use"][hour] = 1.0
            next_bin = (np.floor(t / 3600.0) + 1.0) * 3600.0
            if next_bin > last:
                break
            t = next_bin
        # _screen_seconds_matrix: seconds of screen-on per hour cell.
        t = session.start
        while t < session.end:
            day = int(t // DAY)
            hour = int((t % DAY) // HOUR)
            bin_end = (np.floor(t / HOUR) + 1.0) * HOUR
            seg_end = min(session.end, bin_end)
            self._rows_for(day)["screen_seconds"][hour] += seg_end - t
            t = seg_end

    def observe_usage(self, usage: AppUsage) -> None:
        """Foreground interaction: special-app evidence only."""
        day = int(usage.time // DAY)
        counts = self._apps_for(day)["usage_counts"]
        counts[usage.app] = counts.get(usage.app, 0) + 1

    def observe_activity(self, activity: NetworkActivity) -> None:
        """Port of the network count/bytes/seconds matrix updates."""
        day = int(activity.time // DAY)
        self._apps_for(day)["networked"].add(activity.app)
        if activity.screen_on:
            return
        hour = int((activity.time % DAY) // HOUR)
        rows = self._rows_for(day)
        rows["net_counts"][hour] += 1.0
        rows["net_bytes"][hour] += activity.total_bytes
        rows["net_seconds"][hour] += activity.duration

    # ------------------------------------------------------------------
    # day boundaries
    # ------------------------------------------------------------------
    def is_weekend_day(self, day: int) -> bool:
        """Whether stream day ``day`` is a Saturday or Sunday."""
        return is_weekend(day, self.start_weekday)

    def close_day(self, day: int) -> float:
        """Fold the finished day into the model; returns its drift score.

        Days close strictly in order.  Events of later days may already
        sit in pending rows (a midnight-crossing session writes ahead);
        they stay pending until their own day closes.
        """
        if day != self.next_day:
            raise ValueError(f"days close in order; expected {self.next_day}, got {day}")
        self.next_day += 1
        rows = self._pending_rows.pop(day, None) or _zero_rows()
        apps = self._pending_apps.pop(day, None)
        daytype = "weekend" if self.is_weekend_day(day) else "weekday"

        drift = self._score_drift(rows["use"], daytype)
        self.last_drift = drift
        if self._counts[daytype] > 0 and drift > self.drift_threshold:
            self.drift_alerts += 1
            metrics().inc("stream.drift_alerts")
        metrics().inc("stream.habit_days_closed")

        if self.frozen:
            return drift
        self._counts[daytype] += 1
        if self.decay is None:
            self._rows[daytype].append(rows)
        else:
            sums, g = self._sums[daytype], self.decay
            for kind in _KINDS:
                sums[kind] = sums[kind] * g + rows[kind]
            self._weights[daytype] = self._weights[daytype] * g + 1.0
        if apps is not None:
            for app, n in apps["usage_counts"].items():
                self._used.add(app)
                self._usage_counts[app] = self._usage_counts.get(app, 0) + n
            self._networked.update(apps["networked"])
        return drift

    def close_through(self, day: int) -> None:
        """Close every still-open day strictly before ``day``."""
        while self.next_day < day:
            self.close_day(self.next_day)

    def _score_drift(self, use_row: np.ndarray, daytype: str) -> float:
        """Mean absolute deviation of a day's use row from the profile."""
        if self._counts[daytype] == 0:
            return 0.0
        return float(np.abs(use_row - self._mean(daytype, "use")).mean())

    # ------------------------------------------------------------------
    # materialization
    # ------------------------------------------------------------------
    def _mean(self, daytype: str, kind: str) -> np.ndarray:
        if self.decay is not None:
            weight = self._weights[daytype]
            if weight == 0.0:
                return np.zeros(HOURS_PER_DAY)
            return self._sums[daytype][kind] / weight
        rows = self._rows[daytype]
        if not rows:
            return np.zeros(HOURS_PER_DAY)
        # np.stack yields the same C-contiguous (k, 24) float64 block the
        # offline fit's boolean row-indexing does, so mean(axis=0) is the
        # identical reduction — this is the bit-exactness linchpin.
        return np.stack([day_rows[kind] for day_rows in rows]).mean(axis=0)

    @property
    def n_weekdays(self) -> int:
        """Closed weekdays folded into the model."""
        return self._counts["weekday"]

    @property
    def n_weekends(self) -> int:
        """Closed weekend days folded into the model."""
        return self._counts["weekend"]

    def registry(self) -> SpecialAppRegistry:
        """Special-app registry from the closed days."""
        return SpecialAppRegistry(
            special=self._used & self._networked,
            seen=self._used | self._networked,
            usage_counts=dict(self._usage_counts),
        )

    def to_model(self) -> HabitModel:
        """The fitted model as of the last closed day."""
        return HabitModel(
            user_id=self.user_id,
            n_weekdays=self.n_weekdays,
            n_weekends=self.n_weekends,
            weekday_user_probs=self._mean("weekday", "use"),
            weekend_user_probs=self._mean("weekend", "use"),
            weekday_net_counts=self._mean("weekday", "net_counts"),
            weekend_net_counts=self._mean("weekend", "net_counts"),
            weekday_net_bytes=self._mean("weekday", "net_bytes"),
            weekend_net_bytes=self._mean("weekend", "net_bytes"),
            weekday_net_seconds=self._mean("weekday", "net_seconds"),
            weekend_net_seconds=self._mean("weekend", "net_seconds"),
            weekday_screen_seconds=self._mean("weekday", "screen_seconds"),
            weekend_screen_seconds=self._mean("weekend", "screen_seconds"),
            special_apps=self.registry(),
        )

    # ------------------------------------------------------------------
    # checkpointing
    # ------------------------------------------------------------------
    def state_dict(self) -> dict:
        """All mutable state as JSON-safe values (exact float round-trip)."""

        def rows_out(rows: dict[str, np.ndarray]) -> dict:
            return {kind: [float(v) for v in rows[kind]] for kind in _KINDS}

        state: dict = {
            "format": _STATE_FORMAT,
            "user_id": self.user_id,
            "start_weekday": self.start_weekday,
            "window_days": self.window_days,
            "decay": self.decay,
            "drift_threshold": self.drift_threshold,
            "next_day": self.next_day,
            "frozen": self.frozen,
            "last_drift": self.last_drift,
            "drift_alerts": self.drift_alerts,
            "counts": dict(self._counts),
            "pending_rows": {str(d): rows_out(r) for d, r in self._pending_rows.items()},
            "pending_apps": {
                str(d): {
                    "usage_counts": dict(a["usage_counts"]),
                    "networked": sorted(a["networked"]),
                }
                for d, a in self._pending_apps.items()
            },
            "used": sorted(self._used),
            "networked": sorted(self._networked),
            "usage_counts": dict(self._usage_counts),
        }
        if self.decay is None:
            state["rows"] = {
                daytype: [rows_out(r) for r in rows] for daytype, rows in self._rows.items()
            }
        else:
            state["sums"] = {d: rows_out(s) for d, s in self._sums.items()}
            state["weights"] = dict(self._weights)
        return state

    @classmethod
    def load_state(cls, state: dict) -> "OnlineHabitModel":
        """Rebuild an accumulator from :meth:`state_dict` output."""
        fmt = state.get("format")
        if fmt != _STATE_FORMAT:
            raise ValueError(
                f"unsupported online-habit state format: {fmt!r} "
                f"(this build reads format {_STATE_FORMAT})"
            )

        def rows_in(data: dict) -> dict[str, np.ndarray]:
            return {
                kind: np.asarray(data[kind], dtype=np.float64) for kind in _KINDS
            }

        model = cls(
            state["user_id"],
            start_weekday=int(state["start_weekday"]),
            window_days=state["window_days"],
            decay=state["decay"],
            drift_threshold=float(state["drift_threshold"]),
        )
        model.next_day = int(state["next_day"])
        model.frozen = bool(state["frozen"])
        model.last_drift = float(state["last_drift"])
        model.drift_alerts = int(state["drift_alerts"])
        model._counts = {k: int(v) for k, v in state["counts"].items()}
        model._pending_rows = {
            int(d): rows_in(r) for d, r in state["pending_rows"].items()
        }
        model._pending_apps = {
            int(d): {
                "usage_counts": {a: int(n) for a, n in v["usage_counts"].items()},
                "networked": set(v["networked"]),
            }
            for d, v in state["pending_apps"].items()
        }
        model._used = set(state["used"])
        model._networked = set(state["networked"])
        model._usage_counts = {a: int(n) for a, n in state["usage_counts"].items()}
        if model.decay is None:
            for daytype in ("weekday", "weekend"):
                model._rows[daytype].extend(rows_in(r) for r in state["rows"][daytype])
        else:
            model._sums = {d: rows_in(s) for d, s in state["sums"].items()}
            model._weights = {d: float(w) for d, w in state["weights"].items()}
        return model
