"""Online streaming engine: causal habit mining and scheduling at scale.

The offline pipeline fits :class:`~repro.habits.prediction.HabitModel`
on a complete history and replays held-out days with the whole trace in
hand.  On a phone — and in the serving workload the ROADMAP aims at —
events arrive one at a time and every decision must be causal.  This
package is that online engine, in four layers:

* :mod:`repro.stream.ingest` — bounded-memory, iterator-based event
  streams and a multi-user chronological merge;
* :mod:`repro.stream.online_habits` — :class:`OnlineHabitModel`,
  incremental hour-level accumulators that reproduce the offline fit
  bit-exactly after a full pass, plus a drift signal;
* :mod:`repro.stream.online_netmaster` — :class:`OnlineNetMaster`,
  the middleware driven at stream time with JSON checkpoint/restore;
* :mod:`repro.stream.fleet` — a multi-tenant session manager driving
  thousands of streamed user-days with bounded per-user memory;
* :mod:`repro.stream.shards` — sharded durable fleet state: per-shard
  write-ahead logs, snapshot compaction, crash recovery, and per-shard
  load shedding under failure.

``python -m repro stream`` runs the fleet experiment
(:func:`repro.stream.experiment.stream_experiment`);
``python -m repro shards`` runs the crash-recovery experiment
(:func:`repro.stream.shards.shards_experiment`).
"""

from repro.stream.experiment import StreamResult, fleet_specs, stream_experiment
from repro.stream.fleet import (
    FleetCheckpointLoad,
    FleetConfig,
    FleetResult,
    FleetService,
    FleetUserSpec,
    UserStreamSummary,
    stream_one_user,
)
from repro.stream.ingest import (
    StreamEvent,
    event_time,
    merge_user_streams,
    stream_trace,
    stream_trace_jsonl,
)
from repro.stream.online_habits import OnlineHabitModel
from repro.stream.online_netmaster import (
    CheckpointError,
    CheckpointLoad,
    CompletedDay,
    OnlineNetMaster,
    load_checkpoint,
)
from repro.stream.rollup import FleetRollup, SummarySpill, iter_spilled, read_spilled
from repro.stream.shards import (
    ShardConfig,
    ShardedFleetResult,
    ShardedFleetService,
    ShardsResult,
    ShardStore,
    shard_of,
    shards_experiment,
)
from repro.stream.specgen import iter_fleet_specs

__all__ = [
    "CheckpointError",
    "CheckpointLoad",
    "CompletedDay",
    "FleetCheckpointLoad",
    "FleetConfig",
    "FleetResult",
    "FleetRollup",
    "FleetService",
    "FleetUserSpec",
    "SummarySpill",
    "OnlineHabitModel",
    "OnlineNetMaster",
    "ShardConfig",
    "ShardStore",
    "ShardedFleetResult",
    "ShardedFleetService",
    "ShardsResult",
    "StreamEvent",
    "StreamResult",
    "UserStreamSummary",
    "event_time",
    "fleet_specs",
    "iter_fleet_specs",
    "iter_spilled",
    "load_checkpoint",
    "merge_user_streams",
    "read_spilled",
    "shard_of",
    "shards_experiment",
    "stream_experiment",
    "stream_one_user",
    "stream_trace",
    "stream_trace_jsonl",
]
