"""Causal scheduling: the NetMaster middleware driven at stream time.

:class:`OnlineNetMaster` consumes one user's chronological record stream
and runs the full middleware with **no future knowledge**: events buffer
into the current day as they arrive, and when stream time crosses
midnight the finished day is executed against the model mined from the
days *before* it (the habit accumulator folds the day in only after the
decisions are made).  The first ``train_days`` days are observation-only
— the paper's monitoring phase — after which every day is planned and
executed causally, circuit breaker and graceful degradation included.

The engine's entire state — habit accumulators, breaker, partially
buffered current day, counters — serializes to one JSON document
(:meth:`state_dict`).  Floats survive JSON bit-exactly, so a stream can
be killed anywhere (including mid-day) and resumed from the checkpoint
with byte-identical subsequent decisions.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Iterable

from repro._util import DAY
from repro.baselines.policy import PolicyOutcome
from repro.core.netmaster import DayExecution, NetMaster, NetMasterConfig
from repro.habits.serialization import config_from_dict, config_to_dict
from repro.stream.ingest import event_time
from repro.stream.online_habits import OnlineHabitModel
from repro.telemetry import metrics
from repro.traces.events import AppUsage, NetworkActivity, ScreenSession, Trace
from repro.traces.io import TraceRecord

#: Schema version stamped into every engine checkpoint ("format" field).
_STATE_FORMAT = 1

POLICY_NAME = "netmaster-online"


class CheckpointError(ValueError):
    """A stream checkpoint could not be parsed or restored.

    Raised instead of letting a raw :class:`json.JSONDecodeError` /
    :class:`KeyError` escape from a truncated or corrupt checkpoint —
    callers handling durability faults can catch one exception type.
    Subclasses :class:`ValueError` so pre-existing callers that caught
    the old format-mismatch error keep working.
    """


@dataclass(frozen=True)
class CheckpointLoad:
    """Outcome of a lenient checkpoint load (``strict=False``).

    ``engine`` is ``None`` when nothing was recoverable; otherwise it is
    a usable engine, possibly rebuilt around salvaged parts.  ``issues``
    lists, in human-readable form, everything that was wrong with the
    document and what the loader did about it.
    """

    engine: "OnlineNetMaster | None"
    issues: tuple[str, ...] = ()

    @property
    def ok(self) -> bool:
        """Whether the checkpoint loaded completely, with no repairs."""
        return self.engine is not None and not self.issues

    @property
    def salvaged(self) -> bool:
        """Whether a damaged checkpoint still yielded a usable engine."""
        return self.engine is not None and bool(self.issues)


@dataclass(frozen=True, slots=True)
class CompletedDay:
    """One causally executed day, ready for pricing."""

    day_index: int
    trace: Trace
    execution: DayExecution

    def outcome(self) -> PolicyOutcome:
        """The execution as a policy outcome (same shape as the offline
        :class:`~repro.baselines.netmaster_policy.NetMasterPolicy`)."""
        ex = self.execution
        return PolicyOutcome(
            policy=POLICY_NAME,
            activities=ex.activities,
            activity_tails=ex.activity_tails,
            extra_windows=ex.wake_windows,
            interrupts=ex.interrupts,
            user_interactions=ex.user_interactions,
            deferred=ex.deferred_to_slots + ex.duty_serviced,
        )


class OnlineNetMaster:
    """Per-user online engine: observe events, execute days causally.

    Feed records with :meth:`observe`; finished days queue up and are
    collected with :meth:`drain` (bounded memory when drained
    regularly).  :meth:`finish` closes the remaining days of a stream
    whose horizon is known.
    """

    def __init__(
        self,
        user_id: str,
        *,
        config: NetMasterConfig | None = None,
        start_weekday: int = 0,
        train_days: int = 10,
        update_model: bool = True,
        window_days: int | None = None,
        decay: float | None = None,
    ) -> None:
        if train_days < 1:
            raise ValueError(f"train_days must be >= 1, got {train_days}")
        self.user_id = user_id
        self.config = config or NetMasterConfig()
        self.start_weekday = int(start_weekday)
        self.train_days = int(train_days)
        self.update_model = bool(update_model)
        self.habits = OnlineHabitModel(
            user_id,
            start_weekday=start_weekday,
            window_days=window_days,
            decay=decay,
        )
        self.netmaster = NetMaster(self.config)
        #: Index of the day currently buffering (monotonic).
        self.day = 0
        self._last_time = 0.0
        self.events = 0
        self.days_executed = 0
        self.days_degraded = 0
        self.interrupts = 0
        #: Monitor feedback (:mod:`repro.monitor.feedback`): days with
        #: index < ``quarantined_until`` execute duty-cycle-only; days
        #: with index < ``adoption_frozen_until`` keep the last adopted
        #: habit model instead of re-adopting the freshly mined one.
        #: Both stay 0 unless an alert fired, and are only serialized
        #: when nonzero so unalerted checkpoints are byte-identical to
        #: unmonitored ones.
        self.quarantined_until = 0
        self.adoption_frozen_until = 0
        # Per-day event buffers (rebased to the day's midnight), only
        # kept for days that will actually execute (>= train_days).
        self._sessions: dict[int, list[ScreenSession]] = {}
        self._usages: dict[int, list[AppUsage]] = {}
        self._activities: dict[int, list[NetworkActivity]] = {}
        self._completed: list[CompletedDay] = []

    @property
    def last_time(self) -> float:
        """Stream time of the newest observed record (the causal floor:
        anything earlier is out of order and will be rejected)."""
        return self._last_time

    # ------------------------------------------------------------------
    # ingestion
    # ------------------------------------------------------------------
    def observe(self, record: TraceRecord) -> None:
        """Fold one record in; closes days as stream time crosses them."""
        time = event_time(record)
        if time < self._last_time:
            raise ValueError(
                f"stream went backwards: event at t={time} after t={self._last_time}"
            )
        self._last_time = time
        while time >= (self.day + 1) * DAY:
            self._close_day()
        self.events += 1
        metrics().inc("stream.events")
        self.habits.observe(record)
        self._buffer(record)

    def observe_many(self, records: Iterable[TraceRecord]) -> None:
        """Fold a chronological record iterable."""
        for record in records:
            self.observe(record)

    def _buffer(self, record: TraceRecord) -> None:
        """Mirror of ``Trace.day_view`` clipping, applied incrementally."""
        if isinstance(record, ScreenSession):
            day = int(record.start // DAY)
            while day * DAY < record.end:
                lo, hi = day * DAY, (day + 1) * DAY
                start, end = max(record.start, lo), min(record.end, hi)
                if end > start and day >= self.train_days:
                    self._sessions.setdefault(day, []).append(
                        ScreenSession(start - lo, end - lo)
                    )
                day += 1
        elif isinstance(record, AppUsage):
            day = int(record.time // DAY)
            if day >= self.train_days:
                self._usages.setdefault(day, []).append(
                    AppUsage(record.time - day * DAY, record.app, record.duration)
                )
        else:
            day = int(record.time // DAY)
            if day >= self.train_days:
                self._activities.setdefault(day, []).append(
                    record.moved_to(record.time - day * DAY)
                )

    # ------------------------------------------------------------------
    # day boundary
    # ------------------------------------------------------------------
    def _day_trace(self, day: int) -> Trace:
        return Trace(
            user_id=self.user_id,
            n_days=1,
            start_weekday=(self.start_weekday + day) % 7,
            screen_sessions=self._sessions.pop(day, []),
            usages=self._usages.pop(day, []),
            activities=self._activities.pop(day, []),
        )

    def _close_day(self) -> None:
        day = self.day
        self.day += 1
        if day >= self.train_days:
            # The model is mined from days 0..day-1 only — the habit
            # accumulator folds `day` in *after* the decisions are made.
            if not (day < self.adoption_frozen_until and self.netmaster.habit):
                self.netmaster.adopt_model(self.habits.to_model())
            if not self.update_model:
                self.habits.frozen = True
            trace = self._day_trace(day)
            if day < self.quarantined_until:
                self.netmaster.force_degraded = True
                metrics().inc("stream.quarantined_days")
            try:
                execution = self.netmaster.execute_day(trace)
            finally:
                self.netmaster.force_degraded = False
            self.days_executed += 1
            self.interrupts += execution.interrupts
            if execution.degraded:
                self.days_degraded += 1
            metrics().inc("stream.user_days")
            self._completed.append(
                CompletedDay(day_index=day, trace=trace, execution=execution)
            )
        self.habits.close_day(day)

    def finish(self, n_days: int) -> list[CompletedDay]:
        """Close all days through ``n_days`` and drain the results."""
        while self.day < n_days:
            self._close_day()
        return self.drain()

    def drain(self) -> list[CompletedDay]:
        """Completed days since the last drain (and release them)."""
        out = self._completed
        self._completed = []
        return out

    # ------------------------------------------------------------------
    # checkpoint / restore
    # ------------------------------------------------------------------
    def state_dict(self) -> dict:
        """Full engine state as JSON-safe values.

        Undrained completed days are not part of the state — drain (and
        price) them before checkpointing.

        Monitor feedback windows (``quarantined_until``,
        ``adoption_frozen_until``) are emitted only when nonzero, so a
        monitored-but-unalerted engine checkpoints to exactly the same
        bytes as an unmonitored one.
        """
        state = {
            "format": _STATE_FORMAT,
            "user_id": self.user_id,
            "start_weekday": self.start_weekday,
            "train_days": self.train_days,
            "update_model": self.update_model,
            "config": config_to_dict(self.config),
            "day": self.day,
            "last_time": self._last_time,
            "events": self.events,
            "days_executed": self.days_executed,
            "days_degraded": self.days_degraded,
            "interrupts": self.interrupts,
            "habits": self.habits.state_dict(),
            "breaker": self.netmaster.breaker.state_dict(),
            "buffers": {
                str(day): {
                    "sessions": [[s.start, s.end] for s in self._sessions.get(day, [])],
                    "usages": [
                        [u.time, u.app, u.duration] for u in self._usages.get(day, [])
                    ],
                    "activities": [
                        [a.time, a.app, a.down_bytes, a.up_bytes, a.duration, a.screen_on]
                        for a in self._activities.get(day, [])
                    ],
                }
                for day in sorted(
                    set(self._sessions) | set(self._usages) | set(self._activities)
                )
            },
        }
        if self.quarantined_until:
            state["quarantined_until"] = self.quarantined_until
        if self.adoption_frozen_until:
            state["adoption_frozen_until"] = self.adoption_frozen_until
        return state

    @classmethod
    def from_state(cls, state: dict) -> "OnlineNetMaster":
        """Rebuild an engine from :meth:`state_dict` output.

        The restored engine makes byte-identical decisions on the
        remaining stream: habit rows, breaker state and day buffers all
        round-trip through JSON exactly.  Raises
        :class:`CheckpointError` on an unknown schema version or a
        structurally broken document.
        """
        engine = cls._restore(state, issues=None)
        assert engine is not None  # strict mode raises instead
        return engine

    @classmethod
    def _restore(
        cls, state: object, issues: list[str] | None
    ) -> "OnlineNetMaster | None":
        """Shared strict/lenient restore.

        ``issues=None`` is strict: any problem raises
        :class:`CheckpointError`.  With a list, problems are recorded
        there and as much of the engine as possible is salvaged —
        damaged day buffers are dropped, a damaged breaker resets to
        closed, missing counters default to zero.  Only an unusable core
        (identity, config, or habit accumulators) returns ``None``.
        """
        lenient = issues is not None

        def problem(msg: str) -> None:
            if lenient:
                issues.append(msg)
            else:
                raise CheckpointError(msg)

        if not isinstance(state, dict):
            problem(f"checkpoint is not a JSON object (got {type(state).__name__})")
            return None
        fmt = state.get("format")
        if fmt != _STATE_FORMAT:
            problem(
                f"unsupported stream checkpoint format: {fmt!r} "
                f"(this build reads format {_STATE_FORMAT})"
            )
            if lenient:
                issues[-1] += "; attempting to read it as the current format"
        try:
            engine = cls(
                str(state["user_id"]),
                config=config_from_dict(state["config"]),
                start_weekday=int(state["start_weekday"]),
                train_days=int(state["train_days"]),
                update_model=bool(state["update_model"]),
            )
            engine.habits = OnlineHabitModel.load_state(state["habits"])
        except CheckpointError:
            raise
        except (KeyError, TypeError, ValueError) as exc:
            problem(
                "checkpoint core state (identity/config/habits) is unusable "
                f"({type(exc).__name__}: {exc}); nothing salvageable"
            )
            return None
        try:
            engine.netmaster.breaker.load_state(state["breaker"])
        except (KeyError, TypeError, ValueError) as exc:
            problem(
                f"breaker state unreadable ({type(exc).__name__}: {exc}); "
                "salvaged with a fresh (closed) breaker"
            )
            if not lenient:
                return None  # pragma: no cover - problem() raised already
        for attr, key, convert in (
            ("day", "day", int),
            ("_last_time", "last_time", float),
            ("events", "events", int),
            ("days_executed", "days_executed", int),
            ("days_degraded", "days_degraded", int),
            ("interrupts", "interrupts", int),
        ):
            try:
                setattr(engine, attr, convert(state[key]))
            except (KeyError, TypeError, ValueError) as exc:
                problem(
                    f"counter {key!r} unreadable ({type(exc).__name__}: {exc}); "
                    "salvaged as its reset value"
                )
        # Monitor feedback windows are absent in unalerted checkpoints
        # (emitted only when nonzero), so missing means zero, not damage.
        for attr in ("quarantined_until", "adoption_frozen_until"):
            try:
                setattr(engine, attr, int(state.get(attr, 0)))
            except (TypeError, ValueError) as exc:
                problem(
                    f"counter {attr!r} unreadable ({type(exc).__name__}: {exc}); "
                    "salvaged as its reset value"
                )
        buffers = state.get("buffers")
        if not isinstance(buffers, dict):
            problem(
                f"day buffers missing or malformed (got {type(buffers).__name__}); "
                "salvaged with empty buffers"
            )
            buffers = {}
        for day_key, buf in buffers.items():
            try:
                day = int(day_key)
                sessions = [
                    ScreenSession(float(s), float(e)) for s, e in buf["sessions"]
                ]
                usages = [
                    AppUsage(float(t), str(app), float(d)) for t, app, d in buf["usages"]
                ]
                activities = [
                    NetworkActivity(
                        time=float(t),
                        app=str(app),
                        down_bytes=float(down),
                        up_bytes=float(up),
                        duration=float(dur),
                        screen_on=bool(on),
                    )
                    for t, app, down, up, dur, on in buf["activities"]
                ]
            except (KeyError, TypeError, ValueError) as exc:
                problem(
                    f"day buffer {day_key!r} corrupt ({type(exc).__name__}: {exc}); "
                    "salvaged by dropping that day's buffered events"
                )
                continue
            if sessions:
                engine._sessions[day] = sessions
            if usages:
                engine._usages[day] = usages
            if activities:
                engine._activities[day] = activities
        return engine

    def to_json(self) -> str:
        """:meth:`state_dict` as a JSON string (checkpoint payload)."""
        metrics().inc("stream.checkpoints")
        return json.dumps(self.state_dict())

    @classmethod
    def from_json(cls, payload: str) -> "OnlineNetMaster":
        """Restore from :meth:`to_json` output.

        Raises :class:`CheckpointError` (never a raw
        :class:`json.JSONDecodeError`) when the payload is truncated or
        corrupt.
        """
        try:
            state = json.loads(payload)
        except json.JSONDecodeError as exc:
            raise CheckpointError(
                f"checkpoint JSON is truncated or corrupt: {exc}"
            ) from exc
        return cls.from_state(state)


def load_checkpoint(payload: str, *, strict: bool = True) -> CheckpointLoad:
    """Load an :class:`OnlineNetMaster` checkpoint with explicit errors.

    ``strict=True`` behaves like :meth:`OnlineNetMaster.from_json` —
    any damage raises :class:`CheckpointError` — but returns the result
    wrapped in a :class:`CheckpointLoad` (``issues`` empty).

    ``strict=False`` never raises: the loader salvages what it can
    (dropping corrupt day buffers, resetting an unreadable breaker,
    defaulting broken counters) and reports every repair in
    ``issues``.  A document damaged beyond use yields
    ``CheckpointLoad(engine=None, issues=(...,))``.
    """
    if strict:
        return CheckpointLoad(engine=OnlineNetMaster.from_json(payload))
    issues: list[str] = []
    try:
        state = json.loads(payload)
    except json.JSONDecodeError as exc:
        return CheckpointLoad(
            engine=None,
            issues=(f"checkpoint JSON is truncated or corrupt: {exc}",),
        )
    engine = OnlineNetMaster._restore(state, issues=issues)
    return CheckpointLoad(engine=engine, issues=tuple(issues))
