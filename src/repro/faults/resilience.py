"""Pushing a finished schedule through the fault model.

:func:`apply_faults` is the composition point between the evaluation
pipeline and the fault layer: it takes a :class:`PolicyOutcome` (the
schedule a policy *wanted* to execute), replays every transfer through
the retry loop, and returns the outcome that would actually have
happened on a faulty radio — transfers pushed later by retries and
outages, failed attempts recorded as extra partial radio windows, and
failed promotions counted for the RRC accounting.

With an inert :class:`FaultPlan` the outcome is returned unchanged (the
same object), which is what makes the rate-0 sweep point bit-for-bit
identical to the fault-free pipeline.
"""

from __future__ import annotations

import logging
from dataclasses import dataclass, replace
from typing import TYPE_CHECKING

from repro._util import DAY
from repro.faults.injector import FaultInjector
from repro.faults.retry import RetryPolicy, run_with_retries
from repro.telemetry import metrics

if TYPE_CHECKING:  # avoid a baselines <-> faults import cycle at runtime
    from repro.baselines.policy import PolicyOutcome

logger = logging.getLogger(__name__)


@dataclass(frozen=True, slots=True)
class FaultStats:
    """Aggregate accounting of one :func:`apply_faults` pass."""

    n_transfers: int
    retries: int
    failed_attempts: int
    failed_promotions: int
    forced: int
    added_delays: tuple[float, ...]

    @property
    def added_delay_mean_s(self) -> float:
        """Mean extra delay (s) retries added per transfer."""
        if not self.added_delays:
            return 0.0
        return sum(self.added_delays) / len(self.added_delays)

    @property
    def added_delay_max_s(self) -> float:
        """Worst extra delay (s) retries added to any transfer."""
        return max(self.added_delays, default=0.0)


def apply_faults(
    outcome: PolicyOutcome,
    injector: FaultInjector,
    retry: RetryPolicy | None = None,
    *,
    day_key: int = 0,
    horizon: float = DAY,
) -> tuple[PolicyOutcome, FaultStats]:
    """Replay ``outcome``'s transfers through the fault model.

    Every transfer keeps its payload (forced delivery at the delay bound
    guarantees it), so ``validate_payload`` still holds on the result.
    Transfers are never moved earlier, and never later than
    ``retry.max_delay_s`` past their scheduled time (nor past the day
    horizon minus their duration).
    """
    if injector.plan.inert:
        return outcome, FaultStats(len(outcome.activities), 0, 0, 0, 0, ())
    if retry is None:
        retry = RetryPolicy()

    activities = []
    failed_windows = list(outcome.failed_windows)
    retries = failed_attempts = failed_promotions = forced = 0
    delays: list[float] = []
    for index, activity in enumerate(outcome.activities):
        deadline = max(horizon - activity.duration, activity.time)
        result = run_with_retries(
            activity,
            activity.time,
            injector,
            retry,
            day_key=day_key,
            index=index,
            deadline=deadline,
        )
        retries += result.retries
        failed_attempts += len(result.failed_windows)
        failed_promotions += result.failed_promotions
        forced += int(result.forced)
        delays.append(result.time - activity.time)
        failed_windows.extend(result.failed_windows)
        activities.append(
            activity if result.time == activity.time else activity.moved_to(result.time)
        )

    faulted = replace(
        outcome,
        activities=activities,
        activity_tails=(
            None if outcome.activity_tails is None else list(outcome.activity_tails)
        ),
        failed_windows=failed_windows,
        failed_promotions=outcome.failed_promotions + failed_promotions,
        retries=outcome.retries + retries,
    )
    stats = FaultStats(
        n_transfers=len(outcome.activities),
        retries=retries,
        failed_attempts=failed_attempts,
        failed_promotions=failed_promotions,
        forced=forced,
        added_delays=tuple(delays),
    )
    reg = metrics()
    if reg.enabled:
        reg.inc("faults.resilience.passes")
        reg.inc("faults.resilience.retries", retries)
        reg.inc("faults.resilience.failed_attempts", failed_attempts)
        reg.inc("faults.resilience.failed_promotions", failed_promotions)
        reg.inc("faults.resilience.forced_deliveries", forced)
        for d in delays:
            if d > 0:
                reg.observe("faults.resilience.added_delay_s", d)
    if forced:
        # Forced deliveries mean the radio stayed dead right up to the
        # retry delay bound — previously this was only visible as a
        # slightly shifted schedule.
        logger.warning(
            "day %d: %d/%d transfers hit the retry delay bound and were "
            "force-delivered (%d failed attempts, %d retries)",
            day_key,
            forced,
            len(outcome.activities),
            failed_attempts,
            retries,
        )
    logger.debug(
        "day %d: faulted %d transfers (retries=%d failed=%d mean_delay=%.1fs)",
        day_key,
        stats.n_transfers,
        stats.retries,
        stats.failed_attempts,
        stats.added_delay_mean_s,
    )
    return faulted, stats
