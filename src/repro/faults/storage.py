"""Deterministic storage faults against a shard's durable files.

Where :class:`~repro.faults.injector.FaultInjector` breaks the *radio*,
:class:`StorageFaultInjector` breaks the *disk*: it mutilates the files
a :class:`~repro.stream.shards.ShardStore` left behind — a torn final
WAL write, a mid-record truncation, a vanished or bit-flipped snapshot,
a lost manifest — exactly the damage a power cut or a bad sector
inflicts.  Recovery is then expected to shrug: replay what is valid,
truncate what is torn, salvage around what is gone, and report every
repair.

The injector deliberately does **not** import the shards package.  It
locates files purely by the on-disk convention (``MANIFEST.json``,
``wal-*.jsonl``, ``snapshot-*.json``), so the dependency arrow keeps
pointing from durability code to fault code in tests, never the other
way.

Determinism is counter-based like the radio injector: every random
choice (which byte to flip, where to cut) is keyed by
``(channel, invocation-index)`` through a Philox generator, so a seeded
storage-fault schedule is reproducible regardless of call order.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

#: Philox channel assignments — one per independent decision family.
_CH_TEAR = 0
_CH_TRUNCATE = 1
_CH_FLIP_POS = 2
_CH_FLIP_BIT = 3

#: Bytes of garbage appended by a torn write (arbitrary, incomplete).
_TORN_BYTES = b'9f2a11c0 {"type":"day","user_id":"torn'


def _manifest(shard_dir: Path) -> dict | None:
    try:
        doc = json.loads((shard_dir / "MANIFEST.json").read_text())
    except (OSError, json.JSONDecodeError):
        return None
    return doc if isinstance(doc, dict) else None


def _newest(shard_dir: Path, pattern: str) -> Path | None:
    candidates = sorted(shard_dir.glob(pattern))
    return candidates[-1] if candidates else None


def current_wal_path(shard_dir: str | Path) -> Path | None:
    """The live WAL of a shard directory (manifest first, then newest)."""
    shard_dir = Path(shard_dir)
    doc = _manifest(shard_dir)
    if doc and isinstance(doc.get("wal"), str):
        path = shard_dir / doc["wal"]
        if path.exists():
            return path
    return _newest(shard_dir, "wal-*.jsonl")


def current_snapshot_path(shard_dir: str | Path) -> Path | None:
    """The live snapshot of a shard directory, if any."""
    shard_dir = Path(shard_dir)
    doc = _manifest(shard_dir)
    if doc and isinstance(doc.get("snapshot"), str):
        path = shard_dir / doc["snapshot"]
        if path.exists():
            return path
    return _newest(shard_dir, "snapshot-*.json")


@dataclass
class StorageFaultInjector:
    """Inflicts seeded, reproducible damage on shard storage."""

    seed: int = 0
    #: Count of faults actually landed (files existed to damage).
    injected: int = field(default=0, init=False)

    def _uniform(self, channel: int, index: int) -> float:
        bitgen = np.random.Philox(
            key=self.seed & 0xFFFFFFFFFFFFFFFF, counter=[channel, 0, 0, index]
        )
        return float(np.random.Generator(bitgen).random())

    # ------------------------------------------------------------------
    # WAL faults
    # ------------------------------------------------------------------
    def tear_wal(self, shard_dir: str | Path) -> Path | None:
        """Append an unterminated partial record — a torn final write.

        Models a process killed between ``write()`` and the newline
        reaching the file.  Recovery must keep every whole record and
        truncate the tail.  Returns the damaged path, or ``None`` if the
        shard has no WAL.
        """
        wal = current_wal_path(shard_dir)
        if wal is None:
            return None
        cut = int(self._uniform(_CH_TEAR, self.injected) * (len(_TORN_BYTES) - 1)) + 1
        with open(wal, "ab") as fh:
            fh.write(_TORN_BYTES[:cut])
        self.injected += 1
        return wal

    def truncate_wal(self, shard_dir: str | Path) -> Path | None:
        """Chop the WAL mid-record — a truncated file after power loss.

        Cuts a random number of bytes off the end (at least one, never
        the whole file unless it is a single record).  Recovery must
        replay the surviving prefix and repair the boundary.
        """
        wal = current_wal_path(shard_dir)
        if wal is None:
            return None
        size = wal.stat().st_size
        if size == 0:
            return None
        cut = int(self._uniform(_CH_TRUNCATE, self.injected) * (size - 1)) + 1
        with open(wal, "r+b") as fh:
            fh.truncate(size - cut)
        self.injected += 1
        return wal

    # ------------------------------------------------------------------
    # snapshot faults
    # ------------------------------------------------------------------
    def drop_snapshot(self, shard_dir: str | Path) -> Path | None:
        """Delete the snapshot out from under the manifest.

        Recovery must fall back to whatever full states the WAL tail
        still carries and say so in its report.
        """
        snapshot = current_snapshot_path(shard_dir)
        if snapshot is None:
            return None
        snapshot.unlink()
        self.injected += 1
        return snapshot

    def corrupt_snapshot(self, shard_dir: str | Path) -> Path | None:
        """Flip one bit of the snapshot — a bad sector.

        The manifest's content hash must catch this; recovery treats the
        snapshot as lost rather than loading poisoned state.
        """
        snapshot = current_snapshot_path(shard_dir)
        if snapshot is None:
            return None
        data = bytearray(snapshot.read_bytes())
        if not data:
            return None
        pos = int(self._uniform(_CH_FLIP_POS, self.injected) * len(data))
        bit = int(self._uniform(_CH_FLIP_BIT, self.injected) * 8)
        data[pos] ^= 1 << bit
        snapshot.write_bytes(bytes(data))
        self.injected += 1
        return snapshot

    # ------------------------------------------------------------------
    # manifest faults
    # ------------------------------------------------------------------
    def drop_manifest(self, shard_dir: str | Path) -> Path | None:
        """Delete the manifest — the commit pointer itself is gone.

        Recovery must fall back to scanning for the newest generation.
        """
        manifest = Path(shard_dir) / "MANIFEST.json"
        if not manifest.exists():
            return None
        manifest.unlink()
        self.injected += 1
        return manifest
