"""Seeded anomaly scenarios: the energy devourers the monitor must catch.

Where :class:`~repro.faults.injector.FaultInjector` breaks the radio
and :class:`~repro.faults.storage.StorageFaultInjector` breaks the
disk, :class:`AnomalyInjector` breaks the *user*: it rewrites a clean
:class:`~repro.traces.events.Trace` into one carrying a known
misbehaviour — a runaway app bursting background transfers all day, or
a transfer pattern that pins the radio in DCH — so detector
precision/recall can be measured against labelled ground truth
(``python -m repro monitor``).

The injector deliberately does **not** import :mod:`repro.monitor` or
the stream engine.  It speaks only the trace data model, so the
dependency arrow keeps pointing from monitoring code to fault code in
tests, never the other way.

Determinism is counter-based like the other injectors: every jittered
placement is keyed by ``(channel, invocation, day, slot)`` through a
Philox generator, so a seeded anomaly schedule is reproducible
regardless of call order.  Injected activities respect every trace
invariant — chronological order, the screen-state provenance flag,
the day horizon — so the rewritten trace validates like a real one.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro._util import DAY
from repro.traces.events import NetworkActivity, Trace

__all__ = ["AnomalyInjector"]

#: Philox channel assignments — one per independent decision family.
_CH_RUNAWAY = 0
_CH_DCH = 1


@dataclass
class AnomalyInjector:
    """Rewrites clean traces into labelled anomaly scenarios."""

    seed: int = 0
    #: Count of injector invocations (keys the Philox counter).
    injected: int = field(default=0, init=False)

    def _uniform(self, channel: int, day: int, slot: int) -> float:
        bitgen = np.random.Philox(
            key=self.seed & 0xFFFFFFFFFFFFFFFF,
            counter=[channel, self.injected, day, slot],
        )
        return float(np.random.Generator(bitgen).random())

    def _with_activities(self, trace: Trace, extra: list[NetworkActivity]) -> Trace:
        merged = sorted(
            list(trace.activities) + extra, key=lambda a: (a.time, a.app)
        )
        self.injected += 1
        return Trace(
            user_id=trace.user_id,
            n_days=trace.n_days,
            start_weekday=trace.start_weekday,
            screen_sessions=list(trace.screen_sessions),
            usages=list(trace.usages),
            activities=merged,
        )

    def runaway_app(
        self,
        trace: Trace,
        *,
        start_day: int,
        app: str = "com.devourer.sync",
        bursts_per_day: int = 16,
        burst_bytes: float = 4e6,
        burst_s: float = 90.0,
    ) -> Trace:
        """A background app starts bursting transfers from ``start_day``.

        Each anomalous day gains ``bursts_per_day`` transfers jittered
        inside evenly spaced slots — the classic runaway-sync devourer:
        steady extra DCH time all day, inflating the day's energy far
        above the user's own history.
        """
        if not 0 <= start_day < trace.n_days:
            raise ValueError(
                f"start_day must be in [0, {trace.n_days}), got {start_day}"
            )
        extra: list[NetworkActivity] = []
        for day in range(start_day, trace.n_days):
            base = day * DAY
            slot_s = DAY / bursts_per_day
            for slot in range(bursts_per_day):
                jitter = self._uniform(_CH_RUNAWAY, day, slot)
                time = base + slot * slot_s + jitter * (slot_s - burst_s - 1.0)
                extra.append(
                    NetworkActivity(
                        time=time,
                        app=app,
                        down_bytes=burst_bytes,
                        up_bytes=burst_bytes * 0.05,
                        duration=burst_s,
                        screen_on=trace.screen_on_at(time),
                    )
                )
        return self._with_activities(trace, extra)

    def stuck_dch(
        self,
        trace: Trace,
        *,
        start_day: int,
        app: str = "com.devourer.stream",
        holds_per_day: int = 4,
        hold_s: float = 1800.0,
        hold_bytes: float = 2e5,
    ) -> Trace:
        """The radio pins in DCH from ``start_day`` on.

        Each anomalous day gains up to ``holds_per_day`` long
        continuous transfers (a stuck streaming socket trickling
        keep-alives), each *started inside a screen session*.  That
        placement is the point: foreground traffic runs as recorded —
        the scheduler cannot compress or defer it — so the hold really
        occupies ``hold_s`` of DCH time and transfer seconds come to
        dominate radio-on time, driving the DCH share toward 1.  The
        same hold placed screen-off would be batched and flushed at
        carrier speed in well under a second (hold payloads are
        keep-alive trickles), leaving no radio signature at all.

        Days whose screen sessions all start too late to fit a hold
        inside the day are left clean.
        """
        if not 0 <= start_day < trace.n_days:
            raise ValueError(
                f"start_day must be in [0, {trace.n_days}), got {start_day}"
            )
        extra: list[NetworkActivity] = []
        for day in range(start_day, trace.n_days):
            base = day * DAY
            latest = base + DAY - hold_s - 1.0
            sessions = [
                s
                for s in trace.screen_sessions
                if base <= s.start < base + DAY and s.start <= latest
            ]
            if not sessions:
                continue
            for slot in range(min(holds_per_day, len(sessions))):
                # Spread the holds over the day's sessions.
                session = sessions[slot * len(sessions) // holds_per_day]
                jitter = self._uniform(_CH_DCH, day, slot)
                span = max(0.0, min(session.end, latest) - session.start - 1.0)
                time = session.start + jitter * span
                extra.append(
                    NetworkActivity(
                        time=time,
                        app=app,
                        down_bytes=hold_bytes,
                        up_bytes=hold_bytes * 0.1,
                        duration=hold_s,
                        screen_on=trace.screen_on_at(time),
                    )
                )
        return self._with_activities(trace, extra)
