"""Retry with exponential backoff under a hard delay bound.

NetMaster's whole bargain with the user is the max-delay guarantee: a
deferred transfer is late by design, but never later than the configured
bound.  Faults must not be allowed to break that promise, so the retry
loop here is *deadline-aware*: backoff grows exponentially, but the last
attempt is clamped to the deadline and forced to succeed there — the
carrier eventually delivers, we just pay extra radio energy for the
failed attempts along the way.  Payload conservation (every byte of the
day is still transferred) therefore holds under any fault plan.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro._util import DAY, check_positive
from repro.faults.injector import FaultInjector
from repro.traces.events import NetworkActivity


@dataclass(frozen=True, slots=True)
class RetryPolicy:
    """Exponential backoff with capped attempts and a hard delay bound.

    ``max_delay_s`` bounds the *extra* delay retries may add beyond the
    transfer's (already deferred) scheduled time; it defaults to one
    hour, matching the duty-cycle ceiling that also caps scheduling
    delay in the paper.
    """

    initial_backoff_s: float = 5.0
    backoff_factor: float = 2.0
    max_backoff_s: float = 300.0
    max_attempts: int = 5
    max_delay_s: float = 3600.0

    def __post_init__(self) -> None:
        check_positive("initial_backoff_s", self.initial_backoff_s)
        check_positive("max_backoff_s", self.max_backoff_s)
        check_positive("max_delay_s", self.max_delay_s)
        if self.backoff_factor < 1.0:
            raise ValueError(f"backoff_factor must be >= 1, got {self.backoff_factor}")
        if self.max_attempts < 1:
            raise ValueError(f"max_attempts must be >= 1, got {self.max_attempts}")

    def backoff_s(self, attempt: int) -> float:
        """Backoff after failed attempt number ``attempt`` (1-based)."""
        if attempt < 1:
            raise ValueError(f"attempt must be >= 1, got {attempt}")
        raw = self.initial_backoff_s * self.backoff_factor ** (attempt - 1)
        return min(raw, self.max_backoff_s)


@dataclass(frozen=True, slots=True)
class RetryOutcome:
    """Result of pushing one transfer through the retry loop."""

    time: float
    attempts: int
    failed_windows: tuple[tuple[float, float], ...]
    failed_promotions: int
    forced: bool

    @property
    def retries(self) -> int:
        """Number of *extra* attempts beyond the first."""
        return self.attempts - 1


def run_with_retries(
    activity: NetworkActivity,
    scheduled_time: float,
    injector: FaultInjector,
    retry: RetryPolicy,
    *,
    day_key: int = 0,
    index: int = 0,
    deadline: float | None = None,
) -> RetryOutcome:
    """Execute one transfer at ``scheduled_time``, retrying through faults.

    Returns the time the transfer finally succeeds at, the radio windows
    burned by failed attempts (each ``failed_attempt_fraction`` of the
    transfer duration; promotion failures burn no transfer window and
    are counted separately), and whether success had to be *forced* at
    the deadline.  The success time never exceeds
    ``min(deadline, scheduled_time + retry.max_delay_s)``.
    """
    limit = scheduled_time + retry.max_delay_s
    if deadline is not None:
        limit = min(limit, deadline)
    t = min(scheduled_time, limit)
    failed_windows: list[tuple[float, float]] = []
    failed_promotions = 0
    attempt = 0
    while True:
        attempt += 1
        at_limit = t >= limit
        last_allowed = attempt >= retry.max_attempts
        if at_limit and attempt > 1:
            # out of time budget: the bound wins — deliver now.
            return RetryOutcome(t, attempt, tuple(failed_windows), failed_promotions, True)
        reason = injector.attempt_fails(day_key, index, attempt, t % DAY)
        if reason is None:
            return RetryOutcome(t, attempt, tuple(failed_windows), failed_promotions, False)
        if reason == "promotion":
            failed_promotions += 1
        elif reason != "outage":
            frac = injector.plan.failed_attempt_fraction
            if frac > 0.0 and activity.duration > 0.0:
                failed_windows.append((t, t + activity.duration * frac))
        if last_allowed:
            # attempts exhausted: force success at the delay bound.
            return RetryOutcome(limit, attempt + 1, tuple(failed_windows), failed_promotions, True)
        nxt = t + retry.backoff_s(attempt)
        if reason == "outage":
            nxt = max(nxt, injector.outage_end(day_key, t % DAY) + (t - t % DAY))
        t = min(nxt, limit)
