"""Deterministic fault injection for the NetMaster pipeline.

A real deployment does not live in the perfect world of the paper's
offline analysis: transfers fail on lossy cellular links, radios lose
coverage in bursts, RRC promotions time out, and the monitoring logger
drops or mangles records.  :class:`FaultPlan` describes *how much* of
each failure mode to inject; :class:`FaultInjector` answers, fully
deterministically, *which* individual attempts fail.

Determinism is counter-based: every random decision is keyed by
``(day_key, index, attempt, channel)`` through a Philox generator, so

* the same seed always produces the same failures, regardless of how
  many other draws happened before (no shared-stream coupling);
* raising a fault rate strictly grows the failure set (each decision
  compares the *same* uniform against a larger threshold), which is what
  makes the robustness sweep monotone by construction;
* a plan with all rates at zero injects nothing and perturbs nothing —
  the fault-free pipeline reproduces the stock results bit-for-bit.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro._util import DAY, check_fraction, check_positive
from repro.traces.events import NetworkActivity, Trace

#: Philox channel assignments — one per independent decision family.
_CH_TRANSFER = 0
_CH_PROMOTION = 1
_CH_OUTAGE_POS = 2
_CH_OUTAGE_KEEP = 3
_CH_TRACE_GAP_POS = 4
_CH_TRACE_GAP_KEEP = 5
_CH_RECORD_DROP = 6


@dataclass(frozen=True, slots=True)
class FaultPlan:
    """How much of each failure mode to inject (all rates default to 0).

    ``transfer_failure_rate`` — per-attempt Bernoulli probability that a
    transfer aborts mid-flight (charged ``failed_attempt_fraction`` of
    its radio time).  ``promotion_failure_rate`` — per-attempt
    probability that the IDLE→DCH promotion itself fails (charged one
    promotion, no transfer time).  Outages are burst windows during
    which *every* attempt fails: ``outage_candidates_per_day`` windows
    are drawn per day and each fires with ``outage_keep_prob``.
    ``trace_gap_*`` and ``record_drop_rate`` degrade monitoring traces
    (see :meth:`FaultInjector.degrade_trace`).
    """

    seed: int = 0
    transfer_failure_rate: float = 0.0
    promotion_failure_rate: float = 0.0
    outage_keep_prob: float = 0.0
    outage_candidates_per_day: int = 2
    outage_duration_s: float = 900.0
    trace_gap_keep_prob: float = 0.0
    trace_gap_candidates_per_day: int = 1
    trace_gap_duration_s: float = 1800.0
    record_drop_rate: float = 0.0
    failed_attempt_fraction: float = 0.5

    def __post_init__(self) -> None:
        check_fraction("transfer_failure_rate", self.transfer_failure_rate)
        check_fraction("promotion_failure_rate", self.promotion_failure_rate)
        check_fraction("outage_keep_prob", self.outage_keep_prob)
        check_fraction("trace_gap_keep_prob", self.trace_gap_keep_prob)
        check_fraction("record_drop_rate", self.record_drop_rate)
        check_fraction("failed_attempt_fraction", self.failed_attempt_fraction)
        check_positive("outage_duration_s", self.outage_duration_s)
        check_positive("trace_gap_duration_s", self.trace_gap_duration_s)
        if self.outage_candidates_per_day < 0:
            raise ValueError(
                f"outage_candidates_per_day must be >= 0, got {self.outage_candidates_per_day}"
            )
        if self.trace_gap_candidates_per_day < 0:
            raise ValueError(
                "trace_gap_candidates_per_day must be >= 0, "
                f"got {self.trace_gap_candidates_per_day}"
            )

    @property
    def inert(self) -> bool:
        """Whether this plan can never inject anything."""
        return (
            self.transfer_failure_rate == 0.0
            and self.promotion_failure_rate == 0.0
            and (self.outage_keep_prob == 0.0 or self.outage_candidates_per_day == 0)
            and (self.trace_gap_keep_prob == 0.0 or self.trace_gap_candidates_per_day == 0)
            and self.record_drop_rate == 0.0
        )

    @classmethod
    def uniform(cls, rate: float, *, seed: int = 0) -> "FaultPlan":
        """One-knob plan for sweeps: scale every radio fault by ``rate``.

        Transfers fail at ``rate``, promotions at ``rate / 2``, and each
        of the two daily outage candidates fires with probability
        ``rate``.  Trace corruption stays off — the robustness sweep
        degrades the *network*, not the history.
        """
        check_fraction("rate", rate)
        return cls(
            seed=seed,
            transfer_failure_rate=rate,
            promotion_failure_rate=rate / 2.0,
            outage_keep_prob=rate,
        )


@dataclass(frozen=True, slots=True)
class TraceDegradation:
    """What :meth:`FaultInjector.degrade_trace` removed or repaired."""

    gap_windows: tuple[tuple[float, float], ...]
    dropped_sessions: int
    dropped_usages: int
    dropped_activities: int
    retagged_activities: int

    @property
    def dropped_records(self) -> int:
        """Total monitoring records lost to gaps and corruption."""
        return self.dropped_sessions + self.dropped_usages + self.dropped_activities


@dataclass
class FaultInjector:
    """Answers per-attempt failure questions for one :class:`FaultPlan`."""

    plan: FaultPlan = field(default_factory=FaultPlan)

    def __post_init__(self) -> None:
        self._outage_cache: dict[int, list[tuple[float, float]]] = {}

    # ------------------------------------------------------------------
    # counter-based randomness
    # ------------------------------------------------------------------
    def _uniform(self, day_key: int, index: int, attempt: int, channel: int) -> float:
        """One uniform draw at a fixed Philox counter position.

        Each position yields at most one scalar, so distinct counters
        never share bits and every decision is independent of call
        order.
        """
        bitgen = np.random.Philox(
            key=self.plan.seed & 0xFFFFFFFFFFFFFFFF,
            counter=[channel, attempt, index, day_key],
        )
        return float(np.random.Generator(bitgen).random())

    # ------------------------------------------------------------------
    # radio faults
    # ------------------------------------------------------------------
    def outage_windows(self, day_key: int) -> list[tuple[float, float]]:
        """The burst radio-outage windows of one day (sorted, cached)."""
        cached = self._outage_cache.get(day_key)
        if cached is not None:
            return cached
        windows: list[tuple[float, float]] = []
        if self.plan.outage_keep_prob > 0.0:
            span = max(0.0, DAY - self.plan.outage_duration_s)
            for k in range(self.plan.outage_candidates_per_day):
                keep = self._uniform(day_key, k, 0, _CH_OUTAGE_KEEP)
                if keep >= self.plan.outage_keep_prob:
                    continue
                start = self._uniform(day_key, k, 0, _CH_OUTAGE_POS) * span
                windows.append((start, start + self.plan.outage_duration_s))
        windows.sort()
        self._outage_cache[day_key] = windows
        return windows

    def in_outage(self, day_key: int, time_of_day: float) -> bool:
        """Whether ``time_of_day`` falls inside an outage window."""
        return any(lo <= time_of_day < hi for lo, hi in self.outage_windows(day_key))

    def outage_end(self, day_key: int, time_of_day: float) -> float:
        """End of the outage covering ``time_of_day`` (or the time itself)."""
        for lo, hi in self.outage_windows(day_key):
            if lo <= time_of_day < hi:
                return hi
        return time_of_day

    def attempt_fails(
        self, day_key: int, index: int, attempt: int, time_of_day: float
    ) -> str | None:
        """Failure reason for one transfer attempt, or ``None`` on success.

        ``index`` identifies the transfer within the day, ``attempt`` is
        1-based.  Reasons: ``"outage"`` (radio has no coverage),
        ``"promotion"`` (RRC promotion failed — promotion energy only),
        ``"transfer"`` (Bernoulli mid-flight abort — partial transfer
        energy).
        """
        if self.plan.inert:
            return None
        if self.in_outage(day_key, time_of_day):
            return "outage"
        if (
            self.plan.promotion_failure_rate > 0.0
            and self._uniform(day_key, index, attempt, _CH_PROMOTION)
            < self.plan.promotion_failure_rate
        ):
            return "promotion"
        if (
            self.plan.transfer_failure_rate > 0.0
            and self._uniform(day_key, index, attempt, _CH_TRANSFER)
            < self.plan.transfer_failure_rate
        ):
            return "transfer"
        return None

    # ------------------------------------------------------------------
    # monitoring-trace faults
    # ------------------------------------------------------------------
    def trace_gap_windows(self, day_key: int) -> list[tuple[float, float]]:
        """Monitoring-logger blackout windows for one trace day."""
        windows: list[tuple[float, float]] = []
        if self.plan.trace_gap_keep_prob > 0.0:
            span = max(0.0, DAY - self.plan.trace_gap_duration_s)
            for k in range(self.plan.trace_gap_candidates_per_day):
                keep = self._uniform(day_key, k, 0, _CH_TRACE_GAP_KEEP)
                if keep >= self.plan.trace_gap_keep_prob:
                    continue
                start = self._uniform(day_key, k, 0, _CH_TRACE_GAP_POS) * span
                windows.append((day_key * DAY + start, day_key * DAY + start + self.plan.trace_gap_duration_s))
        windows.sort()
        return windows

    def degrade_trace(self, trace: Trace) -> tuple[Trace, TraceDegradation]:
        """A copy of ``trace`` as a faulty monitoring logger would record it.

        Records starting inside a blackout window are lost; additionally
        every record is dropped independently with ``record_drop_rate``
        (storage corruption).  Activities whose screen session vanished
        are re-tagged ``screen_on=False`` so the degraded trace is still
        structurally valid — exactly the repair a lenient loader applies.
        """
        gaps: list[tuple[float, float]] = []
        for day in range(trace.n_days):
            gaps.extend(self.trace_gap_windows(day))

        def in_gap(t: float) -> bool:
            return any(lo <= t < hi for lo, hi in gaps)

        def dropped(kind_offset: int, i: int, t: float) -> bool:
            if in_gap(t):
                return True
            return (
                self.plan.record_drop_rate > 0.0
                and self._uniform(kind_offset, i, 0, _CH_RECORD_DROP)
                < self.plan.record_drop_rate
            )

        sessions = [
            s for i, s in enumerate(trace.screen_sessions) if not dropped(0, i, s.start)
        ]
        usages = [u for i, u in enumerate(trace.usages) if not dropped(1, i, u.time)]
        kept = [a for i, a in enumerate(trace.activities) if not dropped(2, i, a.time)]

        surviving = Trace(
            user_id=trace.user_id,
            n_days=trace.n_days,
            start_weekday=trace.start_weekday,
            screen_sessions=sessions,
            usages=usages,
            activities=[],
        )
        retagged = 0
        activities: list[NetworkActivity] = []
        for a in kept:
            on = surviving.screen_on_at(a.time)
            if on != a.screen_on:
                retagged += 1
                a = NetworkActivity(
                    time=a.time,
                    app=a.app,
                    down_bytes=a.down_bytes,
                    up_bytes=a.up_bytes,
                    duration=a.duration,
                    screen_on=on,
                )
            activities.append(a)

        degraded = Trace(
            user_id=trace.user_id,
            n_days=trace.n_days,
            start_weekday=trace.start_weekday,
            screen_sessions=sessions,
            usages=usages,
            activities=activities,
        )
        report = TraceDegradation(
            gap_windows=tuple(gaps),
            dropped_sessions=len(trace.screen_sessions) - len(sessions),
            dropped_usages=len(trace.usages) - len(usages),
            dropped_activities=len(trace.activities) - len(kept),
            retagged_activities=retagged,
        )
        return degraded, report
