"""Graceful degradation: the circuit breaker guarding deferral.

NetMaster's scheduling layer is only worth running while its habit
predictions are roughly right.  The :class:`CircuitBreaker` watches the
observed misprediction rate day by day and, when it crosses a threshold,
*opens* — the middleware stops deferring transfers and falls back to the
duty-cycle-only baseline (which never mispredicts, it just saves less).
After a cooldown of degraded days the breaker closes and deferral is
re-enabled, so a transient bad stretch (travel, holidays, a corrupted
history window) does not permanently cost the user the paper's savings.
"""

from __future__ import annotations

import logging
from dataclasses import dataclass, field

from repro._util import check_fraction
from repro.telemetry import metrics

logger = logging.getLogger(__name__)


@dataclass
class CircuitBreaker:
    """Per-day misprediction circuit breaker.

    ``record`` the end-of-day interrupt accounting; while ``open`` the
    caller should run its degraded path and call ``tick_degraded`` for
    each degraded day served.  Days with fewer than
    ``min_interactions`` user interactions carry too little signal and
    never trip the breaker.
    """

    threshold: float = 0.3
    min_interactions: int = 20
    cooldown_days: int = 1
    open: bool = field(default=False, init=False)
    tripped_count: int = field(default=0, init=False)
    _cooldown_left: int = field(default=0, init=False)

    def __post_init__(self) -> None:
        check_fraction("threshold", self.threshold)
        if self.min_interactions < 1:
            raise ValueError(f"min_interactions must be >= 1, got {self.min_interactions}")
        if self.cooldown_days < 1:
            raise ValueError(f"cooldown_days must be >= 1, got {self.cooldown_days}")

    def record(self, interrupts: int, interactions: int) -> bool:
        """Feed one day's misprediction counts; returns ``open`` after.

        ``interrupts`` is the number of wrong deferral decisions the user
        noticed, ``interactions`` the total user interactions observed.
        """
        if interrupts < 0 or interactions < 0:
            raise ValueError("interrupts and interactions must be >= 0")
        if interactions >= self.min_interactions and interrupts / interactions > self.threshold:
            self.open = True
            self.tripped_count += 1
            self._cooldown_left = self.cooldown_days
            metrics().inc("faults.breaker.trips")
            logger.warning(
                "circuit breaker tripped: %d/%d interrupts (threshold %.2f); "
                "deferral disabled for %d day(s)",
                interrupts,
                interactions,
                self.threshold,
                self.cooldown_days,
            )
        return self.open

    def tick_degraded(self) -> bool:
        """Count one degraded day served; returns ``open`` after.

        Closes the breaker once the cooldown has elapsed.
        """
        if self.open:
            self._cooldown_left -= 1
            if self._cooldown_left <= 0:
                self.open = False
        return self.open

    def state_dict(self) -> dict:
        """Mutable state as JSON-safe values (for stream checkpoints)."""
        return {
            "open": self.open,
            "tripped_count": self.tripped_count,
            "cooldown_left": self._cooldown_left,
        }

    def load_state(self, state: dict) -> None:
        """Restore state written by :meth:`state_dict`."""
        self.open = bool(state["open"])
        self.tripped_count = int(state["tripped_count"])
        self._cooldown_left = int(state["cooldown_left"])
