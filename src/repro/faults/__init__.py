"""Fault injection, retry, and graceful degradation.

Everything a real fleet throws at the middleware that the paper's
offline evaluation does not: failing transfers, radio outages, RRC
promotion failures, corrupted monitoring traces — plus the retry and
degradation machinery that keeps the energy savings (and the max-delay
guarantee) intact under them.
"""

from repro.faults.degradation import CircuitBreaker
from repro.faults.injector import FaultInjector, FaultPlan, TraceDegradation
from repro.faults.resilience import FaultStats, apply_faults
from repro.faults.retry import RetryOutcome, RetryPolicy, run_with_retries

__all__ = [
    "CircuitBreaker",
    "FaultInjector",
    "FaultPlan",
    "FaultStats",
    "RetryOutcome",
    "RetryPolicy",
    "TraceDegradation",
    "apply_faults",
    "run_with_retries",
]
