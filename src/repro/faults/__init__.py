"""Fault injection, retry, and graceful degradation.

Everything a real fleet throws at the middleware that the paper's
offline evaluation does not: failing transfers, radio outages, RRC
promotion failures, corrupted monitoring traces — plus the retry and
degradation machinery that keeps the energy savings (and the max-delay
guarantee) intact under them.  :mod:`repro.faults.storage` extends the
same discipline to the durability layer: seeded torn writes, truncated
WALs, and lost or bit-flipped snapshots against a shard directory.
:mod:`repro.faults.anomalies` supplies the labelled misbehaviour
scenarios (runaway app, radio stuck in DCH) the monitor subsystem is
graded against.
"""

from repro.faults.anomalies import AnomalyInjector
from repro.faults.degradation import CircuitBreaker
from repro.faults.injector import FaultInjector, FaultPlan, TraceDegradation
from repro.faults.resilience import FaultStats, apply_faults
from repro.faults.retry import RetryOutcome, RetryPolicy, run_with_retries
from repro.faults.storage import (
    StorageFaultInjector,
    current_snapshot_path,
    current_wal_path,
)

__all__ = [
    "AnomalyInjector",
    "CircuitBreaker",
    "FaultInjector",
    "FaultPlan",
    "FaultStats",
    "RetryOutcome",
    "RetryPolicy",
    "StorageFaultInjector",
    "TraceDegradation",
    "apply_faults",
    "current_snapshot_path",
    "current_wal_path",
    "run_with_retries",
]
