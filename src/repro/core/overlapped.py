"""Algorithm 1: multiple knapsack with overlapped itemsets.

The scheduling problem of Eq. (6): each user-active slot is a knapsack of
capacity ``C(t_i)``; each screen-off network activity is an item whose
profit ``ΔE_j − ΔP_j`` depends on *which* adjacent slot it lands in and
whose weight is its payload ``V(n_j)``.  Because an activity between two
adjacent slots may go to either, the slots' itemsets overlap — which is
what breaks the standard MKP reduction and motivates the paper's
four-step algorithm:

1. **Duplication** — materialize the item in both candidate slots;
2. **Sorting** — order each slot's items by profit/weight density;
3. **Dynamic programming** — run ``SinKnap`` (the Ibarra–Kim FPTAS)
   per slot;
4. **Filtering** — an item chosen twice keeps the placement with the
   smaller ``C(t_i) − V(n_j)`` (the tighter slot), then ``GreedyAdd``
   tops up residual capacity with leftover items.

Lemma IV.1: the result is a ``(1-ε)/2`` approximation of the optimum.
:func:`solve_exact_bruteforce` provides ground truth for verifying that
bound empirically on small instances.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from itertools import product

import numpy as np

from repro._util import check_fraction, check_positive
from repro.core.knapsack import SolutionMemo, knapsack_fptas_batch
from repro.telemetry import metrics

#: Maximum candidate slots per item (an activity sits between two
#: adjacent user-active slots).
MAX_CANDIDATES = 2

#: Shared per-slot solution memo: sweeps re-solve the same slot knapsack
#: across policies/days (identical itemset, capacity and ε), so the memo
#: is process-global rather than per ``solve_overlapped`` call.  Clear it
#: with :func:`clear_slot_memo` when instances should not be reused
#: (e.g. in per-test isolation).
_SLOT_MEMO = SolutionMemo()


def clear_slot_memo() -> None:
    """Drop all memoized slot solutions (testing/benchmark isolation)."""
    _SLOT_MEMO.clear()


@dataclass(frozen=True, slots=True)
class MKPSlot:
    """One user-active slot acting as a knapsack."""

    slot_id: int
    capacity: float

    def __post_init__(self) -> None:
        check_positive("capacity", self.capacity, strict=False)


@dataclass(frozen=True, slots=True)
class MKPItem:
    """One schedulable network activity.

    ``profits`` maps each candidate slot id to the net profit
    ``ΔE_j − ΔP_j`` of placing the item there (placements with
    non-positive profit should simply be omitted by the caller).
    """

    item_id: int
    weight: float
    profits: dict[int, float] = field(default_factory=dict)

    def __post_init__(self) -> None:
        check_positive("weight", self.weight, strict=False)
        if not self.profits:
            raise ValueError(f"item {self.item_id} has no candidate slots")
        if len(self.profits) > MAX_CANDIDATES:
            raise ValueError(
                f"item {self.item_id} has {len(self.profits)} candidate slots; "
                f"at most {MAX_CANDIDATES} (the adjacent pair) are allowed"
            )
        for slot_id, profit in self.profits.items():
            if profit < 0:
                raise ValueError(
                    f"item {self.item_id} has negative profit {profit} in slot {slot_id}; "
                    "drop unprofitable placements before solving"
                )

    @property
    def candidate_slots(self) -> tuple[int, ...]:
        """The slots this item may be scheduled into."""
        return tuple(self.profits)


@dataclass
class MKPSolution:
    """An assignment of items to slots with bookkeeping totals."""

    assignment: dict[int, int]
    total_profit: float
    slot_loads: dict[int, float]

    def items_in(self, slot_id: int) -> list[int]:
        """Item ids assigned to ``slot_id``."""
        return [i for i, s in self.assignment.items() if s == slot_id]

    def validate(self, slots: list[MKPSlot], items: list[MKPItem]) -> None:
        """Assert feasibility: capacities respected, candidates honoured."""
        by_slot = {s.slot_id: s for s in slots}
        by_item = {i.item_id: i for i in items}
        loads: dict[int, float] = {s.slot_id: 0.0 for s in slots}
        for item_id, slot_id in self.assignment.items():
            item = by_item[item_id]
            if slot_id not in item.profits:
                raise ValueError(f"item {item_id} assigned to non-candidate slot {slot_id}")
            loads[slot_id] += item.weight
        for slot_id, load in loads.items():
            if load > by_slot[slot_id].capacity + 1e-9:
                raise ValueError(
                    f"slot {slot_id} overloaded: {load} > {by_slot[slot_id].capacity}"
                )


#: Filtering rules for step 4 (duplicated-item resolution):
#: ``"best"`` keeps the higher-profit copy (tie-break by the paper's
#: smaller-residual rule) — the variant that preserves Lemma IV.1 under
#: slot-dependent ΔP; ``"residual"`` is the paper's literal rule (smaller
#: ``C(t_i) − V(n_j)`` wins); ``"first"`` naively keeps the earlier slot.
FILTER_RULES = ("best", "residual", "first")


@dataclass
class _PreparedInstance:
    """Steps 1+2 of Algorithm 1, awaiting its SinKnap solutions.

    ``chosen_in`` is pre-seeded with the trivial slots (empty or
    everything-fits); ``batch_slots``/``batch_problems`` hold the
    non-trivial per-slot FPTAS sub-instances in slot order.
    """

    slots: list[MKPSlot]
    items: list[MKPItem]
    slot_by_id: dict[int, MKPSlot]
    filter_rule: str
    chosen_in: dict[int, set[int]]
    batch_slots: list[tuple[int, list[MKPItem]]]
    batch_problems: list[tuple[np.ndarray, np.ndarray, float]]

    def absorb(self, solutions: list) -> None:
        """Record this instance's slice of batched SinKnap solutions."""
        for (slot_id, candidates), solution in zip(self.batch_slots, solutions):
            self.chosen_in[slot_id] = {
                candidates[i].item_id for i in solution.indices
            }


def _prepare_instance(
    slots: list[MKPSlot],
    items: list[MKPItem],
    eps: float,
    filter_rule: str,
) -> _PreparedInstance:
    """Validate one instance and run duplication + density sorting."""
    check_fraction("eps", eps)
    if filter_rule not in FILTER_RULES:
        raise ValueError(f"filter_rule must be one of {FILTER_RULES}, got {filter_rule!r}")
    if len({s.slot_id for s in slots}) != len(slots):
        raise ValueError("duplicate slot ids")
    if len({i.item_id for i in items}) != len(items):
        raise ValueError("duplicate item ids")
    slot_by_id = {s.slot_id: s for s in slots}
    for item in items:
        unknown = set(item.profits) - set(slot_by_id)
        if unknown:
            raise ValueError(f"item {item.item_id} references unknown slots {unknown}")
    reg = metrics()
    if reg.enabled:
        reg.inc("core.overlapped.solves")
        reg.inc("core.overlapped.slots", len(slots))
        reg.inc("core.overlapped.items", len(items))

    # Step 1 — Duplication: per-slot item lists (an item between two
    # adjacent slots appears in both).
    per_slot_items: dict[int, list[MKPItem]] = {s.slot_id: [] for s in slots}
    for item in items:
        for slot_id in item.candidate_slots:
            per_slot_items[slot_id].append(item)

    # Step 2 — Sorting, collecting every non-trivial slot's sub-instance
    # for one batched SinKnap call.
    chosen_in: dict[int, set[int]] = {}
    batch_slots: list[tuple[int, list[MKPItem]]] = []
    batch_problems: list[tuple[np.ndarray, np.ndarray, float]] = []
    for slot in slots:
        candidates = per_slot_items[slot.slot_id]
        if not candidates:
            chosen_in[slot.slot_id] = set()
            continue
        if sum(it.weight for it in candidates) <= slot.capacity:
            # Every candidate fits together: taking all of them is the
            # slot optimum (profits are non-negative), so skip the FPTAS.
            chosen_in[slot.slot_id] = {it.item_id for it in candidates}
            continue
        # Sort by profit density, non-increasing (paper step 2); the sort
        # also makes the FPTAS output deterministic across runs.
        candidates = sorted(
            candidates,
            key=lambda it: (
                -(it.profits[slot.slot_id] / it.weight if it.weight > 0 else np.inf),
                it.item_id,
            ),
        )
        profits = np.array([it.profits[slot.slot_id] for it in candidates])
        weights = np.array([it.weight for it in candidates])
        batch_slots.append((slot.slot_id, candidates))
        batch_problems.append((profits, weights, slot.capacity))
    return _PreparedInstance(
        slots=slots,
        items=items,
        slot_by_id=slot_by_id,
        filter_rule=filter_rule,
        chosen_in=chosen_in,
        batch_slots=batch_slots,
        batch_problems=batch_problems,
    )


def solve_overlapped(
    slots: list[MKPSlot],
    items: list[MKPItem],
    *,
    eps: float = 0.1,
    filter_rule: str = "best",
) -> MKPSolution:
    """Run Algorithm 1 and return a validated ``(1-ε)/2`` solution."""
    prep = _prepare_instance(slots, items, eps, filter_rule)
    # Step 3 — one batched SinKnap call over every non-trivial slot.  The
    # batch shares the process-global slot memo, so identical (itemset,
    # capacity, ε) sub-instances — common when a sweep replays the same
    # day under many policies — are solved once.
    if prep.batch_problems:
        prep.absorb(
            knapsack_fptas_batch(prep.batch_problems, eps=eps, memo=_SLOT_MEMO)
        )
    return _finish_instance(prep)


def solve_overlapped_batch(
    instances: list[tuple[list[MKPSlot], list[MKPItem]]],
    *,
    eps: float = 0.1,
    filter_rule: str = "best",
) -> list[MKPSolution]:
    """Run Algorithm 1 over many instances with one SinKnap batch.

    ``results[i]`` equals ``solve_overlapped(*instances[i], ...)`` —
    each instance's filtering and greedy top-up are unchanged — but all
    per-slot FPTAS sub-problems across all instances dispatch through a
    single :func:`knapsack_fptas_batch` call sharing the process-global
    slot memo, so cross-instance duplicates (the same slot knapsack
    recurring across days or policies) are solved exactly once.
    """
    preps = [
        _prepare_instance(slots, items, eps, filter_rule)
        for slots, items in instances
    ]
    all_problems = [p for prep in preps for p in prep.batch_problems]
    if all_problems:
        solutions = knapsack_fptas_batch(all_problems, eps=eps, memo=_SLOT_MEMO)
        pos = 0
        for prep in preps:
            take = len(prep.batch_problems)
            prep.absorb(solutions[pos : pos + take])
            pos += take
    return [_finish_instance(prep) for prep in preps]


def _finish_instance(prep: _PreparedInstance) -> MKPSolution:
    """Steps 4a+4b: filtering, greedy top-up, totals, validation."""
    slots = prep.slots
    items = prep.items
    slot_by_id = prep.slot_by_id
    filter_rule = prep.filter_rule
    chosen_in = prep.chosen_in

    # Step 4a — Filtering: items chosen in both candidate slots keep the
    # tighter placement (smaller C(t_i) − V(n_j)).
    assignment: dict[int, int] = {}
    for item in items:
        hits = [s for s in item.candidate_slots if item.item_id in chosen_in[s]]
        if not hits:
            continue
        if len(hits) == 1:
            assignment[item.item_id] = hits[0]
            continue
        # Default rule: keep the more profitable placement; the paper's
        # rule (smaller residual C(t_i) − V(n_j)) breaks ties.  With
        # distance-dependent ΔP the two copies' profits differ, and
        # keeping the max-profit copy is what preserves the Lemma IV.1
        # factor: the kept profit is at least half the two copies' sum.
        # When profits are equal (the lemma's ΔE-only setting) "best"
        # reduces exactly to the paper's residual-capacity rule.
        residuals = {s: slot_by_id[s].capacity - item.weight for s in hits}
        if filter_rule == "best":
            keep = min(hits, key=lambda s: (-item.profits[s], residuals[s], s))
        elif filter_rule == "residual":
            keep = min(hits, key=lambda s: (residuals[s], s))
        else:  # "first"
            keep = min(hits)
        assignment[item.item_id] = keep

    loads: dict[int, float] = {s.slot_id: 0.0 for s in slots}
    for item in items:
        if item.item_id in assignment:
            loads[assignment[item.item_id]] += item.weight

    # Step 4b — GreedyAdd: top up residual capacity with leftover items,
    # best available placement first.
    leftovers = [it for it in items if it.item_id not in assignment]
    leftovers.sort(
        key=lambda it: (
            -(max(it.profits.values()) / it.weight if it.weight > 0 else np.inf),
            it.item_id,
        )
    )
    for item in leftovers:
        options = sorted(
            item.candidate_slots, key=lambda s: (-item.profits[s], s)
        )
        for slot_id in options:
            if loads[slot_id] + item.weight <= slot_by_id[slot_id].capacity:
                assignment[item.item_id] = slot_id
                loads[slot_id] += item.weight
                break

    total = sum(
        next(i for i in items if i.item_id == item_id).profits[slot_id]
        for item_id, slot_id in assignment.items()
    )
    solution = MKPSolution(assignment=assignment, total_profit=total, slot_loads=loads)
    solution.validate(slots, items)
    return solution


def solve_exact_bruteforce(slots: list[MKPSlot], items: list[MKPItem]) -> MKPSolution:
    """Exhaustive optimum over all (slot ∪ {unassigned}) item placements.

    Exponential (``3^n`` for two-candidate items); restricted to
    ``n ≤ 14`` items.  Used as the ground truth when verifying the
    Lemma IV.1 approximation bound.
    """
    if len(items) > 14:
        raise ValueError(f"bruteforce limited to 14 items, got {len(items)}")
    slot_by_id = {s.slot_id: s for s in slots}
    choices = [(None, *item.candidate_slots) for item in items]
    best_profit = -1.0
    best_assignment: dict[int, int] = {}
    for combo in product(*choices):
        loads: dict[int, float] = {}
        profit = 0.0
        feasible = True
        for item, slot_id in zip(items, combo):
            if slot_id is None:
                continue
            loads[slot_id] = loads.get(slot_id, 0.0) + item.weight
            if loads[slot_id] > slot_by_id[slot_id].capacity + 1e-12:
                feasible = False
                break
            profit += item.profits[slot_id]
        if feasible and profit > best_profit:
            best_profit = profit
            best_assignment = {
                item.item_id: slot_id
                for item, slot_id in zip(items, combo)
                if slot_id is not None
            }
    final_loads: dict[int, float] = {s.slot_id: 0.0 for s in slots}
    by_item = {i.item_id: i for i in items}
    for item_id, slot_id in best_assignment.items():
        final_loads[slot_id] += by_item[item_id].weight
    solution = MKPSolution(
        assignment=best_assignment,
        total_profit=max(best_profit, 0.0),
        slot_loads=final_loads,
    )
    solution.validate(slots, items)
    return solution
