"""Profit model and MKP instance construction (Eqs. (4)-(6)).

Turns a fitted :class:`~repro.habits.prediction.HabitModel` plus a
user-active-slot prediction into the overlapped-MKP instance Algorithm 1
solves:

* **items** are the *expected* screen-off network activities of the
  planning day — each hour of the network active slot set ``T_n``
  contributes its expected activity count, each with the hour's mean
  payload and duration;
* an item's **profit** in a candidate slot is ``ΔE − ΔP``: the tail/
  promotion energy saved (via the radio power model's ``g``) minus the
  Eq. (4) interruption penalty ``e_t · (t_m − t_j) · ∫Pr[u(t)]dt``;
* a slot's **capacity** is Eq. (5) applied to the slot's expected
  radio-active seconds (see :mod:`repro.radio.bandwidth`).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro._util import DAY, HOUR, HOURS_PER_DAY, check_fraction, check_positive
from repro.core.overlapped import MKPItem, MKPSlot
from repro.habits.prediction import HabitModel, Slot, SlotPrediction
from repro.radio.bandwidth import LinkModel
from repro.radio.power import RadioPowerModel

#: Default Eq. (4) scaling factor e_t (J / s²-of-probability-mass): chosen
#: so that deferring one typical background sync across a couple of hours
#: of likely usage costs the same order as its ΔE (~10 J on WCDMA).
DEFAULT_ET = 1e-6

#: Hours whose expected screen-off activity count falls below this do not
#: enter T_n (there is nothing worth planning for).
MIN_EXPECTED_COUNT = 0.25


@dataclass(frozen=True, slots=True)
class PlannedActivity:
    """One expected screen-off activity (a pseudo-item for planning)."""

    hour: int
    index: int
    payload_bytes: float
    duration_s: float
    nominal_time: float  # representative second-of-day

    def __post_init__(self) -> None:
        if not 0 <= self.hour < HOURS_PER_DAY:
            raise ValueError(f"hour must be in [0, 24), got {self.hour}")
        check_positive("payload_bytes", self.payload_bytes, strict=False)
        check_positive("duration_s", self.duration_s)
        if not 0.0 <= self.nominal_time < DAY:
            raise ValueError("nominal_time must lie within the day")


@dataclass(frozen=True, slots=True)
class ProfitParams:
    """Knobs of the profit model."""

    power: RadioPowerModel
    link: LinkModel = field(default_factory=LinkModel)
    et_w: float = DEFAULT_ET
    min_expected_count: float = MIN_EXPECTED_COUNT

    def __post_init__(self) -> None:
        check_positive("et_w", self.et_w, strict=False)
        check_positive("min_expected_count", self.min_expected_count, strict=False)


@dataclass
class ScheduleInstance:
    """A fully-specified overlapped-MKP instance plus its provenance."""

    weekend: bool
    prediction: SlotPrediction
    slots: list[MKPSlot]
    items: list[MKPItem]
    slot_info: dict[int, Slot]
    activity_info: dict[int, PlannedActivity]
    unplaced: list[PlannedActivity]

    @property
    def n_planned(self) -> int:
        """Expected activities that made it into the instance."""
        return len(self.items)


def expected_activities(
    model: HabitModel, *, weekend: bool, min_expected_count: float = MIN_EXPECTED_COUNT
) -> list[PlannedActivity]:
    """Expand per-hour expectations into individual pseudo-activities.

    An hour with expected count ``c ≥ min_expected_count`` contributes
    ``round(c)`` (at least 1) activities, each carrying the hour's mean
    payload and duration, spread evenly across the hour.
    """
    counts = model.net_counts(weekend=weekend)
    payloads = model.net_bytes(weekend=weekend)
    seconds = model.net_seconds(weekend=weekend)
    activities: list[PlannedActivity] = []
    for hour in range(HOURS_PER_DAY):
        c = float(counts[hour])
        if c < min_expected_count:
            continue
        n = max(1, int(round(c)))
        mean_bytes = payloads[hour] / c
        mean_duration = max(0.5, seconds[hour] / c)
        for i in range(n):
            activities.append(
                PlannedActivity(
                    hour=hour,
                    index=i,
                    payload_bytes=mean_bytes,
                    duration_s=mean_duration,
                    nominal_time=hour * HOUR + (i + 0.5) * HOUR / n,
                )
            )
    return activities


def slot_capacity_bytes(
    model: HabitModel, slot: Slot, link: LinkModel, *, weekend: bool
) -> float:
    """Eq. (5) capacity from the slot's expected radio-active seconds."""
    seconds = model.screen_seconds(weekend=weekend)
    active = 0.0
    first = int(slot.start // HOUR)
    last = int((slot.end - 1e-9) // HOUR)
    for hour in range(first, last + 1):
        lo, hi = hour * HOUR, (hour + 1) * HOUR
        overlap = min(slot.end, hi) - max(slot.start, lo)
        active += seconds[hour] * (overlap / HOUR)
    return link.slot_capacity_bytes(active)


def adjacent_slots(slots: tuple[Slot, ...], time_of_day: float) -> tuple[int | None, int | None]:
    """Indices of the user-active slots before and after ``time_of_day``.

    A time *inside* a slot returns that slot on both sides (it needs no
    rescheduling, but callers may still ask).
    """
    prev_idx = next_idx = None
    for i, slot in enumerate(slots):
        if slot.end <= time_of_day:
            prev_idx = i
        elif slot.start > time_of_day:
            next_idx = i
            break
        else:  # inside
            return i, i
    return prev_idx, next_idx


def placement_profit(
    activity: PlannedActivity,
    slot: Slot,
    model: HabitModel,
    params: ProfitParams,
    *,
    weekend: bool,
) -> float:
    """``ΔE − ΔP`` of placing ``activity`` into ``slot`` (may be ≤ 0).

    ΔE is the tail+promotion energy eliminated by piggybacking the
    transfer on an active slot; ΔP follows Eq. (4) over the deferral
    interval between the activity's nominal time and the slot's nearest
    edge (``∫e_t dt · ∫Pr[u(t)]dt``).
    """
    delta_e = params.power.saved_energy_j(activity.duration_s)
    t_j = activity.nominal_time
    if slot.contains(t_j):
        return delta_e  # lands inside the slot: no deferral, no penalty
    t_m = slot.end if slot.end <= t_j else slot.start
    lo, hi = (t_m, t_j) if t_m < t_j else (t_j, t_m)
    prob_mass = model.usage_prob_integral(lo, hi, weekend=weekend)
    delta_p = params.et_w * (hi - lo) * prob_mass
    return delta_e - delta_p


def build_instance(
    model: HabitModel,
    prediction: SlotPrediction,
    params: ProfitParams,
    *,
    weekend: bool,
) -> ScheduleInstance:
    """Assemble the overlapped-MKP instance for one planning day.

    Activities whose every candidate placement has non-positive profit —
    or which have no adjacent slot at all — are returned in ``unplaced``
    and fall through to the duty-cycle path at runtime.
    """
    slots = prediction.slots
    mkp_slots = [
        MKPSlot(i, slot_capacity_bytes(model, slot, params.link, weekend=weekend))
        for i, slot in enumerate(slots)
    ]
    slot_info = dict(enumerate(slots))

    planned = expected_activities(
        model, weekend=weekend, min_expected_count=params.min_expected_count
    )
    active_hours = prediction.active_hours
    items: list[MKPItem] = []
    activity_info: dict[int, PlannedActivity] = {}
    unplaced: list[PlannedActivity] = []
    item_id = 0
    for activity in planned:
        if active_hours[activity.hour]:
            # Expected traffic inside U needs no rescheduling (Eq. (3)
            # excludes t_i ∈ U from T_n).
            continue
        prev_idx, next_idx = adjacent_slots(slots, activity.nominal_time)
        profits: dict[int, float] = {}
        for idx in {prev_idx, next_idx}:
            if idx is None:
                continue
            profit = placement_profit(
                activity, slots[idx], model, params, weekend=weekend
            )
            if profit > 0:
                profits[idx] = profit
        if not profits:
            unplaced.append(activity)
            continue
        items.append(MKPItem(item_id, activity.payload_bytes, profits))
        activity_info[item_id] = activity
        item_id += 1

    return ScheduleInstance(
        weekend=weekend,
        prediction=prediction,
        slots=mkp_slots,
        items=items,
        slot_info=slot_info,
        activity_info=activity_info,
        unplaced=unplaced,
    )
