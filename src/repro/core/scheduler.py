"""The NetMaster scheduling component: plan construction and admission.

Glues the mining outputs to Algorithm 1 (Section V-C "decision making"):

1. predict the user-active slot set ``U`` for the day type;
2. build the overlapped-MKP instance from expected screen-off traffic
   (:mod:`repro.core.profit`);
3. solve it with the ``(1-ε)/2`` algorithm (ε = 0.1 in the paper);
4. expose the result as a :class:`DayPlan` that the runtime queries
   activity-by-activity: *which slot does an hour-``h`` background
   transfer go to, and is there capacity left?*

Scheduled transfers are packed back-to-back from the start of their slot
so they coalesce into a single radio-on window.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro._util import check_fraction
from repro.core.overlapped import MKPSolution, solve_overlapped
from repro.core.profit import ProfitParams, ScheduleInstance, build_instance
from repro.habits.prediction import HabitModel, Slot, SlotPrediction
from repro.habits.threshold import DeltaStrategy
from repro.telemetry import metrics, tracer

#: Gap inserted between packed transfers inside a slot; small enough that
#: the RRC machine keeps the radio in DCH across the whole burst.
PACK_GAP_S = 0.2


@dataclass
class DayPlan:
    """The executable outcome of one day's planning.

    Stateful at runtime: :meth:`admit` consumes slot capacity and
    :meth:`execution_time` advances per-slot packing cursors, so create a
    fresh plan (or call :meth:`reset`) per simulated day.
    """

    weekend: bool
    prediction: SlotPrediction
    instance: ScheduleInstance
    solution: MKPSolution
    hour_slots: dict[int, list[int]]
    capacity_left: dict[int, float] = field(default_factory=dict)
    _cursor: dict[int, float] = field(default_factory=dict)
    _rotation: dict[int, int] = field(default_factory=dict)

    def __post_init__(self) -> None:
        self.reset()

    def reset(self) -> None:
        """Restore full capacities and packing cursors."""
        self.capacity_left = {s.slot_id: s.capacity for s in self.instance.slots}
        self._cursor = {
            slot_id: slot.start for slot_id, slot in self.instance.slot_info.items()
        }
        self._rotation = {}

    # ------------------------------------------------------------------
    # plan queries
    # ------------------------------------------------------------------
    def slot(self, slot_id: int) -> Slot:
        """The wall-clock slot behind a knapsack id."""
        return self.instance.slot_info[slot_id]

    @property
    def planned_hours(self) -> list[int]:
        """Hours of ``T_n`` with at least one scheduled pseudo-activity."""
        return sorted(self.hour_slots)

    @property
    def scheduled_fraction(self) -> float:
        """Fraction of planned pseudo-activities that got a slot."""
        total = len(self.instance.items) + len(self.instance.unplaced)
        if total == 0:
            return 1.0
        return len(self.solution.assignment) / total

    # ------------------------------------------------------------------
    # runtime admission
    # ------------------------------------------------------------------
    def admit(self, hour: int, payload_bytes: float) -> int | None:
        """Admit a real activity of hour ``hour`` into a planned slot.

        Rotates through the slots the hour's pseudo-activities were
        assigned to, skipping slots whose remaining capacity cannot take
        the payload.  Returns the chosen slot id, or ``None`` when the
        activity must fall back to the duty-cycle path.
        """
        assigned = self.hour_slots.get(hour)
        if not assigned:
            return None
        start = self._rotation.get(hour, 0)
        for offset in range(len(assigned)):
            slot_id = assigned[(start + offset) % len(assigned)]
            if self.capacity_left[slot_id] >= payload_bytes:
                self._rotation[hour] = (start + offset + 1) % len(assigned)
                self.capacity_left[slot_id] -= payload_bytes
                return slot_id
        return None

    def execution_time(self, slot_id: int, duration_s: float) -> float:
        """Packed execution start time (second-of-day) within a slot."""
        t = self._cursor[slot_id]
        self._cursor[slot_id] = t + duration_s + PACK_GAP_S
        return t


@dataclass
class NetMasterScheduler:
    """Builds :class:`DayPlan` objects from a fitted habit model."""

    habit: HabitModel
    params: ProfitParams
    eps: float = 0.1
    delta: DeltaStrategy | None = None

    def __post_init__(self) -> None:
        check_fraction("eps", self.eps)
        if self.eps == 0.0:
            raise ValueError("eps must be > 0 (the FPTAS needs a positive ε)")

    def plan(self, *, weekend: bool) -> DayPlan:
        """Produce the day's scheduling scheme ``S`` (Eq. (6))."""
        prediction = self.habit.user_slots(weekend=weekend, strategy=self.delta)
        instance = build_instance(self.habit, prediction, self.params, weekend=weekend)
        with tracer().span(
            "knapsack-solve",
            "scheduler",
            slots=len(instance.slots),
            items=len(instance.items),
        ):
            solution = solve_overlapped(instance.slots, instance.items, eps=self.eps)
        reg = metrics()
        if reg.enabled:
            reg.inc("core.scheduler.plans")
            reg.inc("core.scheduler.items_planned", len(solution.assignment))
            reg.inc("core.scheduler.items_unplaced", len(instance.unplaced))
        hour_slots: dict[int, list[int]] = {}
        for item_id in sorted(solution.assignment):
            activity = instance.activity_info[item_id]
            hour_slots.setdefault(activity.hour, []).append(
                solution.assignment[item_id]
            )
        return DayPlan(
            weekend=weekend,
            prediction=prediction,
            instance=instance,
            solution=solution,
            hour_slots=hour_slots,
        )
