"""Columnar batch pricing: many (outcome, day) cells per array pass.

The per-lane evaluation path prices each grid cell with two full trips
through the interval engine (``outcome.energy`` merges + decomposes,
then ``outcome.radio_on`` merges + decomposes again).  This front-end
routes whole grids through :func:`repro.radio.lanes.replay_many`: one
merge + one decomposition per lane, batched across all lanes, with the
scalar per-cell adjustments (wake-up/fault surcharges, payload checks,
utilization) applied identically afterwards.

Bit-identity contract: every returned :class:`PolicyDayMetrics` equals
the one :func:`repro.evaluation.metrics.measure_outcome` produces for
the same cell — the lane kernel is bit-exact and the assembly reuses
the exact same scalar code paths (``finalize_energy``,
``merge_radio_on``, ``assemble_day_metrics``).

Imports of :mod:`repro.evaluation` / :mod:`repro.runtime` stay
function-level: those packages import :mod:`repro.core`.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Sequence

from repro.baselines.policy import PolicyOutcome
from repro.radio.bandwidth import activity_digest
from repro.radio.lanes import replay_many_lengths
from repro.radio.power import RadioPowerModel
from repro.traces.events import Trace

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.evaluation.metrics import PolicyDayMetrics
    from repro.runtime.parallel import PolicyTask

__all__ = ["measure_outcomes_columnar", "run_policy_tasks_columnar"]


def measure_outcomes_columnar(
    cells: Sequence[tuple[PolicyOutcome, Trace]], model: RadioPowerModel
) -> list["PolicyDayMetrics"]:
    """Batched :func:`repro.evaluation.metrics.measure_outcome`.

    ``results[i]`` is bit-equal to
    ``measure_outcome(cells[i][0], model, cells[i][1])``; the RRC merge,
    decomposition and energy reduction run once per cell (serving both
    energy and radio-on) inside one cross-cell lane batch.
    """
    from repro.evaluation.metrics import (
        assemble_day_metrics,
        assemble_day_metrics_from_time,
    )

    # One cached pass per distinct activity list serves both the payload
    # check and the utilization stats (grids also reuse the same day
    # across policies).  Each digest component is bit-equal to its
    # standalone reduction; list identity is a safe cache key because
    # the cells hold their references for the duration of this call.
    digests: dict[int, tuple[float, float, float, float, float]] = {}

    def digest(activities) -> tuple[float, float, float, float, float]:
        d = digests.get(id(activities))
        if d is None:
            d = activity_digest(activities)
            digests[id(activities)] = d
        return d

    for outcome, day in cells:
        outcome.validate_payload(
            day,
            src_bytes=digest(day.activities)[4],
            out_bytes=digest(outcome.activities)[4],
        )
    window_lists = [outcome.priced_windows() for outcome, _ in cells]
    policies = [outcome.priced_tail_policy() for outcome, _ in cells]
    tails = [outcome.priced_window_tails() for outcome, _ in cells]
    # Interval lists are only materialized for lanes that must re-merge
    # with extra wake windows; every other lane needs just the merged
    # radio-on length, which the kernel totals in-array.
    keep = [bool(outcome.extra_windows) for outcome, _ in cells]
    priced = replay_many_lengths(
        window_lists, model, policies, window_tails=tails, keep_intervals=keep
    )
    out: list["PolicyDayMetrics"] = []
    for (outcome, _), (base, on_s, intervals) in zip(cells, priced):
        report = outcome.finalize_energy(base, model)
        stats = digest(outcome.activities)
        if intervals is None:
            out.append(
                assemble_day_metrics_from_time(
                    outcome, report, on_s, digest=stats
                )
            )
        else:
            radio_on = outcome.merge_radio_on(intervals)
            out.append(
                assemble_day_metrics(outcome, report, radio_on, digest=stats)
            )
    return out


def run_policy_tasks_columnar(
    tasks: Sequence["PolicyTask"], *, jobs: int = 1
) -> list[list["PolicyDayMetrics"]]:
    """Columnar twin of :func:`repro.runtime.parallel.run_policy_tasks`.

    Executes the task grid as usual (serial or fanned over ``jobs``
    workers), then prices every (outcome, day) cell through the lane
    kernel in one batch per distinct power model — instead of two
    interval-engine trips per cell.  Results are bit-identical in task
    and day order.
    """
    from repro.runtime.parallel import execute_policy_tasks

    outcomes = execute_policy_tasks(tasks, jobs=jobs)
    flat_cells: list[tuple[PolicyOutcome, Trace]] = []
    flat_models: list[RadioPowerModel] = []
    for task, outs in zip(tasks, outcomes):
        for day, outcome in zip(task.days, outs):
            flat_cells.append((outcome, day))
            flat_models.append(task.model)
    # One lane batch per distinct model (RadioPowerModel is frozen and
    # hashable); grids are usually single-model, so this is one pass.
    by_model: dict[RadioPowerModel, list[int]] = {}
    for i, model in enumerate(flat_models):
        by_model.setdefault(model, []).append(i)
    flat_metrics: list["PolicyDayMetrics" | None] = [None] * len(flat_cells)
    for model, idxs in by_model.items():
        measured = measure_outcomes_columnar(
            [flat_cells[i] for i in idxs], model
        )
        for i, m in zip(idxs, measured):
            flat_metrics[i] = m
    result: list[list["PolicyDayMetrics"]] = []
    pos = 0
    for task in tasks:
        result.append(flat_metrics[pos : pos + len(task.days)])
        pos += len(task.days)
    return result
