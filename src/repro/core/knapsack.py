"""Single-knapsack solvers: exact DP, Ibarra–Kim FPTAS, greedy.

The paper's Algorithm 1 rests on ``SinKnap`` — the fully-polynomial
approximation scheme of Ibarra & Kim (JACM 1975) — applied per user-active
slot.  This module provides:

* :func:`knapsack_fptas` — profit-scaled dynamic programming with a
  ``(1-ε)`` guarantee in ``O(n²/ε)`` time (vectorized DP rows);
* :func:`knapsack_exact` — the same DP without scaling for integer
  profits (exact; used as ground truth in tests);
* :func:`knapsack_bruteforce` — exhaustive search for tiny instances;
* :func:`knapsack_greedy` — density-ordered greedy with the classic
  best-single-item fix-up (``1/2`` guarantee), used by ``GreedyAdd``.

Profits and weights are non-negative floats; capacities are floats.
All solvers return a :class:`KnapsackSolution`.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import combinations

import numpy as np

from repro._util import check_fraction, check_positive
from repro.telemetry import metrics


@dataclass(frozen=True, slots=True)
class KnapsackSolution:
    """A feasible knapsack packing: chosen indices plus totals."""

    indices: tuple[int, ...]
    profit: float
    weight: float

    def __post_init__(self) -> None:
        if len(set(self.indices)) != len(self.indices):
            raise ValueError("solution contains duplicate indices")


def _validate(profits: np.ndarray, weights: np.ndarray, capacity: float) -> None:
    if profits.ndim != 1 or weights.ndim != 1:
        raise ValueError("profits and weights must be 1-D")
    if profits.shape != weights.shape:
        raise ValueError(
            f"profits and weights must have equal length, got {profits.size} vs {weights.size}"
        )
    if (profits < 0).any():
        raise ValueError("profits must be non-negative")
    if (weights < 0).any():
        raise ValueError("weights must be non-negative")
    check_positive("capacity", capacity, strict=False)


def _solution(indices: list[int], profits: np.ndarray, weights: np.ndarray) -> KnapsackSolution:
    idx = tuple(sorted(indices))
    return KnapsackSolution(
        indices=idx,
        profit=float(profits[list(idx)].sum()) if idx else 0.0,
        weight=float(weights[list(idx)].sum()) if idx else 0.0,
    )


def _profit_dp(
    int_profits: np.ndarray, weights: np.ndarray, capacity: float
) -> list[int]:
    """Min-weight-per-profit DP; returns chosen item indices.

    ``int_profits`` must be non-negative integers.  Runs in
    ``O(n · Σprofit)`` with NumPy-vectorized row updates.  The take
    table needed for reconstruction is kept as packed bits (one bit per
    DP cell via :func:`numpy.packbits`) instead of one bool byte per
    cell, cutting its peak memory 8× — the take table dominates the
    solver's footprint, so batches of large FPTAS solves stay cheap.
    """
    n = int_profits.size
    total = int(int_profits.sum())
    if total == 0:
        return []
    if n * (total + 1) > 200_000_000:
        raise ValueError(
            f"DP table would need {n * (total + 1)} cells; "
            "increase eps or split the instance"
        )
    # dp[q] = minimal weight achieving scaled profit exactly q
    dp = np.full(total + 1, np.inf)
    dp[0] = 0.0
    # take[i] packs total+1 bits: bit q set iff item i improved cell q.
    take = np.zeros((n, (total + 8) // 8), dtype=np.uint8)
    row = np.zeros(total + 1, dtype=bool)  # reused packing scratch
    for i in range(n):
        q = int(int_profits[i])
        w = float(weights[i])
        if q == 0:
            # Zero-profit items never improve the objective; skip.
            continue
        cand = dp[:-q] + w
        better = cand < dp[q:]
        if better.any():
            dp[q:][better] = cand[better]
            row[q:] = better
            take[i] = np.packbits(row)
            row[q:] = False
    feasible = np.nonzero(dp <= capacity)[0]
    best_q = int(feasible.max())
    # Reconstruct by walking items backwards (bit q of row i, MSB first).
    chosen: list[int] = []
    q = best_q
    for i in range(n - 1, -1, -1):
        if q > 0 and take[i, q >> 3] & (0x80 >> (q & 7)):
            chosen.append(i)
            q -= int(int_profits[i])
    if q != 0:
        raise AssertionError("DP reconstruction failed to reach profit 0")
    return chosen


def knapsack_exact(
    profits: np.ndarray | list[float],
    weights: np.ndarray | list[float],
    capacity: float,
) -> KnapsackSolution:
    """Exact 0/1 knapsack for integer-valued profits.

    Raises :class:`ValueError` when profits are not (near-)integers —
    use :func:`knapsack_fptas` for general floats.
    """
    profits = np.asarray(profits, dtype=np.float64)
    weights = np.asarray(weights, dtype=np.float64)
    _validate(profits, weights, capacity)
    rounded = np.rint(profits)
    if not np.allclose(profits, rounded, atol=1e-9):
        raise ValueError("knapsack_exact requires integer profits")
    usable = weights <= capacity
    sub_idx = np.nonzero(usable)[0]
    chosen_sub = _profit_dp(rounded[usable].astype(np.int64), weights[usable], capacity)
    return _solution([int(sub_idx[i]) for i in chosen_sub], profits, weights)


def knapsack_fptas(
    profits: np.ndarray | list[float],
    weights: np.ndarray | list[float],
    capacity: float,
    eps: float = 0.1,
) -> KnapsackSolution:
    """Ibarra–Kim ``(1-ε)``-approximate knapsack (the paper's ``SinKnap``).

    Profits are scaled by ``K = ε · P_max / n`` and floored to integers;
    the min-weight DP then runs over at most ``n²/ε`` scaled-profit cells.
    The returned packing is feasible and its profit is at least
    ``(1-ε) · OPT``.
    """
    profits = np.asarray(profits, dtype=np.float64)
    weights = np.asarray(weights, dtype=np.float64)
    _validate(profits, weights, capacity)
    check_fraction("eps", eps)
    if eps == 0.0:
        raise ValueError("eps must be > 0 for the FPTAS; use knapsack_exact instead")
    reg = metrics()
    if reg.enabled:
        reg.inc("core.knapsack.fptas_solves")
        reg.observe("core.knapsack.fptas_items", float(profits.size))

    usable = weights <= capacity
    sub_idx = np.nonzero(usable)[0]
    sub_profits = profits[usable]
    sub_weights = weights[usable]
    if sub_profits.size == 0 or sub_profits.max() == 0.0:
        return _solution([], profits, weights)

    scale = eps * float(sub_profits.max()) / sub_profits.size
    scaled = np.floor(sub_profits / scale).astype(np.int64)
    chosen_sub = _profit_dp(scaled, sub_weights, capacity)
    return _solution([int(sub_idx[i]) for i in chosen_sub], profits, weights)


def knapsack_greedy(
    profits: np.ndarray | list[float],
    weights: np.ndarray | list[float],
    capacity: float,
) -> KnapsackSolution:
    """Density-greedy packing with the best-single-item fix-up.

    Sorting by profit/weight and taking the better of (greedy prefix,
    best single item) guarantees half the optimum; this is the cheap
    workhorse behind Algorithm 1's ``GreedyAdd`` step.
    """
    profits = np.asarray(profits, dtype=np.float64)
    weights = np.asarray(weights, dtype=np.float64)
    _validate(profits, weights, capacity)

    usable = np.nonzero(weights <= capacity)[0]
    if usable.size == 0:
        return _solution([], profits, weights)

    with np.errstate(divide="ignore"):
        density = np.where(weights[usable] > 0, profits[usable] / weights[usable], np.inf)
    order = usable[np.argsort(-density, kind="stable")]

    chosen: list[int] = []
    remaining = capacity
    for i in order:
        if weights[i] <= remaining:
            chosen.append(int(i))
            remaining -= weights[i]
    greedy_sol = _solution(chosen, profits, weights)

    best_single = int(usable[np.argmax(profits[usable])])
    single_sol = _solution([best_single], profits, weights)
    return greedy_sol if greedy_sol.profit >= single_sol.profit else single_sol


def knapsack_bruteforce(
    profits: np.ndarray | list[float],
    weights: np.ndarray | list[float],
    capacity: float,
) -> KnapsackSolution:
    """Exhaustive optimum for tiny instances (n ≤ 22); test ground truth."""
    profits = np.asarray(profits, dtype=np.float64)
    weights = np.asarray(weights, dtype=np.float64)
    _validate(profits, weights, capacity)
    n = profits.size
    if n > 22:
        raise ValueError(f"bruteforce limited to n <= 22 items, got {n}")
    best: KnapsackSolution = _solution([], profits, weights)
    for r in range(1, n + 1):
        for combo in combinations(range(n), r):
            w = float(weights[list(combo)].sum())
            if w > capacity:
                continue
            p = float(profits[list(combo)].sum())
            if p > best.profit:
                best = _solution(list(combo), profits, weights)
    return best
