"""Single-knapsack solvers: exact DP, Ibarra–Kim FPTAS, greedy.

The paper's Algorithm 1 rests on ``SinKnap`` — the fully-polynomial
approximation scheme of Ibarra & Kim (JACM 1975) — applied per user-active
slot.  This module provides:

* :func:`knapsack_fptas` — profit-scaled dynamic programming with a
  ``(1-ε)`` guarantee in ``O(n²/ε)`` time (vectorized DP rows);
* :func:`knapsack_exact` — the same DP without scaling for integer
  profits (exact; used as ground truth in tests);
* :func:`knapsack_bruteforce` — exhaustive search for tiny instances;
* :func:`knapsack_greedy` — density-ordered greedy with the classic
  best-single-item fix-up (``1/2`` guarantee), used by ``GreedyAdd``.

Profits and weights are non-negative floats; capacities are floats.
All solvers return a :class:`KnapsackSolution`.
"""

from __future__ import annotations

import math
import os
from collections import OrderedDict
from dataclasses import dataclass
from itertools import combinations
from typing import Iterable, Sequence

import numpy as np

from repro._util import check_fraction, check_positive
from repro.telemetry import metrics


@dataclass(frozen=True, slots=True)
class KnapsackSolution:
    """A feasible knapsack packing: chosen indices plus totals."""

    indices: tuple[int, ...]
    profit: float
    weight: float

    def __post_init__(self) -> None:
        if len(set(self.indices)) != len(self.indices):
            raise ValueError("solution contains duplicate indices")


def _validate(profits: np.ndarray, weights: np.ndarray, capacity: float) -> None:
    if profits.ndim != 1 or weights.ndim != 1:
        raise ValueError("profits and weights must be 1-D")
    if profits.shape != weights.shape:
        raise ValueError(
            f"profits and weights must have equal length, got {profits.size} vs {weights.size}"
        )
    if (profits < 0).any():
        raise ValueError("profits must be non-negative")
    if (weights < 0).any():
        raise ValueError("weights must be non-negative")
    check_positive("capacity", capacity, strict=False)


def _solution(indices: list[int], profits: np.ndarray, weights: np.ndarray) -> KnapsackSolution:
    idx = tuple(sorted(indices))
    return KnapsackSolution(
        indices=idx,
        profit=float(profits[list(idx)].sum()) if idx else 0.0,
        weight=float(weights[list(idx)].sum()) if idx else 0.0,
    )


def _fractional_bound(int_profits: np.ndarray, weights: np.ndarray, capacity: float) -> int:
    """Upper bound on the best *feasible* integer total profit.

    The fractional (density-greedy) relaxation bounds every packing of
    weight ≤ ``capacity``, so the DP profit axis never needs cells above
    it — cells beyond the bound are reachable only by infeasible
    packings, which the reconstruction walk can never visit.  ``+1``
    absorbs float rounding in the accumulation.
    """
    if capacity >= float(weights.sum()):
        return int(int_profits.sum())
    with np.errstate(divide="ignore", invalid="ignore"):
        density = np.where(weights > 0, int_profits / weights, np.inf)
    order = np.argsort(-density, kind="stable")
    bound = 0.0
    remaining = float(capacity)
    for i in order:
        w = float(weights[i])
        p = float(int_profits[i])
        if w <= remaining:
            bound += p
            remaining -= w
        else:
            if w > 0 and remaining > 0:
                bound += p * (remaining / w)
            break
    return min(int(int_profits.sum()), int(math.floor(bound)) + 1)


def _profit_dp(
    int_profits: np.ndarray, weights: np.ndarray, capacity: float
) -> list[int]:
    """Min-weight-per-profit DP; returns chosen item indices.

    ``int_profits`` must be non-negative integers.  A rolling 1-D
    ``np.minimum``-style update sweeps the profit axis once per item;
    two structural prunes keep every sweep short without changing the
    chosen set:

    * the axis is truncated at the fractional-relaxation bound (cells
      above it belong only to over-capacity packings, which the
      reconstruction walk never visits);
    * each item touches only cells up to the running reachable-profit
      frontier — everything beyond it is still ``inf`` and can never
      win a comparison.

    The take table needed for reconstruction stores, per item, the
    packed improvement bits of exactly the touched slice
    (:func:`numpy.packbits`), so its footprint follows the pruned work,
    not the full ``n × Σprofit`` rectangle.
    """
    n = int_profits.size
    total = int(int_profits.sum())
    if total == 0:
        return []
    width = _fractional_bound(int_profits, weights, capacity) + 1
    if n * width > 200_000_000:
        raise ValueError(
            f"DP table would need {n * width} cells; "
            "increase eps or split the instance"
        )
    # dp[q] = minimal weight achieving scaled profit exactly q
    dp = np.full(width, np.inf)
    dp[0] = 0.0
    # Scratch buffers reused across items: candidate weights and the
    # improvement mask.  Reusing them keeps each sweep's working set to
    # three warm arrays instead of re-faulting fresh pages per item.
    cand_buf = np.empty(width)
    mask_buf = np.empty(width, dtype=bool)
    # take[i] = (q_i, hi_i, packed bits of the improved cells in
    # [q_i, hi_i]); bit (q - q_i) set iff item i improved cell q.
    take: list[tuple[int, int, np.ndarray] | None] = [None] * n
    reach = 0  # highest profit cell reachable from the items seen so far
    cells = 0
    for i in range(n):
        q = int(int_profits[i])
        w = float(weights[i])
        if q == 0:
            # Zero-profit items never improve the objective; skip.
            continue
        hi = min(reach + q, width - 1)
        reach = hi
        if hi < q:
            continue
        span = hi - q + 1
        cells += span
        cand = cand_buf[:span]
        better = mask_buf[:span]
        tail = dp[q : hi + 1]
        # Three straight-line passes: candidate weights, improvement
        # mask, then an in-place minimum.  ``minimum`` replaces the
        # masked scatter of the old kernel (``dp[q:][better] = ...``),
        # which was the dominant cost — the elementwise min writes the
        # same bits (all values are >= 0, so no -0.0 tie-break drift)
        # at a fraction of the price.  ``cand`` is materialized first
        # because source and destination ranges overlap when q < span.
        np.add(dp[:span], w, out=cand)
        np.less(cand, tail, out=better)
        np.minimum(tail, cand, out=tail)
        take[i] = (q, hi, np.packbits(better))
    reg = metrics()
    if reg.enabled and cells:
        reg.inc("solver.dp_cells", cells)
    best_q = int(np.nonzero(dp <= capacity)[0].max())
    # Reconstruct by walking items backwards (bit q - q_i of row i).
    chosen: list[int] = []
    q = best_q
    for i in range(n - 1, -1, -1):
        if q <= 0:
            break
        row = take[i]
        if row is None:
            continue
        qi, hi, packed = row
        if qi <= q <= hi:
            off = q - qi
            if packed[off >> 3] & (0x80 >> (off & 7)):
                chosen.append(i)
                q -= qi
    if q != 0:
        raise AssertionError("DP reconstruction failed to reach profit 0")
    return chosen


def knapsack_exact(
    profits: np.ndarray | list[float],
    weights: np.ndarray | list[float],
    capacity: float,
) -> KnapsackSolution:
    """Exact 0/1 knapsack for integer-valued profits.

    Raises :class:`ValueError` when profits are not (near-)integers —
    use :func:`knapsack_fptas` for general floats.
    """
    profits = np.asarray(profits, dtype=np.float64)
    weights = np.asarray(weights, dtype=np.float64)
    _validate(profits, weights, capacity)
    rounded = np.rint(profits)
    if not np.allclose(profits, rounded, atol=1e-9):
        raise ValueError("knapsack_exact requires integer profits")
    usable = weights <= capacity
    sub_idx = np.nonzero(usable)[0]
    chosen_sub = _profit_dp(rounded[usable].astype(np.int64), weights[usable], capacity)
    return _solution([int(sub_idx[i]) for i in chosen_sub], profits, weights)


def knapsack_fptas(
    profits: np.ndarray | list[float],
    weights: np.ndarray | list[float],
    capacity: float,
    eps: float = 0.1,
) -> KnapsackSolution:
    """Ibarra–Kim ``(1-ε)``-approximate knapsack (the paper's ``SinKnap``).

    Profits are scaled by ``K = ε · P_max / n`` and floored to integers;
    the min-weight DP then runs over at most ``n²/ε`` scaled-profit cells.
    The returned packing is feasible and its profit is at least
    ``(1-ε) · OPT``.
    """
    profits = np.asarray(profits, dtype=np.float64)
    weights = np.asarray(weights, dtype=np.float64)
    _validate(profits, weights, capacity)
    check_fraction("eps", eps)
    if eps == 0.0:
        raise ValueError("eps must be > 0 for the FPTAS; use knapsack_exact instead")
    reg = metrics()
    if reg.enabled:
        reg.inc("core.knapsack.fptas_solves")
        reg.observe("core.knapsack.fptas_items", float(profits.size))

    usable = weights <= capacity
    sub_idx = np.nonzero(usable)[0]
    sub_profits = profits[usable]
    sub_weights = weights[usable]
    if sub_profits.size == 0 or sub_profits.max() == 0.0:
        return _solution([], profits, weights)

    scale = eps * float(sub_profits.max()) / sub_profits.size
    scaled = np.floor(sub_profits / scale).astype(np.int64)
    chosen_sub = _profit_dp(scaled, sub_weights, capacity)
    return _solution([int(sub_idx[i]) for i in chosen_sub], profits, weights)


class SolutionMemo:
    """Bounded LRU of knapsack solutions keyed by exact instance content.

    Keys are ``(profits bytes, weights bytes, capacity, eps)`` — byte-
    level, so two instances collide only when they are identical and a
    hit is guaranteed to reproduce the miss bit-for-bit.  Used by
    :func:`knapsack_fptas_batch` within a batch and by
    :func:`repro.core.overlapped.solve_overlapped` across solves (the
    per-slot sub-problems of an evaluation sweep repeat heavily).

    ``maxsize`` defaults to the ``REPRO_SOLVER_MEMO_MAX`` environment
    variable (else 512), so long-lived fleet processes can cap the
    module-global slot memo without code changes.  Evictions are counted
    on the instance (``evictions``) and on the ``solver.memo_evictions``
    telemetry counter.
    """

    DEFAULT_MAXSIZE = 512

    def __init__(self, maxsize: int | None = None) -> None:
        if maxsize is None:
            maxsize = self._default_maxsize()
        if maxsize < 1:
            raise ValueError(f"maxsize must be >= 1, got {maxsize}")
        self.maxsize = maxsize
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self._data: OrderedDict[tuple, KnapsackSolution] = OrderedDict()

    @classmethod
    def _default_maxsize(cls) -> int:
        raw = os.environ.get("REPRO_SOLVER_MEMO_MAX")
        if raw is None:
            return cls.DEFAULT_MAXSIZE
        try:
            value = int(raw)
        except ValueError:
            raise ValueError(
                f"REPRO_SOLVER_MEMO_MAX must be a positive integer, got {raw!r}"
            ) from None
        if value < 1:
            raise ValueError(
                f"REPRO_SOLVER_MEMO_MAX must be a positive integer, got {raw!r}"
            )
        return value

    @staticmethod
    def key(
        profits: np.ndarray, weights: np.ndarray, capacity: float, eps: float
    ) -> tuple:
        """Exact content key for one instance."""
        return (
            np.ascontiguousarray(profits, dtype=np.float64).tobytes(),
            np.ascontiguousarray(weights, dtype=np.float64).tobytes(),
            float(capacity),
            float(eps),
        )

    def get(self, key: tuple) -> KnapsackSolution | None:
        sol = self._data.get(key)
        if sol is None:
            self.misses += 1
            return None
        self._data.move_to_end(key)
        self.hits += 1
        reg = metrics()
        if reg.enabled:
            reg.inc("solver.memo_hits")
        return sol

    def put(self, key: tuple, solution: KnapsackSolution) -> None:
        self._data[key] = solution
        self._data.move_to_end(key)
        evicted = 0
        while len(self._data) > self.maxsize:
            self._data.popitem(last=False)
            evicted += 1
        if evicted:
            self.evictions += evicted
            reg = metrics()
            if reg.enabled:
                reg.inc("solver.memo_evictions", evicted)

    def clear(self) -> None:
        self._data.clear()

    def __len__(self) -> int:
        return len(self._data)


def knapsack_fptas_batch(
    problems: Iterable[Sequence],
    *,
    eps: float = 0.1,
    memo: SolutionMemo | None = None,
) -> list[KnapsackSolution]:
    """Solve a batch of ``(profits, weights, capacity)`` FPTAS instances.

    The batched entry point for per-slot ``SinKnap`` sweeps: identical
    instances inside the batch (and, when a shared ``memo`` is passed,
    across batches) are solved once and served from the memo — exact-
    content keys make a hit bit-identical to a fresh solve.  Results
    come back in input order, one solution per problem.
    """
    if memo is None:
        memo = SolutionMemo()
    reg = metrics()
    out: list[KnapsackSolution] = []
    n_problems = 0
    for problem in problems:
        profits, weights, capacity = problem
        profits = np.ascontiguousarray(profits, dtype=np.float64)
        weights = np.ascontiguousarray(weights, dtype=np.float64)
        n_problems += 1
        key = SolutionMemo.key(profits, weights, capacity, eps)
        solution = memo.get(key)
        if solution is None:
            solution = knapsack_fptas(profits, weights, capacity, eps=eps)
            memo.put(key, solution)
        out.append(solution)
    if reg.enabled and n_problems:
        reg.inc("core.knapsack.fptas_batch_calls")
        reg.inc("core.knapsack.fptas_batch_solves", n_problems)
    return out


def knapsack_greedy(
    profits: np.ndarray | list[float],
    weights: np.ndarray | list[float],
    capacity: float,
) -> KnapsackSolution:
    """Density-greedy packing with the best-single-item fix-up.

    Sorting by profit/weight and taking the better of (greedy prefix,
    best single item) guarantees half the optimum; this is the cheap
    workhorse behind Algorithm 1's ``GreedyAdd`` step.
    """
    profits = np.asarray(profits, dtype=np.float64)
    weights = np.asarray(weights, dtype=np.float64)
    _validate(profits, weights, capacity)

    usable = np.nonzero(weights <= capacity)[0]
    if usable.size == 0:
        return _solution([], profits, weights)

    with np.errstate(divide="ignore"):
        density = np.where(weights[usable] > 0, profits[usable] / weights[usable], np.inf)
    order = usable[np.argsort(-density, kind="stable")]

    chosen: list[int] = []
    remaining = capacity
    for i in order:
        if weights[i] <= remaining:
            chosen.append(int(i))
            remaining -= weights[i]
    greedy_sol = _solution(chosen, profits, weights)

    best_single = int(usable[np.argmax(profits[usable])])
    single_sol = _solution([best_single], profits, weights)
    return greedy_sol if greedy_sol.profit >= single_sol.profit else single_sol


def knapsack_bruteforce(
    profits: np.ndarray | list[float],
    weights: np.ndarray | list[float],
    capacity: float,
) -> KnapsackSolution:
    """Exhaustive optimum for tiny instances (n ≤ 22); test ground truth."""
    profits = np.asarray(profits, dtype=np.float64)
    weights = np.asarray(weights, dtype=np.float64)
    _validate(profits, weights, capacity)
    n = profits.size
    if n > 22:
        raise ValueError(f"bruteforce limited to n <= 22 items, got {n}")
    best: KnapsackSolution = _solution([], profits, weights)
    for r in range(1, n + 1):
        for combo in combinations(range(n), r):
            w = float(weights[list(combo)].sum())
            if w > capacity:
                continue
            p = float(profits[list(combo)].sum())
            if p > best.profit:
                best = _solution(list(combo), profits, weights)
    return best
