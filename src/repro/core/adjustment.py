"""Real-time adjustment strategy (Section IV-C2).

Hour-level prediction cannot be perfect, so NetMaster supplements it with
a runtime layer that handles the two special cases the paper lists:

* **usage outside the predicted slots** — if the foreground app is a
  "Special App" (or unknown, i.e. newly installed), the radio is powered
  on immediately; otherwise the event counts as a potential wrong
  decision;
* **wasted radio-on slots / unpredicted background traffic** — while the
  screen is off the radio duty-cycles with exponential back-off
  (:mod:`repro.core.duty_cycle`), servicing pending deferrable transfers
  at wake-ups and resetting the back-off whenever traffic is seen.

:class:`GapServicer` implements the wake-up/service event loop over one
idle gap; :class:`RealTimeAdjustment` bundles it with the Special-App
check.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro._util import check_positive
from repro.core.duty_cycle import ExponentialSleep, SleepScheme
from repro.habits.special_apps import SpecialAppRegistry
from repro.telemetry import metrics
from repro.traces.events import NetworkActivity

if TYPE_CHECKING:  # imported lazily at runtime to keep core free of faults
    from repro.faults.injector import FaultInjector
    from repro.faults.retry import RetryPolicy

#: Gap between transfers packed at one wake-up (keeps the radio in DCH).
SERVICE_PACK_GAP_S = 0.2


@dataclass
class GapServiceResult:
    """What happened across one idle gap."""

    executed: list[NetworkActivity] = field(default_factory=list)
    wake_windows: list[tuple[float, float]] = field(default_factory=list)
    serviced: int = 0
    carried_to_end: int = 0
    #: Fault accounting (populated only when an injector is passed).
    failed_windows: list[tuple[float, float]] = field(default_factory=list)
    retries: int = 0
    failed_promotions: int = 0


@dataclass
class GapServicer:
    """Duty-cycle event loop for one screen-off idle gap.

    Pending activities (deferrable transfers the planner could not place)
    are executed at the first wake-up at or after their arrival time; a
    wake-up that services traffic resets the back-off, an idle wake-up
    just costs its ``wake_window_s`` of radio time.  Whatever is still
    pending when the gap closes executes at the gap end, where the radio
    comes up anyway (next session or active slot).
    """

    scheme_factory: type[SleepScheme] | None = None
    initial_s: float = 30.0
    factor: float = 2.0
    max_s: float = 3600.0
    wake_window_s: float = 1.0

    def __post_init__(self) -> None:
        check_positive("initial_s", self.initial_s)
        check_positive("wake_window_s", self.wake_window_s)

    def _make_scheme(self) -> SleepScheme:
        if self.scheme_factory is not None:
            return self.scheme_factory()  # type: ignore[call-arg]
        return ExponentialSleep(
            initial_s=self.initial_s, factor=self.factor, max_s=self.max_s
        )

    def service(
        self,
        gap_start: float,
        gap_end: float,
        pending: list[NetworkActivity],
        *,
        injector: "FaultInjector | None" = None,
        retry: "RetryPolicy | None" = None,
        day_key: int = 0,
        index_base: int = 0,
    ) -> GapServiceResult:
        """Run the duty cycle over ``[gap_start, gap_end)``.

        ``pending`` must contain only activities whose original times fall
        inside the gap; they are serviced in arrival order.

        When an ``injector`` is given, every serviced transfer is pushed
        through the retry loop (deadline-aware, see
        :mod:`repro.faults.retry`): failed attempts land in
        ``failed_windows`` and retried transfers execute at their (later)
        success time.  ``index_base`` offsets the per-day transfer index
        so several gaps of the same day draw independent fault decisions.
        """
        if gap_end < gap_start:
            raise ValueError(f"need gap_start <= gap_end, got [{gap_start}, {gap_end}]")
        queue = sorted(pending, key=lambda a: a.time)
        for activity in queue:
            if not gap_start <= activity.time < gap_end:
                raise ValueError(
                    f"pending activity at t={activity.time} outside gap "
                    f"[{gap_start}, {gap_end})"
                )
        result = GapServiceResult()
        scheme = self._make_scheme()
        t = gap_start
        i = 0
        while True:
            wake_at = t + scheme.next_sleep_s()
            if wake_at >= gap_end:
                break
            ready_end = i
            while ready_end < len(queue) and queue[ready_end].time <= wake_at:
                ready_end += 1
            if ready_end > i:
                cursor = wake_at
                for activity in queue[i:ready_end]:
                    result.executed.append(activity.moved_to(cursor))
                    cursor += activity.duration + SERVICE_PACK_GAP_S
                result.serviced += ready_end - i
                i = ready_end
                scheme.reset()
                t = cursor
            else:
                result.wake_windows.append(
                    (wake_at, min(wake_at + self.wake_window_s, gap_end))
                )
                t = wake_at + self.wake_window_s
        # Gap closed: whatever is left rides the radio coming up at gap end.
        cursor = gap_end
        for activity in queue[i:]:
            result.executed.append(activity.moved_to(cursor))
            cursor += activity.duration + SERVICE_PACK_GAP_S
            result.carried_to_end += 1
        if injector is not None and not injector.plan.inert:
            self._inject_faults(result, injector, retry, day_key, index_base)
        reg = metrics()
        if reg.enabled:
            reg.inc("core.adjustment.gaps")
            reg.inc("core.adjustment.idle_wakeups", len(result.wake_windows))
            reg.inc("core.adjustment.serviced", result.serviced)
            reg.inc("core.adjustment.carried_to_end", result.carried_to_end)
            if result.retries:
                reg.inc("core.adjustment.retries", result.retries)
            reg.observe("core.adjustment.gap_s", gap_end - gap_start)
        return result

    @staticmethod
    def _inject_faults(
        result: GapServiceResult,
        injector: "FaultInjector",
        retry: "RetryPolicy | None",
        day_key: int,
        index_base: int,
    ) -> None:
        """Replay the serviced transfers through the fault model in place."""
        from repro.faults.retry import RetryPolicy, run_with_retries

        if retry is None:
            retry = RetryPolicy()
        executed: list[NetworkActivity] = []
        for j, activity in enumerate(result.executed):
            attempt = run_with_retries(
                activity,
                activity.time,
                injector,
                retry,
                day_key=day_key,
                index=index_base + j,
            )
            result.failed_windows.extend(attempt.failed_windows)
            result.retries += attempt.retries
            result.failed_promotions += attempt.failed_promotions
            executed.append(
                activity if attempt.time == activity.time else activity.moved_to(attempt.time)
            )
        result.executed = executed


@dataclass
class RealTimeAdjustment:
    """Special-App gating plus the duty-cycle servicer."""

    special_apps: SpecialAppRegistry
    servicer: GapServicer = field(default_factory=GapServicer)

    def allow_radio(self, app: str) -> bool:
        """Whether a foreground use of ``app`` gets the radio on demand."""
        return self.special_apps.is_special(app)
