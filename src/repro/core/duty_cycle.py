"""Duty-cycle sleep schemes for the real-time adjustment layer.

When the screen is off, NetMaster keeps the radio down and wakes it
periodically so "Special Apps" can use the network (Section IV-C2,
borrowing the low-power-listening idea of B-MAC).  To cut the cost of
fruitless wake-ups it sleeps exponentially longer after each idle wake:
``T, 2T, 4T, …`` — the paper uses ``T = 30 s`` and compares against fixed
and random sleeping in Fig. 10(b), and sweeps the radio-on-time cost per
wake-up count in Fig. 10(a).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Protocol

import numpy as np

from repro._util import as_rng, check_positive


class SleepScheme(Protocol):
    """Produces the sleep interval before each successive wake-up."""

    def reset(self) -> None:
        """Return to the initial interval (on detected activity)."""
        ...

    def next_sleep_s(self) -> float:
        """The sleep interval preceding the next wake-up."""
        ...


@dataclass
class ExponentialSleep:
    """The paper's scheme: ``T, 2T, 4T, …`` capped at ``max_s``."""

    initial_s: float = 30.0
    factor: float = 2.0
    max_s: float = 3600.0
    _current: float = field(init=False, default=0.0)

    def __post_init__(self) -> None:
        check_positive("initial_s", self.initial_s)
        if self.factor < 1.0:
            raise ValueError(f"factor must be >= 1, got {self.factor}")
        check_positive("max_s", self.max_s)
        self.reset()

    def reset(self) -> None:
        """Back to the initial interval."""
        self._current = self.initial_s

    def next_sleep_s(self) -> float:
        """Current interval, then double (up to the cap)."""
        interval = min(self._current, self.max_s)
        self._current = min(self._current * self.factor, self.max_s)
        return interval


@dataclass
class FixedSleep:
    """Constant-interval sleeping (the Fig. 10(b) baseline)."""

    interval_s: float = 30.0

    def __post_init__(self) -> None:
        check_positive("interval_s", self.interval_s)

    def reset(self) -> None:
        """Stateless; nothing to reset."""

    def next_sleep_s(self) -> float:
        """Always the fixed interval."""
        return self.interval_s


@dataclass
class RandomSleep:
    """Uniform-random intervals in ``[lo_s, hi_s]`` (Fig. 10(b) baseline)."""

    lo_s: float = 5.0
    hi_s: float = 60.0
    seed: int | np.random.Generator | None = None

    def __post_init__(self) -> None:
        check_positive("lo_s", self.lo_s)
        if self.hi_s < self.lo_s:
            raise ValueError(f"hi_s must be >= lo_s, got [{self.lo_s}, {self.hi_s}]")
        self._rng = as_rng(self.seed)

    def reset(self) -> None:
        """Stateless; nothing to reset."""

    def next_sleep_s(self) -> float:
        """A fresh uniform draw."""
        return float(self._rng.uniform(self.lo_s, self.hi_s))


@dataclass
class DutyCycleController:
    """Generates wake-up times across an idle period.

    Each wake-up keeps the radio on for ``wake_window_s`` so Special Apps
    can push pending traffic.  The scheme resets at the start of every
    idle period (activity was just seen) and whenever the caller reports
    traffic at a wake-up.
    """

    scheme: SleepScheme
    wake_window_s: float = 1.0

    def __post_init__(self) -> None:
        check_positive("wake_window_s", self.wake_window_s)

    def wakeups(self, start: float, end: float) -> list[float]:
        """Wake-up times strictly inside the idle period ``[start, end)``."""
        if end < start:
            raise ValueError(f"need start <= end, got [{start}, {end}]")
        self.scheme.reset()
        times: list[float] = []
        t = start
        while True:
            t += self.scheme.next_sleep_s()
            if t >= end:
                return times
            times.append(t)
            t += self.wake_window_s

    def wake_windows(self, start: float, end: float) -> list[tuple[float, float]]:
        """Radio-on windows of the wake-ups in ``[start, end)``."""
        return [
            (t, min(t + self.wake_window_s, end)) for t in self.wakeups(start, end)
        ]


def wakeup_count(scheme: SleepScheme, horizon_s: float, *, wake_window_s: float = 1.0) -> int:
    """Number of wake-ups an idle period of ``horizon_s`` incurs (Fig. 10(b))."""
    controller = DutyCycleController(scheme, wake_window_s=wake_window_s)
    return len(controller.wakeups(0.0, horizon_s))


def wakeup_times(scheme: SleepScheme, horizon_s: float, *, wake_window_s: float = 1.0) -> list[float]:
    """The wake-up time sequence over one idle period."""
    controller = DutyCycleController(scheme, wake_window_s=wake_window_s)
    return controller.wakeups(0.0, horizon_s)


def radio_on_fraction_after(
    scheme: SleepScheme, n_wakeups: int, *, wake_window_s: float = 1.0
) -> float:
    """Fraction of elapsed time the radio was on after ``n_wakeups``.

    This is the y-axis of Fig. 10(a): longer sleep intervals drive the
    fraction down for the same number of wake-ups.
    """
    if n_wakeups <= 0:
        raise ValueError(f"n_wakeups must be > 0, got {n_wakeups}")
    check_positive("wake_window_s", wake_window_s)
    scheme.reset()
    elapsed = 0.0
    for _ in range(n_wakeups):
        elapsed += scheme.next_sleep_s() + wake_window_s
    return n_wakeups * wake_window_s / elapsed
