"""The NetMaster middleware facade (paper Section V).

:class:`NetMaster` wires the three components together exactly as the
architecture figure (Fig. 6) draws them:

* **monitoring** — a :class:`~repro.traces.store.TraceStore` fed with the
  history trace (on a phone this is the event/time-triggered recorder);
* **mining** — :class:`~repro.habits.prediction.HabitModel` fitted from
  the store's matrices, plus the Special-App registry;
* **scheduling** — :class:`~repro.core.scheduler.NetMasterScheduler`
  (decision making) and :class:`~repro.core.adjustment.RealTimeAdjustment`
  (duty cycle + Special Apps).

:meth:`NetMaster.execute_day` replays one held-out day through the full
pipeline and returns everything the evaluation needs: the executed
transfer schedule, the duty-cycle wake windows, and the interrupt
accounting of Section VI-B.
"""

from __future__ import annotations

import bisect
import logging
from dataclasses import dataclass, field

from repro._util import DAY, check_fraction, check_positive, hour_of, merge_intervals
from repro.core.adjustment import GapServicer, RealTimeAdjustment
from repro.core.profit import DEFAULT_ET, ProfitParams
from repro.core.scheduler import DayPlan, NetMasterScheduler
from repro.faults.degradation import CircuitBreaker
from repro.habits.prediction import DataSufficiency, HabitModel
from repro.habits.threshold import DeltaStrategy
from repro.radio.bandwidth import LinkModel
from repro.radio.power import RadioPowerModel, wcdma_model
from repro.radio.rrc import TruncatedTail
from repro.telemetry import metrics, tracer
from repro.traces.events import NetworkActivity, Trace
from repro.traces.store import TraceStore

logger = logging.getLogger(__name__)


@dataclass(frozen=True, slots=True)
class NetMasterConfig:
    """All tunables of the middleware, with the paper's defaults."""

    power: RadioPowerModel = field(default_factory=wcdma_model)
    link: LinkModel = field(default_factory=LinkModel)
    et_w: float = DEFAULT_ET
    eps: float = 0.1
    delta: DeltaStrategy | None = None  # None → paper's 0.2/0.1 split
    duty_initial_s: float = 30.0
    duty_factor: float = 2.0
    duty_max_s: float = 3600.0
    wake_window_s: float = 1.0
    guard_s: float = 1.0
    #: When True (deployment behaviour), screen-off traffic arriving
    #: inside predicted user-active slots is held briefly and flushed on
    #: the next real session at carrier speed.  When False (the paper's
    #: offline δ-sweep semantics, Eq. (3)), traffic inside U runs with
    #: stock radio behaviour and only T_n (outside U) is optimized —
    #: this is what makes energy saving grow with δ in Fig. 10(c).
    optimize_in_slot_traffic: bool = True
    #: Graceful degradation: with fewer than ``min_history_days`` clean
    #: weekdays of history (see :meth:`HabitModel.data_sufficiency`) the
    #: middleware refuses to predict and runs duty-cycle-only instead.
    min_history_days: int = 3
    degrade_on_insufficient_history: bool = True
    #: Per-day circuit breaker: when the observed misprediction rate
    #: (interrupts / interactions) crosses ``breaker_threshold`` on a day
    #: with enough signal, deferral is disabled for the next
    #: ``breaker_cooldown_days`` days.
    enable_circuit_breaker: bool = True
    breaker_threshold: float = 0.3
    breaker_min_interactions: int = 20
    breaker_cooldown_days: int = 1

    def __post_init__(self) -> None:
        check_fraction("eps", self.eps)
        check_positive("duty_initial_s", self.duty_initial_s)
        check_positive("wake_window_s", self.wake_window_s)
        check_positive("guard_s", self.guard_s, strict=False)
        check_fraction("breaker_threshold", self.breaker_threshold)
        if self.min_history_days < 1:
            raise ValueError(f"min_history_days must be >= 1, got {self.min_history_days}")

    def tail_policy(self) -> TruncatedTail:
        """NetMaster's radio-off policy: tails truncated at the guard."""
        return TruncatedTail(self.guard_s)


@dataclass
class DayExecution:
    """Outcome of replaying one day under NetMaster."""

    weekend: bool
    #: ``None`` on degraded (duty-cycle-only) days — nothing was planned.
    plan: DayPlan | None
    activities: list[NetworkActivity]
    #: Per-activity tail allowance (seconds), parallel to ``activities``:
    #: the guard for traffic NetMaster controls, the full carrier timers
    #: (inf) for traffic it leaves alone.
    activity_tails: list[float]
    wake_windows: list[tuple[float, float]]
    user_interactions: int
    interrupts: int
    immediate: int
    deferred_to_slots: int
    duty_serviced: int
    carried_to_gap_end: int
    #: True when the middleware fell back to duty-cycle-only for this day
    #: (insufficient/corrupt history, or the circuit breaker was open).
    degraded: bool = False

    @property
    def interrupt_ratio(self) -> float:
        """Wrong decisions per user interaction (Section VI-B metric)."""
        if self.user_interactions == 0:
            return 0.0
        return self.interrupts / self.user_interactions

    def transfer_windows(self) -> list[tuple[float, float]]:
        """All radio-demanding windows: transfers plus duty wake-ups."""
        windows = [a.interval for a in self.activities]
        windows.extend(self.wake_windows)
        return windows


class NetMaster:
    """The middleware service: train on history, execute held-out days."""

    def __init__(self, config: NetMasterConfig | None = None) -> None:
        self.config = config or NetMasterConfig()
        self.store = TraceStore()
        self.habit: HabitModel | None = None
        self.scheduler: NetMasterScheduler | None = None
        self.adjustment: RealTimeAdjustment | None = None
        self.sufficiency: DataSufficiency | None = None
        #: True when the fitted history cannot be trusted for prediction —
        #: every day then runs the duty-cycle-only fallback.
        self.insufficient_history = False
        #: External quarantine override (set by :mod:`repro.monitor`
        #: feedback): forces duty-cycle-only execution without touching
        #: the breaker or the fitted model.
        self.force_degraded = False
        self.breaker = CircuitBreaker(
            threshold=self.config.breaker_threshold,
            min_interactions=self.config.breaker_min_interactions,
            cooldown_days=self.config.breaker_cooldown_days,
        )

    # ------------------------------------------------------------------
    # training (monitoring + mining)
    # ------------------------------------------------------------------
    def train(self, history: Trace) -> HabitModel:
        """Ingest a history trace and fit the habit model.

        The fitted model is health-checked: too few observed days of a
        day type, or NaN/inf smuggled in by a corrupted monitoring store,
        flips the middleware into duty-cycle-only degradation (unless
        ``degrade_on_insufficient_history`` is off).
        """
        self.store.ingest_trace(history)
        return self.adopt_model(HabitModel.fit(history))

    def adopt_model(self, habit: HabitModel) -> HabitModel:
        """Install an already-fitted habit model (mining done elsewhere).

        Runs the same health check and builds the same scheduler and
        real-time-adjustment components :meth:`train` would; the online
        engine (:mod:`repro.stream`) calls this with incrementally mined
        models instead of refitting from a full history trace.
        """
        self.habit = habit
        self.sufficiency = self.habit.data_sufficiency(
            min_days=self.config.min_history_days
        )
        self.insufficient_history = (
            self.config.degrade_on_insufficient_history
            and not self.sufficiency.sufficient
        )
        metrics().inc("core.netmaster.trainings")
        if self.insufficient_history:
            metrics().inc("core.netmaster.degraded_history")
            logger.warning(
                "history insufficient for prediction (%s); "
                "falling back to duty-cycle-only execution",
                "; ".join(self.sufficiency.reasons) or "unspecified",
            )
        params = ProfitParams(
            power=self.config.power, link=self.config.link, et_w=self.config.et_w
        )
        self.scheduler = NetMasterScheduler(
            habit=self.habit, params=params, eps=self.config.eps, delta=self.config.delta
        )
        self.adjustment = RealTimeAdjustment(
            special_apps=self.habit.special_apps,
            servicer=GapServicer(
                initial_s=self.config.duty_initial_s,
                factor=self.config.duty_factor,
                max_s=self.config.duty_max_s,
                wake_window_s=self.config.wake_window_s,
            ),
        )
        return self.habit

    @property
    def degraded(self) -> bool:
        """Whether the next day will run duty-cycle-only."""
        return self.insufficient_history or self.breaker.open or self.force_degraded

    def _require_trained(self) -> None:
        if self.habit is None or self.scheduler is None or self.adjustment is None:
            raise RuntimeError("NetMaster.train(history) must be called first")

    # ------------------------------------------------------------------
    # planning (scheduling component: decision making)
    # ------------------------------------------------------------------
    def plan_day(self, *, weekend: bool) -> DayPlan:
        """Build a fresh day plan for the given day type."""
        self._require_trained()
        assert self.scheduler is not None
        return self.scheduler.plan(weekend=weekend)

    # ------------------------------------------------------------------
    # execution (scheduling component: real-time adjustment)
    # ------------------------------------------------------------------
    def execute_day(self, day: Trace) -> DayExecution:
        """Replay a single-day trace through the full middleware.

        ``day`` must be a single-day trace (times in ``[0, DAY)``), e.g.
        from :meth:`repro.traces.events.Trace.day_view`.
        """
        self._require_trained()
        assert self.adjustment is not None
        if day.n_days != 1:
            raise ValueError("execute_day expects a single-day trace")
        if self.degraded:
            execution = self._execute_duty_cycle_only(day)
            if self.breaker.open:
                self.breaker.tick_degraded()
            return execution
        weekend = day.is_weekend_day(0)
        plan = self.plan_day(weekend=weekend)
        prediction = plan.prediction
        special = self.adjustment.special_apps

        bandwidth = self.config.link.bandwidth_bps
        guard = self.config.guard_s
        executed: list[tuple[NetworkActivity, float]] = []
        pending: list[NetworkActivity] = []
        immediate = deferred = 0
        interrupts = 0
        # Per-session packing cursor for piggybacked transfers.
        session_cursor: dict[int, float] = {}
        session_starts = [s.start for s in day.screen_sessions]

        for activity in day.activities:
            if activity.screen_on:
                # Foreground / in-session traffic runs as recorded.  A
                # use outside the predicted slots whose app is neither
                # special nor newly installed would find the radio down:
                # that is the "wrong decision" of Section VI-B.
                executed.append((activity, guard))
                if not prediction.covers(activity.time) and not special.is_special(
                    activity.app
                ):
                    interrupts += 1
                continue
            compressed = activity.compressed(bandwidth)
            if prediction.covers(activity.time):
                if not self.config.optimize_in_slot_traffic:
                    # Offline δ-sweep semantics (Eq. (3)): traffic inside
                    # U is not NetMaster's to touch — stock timers apply.
                    executed.append((activity, float("inf")))
                    immediate += 1
                    continue
                # Screen-off traffic inside U: hold it until the radio
                # comes up for the user anyway — the next real session in
                # the slot — and flush it at carrier speed (real-time
                # adjustment piggybacking).  No session left in the slot:
                # fall through to planning/duty-cycle handling.
                target = _next_session_start(
                    session_starts, activity.time, prediction, day
                )
                if target is not None:
                    idx, start = target
                    cursor = session_cursor.get(idx, start)
                    cursor = min(cursor, DAY - compressed.duration)
                    executed.append((compressed.moved_to(cursor), guard))
                    session_cursor[idx] = cursor + compressed.duration + 0.2
                    immediate += 1
                    continue
            slot_id = plan.admit(hour_of(activity.time), activity.total_bytes)
            if slot_id is not None:
                start = plan.execution_time(slot_id, compressed.duration)
                start = min(start, DAY - compressed.duration)
                executed.append((compressed.moved_to(max(0.0, start)), guard))
                deferred += 1
            else:
                pending.append(compressed)

        # Duty-cycle the idle gaps (screen off AND outside predicted slots).
        busy = [(s.start, s.end) for s in day.screen_sessions]
        busy.extend((slot.start, slot.end) for slot in prediction.slots)
        busy = merge_intervals(busy)
        gaps = _complement(busy, 0.0, DAY)

        wake_windows: list[tuple[float, float]] = []
        duty_serviced = carried = 0
        gap_handled: set[int] = set()
        for gap_start, gap_end in gaps:
            in_gap = []
            for i, a in enumerate(pending):
                if gap_start <= a.time < gap_end:
                    in_gap.append(a)
                    gap_handled.add(i)
            if not in_gap and gap_end - gap_start < self.config.duty_initial_s:
                continue
            result = self.adjustment.servicer.service(gap_start, gap_end, in_gap)
            executed.extend(
                (a.moved_to(min(a.time, DAY - a.duration)), guard)
                for a in result.executed
            )
            wake_windows.extend(result.wake_windows)
            duty_serviced += result.serviced
            carried += result.carried_to_end
        # Anything still pending sits inside a busy period (e.g. a slot
        # whose plan capacity ran out): the radio is reachable there, so
        # it simply executes in place.
        for i, activity in enumerate(pending):
            if i not in gap_handled:
                executed.append(
                    (activity.moved_to(min(activity.time, DAY - activity.duration)), guard)
                )
                immediate += 1

        executed.sort(key=lambda pair: pair[0].time)
        if self.config.enable_circuit_breaker:
            self.breaker.record(interrupts, len(day.usages))
        execution = DayExecution(
            weekend=weekend,
            plan=plan,
            activities=[a for a, _ in executed],
            activity_tails=[t for _, t in executed],
            wake_windows=wake_windows,
            user_interactions=len(day.usages),
            interrupts=interrupts,
            immediate=immediate,
            deferred_to_slots=deferred,
            duty_serviced=duty_serviced,
            carried_to_gap_end=carried,
        )
        _record_day(execution, day)
        return execution

    # ------------------------------------------------------------------
    # degraded execution (duty-cycle-only fallback)
    # ------------------------------------------------------------------
    def _execute_duty_cycle_only(self, day: Trace) -> DayExecution:
        """Replay one day with prediction and planning disabled.

        The radio follows the user (screen sessions run as recorded) and
        every screen-off transfer is serviced by the exponential duty
        cycle over the screen-off gaps — the paper's real-time adjustment
        layer alone.  It never mispredicts, so it cannot interrupt the
        user; it just saves less than the full middleware.
        """
        assert self.adjustment is not None
        weekend = day.is_weekend_day(0)
        guard = self.config.guard_s
        bandwidth = self.config.link.bandwidth_bps

        executed: list[tuple[NetworkActivity, float]] = []
        pending: list[NetworkActivity] = []
        immediate = 0
        for activity in day.activities:
            if activity.screen_on:
                executed.append((activity, guard))
            else:
                pending.append(activity.compressed(bandwidth))

        busy = merge_intervals([(s.start, s.end) for s in day.screen_sessions])
        gaps = _complement(busy, 0.0, DAY)
        wake_windows: list[tuple[float, float]] = []
        duty_serviced = carried = 0
        gap_handled: set[int] = set()
        for gap_start, gap_end in gaps:
            in_gap = []
            for i, a in enumerate(pending):
                if gap_start <= a.time < gap_end:
                    in_gap.append(a)
                    gap_handled.add(i)
            if not in_gap and gap_end - gap_start < self.config.duty_initial_s:
                continue
            result = self.adjustment.servicer.service(gap_start, gap_end, in_gap)
            executed.extend(
                (a.moved_to(min(a.time, DAY - a.duration)), guard)
                for a in result.executed
            )
            wake_windows.extend(result.wake_windows)
            duty_serviced += result.serviced
            carried += result.carried_to_end
        for i, activity in enumerate(pending):
            if i not in gap_handled:
                executed.append(
                    (activity.moved_to(min(activity.time, DAY - activity.duration)), guard)
                )
                immediate += 1

        executed.sort(key=lambda pair: pair[0].time)
        execution = DayExecution(
            weekend=weekend,
            plan=None,
            activities=[a for a, _ in executed],
            activity_tails=[t for _, t in executed],
            wake_windows=wake_windows,
            user_interactions=len(day.usages),
            interrupts=0,
            immediate=immediate,
            deferred_to_slots=0,
            duty_serviced=duty_serviced,
            carried_to_gap_end=carried,
            degraded=True,
        )
        _record_day(execution, day)
        return execution


def _record_day(execution: DayExecution, day: Trace) -> None:
    """Telemetry for one replayed day (no effect on the execution)."""
    reg = metrics()
    if reg.enabled:
        reg.inc("core.netmaster.days")
        if execution.degraded:
            reg.inc("core.netmaster.days_degraded")
        reg.inc("core.netmaster.interrupts", execution.interrupts)
        reg.inc("core.netmaster.immediate", execution.immediate)
        reg.inc("core.netmaster.deferred_to_slots", execution.deferred_to_slots)
        reg.inc("core.netmaster.duty_serviced", execution.duty_serviced)
        reg.inc("core.netmaster.carried_to_gap_end", execution.carried_to_gap_end)
    trc = tracer()
    if trc.enabled:
        for s in day.screen_sessions:
            trc.record_span("screen-on", "screen", s.start, s.end)
        for start, end in execution.wake_windows:
            trc.record_span("duty-wake", "duty", start, end)


def _next_session_start(
    session_starts: list[float],
    time_s: float,
    prediction,
    day: Trace,
) -> tuple[int, float] | None:
    """The next screen session starting within the slot covering ``time_s``.

    Returns ``(session_index, session_start)`` or ``None`` when the
    covering slot runs out before the user shows up again.
    """
    covering = next((s for s in prediction.slots if s.contains(time_s)), None)
    if covering is None:
        return None
    idx = bisect.bisect_left(session_starts, time_s)
    if idx < len(session_starts) and session_starts[idx] < covering.end:
        return idx, session_starts[idx]
    return None


def _complement(
    busy: list[tuple[float, float]], start: float, end: float
) -> list[tuple[float, float]]:
    """Gaps of ``[start, end]`` not covered by sorted disjoint ``busy``."""
    gaps: list[tuple[float, float]] = []
    cursor = start
    for lo, hi in busy:
        if lo > cursor:
            gaps.append((cursor, min(lo, end)))
        cursor = max(cursor, hi)
        if cursor >= end:
            break
    if cursor < end:
        gaps.append((cursor, end))
    return gaps
