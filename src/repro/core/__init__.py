"""Core NetMaster contribution: scheduling, knapsacks, duty cycle."""

from repro.core.adjustment import GapServicer, GapServiceResult, RealTimeAdjustment
from repro.core.batch import measure_outcomes_columnar, run_policy_tasks_columnar
from repro.core.channel_aware import (
    ChannelComparison,
    PlacedBatch,
    compare_placements,
    place_blind,
    place_channel_aware,
)
from repro.core.duty_cycle import (
    DutyCycleController,
    ExponentialSleep,
    FixedSleep,
    RandomSleep,
    SleepScheme,
    radio_on_fraction_after,
    wakeup_count,
    wakeup_times,
)
from repro.core.knapsack import (
    KnapsackSolution,
    knapsack_bruteforce,
    knapsack_exact,
    knapsack_fptas,
    knapsack_greedy,
)
from repro.core.netmaster import DayExecution, NetMaster, NetMasterConfig
from repro.core.overlapped import (
    MKPItem,
    MKPSlot,
    MKPSolution,
    clear_slot_memo,
    solve_exact_bruteforce,
    solve_overlapped,
    solve_overlapped_batch,
)
from repro.core.profit import (
    DEFAULT_ET,
    PlannedActivity,
    ProfitParams,
    ScheduleInstance,
    adjacent_slots,
    build_instance,
    expected_activities,
    placement_profit,
    slot_capacity_bytes,
)
from repro.core.scheduler import DayPlan, NetMasterScheduler

__all__ = [
    "DEFAULT_ET",
    "ChannelComparison",
    "DayExecution",
    "DayPlan",
    "DutyCycleController",
    "ExponentialSleep",
    "FixedSleep",
    "GapServiceResult",
    "GapServicer",
    "KnapsackSolution",
    "MKPItem",
    "MKPSlot",
    "MKPSolution",
    "NetMaster",
    "NetMasterConfig",
    "NetMasterScheduler",
    "PlacedBatch",
    "PlannedActivity",
    "ProfitParams",
    "RandomSleep",
    "RealTimeAdjustment",
    "ScheduleInstance",
    "SleepScheme",
    "adjacent_slots",
    "build_instance",
    "clear_slot_memo",
    "compare_placements",
    "expected_activities",
    "knapsack_bruteforce",
    "knapsack_exact",
    "knapsack_fptas",
    "knapsack_greedy",
    "measure_outcomes_columnar",
    "place_blind",
    "place_channel_aware",
    "placement_profit",
    "radio_on_fraction_after",
    "run_policy_tasks_columnar",
    "slot_capacity_bytes",
    "solve_exact_bruteforce",
    "solve_overlapped",
    "solve_overlapped_batch",
    "wakeup_count",
    "wakeup_times",
]
