"""Channel-aware batch placement (the paper's future-work extension).

NetMaster's planner packs each slot's deferred batch at the slot start,
blind to channel state — which is why it cannot improve peak rates
(Section VI-A).  This module adds the Bartendr-style refinement the
authors defer to future work: inside each user-active slot, place the
batch in the sub-window of best predicted signal quality, so the same
bytes move faster *and* at a lower per-byte energy cost.

The comparison experiment (``benchmarks/test_ext_channel_aware.py``)
quantifies both effects against the channel-blind packer.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro._util import check_positive
from repro.habits.prediction import Slot
from repro.radio.bandwidth import LinkModel
from repro.radio.channel import ChannelModel, best_window, transfer_energy_multiplier


@dataclass(frozen=True, slots=True)
class PlacedBatch:
    """One batch placed inside a slot."""

    slot: Slot
    start: float
    duration_s: float
    payload_bytes: float
    energy_multiplier: float
    effective_rate_bps: float


def _batch_duration(
    payload_bytes: float, link: LinkModel, quality: float, min_duration_s: float
) -> float:
    return max(min_duration_s, payload_bytes / (link.bandwidth_bps * quality))


def place_blind(
    slot: Slot,
    payload_bytes: float,
    link: LinkModel,
    channel: ChannelModel,
    *,
    min_duration_s: float = 0.5,
) -> PlacedBatch:
    """Channel-blind placement: pack at the slot start (stock NetMaster)."""
    check_positive("payload_bytes", payload_bytes)
    quality = channel.mean_quality(slot.start, min(slot.end, slot.start + 60.0))
    duration = _batch_duration(payload_bytes, link, quality, min_duration_s)
    return PlacedBatch(
        slot=slot,
        start=slot.start,
        duration_s=duration,
        payload_bytes=payload_bytes,
        energy_multiplier=transfer_energy_multiplier(channel, slot.start, duration),
        effective_rate_bps=payload_bytes / duration,
    )


def place_channel_aware(
    slot: Slot,
    payload_bytes: float,
    link: LinkModel,
    channel: ChannelModel,
    *,
    min_duration_s: float = 0.5,
) -> PlacedBatch:
    """Channel-aware placement: pack in the slot's best-quality window.

    The window length is sized for the batch at nominal bandwidth, then
    the batch transfers at the window's actual quality.
    """
    check_positive("payload_bytes", payload_bytes)
    probe = max(
        min_duration_s, min(payload_bytes / link.bandwidth_bps, slot.duration)
    )
    start, _ = best_window(channel, probe, within=(slot.start, slot.end))
    quality = channel.mean_quality(start, start + probe)
    duration = _batch_duration(payload_bytes, link, quality, min_duration_s)
    return PlacedBatch(
        slot=slot,
        start=start,
        duration_s=duration,
        payload_bytes=payload_bytes,
        energy_multiplier=transfer_energy_multiplier(channel, start, duration),
        effective_rate_bps=payload_bytes / duration,
    )


@dataclass(frozen=True, slots=True)
class ChannelComparison:
    """Blind vs channel-aware placement over a set of slot batches."""

    blind: tuple[PlacedBatch, ...]
    aware: tuple[PlacedBatch, ...]

    @property
    def energy_multiplier_gain(self) -> float:
        """Mean per-byte energy multiplier reduction (blind − aware)."""
        if not self.blind:
            return 0.0
        blind = sum(b.energy_multiplier for b in self.blind) / len(self.blind)
        aware = sum(b.energy_multiplier for b in self.aware) / len(self.aware)
        return blind - aware

    @property
    def rate_gain(self) -> float:
        """Mean effective-rate improvement ratio (aware / blind)."""
        if not self.blind:
            return 1.0
        blind = sum(b.effective_rate_bps for b in self.blind) / len(self.blind)
        aware = sum(b.effective_rate_bps for b in self.aware) / len(self.aware)
        return aware / blind if blind > 0 else 1.0


def compare_placements(
    slots: list[Slot],
    payloads: list[float],
    link: LinkModel,
    channel: ChannelModel,
) -> ChannelComparison:
    """Place each payload in its slot both ways and compare."""
    if len(slots) != len(payloads):
        raise ValueError(
            f"slots and payloads must pair up: {len(slots)} vs {len(payloads)}"
        )
    blind = tuple(
        place_blind(slot, payload, link, channel)
        for slot, payload in zip(slots, payloads)
    )
    aware = tuple(
        place_channel_aware(slot, payload, link, channel)
        for slot, payload in zip(slots, payloads)
    )
    return ChannelComparison(blind=blind, aware=aware)
