"""Shared small utilities used across the :mod:`repro` packages.

The helpers here are deliberately tiny: argument validation with uniform
error messages, seeded random-generator coercion, and a couple of time
constants used by every subsystem.  Keeping them in one module avoids the
slightly-different-everywhere drift that otherwise creeps into large
simulation codebases.
"""

from __future__ import annotations

import json
import os
import sys
import tempfile
from collections.abc import Sequence
from pathlib import Path

import numpy as np

#: Seconds per hour.
HOUR: float = 3600.0

#: Seconds per day.
DAY: float = 86400.0

#: Number of hour bins used by every hour-level habit analysis.
HOURS_PER_DAY: int = 24

#: Weekday indices (Monday=0) that count as the weekend.
WEEKEND_DAYS: frozenset[int] = frozenset({5, 6})


def as_rng(seed: int | np.random.Generator | None) -> np.random.Generator:
    """Coerce ``seed`` into a :class:`numpy.random.Generator`.

    Accepts an existing generator (returned unchanged), an integer seed, or
    ``None`` for fresh OS entropy.  All stochastic components in the library
    accept the same union so experiments can be made reproducible by passing
    a single integer at the top level.
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def check_positive(name: str, value: float, *, strict: bool = True) -> float:
    """Validate that ``value`` is positive (or non-negative).

    Raises :class:`ValueError` with a uniform message otherwise; returns the
    value so it can be used inline in constructors.
    """
    value = float(value)
    if strict and not value > 0:
        raise ValueError(f"{name} must be > 0, got {value!r}")
    if not strict and not value >= 0:
        raise ValueError(f"{name} must be >= 0, got {value!r}")
    return value


def check_fraction(name: str, value: float) -> float:
    """Validate that ``value`` lies in the closed interval [0, 1]."""
    value = float(value)
    if not 0.0 <= value <= 1.0:
        raise ValueError(f"{name} must be in [0, 1], got {value!r}")
    return value


def check_interval(start: float, end: float, *, name: str = "interval") -> None:
    """Validate that ``start <= end``."""
    if start > end:
        raise ValueError(f"{name} must have start <= end, got [{start}, {end}]")


def weekday_of(day_index: int, start_weekday: int) -> int:
    """Weekday (Monday=0 .. Sunday=6) of trace day ``day_index``."""
    if day_index < 0:
        raise ValueError(f"day_index must be >= 0, got {day_index}")
    if not 0 <= start_weekday < 7:
        raise ValueError(f"start_weekday must be in [0, 7), got {start_weekday}")
    return (start_weekday + day_index) % 7


def is_weekend(day_index: int, start_weekday: int) -> bool:
    """Whether trace day ``day_index`` falls on a weekend."""
    return weekday_of(day_index, start_weekday) in WEEKEND_DAYS


def hour_of(time_s: float) -> int:
    """Hour-of-day bin (0..23) for an absolute trace time in seconds."""
    return int((time_s % DAY) // HOUR)


def day_of(time_s: float) -> int:
    """Trace day index for an absolute trace time in seconds."""
    return int(time_s // DAY)


def write_text_atomic(path: str | Path, text: str) -> Path:
    """Write a text file so a crash can never leave a torn document.

    The payload goes to a temporary file in the destination directory,
    is flushed and fsynced, and is then renamed over ``path`` with
    :func:`os.replace` — the same discipline the content-addressed trace
    store uses.  Readers therefore only ever see the old document or the
    complete new one, never a half-written hybrid.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp_name = tempfile.mkstemp(
        prefix=f".{path.name}.", suffix=".tmp", dir=path.parent
    )
    tmp = Path(tmp_name)
    try:
        with os.fdopen(fd, "w", encoding="utf-8") as fh:
            fh.write(text)
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, path)
    except BaseException:
        tmp.unlink(missing_ok=True)
        raise
    return path


def write_json_atomic(path: str | Path, doc: object, *, indent: int | None = None) -> Path:
    """Atomically write ``doc`` as JSON (see :func:`write_text_atomic`)."""
    return write_text_atomic(path, json.dumps(doc, indent=indent) + "\n")


def peak_rss_bytes() -> int | None:
    """Lifetime peak resident set size of this process, in bytes.

    Reads ``resource.getrusage(RUSAGE_SELF).ru_maxrss``, normalizing the
    platform units (kilobytes on Linux/BSD, bytes on macOS).  Returns
    ``None`` where the :mod:`resource` module is unavailable (Windows).
    The value is *monotonic* over the process lifetime — it only ever
    records the high-water mark — so flatness comparisons must run the
    smaller cohort first.
    """
    try:
        import resource
    except ImportError:  # pragma: no cover - non-POSIX platforms
        return None
    peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    if sys.platform == "darwin":  # pragma: no cover - macOS reports bytes
        return int(peak)
    return int(peak) * 1024


def merge_intervals(
    intervals: Sequence[tuple[float, float]], *, gap: float = 0.0
) -> list[tuple[float, float]]:
    """Merge overlapping (or near-touching, within ``gap``) intervals.

    Returns a sorted list of disjoint ``(start, end)`` tuples.  Used by the
    radio state machine (coalescing transfer windows) and by slot-set
    construction in the habit miner.
    """
    if gap < 0:
        raise ValueError(f"gap must be >= 0, got {gap}")
    cleaned = []
    for start, end in intervals:
        check_interval(start, end)
        cleaned.append((float(start), float(end)))
    if not cleaned:
        return []
    cleaned.sort()
    merged = [cleaned[0]]
    for start, end in cleaned[1:]:
        last_start, last_end = merged[-1]
        if start <= last_end + gap:
            merged[-1] = (last_start, max(last_end, end))
        else:
            merged.append((start, end))
    return merged


def total_length(intervals: Sequence[tuple[float, float]]) -> float:
    """Total covered length of *disjoint* intervals."""
    return float(sum(end - start for start, end in intervals))


def intersect_length(
    a: Sequence[tuple[float, float]], b: Sequence[tuple[float, float]]
) -> float:
    """Total overlap length between two lists of disjoint sorted intervals."""
    total = 0.0
    i = j = 0
    while i < len(a) and j < len(b):
        lo = max(a[i][0], b[j][0])
        hi = min(a[i][1], b[j][1])
        if hi > lo:
            total += hi - lo
        if a[i][1] <= b[j][1]:
            i += 1
        else:
            j += 1
    return total
