"""Hour-level habit prediction (paper Section IV, steps 1-2).

:class:`HabitModel` is the mining component's brain: fitted on ``k`` days
of history it yields

* ``Pr[u(t_i)]`` — per-hour probabilities of phone use (Eq. (2)),
  separately for weekdays and weekends;
* the **user active slot set** ``U`` for a δ threshold — merged hour
  slots where ``Pr[u(t_i)] ≥ δ``;
* the **screen-off network active slot set** ``T_n`` (Eq. (3)) with the
  expected per-hour activity counts and payloads the scheduler sizes its
  knapsacks with;
* the usage-probability integral ``∫ Pr[u(t)] dt`` that prices the
  penalty ΔP of Eq. (4).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro._util import DAY, HOUR, HOURS_PER_DAY, check_fraction
from repro.habits.intensity import (
    network_bytes_matrix,
    network_intensity_matrix,
    screen_use_matrix,
    split_by_daytype,
)
from repro.habits.special_apps import SpecialAppRegistry
from repro.habits.threshold import DeltaStrategy, FixedDelta, ImpactBasedDelta
from repro.traces.events import Trace


@dataclass(frozen=True, slots=True)
class Slot:
    """A predicted slot, in seconds within one day ``[start, end)``."""

    start: float
    end: float

    def __post_init__(self) -> None:
        if not 0.0 <= self.start < self.end <= DAY:
            raise ValueError(f"slot must satisfy 0 <= start < end <= {DAY}")

    @property
    def duration(self) -> float:
        """Slot length in seconds."""
        return self.end - self.start

    def contains(self, time_of_day: float) -> bool:
        """Whether a second-of-day falls inside this slot."""
        return self.start <= time_of_day < self.end


@dataclass(frozen=True, slots=True)
class SlotPrediction:
    """User-active-slot prediction for one day type."""

    hour_probs: np.ndarray
    delta: float
    slots: tuple[Slot, ...]

    @property
    def active_hours(self) -> np.ndarray:
        """Boolean mask of the hours covered by the predicted slots."""
        mask = np.zeros(HOURS_PER_DAY, dtype=bool)
        for slot in self.slots:
            first = int(slot.start // HOUR)
            last = int((slot.end - 1e-9) // HOUR)
            mask[first : last + 1] = True
        return mask

    def covers(self, time_of_day: float) -> bool:
        """Whether a second-of-day falls inside any predicted slot."""
        return any(s.contains(time_of_day) for s in self.slots)


def _merge_hours(active: np.ndarray) -> tuple[Slot, ...]:
    """Merge consecutive active hours into slots (paper: ``t_i`` has no
    fixed length — adjacent qualifying hours form one slot)."""
    slots: list[Slot] = []
    start: int | None = None
    for hour in range(HOURS_PER_DAY):
        if active[hour] and start is None:
            start = hour
        elif not active[hour] and start is not None:
            slots.append(Slot(start * HOUR, hour * HOUR))
            start = None
    if start is not None:
        slots.append(Slot(start * HOUR, DAY))
    return tuple(slots)


@dataclass(frozen=True, slots=True)
class DataSufficiency:
    """Verdict of :meth:`HabitModel.data_sufficiency`.

    ``sufficient`` is the one bit callers branch on; ``reasons`` explains
    every check that failed, for logging and degradation reports.
    """

    sufficient: bool
    n_weekdays: int
    n_weekends: int
    reasons: tuple[str, ...] = ()


@dataclass
class HabitModel:
    """Fitted hour-level habit statistics for one user."""

    user_id: str
    n_weekdays: int
    n_weekends: int
    weekday_user_probs: np.ndarray
    weekend_user_probs: np.ndarray
    weekday_net_counts: np.ndarray
    weekend_net_counts: np.ndarray
    weekday_net_bytes: np.ndarray
    weekend_net_bytes: np.ndarray
    weekday_net_seconds: np.ndarray
    weekend_net_seconds: np.ndarray
    weekday_screen_seconds: np.ndarray
    weekend_screen_seconds: np.ndarray
    special_apps: SpecialAppRegistry = field(default_factory=SpecialAppRegistry)

    # ------------------------------------------------------------------
    # fitting
    # ------------------------------------------------------------------
    @classmethod
    def fit(cls, history: Trace) -> "HabitModel":
        """Fit from ``k`` days of monitoring history (Eqs. (2)-(3))."""
        from repro.telemetry import metrics, tracer

        metrics().inc("habits.fits")
        with tracer().span("habit-fit", "habits", days=history.n_days):
            return cls._fit(history)

    @classmethod
    def _fit(cls, history: Trace) -> "HabitModel":
        use = screen_use_matrix(history)
        net = network_intensity_matrix(history, screen_off_only=True)
        net_bytes = network_bytes_matrix(history, screen_off_only=True)
        net_secs = _net_seconds_matrix(history)
        screen_secs = _screen_seconds_matrix(history)

        use_wd, use_we = split_by_daytype(use, history)
        net_wd, net_we = split_by_daytype(net, history)
        bytes_wd, bytes_we = split_by_daytype(net_bytes, history)
        nsecs_wd, nsecs_we = split_by_daytype(net_secs, history)
        secs_wd, secs_we = split_by_daytype(screen_secs, history)

        def mean(rows: np.ndarray) -> np.ndarray:
            return rows.mean(axis=0) if rows.shape[0] else np.zeros(HOURS_PER_DAY)

        return cls(
            user_id=history.user_id,
            n_weekdays=use_wd.shape[0],
            n_weekends=use_we.shape[0],
            weekday_user_probs=mean(use_wd),
            weekend_user_probs=mean(use_we),
            weekday_net_counts=mean(net_wd),
            weekend_net_counts=mean(net_we),
            weekday_net_bytes=mean(bytes_wd),
            weekend_net_bytes=mean(bytes_we),
            weekday_net_seconds=mean(nsecs_wd),
            weekend_net_seconds=mean(nsecs_we),
            weekday_screen_seconds=mean(secs_wd),
            weekend_screen_seconds=mean(secs_we),
            special_apps=SpecialAppRegistry.from_trace(history),
        )

    # ------------------------------------------------------------------
    # incremental updates (the phone keeps monitoring after training)
    # ------------------------------------------------------------------
    def updated_with(self, day: Trace) -> "HabitModel":
        """A new model with one more observed day folded in.

        On a handset the monitoring component never stops; rather than
        refitting over the whole store every night, the hour-level
        statistics are all per-day means and can be updated in O(24).
        ``day`` must be a single-day trace.
        """
        if day.n_days != 1:
            raise ValueError("updated_with expects a single-day trace")
        fresh = HabitModel.fit(day)
        weekend = day.is_weekend_day(0)

        def merge(old: np.ndarray, new: np.ndarray, k: int) -> np.ndarray:
            return (old * k + new) / (k + 1)

        if weekend:
            k = self.n_weekends
            kwargs = dict(
                n_weekdays=self.n_weekdays,
                n_weekends=k + 1,
                weekday_user_probs=self.weekday_user_probs,
                weekend_user_probs=merge(self.weekend_user_probs, fresh.weekend_user_probs, k),
                weekday_net_counts=self.weekday_net_counts,
                weekend_net_counts=merge(self.weekend_net_counts, fresh.weekend_net_counts, k),
                weekday_net_bytes=self.weekday_net_bytes,
                weekend_net_bytes=merge(self.weekend_net_bytes, fresh.weekend_net_bytes, k),
                weekday_net_seconds=self.weekday_net_seconds,
                weekend_net_seconds=merge(
                    self.weekend_net_seconds, fresh.weekend_net_seconds, k
                ),
                weekday_screen_seconds=self.weekday_screen_seconds,
                weekend_screen_seconds=merge(
                    self.weekend_screen_seconds, fresh.weekend_screen_seconds, k
                ),
            )
        else:
            k = self.n_weekdays
            kwargs = dict(
                n_weekdays=k + 1,
                n_weekends=self.n_weekends,
                weekday_user_probs=merge(self.weekday_user_probs, fresh.weekday_user_probs, k),
                weekend_user_probs=self.weekend_user_probs,
                weekday_net_counts=merge(self.weekday_net_counts, fresh.weekday_net_counts, k),
                weekend_net_counts=self.weekend_net_counts,
                weekday_net_bytes=merge(self.weekday_net_bytes, fresh.weekday_net_bytes, k),
                weekend_net_bytes=self.weekend_net_bytes,
                weekday_net_seconds=merge(
                    self.weekday_net_seconds, fresh.weekday_net_seconds, k
                ),
                weekend_net_seconds=self.weekend_net_seconds,
                weekday_screen_seconds=merge(
                    self.weekday_screen_seconds, fresh.weekday_screen_seconds, k
                ),
                weekend_screen_seconds=self.weekend_screen_seconds,
            )

        special = SpecialAppRegistry(
            special=set(self.special_apps.special),
            seen=set(self.special_apps.seen),
            usage_counts=dict(self.special_apps.usage_counts),
        )
        networked = {a.app for a in day.activities}
        for usage in day.usages:
            special.observe(
                usage.app, used=True, networked=usage.app in networked
            )
        for app in networked:
            special.observe(app, used=False, networked=True)

        return HabitModel(user_id=self.user_id, special_apps=special, **kwargs)

    # ------------------------------------------------------------------
    # per-day-type accessors
    # ------------------------------------------------------------------
    def user_probs(self, *, weekend: bool) -> np.ndarray:
        """``Pr[u(t_i)]`` for the 24 hour slots of a day type."""
        return self.weekend_user_probs if weekend else self.weekday_user_probs

    def net_counts(self, *, weekend: bool) -> np.ndarray:
        """Expected screen-off network activities per hour slot."""
        return self.weekend_net_counts if weekend else self.weekday_net_counts

    def net_bytes(self, *, weekend: bool) -> np.ndarray:
        """Expected screen-off payload (bytes) per hour slot."""
        return self.weekend_net_bytes if weekend else self.weekday_net_bytes

    def net_seconds(self, *, weekend: bool) -> np.ndarray:
        """Expected screen-off transfer seconds per hour slot."""
        return self.weekend_net_seconds if weekend else self.weekday_net_seconds

    def screen_seconds(self, *, weekend: bool) -> np.ndarray:
        """Expected screen-on seconds per hour slot (capacity evidence)."""
        return self.weekend_screen_seconds if weekend else self.weekday_screen_seconds

    # ------------------------------------------------------------------
    # health checks
    # ------------------------------------------------------------------
    def data_sufficiency(self, *, min_days: int = 3) -> DataSufficiency:
        """Whether this model carries enough clean signal to schedule on.

        Habit mining needs several observed days of *each* day type
        before its hour-level means stabilize (paper Section V trains on
        two weeks), and corrupted monitoring stores can smuggle NaN/inf
        into the statistics or wipe them to all-zero.  A model that fails
        any check should not drive deferral — the caller degrades to the
        duty-cycle-only baseline instead.
        """
        reasons: list[str] = []
        if self.n_weekdays < min_days:
            reasons.append(
                f"only {self.n_weekdays} weekday(s) observed (need {min_days})"
            )
        if self.n_weekends < min(min_days, 2):
            reasons.append(
                f"only {self.n_weekends} weekend day(s) observed "
                f"(need {min(min_days, 2)})"
            )
        arrays = {
            "weekday_user_probs": self.weekday_user_probs,
            "weekend_user_probs": self.weekend_user_probs,
            "weekday_net_counts": self.weekday_net_counts,
            "weekend_net_counts": self.weekend_net_counts,
            "weekday_net_bytes": self.weekday_net_bytes,
            "weekend_net_bytes": self.weekend_net_bytes,
            "weekday_net_seconds": self.weekday_net_seconds,
            "weekend_net_seconds": self.weekend_net_seconds,
        }
        for name, arr in arrays.items():
            if not np.all(np.isfinite(arr)):
                reasons.append(f"{name} contains NaN/inf (corrupted history)")
            elif np.any(arr < 0):
                reasons.append(f"{name} contains negative values (corrupted history)")
        if (
            np.all(self.weekday_user_probs == 0)
            and np.all(self.weekend_user_probs == 0)
        ):
            reasons.append("no screen use observed in any hour (empty history)")
        return DataSufficiency(
            sufficient=not reasons,
            n_weekdays=self.n_weekdays,
            n_weekends=self.n_weekends,
            reasons=tuple(reasons),
        )

    # ------------------------------------------------------------------
    # predictions
    # ------------------------------------------------------------------
    def user_slots(
        self, *, weekend: bool, strategy: DeltaStrategy | None = None
    ) -> SlotPrediction:
        """Step 1: the user active slot set ``U`` for one day type.

        ``strategy`` defaults to the paper's fixed weekday/weekend deltas;
        an :class:`ImpactBasedDelta` resolves its data-dependent δ against
        this model's probability vector.
        """
        probs = self.user_probs(weekend=weekend)
        if strategy is None:
            strategy = FixedDelta(0.1 if weekend else 0.2)
        if isinstance(strategy, ImpactBasedDelta):
            delta = strategy.choose(probs)
        else:
            delta = strategy.delta_for(weekend=weekend)
        check_fraction("delta", delta)
        active = probs >= delta if delta > 0 else probs > 0
        return SlotPrediction(hour_probs=probs, delta=delta, slots=_merge_hours(active))

    def network_hours(self, *, weekend: bool, user_slots: SlotPrediction) -> list[int]:
        """Step 2: hours in ``T_n`` — expected screen-off traffic outside U."""
        counts = self.net_counts(weekend=weekend)
        active = user_slots.active_hours
        return [h for h in range(HOURS_PER_DAY) if counts[h] > 0 and not active[h]]

    def usage_prob_integral(self, t0: float, t1: float, *, weekend: bool) -> float:
        """``∫_{t0}^{t1} Pr[u(t)] dt`` over seconds-of-day (Eq. (4)).

        The probability is the hour-level step function; ``t0 <= t1`` must
        lie within one day.
        """
        if not 0.0 <= t0 <= t1 <= DAY:
            raise ValueError(f"need 0 <= t0 <= t1 <= {DAY}, got [{t0}, {t1}]")
        probs = self.user_probs(weekend=weekend)
        total = 0.0
        for hour in range(HOURS_PER_DAY):
            lo, hi = hour * HOUR, (hour + 1) * HOUR
            overlap = min(t1, hi) - max(t0, lo)
            if overlap > 0:
                total += probs[hour] * overlap
        return total


def _net_seconds_matrix(trace: Trace) -> np.ndarray:
    """``(n_days, 24)`` screen-off transfer seconds per day-hour cell.

    Durations are binned at the activity's start hour — background syncs
    are seconds long, so sub-hour spill-over is negligible for planning.
    """
    matrix = np.zeros((trace.n_days, HOURS_PER_DAY), dtype=np.float64)
    for activity in trace.activities:
        if activity.screen_on:
            continue
        day = int(activity.time // DAY)
        if day < trace.n_days:
            matrix[day, int((activity.time % DAY) // HOUR)] += activity.duration
    return matrix


def _screen_seconds_matrix(trace: Trace) -> np.ndarray:
    """``(n_days, 24)`` screen-on seconds per day-hour cell."""
    matrix = np.zeros((trace.n_days, HOURS_PER_DAY), dtype=np.float64)
    for session in trace.screen_sessions:
        t = session.start
        while t < session.end:
            day = int(t // DAY)
            hour = int((t % DAY) // HOUR)
            bin_end = (np.floor(t / HOUR) + 1.0) * HOUR
            seg_end = min(session.end, bin_end)
            if day < trace.n_days:
                matrix[day, hour] += seg_end - t
            t = seg_end
    return matrix


def prediction_accuracy(prediction: SlotPrediction, day: Trace) -> float:
    """Fraction of the day's usages falling inside the predicted slots.

    This is Fig. 10(c)'s "prediction accuracy" metric; ``day`` must be a
    single-day trace (e.g. from :meth:`repro.traces.events.Trace.day_view`).
    """
    if day.n_days != 1:
        raise ValueError("prediction_accuracy expects a single-day trace")
    if not day.usages:
        return 1.0
    inside = sum(1 for u in day.usages if prediction.covers(u.time % DAY))
    return inside / len(day.usages)
