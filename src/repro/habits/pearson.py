"""Pearson-correlation habit analysis (paper Eq. (1), Figs. 3-4).

The paper's two key observations both rest on the Pearson parameter of
24-dimensional hourly intensity vectors:

* across *different users* the average correlation is low (0.1353) — no
  one-size-fits-all delay/batch interval exists;
* across *days of the same user* it is high (0.54 average, 0.8171 for
  user 4) — a single user's habit is predictable.
"""

from __future__ import annotations

import numpy as np

from repro.traces.events import Trace
from repro.habits.intensity import usage_intensity_matrix, usage_intensity_vector


def pearson(x: np.ndarray, y: np.ndarray) -> float:
    """The Pearson parameter ρ of two equal-length vectors (Eq. (1)).

    Degenerate inputs (zero variance on either side) return 0.0 — a
    constant usage vector carries no pattern to correlate with.
    """
    x = np.asarray(x, dtype=np.float64)
    y = np.asarray(y, dtype=np.float64)
    if x.shape != y.shape:
        raise ValueError(f"shape mismatch: {x.shape} vs {y.shape}")
    if x.size < 2:
        raise ValueError("need at least 2 dimensions")
    dx = x - x.mean()
    dy = y - y.mean()
    denom = np.sqrt((dx * dx).sum() * (dy * dy).sum())
    if denom == 0.0:
        return 0.0
    return float((dx * dy).sum() / denom)


def pairwise_matrix(vectors: list[np.ndarray]) -> np.ndarray:
    """Symmetric matrix of Pearson parameters between all vector pairs."""
    n = len(vectors)
    matrix = np.ones((n, n), dtype=np.float64)
    for i in range(n):
        for j in range(i + 1, n):
            rho = pearson(vectors[i], vectors[j])
            matrix[i, j] = matrix[j, i] = rho
    return matrix


def mean_offdiagonal(matrix: np.ndarray) -> float:
    """Average of the off-diagonal entries (the figures' "Avg" number)."""
    matrix = np.asarray(matrix, dtype=np.float64)
    n = matrix.shape[0]
    if matrix.shape != (n, n):
        raise ValueError(f"matrix must be square, got {matrix.shape}")
    if n < 2:
        return 0.0
    mask = ~np.eye(n, dtype=bool)
    return float(matrix[mask].mean())


def cross_user_matrix(traces: list[Trace]) -> np.ndarray:
    """Fig. 3: Pearson matrix of the users' total hourly usage vectors."""
    vectors = [usage_intensity_vector(t) for t in traces]
    return pairwise_matrix(vectors)


def day_matrix(trace: Trace, *, n_days: int | None = None) -> np.ndarray:
    """Fig. 4: day-by-day Pearson matrix of one user's hourly intensity.

    ``n_days`` limits the analysis to the first days (the paper shows an
    8×8 matrix for user 4).
    """
    matrix = usage_intensity_matrix(trace)
    if n_days is not None:
        matrix = matrix[:n_days]
    return pairwise_matrix([matrix[d] for d in range(matrix.shape[0])])


def cohort_cross_user_average(traces: list[Trace]) -> float:
    """The cohort's average cross-user Pearson (paper: 0.1353)."""
    return mean_offdiagonal(cross_user_matrix(traces))


def intra_user_average(trace: Trace) -> float:
    """One user's average day-to-day Pearson (paper: 0.54 cohort mean)."""
    return mean_offdiagonal(day_matrix(trace))
