"""Habit mining: intensity vectors, Pearson analysis, slot prediction."""

from repro.habits.intensity import (
    network_bytes_matrix,
    network_intensity_matrix,
    screen_use_matrix,
    split_by_daytype,
    usage_intensity_matrix,
    usage_intensity_vector,
)
from repro.habits.pearson import (
    cohort_cross_user_average,
    cross_user_matrix,
    day_matrix,
    intra_user_average,
    mean_offdiagonal,
    pairwise_matrix,
    pearson,
)
from repro.habits.prediction import (
    DataSufficiency,
    HabitModel,
    Slot,
    SlotPrediction,
    prediction_accuracy,
)
from repro.habits.serialization import (
    config_from_dict,
    config_to_dict,
    configs_equal,
    habit_model_from_dict,
    habit_model_to_dict,
    habit_models_equal,
    load_habit_model,
    save_habit_model,
)
from repro.habits.special_apps import SpecialAppRegistry
from repro.habits.threshold import (
    DeltaStrategy,
    FixedDelta,
    ImpactBasedDelta,
    WeekdayWeekendDelta,
)

__all__ = [
    "DataSufficiency",
    "DeltaStrategy",
    "FixedDelta",
    "HabitModel",
    "ImpactBasedDelta",
    "Slot",
    "SlotPrediction",
    "SpecialAppRegistry",
    "WeekdayWeekendDelta",
    "cohort_cross_user_average",
    "config_from_dict",
    "config_to_dict",
    "configs_equal",
    "cross_user_matrix",
    "day_matrix",
    "habit_model_from_dict",
    "habit_model_to_dict",
    "habit_models_equal",
    "intra_user_average",
    "load_habit_model",
    "mean_offdiagonal",
    "network_bytes_matrix",
    "network_intensity_matrix",
    "pairwise_matrix",
    "pearson",
    "prediction_accuracy",
    "save_habit_model",
    "screen_use_matrix",
    "split_by_daytype",
    "usage_intensity_matrix",
    "usage_intensity_vector",
]
