"""“Special Apps” detection (paper Section IV-C2, Fig. 5).

A Special App is one "used at least once along with network activities".
Tracking only these apps lets the real-time adjustment layer detect
meaningful user interactions cheaply: in the paper's traces just 8 of the
23 installed apps qualify, and the top one (weChat) covers 59% of usage.

Newly-installed (never-before-seen) apps are conservatively treated as
special to avoid false radio denials — the registry therefore remembers
which apps it has *seen* at all, not just which qualified.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.traces.events import Trace
from repro.traces.store import TraceStore


@dataclass
class SpecialAppRegistry:
    """Registry of Special Apps with conservative unknown-app handling."""

    special: set[str] = field(default_factory=set)
    seen: set[str] = field(default_factory=set)
    usage_counts: dict[str, int] = field(default_factory=dict)

    # ------------------------------------------------------------------
    # fitting
    # ------------------------------------------------------------------
    @classmethod
    def from_trace(cls, trace: Trace) -> "SpecialAppRegistry":
        """Fit from a history trace."""
        used = {u.app for u in trace.usages}
        networked = {a.app for a in trace.activities}
        counts: dict[str, int] = {}
        for usage in trace.usages:
            counts[usage.app] = counts.get(usage.app, 0) + 1
        return cls(
            special=used & networked,
            seen=used | networked | set(),
            usage_counts=counts,
        )

    @classmethod
    def from_store(cls, store: TraceStore) -> "SpecialAppRegistry":
        """Fit from the monitoring component's database."""
        used = set(store.app_usage_counts())
        networked = set(store.app_network_counts())
        return cls(
            special=used & networked,
            seen=store.apps_seen(),
            usage_counts=store.app_usage_counts(),
        )

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def is_special(self, app: str) -> bool:
        """Whether ``app`` gets the radio on demand.

        Known non-special apps are denied; unknown (newly installed) apps
        are allowed, per the paper's "recognize it as Special Apps to
        avoid making false operation" rule.
        """
        if app not in self.seen:
            return True
        return app in self.special

    def observe(self, app: str, *, used: bool, networked: bool) -> None:
        """Online update when the monitoring component sees ``app``.

        An app becomes special the first time it has shown both a
        foreground use and a network activity (in any order, across calls).
        """
        first_sight = app not in self.seen
        self.seen.add(app)
        if used:
            self.usage_counts[app] = self.usage_counts.get(app, 0) + 1
        if used and networked:
            self.special.add(app)
        elif first_sight and networked:
            # Network traffic from an app never used in the foreground does
            # not qualify it; it stays merely "seen".
            pass

    def usage_share(self) -> dict[str, float]:
        """Fraction of all foreground usage per special app (Fig. 5)."""
        total = sum(
            count for app, count in self.usage_counts.items() if app in self.special
        )
        if total == 0:
            return {}
        return {
            app: self.usage_counts.get(app, 0) / total
            for app in sorted(self.special)
        }

    def dominant_app(self) -> tuple[str, float] | None:
        """The most-used special app and its usage share, if any."""
        share = self.usage_share()
        if not share:
            return None
        app = max(share, key=share.__getitem__)
        return app, share[app]
