"""Hour-level intensity vectors — the raw material of habit mining.

The paper's mining component works entirely at the hour level ("usage
intensity": total times of usage in an hour).  This module converts traces
into ``(n_days, 24)`` matrices and 24-dimensional vectors for usage,
screen-phone-use indicators, and (screen-off) network activity.
"""

from __future__ import annotations

import numpy as np

from repro._util import HOURS_PER_DAY, day_of, hour_of
from repro.traces.events import Trace


def usage_intensity_matrix(trace: Trace) -> np.ndarray:
    """``(n_days, 24)`` counts of foreground app usages per day-hour."""
    matrix = np.zeros((trace.n_days, HOURS_PER_DAY), dtype=np.float64)
    if trace.usages:
        days = trace.usage_day_bins()
        hours = trace.usage_hour_bins()
        np.add.at(matrix, (days, hours), 1.0)
    return matrix


def usage_intensity_vector(trace: Trace) -> np.ndarray:
    """24-dim total usage intensity over the whole trace (Fig. 3 input)."""
    return usage_intensity_matrix(trace).sum(axis=0)


def screen_use_matrix(trace: Trace) -> np.ndarray:
    """``(n_days, 24)`` binary phone-used-in-hour indicators ``u(t_i)_j``.

    A slot counts as used when any screen session overlaps it, including
    sessions that span hour or midnight boundaries.
    """
    matrix = np.zeros((trace.n_days, HOURS_PER_DAY), dtype=np.float64)
    for session in trace.screen_sessions:
        t = session.start
        last = max(session.start, session.end - 1e-9)
        while True:
            day, hour = day_of(t), hour_of(t)
            if day < trace.n_days:
                matrix[day, hour] = 1.0
            # Advance to the start of the next hour bin.
            next_bin = (np.floor(t / 3600.0) + 1.0) * 3600.0
            if next_bin > last:
                break
            t = next_bin
    return matrix


def network_intensity_matrix(trace: Trace, *, screen_off_only: bool = True) -> np.ndarray:
    """``(n_days, 24)`` network-activity counts per day-hour.

    With ``screen_off_only`` (the default) this is the per-hour evidence
    behind screen-off network slot prediction, i.e. ``Σ_m n(p_m, t_i)_j``.
    """
    matrix = np.zeros((trace.n_days, HOURS_PER_DAY), dtype=np.float64)
    for activity in trace.activities:
        if screen_off_only and activity.screen_on:
            continue
        day = day_of(activity.time)
        if day < trace.n_days:
            matrix[day, hour_of(activity.time)] += 1.0
    return matrix


def network_bytes_matrix(trace: Trace, *, screen_off_only: bool = True) -> np.ndarray:
    """``(n_days, 24)`` transferred bytes per day-hour (V(n) evidence)."""
    matrix = np.zeros((trace.n_days, HOURS_PER_DAY), dtype=np.float64)
    for activity in trace.activities:
        if screen_off_only and activity.screen_on:
            continue
        day = day_of(activity.time)
        if day < trace.n_days:
            matrix[day, hour_of(activity.time)] += activity.total_bytes
    return matrix


def split_by_daytype(matrix: np.ndarray, trace: Trace) -> tuple[np.ndarray, np.ndarray]:
    """Split a ``(n_days, 24)`` matrix into (weekday rows, weekend rows).

    NetMaster applies different δ strategies to weekdays and weekends
    (Section IV-C1), so all predictors fit the two day types separately.
    """
    if matrix.shape[0] != trace.n_days:
        raise ValueError(
            f"matrix has {matrix.shape[0]} rows but the trace spans {trace.n_days} days"
        )
    weekend_mask = np.array(
        [trace.is_weekend_day(d) for d in range(trace.n_days)], dtype=bool
    )
    return matrix[~weekend_mask], matrix[weekend_mask]
