"""JSON serialization for fitted habit models and middleware configs.

Stream checkpoints (:mod:`repro.stream`) must persist every per-user
decision input — the fitted :class:`~repro.habits.prediction.HabitModel`
and the :class:`~repro.core.netmaster.NetMasterConfig` driving the
scheduler — and restore them **exactly**: the resumed stream has to make
byte-identical decisions.  Python's ``json`` emits floats with
shortest-round-trip ``repr``, so every finite float64 survives a
dump/load cycle bit-exactly; the helpers here only have to map the
dataclasses onto plain JSON types and back.

The same round-trip is useful offline: a fitted model can be cached on
disk next to a cohort and reloaded across runs instead of refitting.
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np

from repro.habits.prediction import HabitModel
from repro.habits.special_apps import SpecialAppRegistry
from repro.habits.threshold import (
    DeltaStrategy,
    FixedDelta,
    ImpactBasedDelta,
    WeekdayWeekendDelta,
)

_MODEL_FORMAT = 1
_CONFIG_FORMAT = 1

#: The ten hour-level statistic vectors a HabitModel carries.
_ARRAY_FIELDS = (
    "weekday_user_probs",
    "weekend_user_probs",
    "weekday_net_counts",
    "weekend_net_counts",
    "weekday_net_bytes",
    "weekend_net_bytes",
    "weekday_net_seconds",
    "weekend_net_seconds",
    "weekday_screen_seconds",
    "weekend_screen_seconds",
)


# ----------------------------------------------------------------------
# habit models
# ----------------------------------------------------------------------


def registry_to_dict(registry: SpecialAppRegistry) -> dict:
    """JSON-safe dump of a Special-App registry (sets become sorted lists)."""
    return {
        "special": sorted(registry.special),
        "seen": sorted(registry.seen),
        "usage_counts": {app: registry.usage_counts[app] for app in sorted(registry.usage_counts)},
    }


def registry_from_dict(data: dict) -> SpecialAppRegistry:
    """Inverse of :func:`registry_to_dict`."""
    return SpecialAppRegistry(
        special=set(data["special"]),
        seen=set(data["seen"]),
        usage_counts={str(app): int(n) for app, n in data["usage_counts"].items()},
    )


def habit_model_to_dict(model: HabitModel) -> dict:
    """JSON-safe dump of a fitted habit model (exact float round-trip)."""
    out: dict = {
        "format": _MODEL_FORMAT,
        "user_id": model.user_id,
        "n_weekdays": model.n_weekdays,
        "n_weekends": model.n_weekends,
        "special_apps": registry_to_dict(model.special_apps),
    }
    for name in _ARRAY_FIELDS:
        out[name] = [float(v) for v in getattr(model, name)]
    return out


def habit_model_from_dict(data: dict) -> HabitModel:
    """Inverse of :func:`habit_model_to_dict`."""
    fmt = data.get("format")
    if fmt != _MODEL_FORMAT:
        raise ValueError(
            f"unsupported habit-model format: {fmt!r} "
            f"(this build reads format {_MODEL_FORMAT})"
        )
    arrays = {
        name: np.asarray(data[name], dtype=np.float64) for name in _ARRAY_FIELDS
    }
    for name, arr in arrays.items():
        if arr.shape != (24,):
            raise ValueError(f"{name} must have 24 entries, got shape {arr.shape}")
    return HabitModel(
        user_id=str(data["user_id"]),
        n_weekdays=int(data["n_weekdays"]),
        n_weekends=int(data["n_weekends"]),
        special_apps=registry_from_dict(data["special_apps"]),
        **arrays,
    )


def save_habit_model(model: HabitModel, path: str | Path) -> Path:
    """Write a fitted model as JSON; returns the path written."""
    path = Path(path)
    path.write_text(json.dumps(habit_model_to_dict(model), indent=2) + "\n")
    return path


def load_habit_model(path: str | Path) -> HabitModel:
    """Load a model previously written by :func:`save_habit_model`."""
    return habit_model_from_dict(json.loads(Path(path).read_text()))


def habit_models_equal(a: HabitModel, b: HabitModel) -> bool:
    """Bit-exact equality of two habit models.

    Arrays compare by their raw float64 bytes (so ``-0.0 != 0.0`` and
    NaN patterns are honoured — stricter than ``np.array_equal``), the
    Special-App registry by set/dict equality.  This is the contract the
    online/offline parity tests assert.
    """
    if (a.user_id, a.n_weekdays, a.n_weekends) != (b.user_id, b.n_weekdays, b.n_weekends):
        return False
    for name in _ARRAY_FIELDS:
        left = np.ascontiguousarray(getattr(a, name), dtype=np.float64)
        right = np.ascontiguousarray(getattr(b, name), dtype=np.float64)
        if left.shape != right.shape or left.tobytes() != right.tobytes():
            return False
    return a.special_apps == b.special_apps


# ----------------------------------------------------------------------
# middleware configs
# ----------------------------------------------------------------------


def delta_to_dict(strategy: DeltaStrategy | None) -> dict | None:
    """JSON tag for the bundled δ strategies (``None`` passes through)."""
    if strategy is None:
        return None
    if isinstance(strategy, FixedDelta):
        return {"kind": "fixed", "delta": strategy.delta}
    if isinstance(strategy, WeekdayWeekendDelta):
        return {
            "kind": "weekday_weekend",
            "weekday": strategy.weekday,
            "weekend": strategy.weekend,
        }
    if isinstance(strategy, ImpactBasedDelta):
        return {"kind": "impact", "interrupt_budget": strategy.interrupt_budget}
    raise TypeError(
        f"cannot serialize delta strategy {type(strategy).__name__}; "
        "only the bundled FixedDelta/WeekdayWeekendDelta/ImpactBasedDelta round-trip"
    )


def delta_from_dict(data: dict | None) -> DeltaStrategy | None:
    """Inverse of :func:`delta_to_dict`."""
    if data is None:
        return None
    kind = data.get("kind")
    if kind == "fixed":
        return FixedDelta(float(data["delta"]))
    if kind == "weekday_weekend":
        return WeekdayWeekendDelta(float(data["weekday"]), float(data["weekend"]))
    if kind == "impact":
        return ImpactBasedDelta(float(data["interrupt_budget"]))
    raise ValueError(f"unknown delta strategy kind: {kind!r}")


def config_to_dict(config) -> dict:
    """JSON-safe dump of a :class:`~repro.core.netmaster.NetMasterConfig`."""
    from repro.radio.power import RadioPowerModel

    power: RadioPowerModel = config.power
    return {
        "format": _CONFIG_FORMAT,
        "power": {
            "name": power.name,
            "p_idle_w": power.p_idle_w,
            "p_dch_w": power.p_dch_w,
            "p_fach_w": power.p_fach_w,
            "promo_idle_dch_s": power.promo_idle_dch_s,
            "promo_idle_dch_w": power.promo_idle_dch_w,
            "promo_fach_dch_s": power.promo_fach_dch_s,
            "promo_fach_dch_w": power.promo_fach_dch_w,
            "dch_tail_s": power.dch_tail_s,
            "fach_tail_s": power.fach_tail_s,
        },
        "link": {"bandwidth_bps": config.link.bandwidth_bps},
        "et_w": config.et_w,
        "eps": config.eps,
        "delta": delta_to_dict(config.delta),
        "duty_initial_s": config.duty_initial_s,
        "duty_factor": config.duty_factor,
        "duty_max_s": config.duty_max_s,
        "wake_window_s": config.wake_window_s,
        "guard_s": config.guard_s,
        "optimize_in_slot_traffic": config.optimize_in_slot_traffic,
        "min_history_days": config.min_history_days,
        "degrade_on_insufficient_history": config.degrade_on_insufficient_history,
        "enable_circuit_breaker": config.enable_circuit_breaker,
        "breaker_threshold": config.breaker_threshold,
        "breaker_min_interactions": config.breaker_min_interactions,
        "breaker_cooldown_days": config.breaker_cooldown_days,
    }


def config_from_dict(data: dict):
    """Inverse of :func:`config_to_dict`; round-trips to an equal config."""
    from repro.core.netmaster import NetMasterConfig
    from repro.radio.bandwidth import LinkModel
    from repro.radio.power import RadioPowerModel

    fmt = data.get("format")
    if fmt != _CONFIG_FORMAT:
        raise ValueError(
            f"unsupported config format: {fmt!r} "
            f"(this build reads format {_CONFIG_FORMAT})"
        )
    p = data["power"]
    return NetMasterConfig(
        power=RadioPowerModel(
            name=str(p["name"]),
            p_idle_w=float(p["p_idle_w"]),
            p_dch_w=float(p["p_dch_w"]),
            p_fach_w=float(p["p_fach_w"]),
            promo_idle_dch_s=float(p["promo_idle_dch_s"]),
            promo_idle_dch_w=float(p["promo_idle_dch_w"]),
            promo_fach_dch_s=float(p["promo_fach_dch_s"]),
            promo_fach_dch_w=float(p["promo_fach_dch_w"]),
            dch_tail_s=float(p["dch_tail_s"]),
            fach_tail_s=float(p["fach_tail_s"]),
        ),
        link=LinkModel(bandwidth_bps=float(data["link"]["bandwidth_bps"])),
        et_w=float(data["et_w"]),
        eps=float(data["eps"]),
        delta=delta_from_dict(data["delta"]),
        duty_initial_s=float(data["duty_initial_s"]),
        duty_factor=float(data["duty_factor"]),
        duty_max_s=float(data["duty_max_s"]),
        wake_window_s=float(data["wake_window_s"]),
        guard_s=float(data["guard_s"]),
        optimize_in_slot_traffic=bool(data["optimize_in_slot_traffic"]),
        min_history_days=int(data["min_history_days"]),
        degrade_on_insufficient_history=bool(data["degrade_on_insufficient_history"]),
        enable_circuit_breaker=bool(data["enable_circuit_breaker"]),
        breaker_threshold=float(data["breaker_threshold"]),
        breaker_min_interactions=int(data["breaker_min_interactions"]),
        breaker_cooldown_days=int(data["breaker_cooldown_days"]),
    )


def configs_equal(a, b) -> bool:
    """Whether two configs are interchangeable (frozen-dataclass equality)."""
    return a == b
