"""δ-threshold strategies for user-active-slot prediction.

The prediction threshold ``thr(u)`` (Eq. (2)) controls the energy-saving /
user-experience trade-off (Section IV-C1, Fig. 10(c)): a large δ predicts
few active slots (more energy saved, more interrupts); a small δ predicts
many (safe but little saving).  The paper picks δ = 0.2 on weekdays and
δ = 0.1 on weekends to keep expected interrupts under 1%; the balanced
crossover in their traces sits near δ = 0.37.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Protocol

import numpy as np

from repro._util import check_fraction


class DeltaStrategy(Protocol):
    """Maps a day type to the prediction threshold δ."""

    def delta_for(self, *, weekend: bool) -> float:
        """The δ used when predicting a weekday or weekend day."""
        ...


@dataclass(frozen=True, slots=True)
class FixedDelta:
    """One δ for every day (used for the Fig. 10(c) sweep)."""

    delta: float

    def __post_init__(self) -> None:
        check_fraction("delta", self.delta)

    def delta_for(self, *, weekend: bool) -> float:
        """δ independent of day type."""
        return self.delta


@dataclass(frozen=True, slots=True)
class WeekdayWeekendDelta:
    """The paper's deployed strategy: δ=0.2 weekdays, δ=0.1 weekends."""

    weekday: float = 0.2
    weekend: float = 0.1

    def __post_init__(self) -> None:
        check_fraction("weekday", self.weekday)
        check_fraction("weekend", self.weekend)

    def delta_for(self, *, weekend: bool) -> float:
        """δ chosen per day type."""
        return self.weekend if weekend else self.weekday


@dataclass(frozen=True, slots=True)
class ImpactBasedDelta:
    """Impact-based δ: the largest δ keeping expected interrupts bounded.

    Following Section IV-C1, δ is "the max probability of interrupts":
    given the hour-level usage probabilities, pick the largest threshold
    such that the usage mass falling in slots predicted *inactive* stays
    below ``interrupt_budget`` of total usage mass.  Both day types use
    their own probability vector at fit time.
    """

    interrupt_budget: float = 0.01

    def __post_init__(self) -> None:
        check_fraction("interrupt_budget", self.interrupt_budget)

    def choose(self, hour_probs: np.ndarray) -> float:
        """δ for one probability vector (24 hourly ``Pr[u(t_i)]`` values)."""
        probs = np.asarray(hour_probs, dtype=np.float64)
        if probs.ndim != 1 or probs.size == 0:
            raise ValueError("hour_probs must be a non-empty 1-D array")
        if (probs < 0).any() or (probs > 1).any():
            raise ValueError("hour_probs must lie in [0, 1]")
        total = probs.sum()
        if total == 0.0:
            return 1.0  # phone never used: every slot may be inactive
        candidates = np.unique(np.concatenate([probs, [0.0]]))
        best = 0.0
        for delta in candidates:
            missed = probs[probs < delta].sum() / total
            if missed <= self.interrupt_budget:
                best = max(best, float(delta))
        return best

    def delta_for(self, *, weekend: bool) -> float:
        """Impact-based δ has no fixed value; it is data dependent.

        Use :meth:`choose` with the fitted probability vector instead.
        Raising here keeps the protocol honest: callers holding only a
        day type must resolve the data-dependent value via the habit
        model (see :meth:`repro.habits.prediction.HabitModel.user_slots`).
        """
        raise NotImplementedError(
            "ImpactBasedDelta is data dependent; resolve it via choose(hour_probs)"
        )
