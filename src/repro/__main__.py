"""Command-line entry point: regenerate any paper experiment.

Usage::

    python -m repro list                 # show available experiments
    python -m repro fig7                 # one experiment
    python -m repro fig1a fig3 fig10b    # several
    python -m repro all                  # everything
    python -m repro fig7 --seed 7        # alternative volunteer seed
    python -m repro fig7 --quick         # shrunk, fast variant
    python -m repro fig7 --telemetry-out out/telemetry
    python -m repro telemetry-report out/telemetry
    python -m repro serve --port 8341    # HTTP control plane (repro.service)
    python -m repro serve --load --quick # in-process load drill
    python -m repro fleet-scale --quick  # constant-RSS scale benchmark

Each experiment prints the same rows/series as the paper's figure, with
the paper's headline number alongside (see EXPERIMENTS.md).

``--telemetry-out DIR`` turns span tracing on and, after the run, writes
``metrics.json`` / ``spans.jsonl`` / ``trace.json`` / ``results.json``
under DIR (see :mod:`repro.telemetry.report`).  ``telemetry-report DIR``
reads that directory back and renders the summary tables.
"""

from __future__ import annotations

import argparse
import logging
import sys
from typing import Callable

from repro.evaluation import experiments as ex
from repro.evaluation import reporting as rpt
from repro.evaluation.robustness import robustness as ex_robustness
from repro.monitor.experiment import monitor_experiment as ex_monitor
from repro.stream.experiment import stream_experiment as ex_stream
from repro.stream.shards.experiment import shards_experiment as ex_shards

#: experiment name -> (driver kwargs-aware runner, formatter)
_REGISTRY: dict[str, tuple[Callable, Callable]] = {
    "fig1a": (ex.fig1a, rpt.format_fig1a),
    "fig1b": (ex.fig1b, rpt.format_fig1b),
    "fig2": (ex.fig2, rpt.format_fig2),
    "fig3": (ex.fig3, rpt.format_fig3),
    "fig4": (ex.fig4, rpt.format_fig4),
    "fig5": (ex.fig5, rpt.format_fig5),
    "fig7": (ex.fig7, rpt.format_fig7),
    "fig8": (ex.fig8, rpt.format_fig8),
    "fig9": (ex.fig9, rpt.format_fig9),
    "fig10a": (ex.fig10a, rpt.format_fig10a),
    "fig10b": (ex.fig10b, rpt.format_fig10b),
    "fig10c": (ex.fig10c, rpt.format_fig10c),
    "ux": (ex.user_experience, rpt.format_user_experience),
    "approx": (ex.approximation_ratio, rpt.format_approximation),
    "robustness": (ex_robustness, rpt.format_robustness),
    "stream": (ex_stream, rpt.format_stream),
    "shards": (ex_shards, rpt.format_shards),
    "monitor": (ex_monitor, rpt.format_monitor),
}

#: Experiments whose drivers accept a ``seed`` keyword.
_SEEDABLE = {
    "fig1a",
    "fig1b",
    "fig2",
    "fig3",
    "fig4",
    "fig5",
    "fig7",
    "fig8",
    "fig9",
    "fig10c",
    "ux",
    "approx",
    "robustness",
    "stream",
    "shards",
    "monitor",
}

#: Experiments whose drivers accept a ``jobs`` keyword (process fan-out).
_PARALLEL = {"fig7", "fig8", "fig9", "fig10c", "robustness", "stream", "shards"}

#: Experiments whose drivers accept a ``columnar`` keyword (lane-kernel
#: grid pricing; bit-identical to the per-lane path, just faster).
_COLUMNAR = {"fig7", "fig8", "fig9", "fig10c"}

#: ``--quick`` keyword overrides: shrunk but still-representative runs.
#: Every entry keeps the experiment's structure (same policies, same
#: pipeline) while cutting the simulated horizon and sweep density, so a
#: quick run exercises every code path the full run does.
_QUICK: dict[str, dict[str, object]] = {
    "fig1a": {"n_days": 7},
    "fig1b": {"n_days": 7},
    "fig2": {"n_days": 7},
    "fig3": {"n_days": 7},
    "fig4": {"n_days": 7, "window_days": 5},
    "fig5": {"n_days": 3},
    # NetMaster-based runs keep 7 history days: sufficiency needs both
    # weekday and weekend coverage, so anything shorter degrades every
    # day to duty-cycle-only and skips the knapsack path entirely.
    "fig7": {"n_days": 9, "n_history_days": 7},
    "fig8": {
        "n_days": 7,
        "n_history_days": 5,
        "delays_s": (0.0, 60.0, 300.0, 1200.0, 3600.0),
    },
    "fig9": {"n_days": 7, "n_history_days": 5, "batch_sizes": (0, 1, 3, 6)},
    "fig10c": {
        "n_days": 9,
        "n_history_days": 7,
        "thresholds": (0.0, 0.1, 0.2, 0.4),
    },
    "ux": {"n_days": 9, "n_history_days": 7},
    "approx": {"trials": 20},
    "robustness": {"n_days": 9, "n_history_days": 7, "rates": (0.0, 0.2)},
    # 7 training days for the same sufficiency reason; checkpoint every
    # executed day so the quick run still proves the restore path.
    "stream": {
        "n_users": 6,
        "n_days": 9,
        "train_days": 7,
        "checkpoint_every_days": 1,
    },
    # Small fleet over 2 shards with an aggressive compaction cadence,
    # so the quick run still crosses a snapshot generation.
    "shards": {
        "n_users": 4,
        "n_days": 9,
        "train_days": 7,
        "n_shards": 2,
        "compact_every_records": 4,
        "checkpoint_every_days": 1,
    },
    # 7 training days (sufficiency), onset right when the z-score
    # detectors arm — the quick run still proves every contract the
    # full run asserts (quiet no-op, matching detector, quarantine).
    "monitor": {"n_users": 8, "n_days": 14, "train_days": 7},
}

#: Valid ``--log-level`` names (stdlib logging levels).
_LOG_LEVELS = ("debug", "info", "warning", "error", "critical")


def build_parser() -> argparse.ArgumentParser:
    """The ``python -m repro`` argument parser."""
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Regenerate the NetMaster paper's tables and figures.",
    )
    parser.add_argument(
        "experiments",
        nargs="+",
        metavar="EXPERIMENT",
        help=f"one of: {', '.join(sorted(_REGISTRY))}, 'all', 'list', "
        "'telemetry-report DIR', 'serve' (see 'serve --help'), or "
        "'fleet-scale' (see 'fleet-scale --help')",
    )
    parser.add_argument(
        "--seed",
        type=int,
        default=None,
        help="override the experiment's default RNG seed",
    )
    parser.add_argument(
        "--out",
        metavar="PATH",
        default=None,
        help="write the report to PATH instead of stdout",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help="fan parallel-capable experiments over N worker processes "
        f"(applies to: {', '.join(sorted(_PARALLEL))})",
    )
    parser.add_argument(
        "--columnar",
        action=argparse.BooleanOptionalAction,
        default=False,
        help="price replay grids through the columnar lane kernel "
        f"(bit-identical results; applies to: {', '.join(sorted(_COLUMNAR))})",
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="run a shrunk variant (shorter horizon, sparser sweeps); "
        "results are indicative, not the paper's numbers",
    )
    parser.add_argument(
        "--telemetry-out",
        metavar="DIR",
        default=None,
        help="enable span tracing and write metrics.json / spans.jsonl / "
        "trace.json / results.json under DIR after the run",
    )
    parser.add_argument(
        "--log-level",
        choices=_LOG_LEVELS,
        default="warning",
        help="stdlib logging threshold (default: warning)",
    )
    parser.add_argument(
        "--cache-dir",
        metavar="PATH",
        default=None,
        help="persist generated cohorts on disk under PATH "
        "(content-addressed; survives process restarts)",
    )
    parser.add_argument(
        "--no-trace-cache",
        action="store_true",
        help="disable the in-process trace cache (always regenerate)",
    )
    return parser


def _telemetry_report(argv: list[str], out) -> int:
    """Handle ``python -m repro telemetry-report DIR``."""
    from repro.telemetry.report import format_report

    if len(argv) != 1:
        print("usage: python -m repro telemetry-report DIR|METRICS_FILE", file=sys.stderr)
        return 2
    try:
        report = format_report(argv[0])
    except FileNotFoundError as exc:
        print(str(exc), file=sys.stderr)
        return 2
    print(report, file=out)
    return 0


def run(
    names: list[str],
    seed: int | None = None,
    *,
    out=None,
    jobs: int = 1,
    quick: bool = False,
    columnar: bool = False,
    telemetry_out: str | None = None,
) -> int:
    """Run the named experiments; returns a process exit code."""
    if out is None:
        out = sys.stdout
    special = [n for n in ("list", "all") if n in names]
    if special and len(names) > 1:
        print(
            f"'{special[0]}' cannot be combined with other experiment names",
            file=sys.stderr,
        )
        return 2
    if "list" in names:
        print("available experiments:", file=out)
        for name in sorted(_REGISTRY):
            driver, _ = _REGISTRY[name]
            doc = (driver.__doc__ or "").strip().splitlines()[0]
            print(f"  {name:8s} {doc}", file=out)
        return 0
    if "all" in names:
        names = sorted(_REGISTRY)
    unknown = [n for n in names if n not in _REGISTRY]
    if unknown:
        print(
            f"unknown experiment(s): {', '.join(unknown)} "
            f"(choose from {', '.join(sorted(_REGISTRY))})",
            file=sys.stderr,
        )
        return 2
    if jobs < 1:
        print(f"--jobs must be >= 1, got {jobs}", file=sys.stderr)
        return 2

    from repro import telemetry

    tracing_was_on = telemetry.tracing_enabled()
    if telemetry_out is not None:
        telemetry.configure(tracing_enabled=True)
    try:
        reg = telemetry.metrics()
        per_experiment: dict[str, dict] = {}
        results: dict[str, object] = {}
        for i, name in enumerate(names):
            driver, formatter = _REGISTRY[name]
            kwargs: dict[str, object] = (
                dict(_QUICK.get(name, {})) if quick else {}
            )
            if seed is not None and name in _SEEDABLE:
                kwargs["seed"] = seed
            if jobs > 1 and name in _PARALLEL:
                kwargs["jobs"] = jobs
            if columnar and name in _COLUMNAR:
                kwargs["columnar"] = True
            before = reg.snapshot()
            result = driver(**kwargs)
            per_experiment[name] = telemetry.diff_snapshots(
                before, reg.snapshot()
            )
            results[name] = result
            if i:
                print(file=out)
            print(formatter(result), file=out)

        if telemetry_out is not None:
            from repro.evaluation.reporting import results_to_json
            from repro.telemetry.report import write_telemetry

            written = write_telemetry(
                telemetry_out,
                reg,
                telemetry.tracer(),
                per_experiment=per_experiment,
                results=results_to_json(results),
            )
            print(
                f"telemetry written: {', '.join(str(p) for p in written)}",
                file=sys.stderr,
            )
    finally:
        if telemetry_out is not None and not tracing_was_on:
            telemetry.configure(tracing_enabled=False)
    return 0


def main(argv: list[str] | None = None) -> int:
    """CLI entry point."""
    raw = sys.argv[1:] if argv is None else argv
    if raw and raw[0] == "telemetry-report":
        # The report command takes a directory, not experiment names, so
        # it bypasses the experiment parser entirely.
        return _telemetry_report(raw[1:], sys.stdout)
    if raw and raw[0] == "serve":
        # The service has its own flag set (host/port/load knobs) and an
        # asyncio main loop, so it bypasses the experiment parser too.
        from repro.service.cli import main as serve_main

        return serve_main(raw[1:])
    if raw and raw[0] == "fleet-scale":
        # The scale benchmark must own the whole process (ru_maxrss is
        # lifetime-monotonic), so it bypasses the experiment parser too.
        from repro.runtime.bench import fleet_scale_main

        return fleet_scale_main(raw[1:])
    args = build_parser().parse_args(raw)
    level = getattr(logging, args.log_level.upper())
    logging.basicConfig(format="%(levelname)s %(name)s: %(message)s")
    # basicConfig is a no-op once handlers exist, so set the level directly.
    logging.getLogger().setLevel(level)
    if args.no_trace_cache or args.cache_dir is not None:
        from repro.runtime.cache import configure_cache

        if args.no_trace_cache:
            configure_cache(enabled=False)
        if args.cache_dir is not None:
            configure_cache(cache_dir=args.cache_dir)
    run_kwargs = dict(
        jobs=args.jobs,
        quick=args.quick,
        columnar=args.columnar,
        telemetry_out=args.telemetry_out,
    )
    if args.out is not None:
        try:
            fh = open(args.out, "w", encoding="utf-8")
        except OSError as exc:
            print(f"cannot write --out {args.out}: {exc}", file=sys.stderr)
            return 2
        with fh:
            return run(args.experiments, args.seed, out=fh, **run_kwargs)
    return run(args.experiments, args.seed, **run_kwargs)


if __name__ == "__main__":
    raise SystemExit(main())
