"""Command-line entry point: regenerate any paper experiment.

Usage::

    python -m repro list                 # show available experiments
    python -m repro fig7                 # one experiment
    python -m repro fig1a fig3 fig10b    # several
    python -m repro all                  # everything
    python -m repro fig7 --seed 7        # alternative volunteer seed

Each experiment prints the same rows/series as the paper's figure, with
the paper's headline number alongside (see EXPERIMENTS.md).
"""

from __future__ import annotations

import argparse
import sys
from typing import Callable

from repro.evaluation import experiments as ex
from repro.evaluation import reporting as rpt
from repro.evaluation.robustness import robustness as ex_robustness

#: experiment name -> (driver kwargs-aware runner, formatter)
_REGISTRY: dict[str, tuple[Callable, Callable]] = {
    "fig1a": (ex.fig1a, rpt.format_fig1a),
    "fig1b": (ex.fig1b, rpt.format_fig1b),
    "fig2": (ex.fig2, rpt.format_fig2),
    "fig3": (ex.fig3, rpt.format_fig3),
    "fig4": (ex.fig4, rpt.format_fig4),
    "fig5": (ex.fig5, rpt.format_fig5),
    "fig7": (ex.fig7, rpt.format_fig7),
    "fig8": (ex.fig8, rpt.format_fig8),
    "fig9": (ex.fig9, rpt.format_fig9),
    "fig10a": (ex.fig10a, rpt.format_fig10a),
    "fig10b": (ex.fig10b, rpt.format_fig10b),
    "fig10c": (ex.fig10c, rpt.format_fig10c),
    "ux": (ex.user_experience, rpt.format_user_experience),
    "approx": (ex.approximation_ratio, rpt.format_approximation),
    "robustness": (ex_robustness, rpt.format_robustness),
}

#: Experiments whose drivers accept a ``seed`` keyword.
_SEEDABLE = {
    "fig1a",
    "fig1b",
    "fig2",
    "fig3",
    "fig4",
    "fig5",
    "fig7",
    "fig8",
    "fig9",
    "fig10c",
    "ux",
    "approx",
    "robustness",
}

#: Experiments whose drivers accept a ``jobs`` keyword (process fan-out).
_PARALLEL = {"fig7", "fig8", "fig9", "fig10c", "robustness"}


def build_parser() -> argparse.ArgumentParser:
    """The ``python -m repro`` argument parser."""
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Regenerate the NetMaster paper's tables and figures.",
    )
    parser.add_argument(
        "experiments",
        nargs="+",
        metavar="EXPERIMENT",
        help=f"one of: {', '.join(sorted(_REGISTRY))}, 'all', or 'list'",
    )
    parser.add_argument(
        "--seed",
        type=int,
        default=None,
        help="override the experiment's default RNG seed",
    )
    parser.add_argument(
        "--out",
        metavar="PATH",
        default=None,
        help="write the report to PATH instead of stdout",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help="fan parallel-capable experiments over N worker processes "
        f"(applies to: {', '.join(sorted(_PARALLEL))})",
    )
    parser.add_argument(
        "--cache-dir",
        metavar="PATH",
        default=None,
        help="persist generated cohorts on disk under PATH "
        "(content-addressed; survives process restarts)",
    )
    parser.add_argument(
        "--no-trace-cache",
        action="store_true",
        help="disable the in-process trace cache (always regenerate)",
    )
    return parser


def run(
    names: list[str], seed: int | None = None, *, out=None, jobs: int = 1
) -> int:
    """Run the named experiments; returns a process exit code."""
    if out is None:
        out = sys.stdout
    special = [n for n in ("list", "all") if n in names]
    if special and len(names) > 1:
        print(
            f"'{special[0]}' cannot be combined with other experiment names",
            file=sys.stderr,
        )
        return 2
    if "list" in names:
        print("available experiments:", file=out)
        for name in sorted(_REGISTRY):
            driver, _ = _REGISTRY[name]
            doc = (driver.__doc__ or "").strip().splitlines()[0]
            print(f"  {name:8s} {doc}", file=out)
        return 0
    if "all" in names:
        names = sorted(_REGISTRY)
    unknown = [n for n in names if n not in _REGISTRY]
    if unknown:
        print(
            f"unknown experiment(s): {', '.join(unknown)} "
            f"(choose from {', '.join(sorted(_REGISTRY))})",
            file=sys.stderr,
        )
        return 2
    if jobs < 1:
        print(f"--jobs must be >= 1, got {jobs}", file=sys.stderr)
        return 2
    for i, name in enumerate(names):
        driver, formatter = _REGISTRY[name]
        kwargs = {}
        if seed is not None and name in _SEEDABLE:
            kwargs["seed"] = seed
        if jobs > 1 and name in _PARALLEL:
            kwargs["jobs"] = jobs
        result = driver(**kwargs)
        if i:
            print(file=out)
        print(formatter(result), file=out)
    return 0


def main(argv: list[str] | None = None) -> int:
    """CLI entry point."""
    args = build_parser().parse_args(argv)
    if args.no_trace_cache or args.cache_dir is not None:
        from repro.runtime.cache import configure_cache

        if args.no_trace_cache:
            configure_cache(enabled=False)
        if args.cache_dir is not None:
            configure_cache(cache_dir=args.cache_dir)
    if args.out is not None:
        try:
            fh = open(args.out, "w", encoding="utf-8")
        except OSError as exc:
            print(f"cannot write --out {args.out}: {exc}", file=sys.stderr)
            return 2
        with fh:
            return run(args.experiments, args.seed, out=fh, jobs=args.jobs)
    return run(args.experiments, args.seed, jobs=args.jobs)


if __name__ == "__main__":
    raise SystemExit(main())
