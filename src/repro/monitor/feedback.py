"""Closed-loop feedback: alerts become scheduler hints.

:class:`UserMonitor` is the per-user glue between the detector bank and
the engine: day-close signals are built at the pricing seam
(:func:`day_signals`), fed through the bank, and the verdict drives a
quarantine state machine with hysteresis —

* **trigger**: any alert activates the quarantine immediately;
* **hold**: while active, the engine's next days are forced to
  duty-cycle-only degradation (the PR 1 fallback, via
  ``NetMaster.force_degraded``) or, with ``action="freeze"``, keep the
  last adopted habit model instead of re-adopting freshly mined ones;
* **release**: only after the user served ``quarantine_days`` *and*
  produced ``release_clean_days`` consecutive alert-free days — an
  alert during probation re-arms the hold (the
  :class:`~repro.faults.degradation.CircuitBreaker` cooldown idiom).

The invariant the whole subsystem hangs on: a monitor that never fires
is a pure observer.  ``apply`` writes ``0`` into the engine's feedback
windows while inactive — the value they already hold — and the engine
serializes those windows only when nonzero, so decisions, checkpoints
and WAL bytes stay byte-identical to an unmonitored run.
"""

from __future__ import annotations

from typing import Iterable

from repro.baselines.naive import NaivePolicy
from repro.evaluation.metrics import PolicyDayMetrics, measure_outcome
from repro.monitor.detectors import Alert, DaySignal, DetectorBank, MonitorConfig
from repro.stream.online_netmaster import CompletedDay, OnlineNetMaster
from repro.telemetry import metrics

__all__ = ["UserMonitor", "day_signals", "signal_of"]

_STATE_FORMAT = 1


def signal_of(
    day: CompletedDay,
    priced: PolicyDayMetrics,
    naive: PolicyDayMetrics,
    *,
    drift_alerts_total: int,
) -> DaySignal:
    """Assemble the detector-facing signal for one priced day."""
    trace = day.trace
    return DaySignal(
        user_id=trace.user_id,
        day=day.day_index,
        energy_j=priced.energy_j,
        radio_on_s=priced.radio_on_s,
        transfer_s=priced.transfer_s,
        naive_energy_j=naive.energy_j,
        screen_on_s=sum(s.end - s.start for s in trace.screen_sessions),
        events=len(trace.screen_sessions) + len(trace.usages) + len(trace.activities),
        drift_alerts_total=drift_alerts_total,
        degraded=day.execution.degraded,
    )


def day_signals(
    engine: OnlineNetMaster,
    completed: list[CompletedDay],
    priced: list[PolicyDayMetrics],
) -> list[DaySignal]:
    """Signals for one drained batch, pricing the naive baseline per day.

    The engine's cumulative drift counter is read once per batch, so
    every signal of a multi-day drain carries the same total (see
    :class:`~repro.monitor.detectors.DriftEscalationDetector`).
    """
    power = engine.config.power
    drift_total = engine.habits.drift_alerts
    out = []
    for day, m in zip(completed, priced):
        naive = measure_outcome(
            NaivePolicy().execute_day(day.trace), power, day.trace
        )
        out.append(signal_of(day, m, naive, drift_alerts_total=drift_total))
    return out


class UserMonitor:
    """One user's detector bank plus the quarantine state machine."""

    def __init__(self, user_id: str, config: MonitorConfig | None = None) -> None:
        self.user_id = user_id
        self.config = config or MonitorConfig()
        self.bank = DetectorBank(user_id, self.config)
        #: Whether the quarantine/freeze hold is currently engaged.
        self.active = False
        #: Alert-free days is not enough — the hold also has a minimum
        #: sentence (``served``) before ``clean`` hysteresis can release.
        self.served = 0
        self.clean = 0
        self.quarantines = 0
        self.alerts_total = 0

    # ------------------------------------------------------------------
    # the detect → act step
    # ------------------------------------------------------------------
    def feed(
        self, engine: OnlineNetMaster | None, signals: Iterable[DaySignal]
    ) -> list[Alert]:
        """Run day-close signals through the bank and apply feedback.

        Returns the alerts raised, in (day, bank) order.  Telemetry
        counters are incremented here — the detection site — so worker
        processes ship them back deterministically with their snapshot.
        """
        registry = metrics()
        alerts: list[Alert] = []
        for signal in signals:
            day_alerts = self.bank.feed(signal)
            alerts.extend(day_alerts)
            self._step(alerted=bool(day_alerts))
        for alert in alerts:
            registry.inc("monitor.alerts")
            registry.inc(f"monitor.alerts.{alert.kind}")
        self.alerts_total += len(alerts)
        if engine is not None:
            self.apply(engine)
        return alerts

    def feed_days(
        self,
        engine: OnlineNetMaster,
        completed: list[CompletedDay],
        priced: list[PolicyDayMetrics],
    ) -> list[Alert]:
        """:meth:`feed` from the pricing seam's raw materials."""
        if not completed:
            return []
        return self.feed(engine, day_signals(engine, completed, priced))

    def _step(self, *, alerted: bool) -> None:
        if alerted:
            if not self.active:
                self.active = True
                self.quarantines += 1
                metrics().inc("monitor.quarantined_users")
            self.served = 0
            self.clean = 0
        elif self.active:
            self.served += 1
            self.clean += 1
            if (
                self.served >= self.config.quarantine_days
                and self.clean >= self.config.release_clean_days
            ):
                self.active = False

    def apply(self, engine: OnlineNetMaster) -> None:
        """Project the hold onto the engine's feedback windows.

        While active the window covers the next ``quarantine_days``
        closes (it is re-extended every fed day, so the effective hold
        lasts until hysteresis releases it); while inactive both
        windows are zero — which is what they already were, keeping the
        unalerted engine byte-identical to an unmonitored one.
        """
        action = self.config.action
        if action == "none":
            return
        horizon = (
            engine.day + 1 + self.config.quarantine_days if self.active else 0
        )
        if action == "quarantine":
            engine.quarantined_until = horizon
        else:
            engine.adoption_frozen_until = horizon

    # ------------------------------------------------------------------
    # checkpoint / restore
    # ------------------------------------------------------------------
    def state_dict(self) -> dict:
        """JSON-safe monitor state (bank plus the hold machine)."""
        return {
            "format": _STATE_FORMAT,
            "active": self.active,
            "served": self.served,
            "clean": self.clean,
            "quarantines": self.quarantines,
            "alerts_total": self.alerts_total,
            "bank": self.bank.state_dict(),
        }

    @classmethod
    def load_state(
        cls, state: dict, *, user_id: str, config: MonitorConfig | None = None
    ) -> "UserMonitor":
        """Rebuild a monitor mid-stream; future verdicts are identical."""
        fmt = state.get("format")
        if fmt != _STATE_FORMAT:
            raise ValueError(
                f"unsupported monitor state format: {fmt!r} "
                f"(this build reads format {_STATE_FORMAT})"
            )
        monitor = cls(user_id, config)
        monitor.active = bool(state["active"])
        monitor.served = int(state["served"])
        monitor.clean = int(state["clean"])
        monitor.quarantines = int(state["quarantines"])
        monitor.alerts_total = int(state["alerts_total"])
        monitor.bank = DetectorBank.load_state(
            state["bank"], user_id=user_id, config=monitor.config
        )
        return monitor
