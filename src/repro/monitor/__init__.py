"""Fleet anomaly detection, alert publishing, and scheduler feedback.

The monitor closes the observe→detect→publish→act loop over the
streaming fleet (ROADMAP item 4):

* :mod:`repro.monitor.detectors` — streaming per-user detectors fed one
  :class:`~repro.monitor.detectors.DaySignal` per closed day, emitting
  typed :class:`~repro.monitor.detectors.Alert` records;
* :mod:`repro.monitor.sinks` — :class:`~repro.monitor.sinks.MonitorHub`
  fan-out to pluggable sinks (JSONL, CSV, ring buffer, callback) with
  per-sink failure isolation;
* :mod:`repro.monitor.feedback` — alerts become scheduler hints: a
  quarantine policy flips an alerted user's engine to duty-cycle-only
  degradation (or freezes model adoption), with hysteresis for release;
* :mod:`repro.monitor.energy_model` — a least-squares per-user
  daily-energy predictor used as a detector input and as a prediction
  baseline next to the paper's habit model.

The cardinal invariant, shared with every prior subsystem: attaching a
monitor that never fires leaves fleet decisions and WAL bytes
byte-identical to an unmonitored run.  Feedback state is only written
into engine checkpoints when an alert actually fired.

The experiment driver lives in :mod:`repro.monitor.experiment`
(``python -m repro monitor``); it is not imported here to keep this
package importable from the fleet without pulling the experiment stack.
"""

from repro.monitor.detectors import (
    Alert,
    DaySignal,
    DchStuckDetector,
    DetectorBank,
    DriftEscalationDetector,
    MonitorConfig,
    ResidualEnergyDetector,
    RunawayEnergyDetector,
    SavingsCollapseDetector,
)
from repro.monitor.energy_model import OnlineEnergyModel
from repro.monitor.feedback import UserMonitor, day_signals, signal_of
from repro.monitor.sinks import (
    CallbackSink,
    CsvAlertSink,
    JsonlAlertSink,
    MonitorHub,
    RingAlertSink,
)

__all__ = [
    "Alert",
    "CallbackSink",
    "CsvAlertSink",
    "DaySignal",
    "DchStuckDetector",
    "DetectorBank",
    "DriftEscalationDetector",
    "JsonlAlertSink",
    "MonitorConfig",
    "MonitorHub",
    "OnlineEnergyModel",
    "ResidualEnergyDetector",
    "RingAlertSink",
    "RunawayEnergyDetector",
    "SavingsCollapseDetector",
    "UserMonitor",
    "day_signals",
    "signal_of",
]
