"""Streaming per-user anomaly detectors fed at day-close.

Each detector consumes one :class:`DaySignal` per closed day — in day
order, exactly once — and may emit one typed :class:`Alert`.  All of
them are deterministic (pure float arithmetic in a fixed fold order, no
clocks, no randomness) and checkpointable: ``state_dict()`` returns
JSON-safe values whose floats survive the round-trip bit-exactly, and
``load_state`` resumes the detector mid-stream with byte-identical
future verdicts (the same guarantee
:class:`~repro.stream.online_netmaster.OnlineNetMaster` makes).

Detectors that learn a per-user baseline (runaway energy, savings
collapse, model residual) are *self-excluding*: an alerted day is
scored against the history but never folded into it, so a persistent
anomaly keeps firing instead of teaching the baseline to accept it.
"""

from __future__ import annotations

import math
from dataclasses import asdict, dataclass, field

from repro.monitor.energy_model import OnlineEnergyModel

__all__ = [
    "Alert",
    "DaySignal",
    "DchStuckDetector",
    "DetectorBank",
    "DriftEscalationDetector",
    "MonitorConfig",
    "ResidualEnergyDetector",
    "RunawayEnergyDetector",
    "SavingsCollapseDetector",
    "SEVERITY_CRITICAL",
    "SEVERITY_WARNING",
]

SEVERITY_WARNING = "warning"
SEVERITY_CRITICAL = "critical"

#: Schema version of every detector/bank state document.
_STATE_FORMAT = 1


@dataclass(frozen=True, slots=True)
class DaySignal:
    """The per-day telemetry slice every detector sees.

    Built at the day-close seam from the priced
    :class:`~repro.evaluation.metrics.PolicyDayMetrics` (and the naive
    always-on baseline priced over the same day), plus the engine's
    cumulative drift-alert counter.  ``transfer_s`` is DCH time under
    the shared RRC accounting, so the stuck-DCH share needs no extra
    radio plumbing.
    """

    user_id: str
    day: int
    energy_j: float
    radio_on_s: float
    transfer_s: float
    naive_energy_j: float
    screen_on_s: float
    events: int
    drift_alerts_total: int
    degraded: bool

    def as_dict(self) -> dict:
        """JSON-safe dump (floats survive bit-exactly)."""
        return asdict(self)

    @classmethod
    def from_dict(cls, doc: dict) -> "DaySignal":
        """Rebuild from :meth:`as_dict` output, byte-identical."""
        return cls(
            user_id=str(doc["user_id"]),
            day=int(doc["day"]),
            energy_j=float(doc["energy_j"]),
            radio_on_s=float(doc["radio_on_s"]),
            transfer_s=float(doc["transfer_s"]),
            naive_energy_j=float(doc["naive_energy_j"]),
            screen_on_s=float(doc["screen_on_s"]),
            events=int(doc["events"]),
            drift_alerts_total=int(doc["drift_alerts_total"]),
            degraded=bool(doc["degraded"]),
        )


@dataclass(frozen=True, slots=True)
class Alert:
    """One detector verdict on one user-day."""

    user_id: str
    day: int
    kind: str
    severity: str
    value: float
    threshold: float
    message: str = ""

    def as_dict(self) -> dict:
        """JSON-safe dump (floats survive bit-exactly)."""
        return asdict(self)

    @classmethod
    def from_dict(cls, doc: dict) -> "Alert":
        """Rebuild from :meth:`as_dict` output, byte-identical."""
        return cls(
            user_id=str(doc["user_id"]),
            day=int(doc["day"]),
            kind=str(doc["kind"]),
            severity=str(doc["severity"]),
            value=float(doc["value"]),
            threshold=float(doc["threshold"]),
            message=str(doc.get("message", "")),
        )


@dataclass(frozen=True)
class MonitorConfig:
    """Tunables of the whole monitor: detectors plus feedback policy.

    The defaults are deliberately conservative — tuned so the clean
    synthetic cohorts never alert (the byte-equality gate depends on a
    quiet monitor being a no-op) while the :mod:`repro.faults.anomalies`
    scenarios fire reliably.
    """

    #: Runaway-app energy: z-score of the day's J against the user's
    #: own (self-excluding) history.
    runaway_z: float = 6.0
    runaway_min_days: int = 4
    #: Std floor so near-constant users don't alert on noise.
    runaway_min_std_j: float = 25.0
    #: Radio stuck in DCH: alert when DCH seconds exceed this share of
    #: radio-on time (given enough radio-on time to be meaningful).
    #: NetMaster's own batching already pushes clean shares to ~0.86
    #: (compressed transfers, short tails), so the bound sits above
    #: that — only a genuinely pinned radio (foreground hold the
    #: scheduler cannot compress) crosses it.
    dch_share_bound: float = 0.95
    dch_min_radio_s: float = 900.0
    #: Savings collapse: online saving vs its own trailing window.
    collapse_window_days: int = 5
    collapse_drop: float = 0.35
    collapse_min_naive_j: float = 50.0
    #: Habit-drift escalation: consecutive days that raised new
    #: ``OnlineHabitModel`` drift alerts.
    drift_run_days: int = 4
    #: Learned-energy-model residual anomaly.
    residual_z: float = 8.0
    residual_min_days: int = 6
    residual_min_std_j: float = 25.0
    #: Feedback action: ``"quarantine"`` (duty-cycle-only degradation),
    #: ``"freeze"`` (keep the last adopted habit model), or ``"none"``.
    action: str = "quarantine"
    #: Minimum days a triggered user serves before release is possible.
    quarantine_days: int = 3
    #: Hysteresis: consecutive alert-free days required for release.
    release_clean_days: int = 2

    def __post_init__(self) -> None:
        if self.action not in ("quarantine", "freeze", "none"):
            raise ValueError(
                f"action must be 'quarantine', 'freeze' or 'none', "
                f"got {self.action!r}"
            )
        for name in ("runaway_z", "residual_z"):
            if getattr(self, name) <= 0:
                raise ValueError(f"{name} must be > 0, got {getattr(self, name)}")
        if not 0 < self.dch_share_bound <= 1:
            raise ValueError(
                f"dch_share_bound must be in (0, 1], got {self.dch_share_bound}"
            )
        if self.collapse_window_days < 1:
            raise ValueError(
                f"collapse_window_days must be >= 1, got {self.collapse_window_days}"
            )
        if not 0 < self.collapse_drop <= 1:
            raise ValueError(
                f"collapse_drop must be in (0, 1], got {self.collapse_drop}"
            )
        if self.drift_run_days < 1:
            raise ValueError(
                f"drift_run_days must be >= 1, got {self.drift_run_days}"
            )
        if self.quarantine_days < 1:
            raise ValueError(
                f"quarantine_days must be >= 1, got {self.quarantine_days}"
            )
        if self.release_clean_days < 0:
            raise ValueError(
                f"release_clean_days must be >= 0, got {self.release_clean_days}"
            )


class _Welford:
    """Deterministic running mean/variance (Welford's fold)."""

    __slots__ = ("n", "mean", "m2")

    def __init__(self) -> None:
        self.n = 0
        self.mean = 0.0
        self.m2 = 0.0

    def fold(self, x: float) -> None:
        self.n += 1
        delta = x - self.mean
        self.mean += delta / self.n
        self.m2 += delta * (x - self.mean)

    def std(self) -> float:
        if self.n < 2:
            return 0.0
        return math.sqrt(self.m2 / (self.n - 1))

    def state_dict(self) -> dict:
        return {"n": self.n, "mean": self.mean, "m2": self.m2}

    def load_state(self, state: dict) -> None:
        self.n = int(state["n"])
        self.mean = float(state["mean"])
        self.m2 = float(state["m2"])


def _severity(value: float, threshold: float, hard: float) -> str:
    return SEVERITY_CRITICAL if value >= hard else SEVERITY_WARNING


class RunawayEnergyDetector:
    """Per-day energy z-score against the user's own history."""

    kind = "runaway_energy"

    def __init__(
        self, *, z_threshold: float = 6.0, min_days: int = 4, min_std_j: float = 25.0
    ) -> None:
        self.z_threshold = float(z_threshold)
        self.min_days = int(min_days)
        self.min_std_j = float(min_std_j)
        self._stats = _Welford()
        self.fired = 0

    def feed(self, signal: DaySignal) -> Alert | None:
        energy = signal.energy_j
        alert = None
        if self._stats.n >= self.min_days:
            std = max(self._stats.std(), self.min_std_j)
            z = (energy - self._stats.mean) / std
            if z > self.z_threshold:
                self.fired += 1
                alert = Alert(
                    user_id=signal.user_id,
                    day=signal.day,
                    kind=self.kind,
                    severity=_severity(z, self.z_threshold, 2 * self.z_threshold),
                    value=z,
                    threshold=self.z_threshold,
                    message=(
                        f"day energy {energy:.1f} J is {z:.1f} sigma above the "
                        f"user's mean {self._stats.mean:.1f} J"
                    ),
                )
        if alert is None:
            self._stats.fold(energy)
        return alert

    def state_dict(self) -> dict:
        return {
            "format": _STATE_FORMAT,
            "stats": self._stats.state_dict(),
            "fired": self.fired,
        }

    def load_state(self, state: dict) -> None:
        self._stats.load_state(state["stats"])
        self.fired = int(state["fired"])


class DchStuckDetector:
    """DCH-second share of radio-on time above a hard bound."""

    kind = "dch_stuck"

    def __init__(self, *, share_bound: float = 0.9, min_radio_s: float = 900.0) -> None:
        self.share_bound = float(share_bound)
        self.min_radio_s = float(min_radio_s)
        self.fired = 0

    def feed(self, signal: DaySignal) -> Alert | None:
        if signal.radio_on_s < self.min_radio_s:
            return None
        share = signal.transfer_s / signal.radio_on_s
        if share <= self.share_bound:
            return None
        self.fired += 1
        hard = self.share_bound + 0.5 * (1.0 - self.share_bound)
        return Alert(
            user_id=signal.user_id,
            day=signal.day,
            kind=self.kind,
            severity=_severity(share, self.share_bound, hard),
            value=share,
            threshold=self.share_bound,
            message=(
                f"DCH share {share:.2f} of {signal.radio_on_s:.0f}s radio-on "
                f"exceeds {self.share_bound:.2f}"
            ),
        )

    def state_dict(self) -> dict:
        return {"format": _STATE_FORMAT, "fired": self.fired}

    def load_state(self, state: dict) -> None:
        self.fired = int(state["fired"])


class SavingsCollapseDetector:
    """Online saving falling far below its own trailing window."""

    kind = "savings_collapse"

    def __init__(
        self, *, window_days: int = 5, drop: float = 0.35, min_naive_j: float = 50.0
    ) -> None:
        self.window_days = int(window_days)
        self.drop = float(drop)
        self.min_naive_j = float(min_naive_j)
        self._window: list[float] = []
        self.fired = 0

    def feed(self, signal: DaySignal) -> Alert | None:
        if signal.naive_energy_j < self.min_naive_j:
            return None
        saving = 1.0 - signal.energy_j / signal.naive_energy_j
        alert = None
        if len(self._window) >= self.window_days:
            base = sum(self._window) / len(self._window)
            if base - saving > self.drop:
                self.fired += 1
                alert = Alert(
                    user_id=signal.user_id,
                    day=signal.day,
                    kind=self.kind,
                    severity=_severity(base - saving, self.drop, 2 * self.drop),
                    value=saving,
                    threshold=base - self.drop,
                    message=(
                        f"saving {saving:+.3f} dropped {base - saving:.3f} below "
                        f"the trailing {len(self._window)}-day mean {base:+.3f}"
                    ),
                )
        if alert is None:
            self._window.append(saving)
            if len(self._window) > self.window_days:
                self._window.pop(0)
        return alert

    def state_dict(self) -> dict:
        return {
            "format": _STATE_FORMAT,
            "window": list(self._window),
            "fired": self.fired,
        }

    def load_state(self, state: dict) -> None:
        self._window = [float(x) for x in state["window"]]
        self.fired = int(state["fired"])


class DriftEscalationDetector:
    """Consecutive days raising new ``OnlineHabitModel`` drift alerts.

    Fed the engine's *cumulative* drift-alert counter; a day counts
    toward the run when the counter moved since the previous signal.
    When multiple days close in one drain the whole delta lands on the
    batch's first signal — deterministic, and conservative (a
    double-close can only shorten a run, never fabricate one).
    """

    kind = "drift_escalation"

    def __init__(self, *, run_days: int = 4) -> None:
        self.run_days = int(run_days)
        self._last_total = 0
        self._streak = 0
        self.fired = 0

    def feed(self, signal: DaySignal) -> Alert | None:
        delta = signal.drift_alerts_total - self._last_total
        self._last_total = signal.drift_alerts_total
        self._streak = self._streak + 1 if delta > 0 else 0
        if self._streak < self.run_days:
            return None
        self.fired += 1
        return Alert(
            user_id=signal.user_id,
            day=signal.day,
            kind=self.kind,
            severity=_severity(
                float(self._streak), float(self.run_days), 2.0 * self.run_days
            ),
            value=float(self._streak),
            threshold=float(self.run_days),
            message=(
                f"{self._streak} consecutive days raised habit drift alerts "
                f"(threshold {self.run_days})"
            ),
        )

    def state_dict(self) -> dict:
        return {
            "format": _STATE_FORMAT,
            "last_total": self._last_total,
            "streak": self._streak,
            "fired": self.fired,
        }

    def load_state(self, state: dict) -> None:
        self._last_total = int(state["last_total"])
        self._streak = int(state["streak"])
        self.fired = int(state["fired"])


class ResidualEnergyDetector:
    """Learned-energy-model residual anomaly (over-consumption only).

    Wraps an :class:`~repro.monitor.energy_model.OnlineEnergyModel`:
    each day is predicted from its usage features *before* being folded
    in, and a day whose actual energy exceeds the prediction by a large
    residual z-score alerts.  Alerted days are excluded from both the
    model and the residual statistics.
    """

    kind = "energy_residual"

    def __init__(
        self, *, z_threshold: float = 8.0, min_days: int = 6, min_std_j: float = 25.0
    ) -> None:
        self.z_threshold = float(z_threshold)
        self.min_days = int(min_days)
        self.min_std_j = float(min_std_j)
        self.model = OnlineEnergyModel()
        self._resid = _Welford()
        self.fired = 0

    def feed(self, signal: DaySignal) -> Alert | None:
        features = OnlineEnergyModel.features_of(signal)
        predicted = self.model.predict(features)
        alert = None
        if predicted is not None and self._resid.n >= self.min_days:
            residual = signal.energy_j - predicted
            std = max(self._resid.std(), self.min_std_j)
            z = (residual - self._resid.mean) / std
            if z > self.z_threshold:
                self.fired += 1
                alert = Alert(
                    user_id=signal.user_id,
                    day=signal.day,
                    kind=self.kind,
                    severity=_severity(z, self.z_threshold, 2 * self.z_threshold),
                    value=z,
                    threshold=self.z_threshold,
                    message=(
                        f"actual {signal.energy_j:.1f} J vs predicted "
                        f"{predicted:.1f} J: residual {z:.1f} sigma above history"
                    ),
                )
        if alert is None:
            if predicted is not None:
                self._resid.fold(signal.energy_j - predicted)
            self.model.observe(features, signal.energy_j)
        return alert

    def state_dict(self) -> dict:
        return {
            "format": _STATE_FORMAT,
            "model": self.model.state_dict(),
            "resid": self._resid.state_dict(),
            "fired": self.fired,
        }

    def load_state(self, state: dict) -> None:
        self.model = OnlineEnergyModel.from_state(state["model"])
        self._resid.load_state(state["resid"])
        self.fired = int(state["fired"])


@dataclass
class DetectorBank:
    """All detectors of one user, fed in a fixed order."""

    user_id: str
    config: MonitorConfig = field(default_factory=MonitorConfig)

    def __post_init__(self) -> None:
        cfg = self.config
        self.detectors = [
            RunawayEnergyDetector(
                z_threshold=cfg.runaway_z,
                min_days=cfg.runaway_min_days,
                min_std_j=cfg.runaway_min_std_j,
            ),
            DchStuckDetector(
                share_bound=cfg.dch_share_bound, min_radio_s=cfg.dch_min_radio_s
            ),
            SavingsCollapseDetector(
                window_days=cfg.collapse_window_days,
                drop=cfg.collapse_drop,
                min_naive_j=cfg.collapse_min_naive_j,
            ),
            DriftEscalationDetector(run_days=cfg.drift_run_days),
            ResidualEnergyDetector(
                z_threshold=cfg.residual_z,
                min_days=cfg.residual_min_days,
                min_std_j=cfg.residual_min_std_j,
            ),
        ]

    def feed(self, signal: DaySignal) -> list[Alert]:
        """Run every detector over one day-close signal, in bank order."""
        alerts = []
        for detector in self.detectors:
            alert = detector.feed(signal)
            if alert is not None:
                alerts.append(alert)
        return alerts

    def state_dict(self) -> dict:
        """JSON-safe bank state, keyed by detector kind."""
        return {
            "format": _STATE_FORMAT,
            "detectors": {d.kind: d.state_dict() for d in self.detectors},
        }

    @classmethod
    def load_state(
        cls, state: dict, *, user_id: str, config: MonitorConfig
    ) -> "DetectorBank":
        """Rebuild a bank mid-stream; future verdicts are byte-identical."""
        fmt = state.get("format")
        if fmt != _STATE_FORMAT:
            raise ValueError(
                f"unsupported detector bank state format: {fmt!r} "
                f"(this build reads format {_STATE_FORMAT})"
            )
        bank = cls(user_id, config)
        docs = state["detectors"]
        for detector in bank.detectors:
            detector.load_state(docs[detector.kind])
        return bank
