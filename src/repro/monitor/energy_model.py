"""Least-squares per-user daily-energy prediction from usage features.

The learned baseline of arXiv 2012.10246 (smartphone energy models fit
from usage patterns), grown online: one :class:`OnlineEnergyModel` per
user accumulates the normal equations ``X^T X`` / ``X^T y`` over the
day features ``[1, screen_on_s, events, radio_on_s]`` and solves a
ridge-stabilized 4×4 system on demand.  The accumulators are plain
float sums in day order, so the model is deterministic and its
``state_dict`` round-trips through JSON bit-exactly — a restored model
predicts byte-identically.

Two reference predictors ride along for the ``python -m repro monitor``
comparison: a global trailing mean and a day-type (weekday/weekend)
mean, the latter standing in for the paper's habit-model view that
energy routine splits by day type.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.monitor.detectors import DaySignal

__all__ = [
    "DayTypeMeanPredictor",
    "FEATURES",
    "OnlineEnergyModel",
    "TrailingMeanPredictor",
]

#: Feature names, in column order.
FEATURES = ("bias", "screen_on_s", "events", "radio_on_s")

_STATE_FORMAT = 1


class OnlineEnergyModel:
    """Online least squares over the normal equations (4 features)."""

    def __init__(self, *, min_days: int = 3, ridge: float = 1e-8) -> None:
        if min_days < 1:
            raise ValueError(f"min_days must be >= 1, got {min_days}")
        self.min_days = int(min_days)
        self.ridge = float(ridge)
        k = len(FEATURES)
        self._xtx = [[0.0] * k for _ in range(k)]
        self._xty = [0.0] * k
        self.n = 0

    @staticmethod
    def features_of(signal: "DaySignal") -> list[float]:
        """The model's feature row for one day-close signal."""
        return [1.0, signal.screen_on_s, float(signal.events), signal.radio_on_s]

    def observe(self, features: list[float], energy_j: float) -> None:
        """Fold one (features, energy) day into the accumulators."""
        k = len(FEATURES)
        if len(features) != k:
            raise ValueError(f"expected {k} features, got {len(features)}")
        for i in range(k):
            xi = features[i]
            row = self._xtx[i]
            for j in range(k):
                row[j] += xi * features[j]
            self._xty[i] += xi * energy_j
        self.n += 1

    def coefficients(self) -> list[float] | None:
        """Solve the ridge-stabilized system; ``None`` before ``min_days``.

        Solved with a deterministic pure-Python Gaussian elimination
        (partial pivoting) so predictions depend only on the
        accumulator floats, which round-trip through JSON exactly.
        """
        if self.n < self.min_days:
            return None
        k = len(FEATURES)
        # Ridge scaled to the design's magnitude keeps the system
        # solvable while screen/radio features sit near-collinear.
        scale = max(self._xtx[i][i] for i in range(k))
        lam = self.ridge * scale + 1e-12
        a = [
            [self._xtx[i][j] + (lam if i == j else 0.0) for j in range(k)]
            for i in range(k)
        ]
        b = list(self._xty)
        for col in range(k):
            pivot = max(range(col, k), key=lambda r: abs(a[r][col]))
            if abs(a[pivot][col]) == 0.0:
                return None
            if pivot != col:
                a[col], a[pivot] = a[pivot], a[col]
                b[col], b[pivot] = b[pivot], b[col]
            inv = 1.0 / a[col][col]
            for r in range(col + 1, k):
                f = a[r][col] * inv
                if f == 0.0:
                    continue
                for c in range(col, k):
                    a[r][c] -= f * a[col][c]
                b[r] -= f * b[col]
        beta = [0.0] * k
        for r in range(k - 1, -1, -1):
            acc = b[r]
            for c in range(r + 1, k):
                acc -= a[r][c] * beta[c]
            beta[r] = acc / a[r][r]
        return beta

    def predict(self, features: list[float]) -> float | None:
        """Predicted daily energy (J); ``None`` before ``min_days``."""
        beta = self.coefficients()
        if beta is None:
            return None
        return sum(b * f for b, f in zip(beta, features))

    def state_dict(self) -> dict:
        """JSON-safe state (floats survive bit-exactly)."""
        return {
            "format": _STATE_FORMAT,
            "min_days": self.min_days,
            "ridge": self.ridge,
            "xtx": [list(row) for row in self._xtx],
            "xty": list(self._xty),
            "n": self.n,
        }

    @classmethod
    def from_state(cls, state: dict) -> "OnlineEnergyModel":
        """Rebuild from :meth:`state_dict` output, byte-identical."""
        fmt = state.get("format")
        if fmt != _STATE_FORMAT:
            raise ValueError(
                f"unsupported energy model state format: {fmt!r} "
                f"(this build reads format {_STATE_FORMAT})"
            )
        model = cls(min_days=int(state["min_days"]), ridge=float(state["ridge"]))
        model._xtx = [[float(v) for v in row] for row in state["xtx"]]
        model._xty = [float(v) for v in state["xty"]]
        model.n = int(state["n"])
        return model


class TrailingMeanPredictor:
    """Predict tomorrow's energy as the mean of all days seen so far."""

    def __init__(self) -> None:
        self.n = 0
        self.total = 0.0

    def predict(self) -> float | None:
        if self.n == 0:
            return None
        return self.total / self.n

    def observe(self, energy_j: float) -> None:
        self.n += 1
        self.total += energy_j


class DayTypeMeanPredictor:
    """Per-day-type (weekday/weekend) trailing mean — the habit view."""

    def __init__(self) -> None:
        self.n = [0, 0]
        self.total = [0.0, 0.0]

    @staticmethod
    def daytype(weekday: int) -> int:
        return 1 if weekday >= 5 else 0

    def predict(self, weekday: int) -> float | None:
        t = self.daytype(weekday)
        if self.n[t] == 0:
            return None
        return self.total[t] / self.n[t]

    def observe(self, weekday: int, energy_j: float) -> None:
        t = self.daytype(weekday)
        self.n[t] += 1
        self.total[t] += energy_j
