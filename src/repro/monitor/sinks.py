"""Alert publishing: a fan-out hub over pluggable, isolated sinks.

:class:`MonitorHub` is the single publishing seam — the fleet, the
sharded service and the HTTP gateway all hand their alerts to one hub,
which fans each alert out to every attached sink.  Sinks are fully
isolated: a raising sink is logged and counted
(``monitor.sink_errors``) and the remaining sinks still receive the
alert — a broken webhook can never break ingest.

The file sinks follow the :class:`~repro.stream.rollup.SummarySpill`
atomic-publish discipline (the :func:`repro._util.write_json_atomic`
idiom adapted to append-only files): lines accumulate in a hidden
sibling temp file and :meth:`close` flushes, fsyncs and renames it over
the target path, so readers only ever observe a complete alert log.
"""

from __future__ import annotations

import csv
import json
import logging
import os
import tempfile
from collections import deque
from pathlib import Path
from typing import Callable, Iterable

from repro.monitor.detectors import Alert
from repro.telemetry import metrics

__all__ = [
    "CallbackSink",
    "CsvAlertSink",
    "JsonlAlertSink",
    "MonitorHub",
    "RingAlertSink",
]

logger = logging.getLogger(__name__)

#: Column order of the CSV sink (the Alert fields).
_CSV_FIELDS = ("user_id", "day", "kind", "severity", "value", "threshold", "message")


class _AtomicLineSink:
    """Shared append-to-temp / publish-on-close machinery."""

    def __init__(self, path: str | Path) -> None:
        self.path = Path(path)
        self.count = 0
        self.path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp_name = tempfile.mkstemp(
            prefix=f".{self.path.name}.", suffix=".partial", dir=self.path.parent
        )
        self._tmp = Path(tmp_name)
        self._fh = os.fdopen(fd, "w", encoding="utf-8", newline="")

    def close(self) -> Path:
        """Flush, fsync and atomically publish the alert log."""
        if not self._fh.closed:
            self._fh.flush()
            os.fsync(self._fh.fileno())
            self._fh.close()
            os.replace(self._tmp, self.path)
        return self.path

    def abort(self) -> None:
        """Discard the partial log (run failed before completing)."""
        if not self._fh.closed:
            self._fh.close()
        self._tmp.unlink(missing_ok=True)


class JsonlAlertSink(_AtomicLineSink):
    """Append-only JSONL alert log, atomically published on close."""

    def emit(self, alert: Alert) -> None:
        self._fh.write(json.dumps(alert.as_dict()) + "\n")
        self.count += 1


class CsvAlertSink(_AtomicLineSink):
    """CSV alert log (header + one row per alert), atomic on close."""

    def __init__(self, path: str | Path) -> None:
        super().__init__(path)
        self._writer = csv.writer(self._fh)
        self._writer.writerow(_CSV_FIELDS)

    def emit(self, alert: Alert) -> None:
        doc = alert.as_dict()
        self._writer.writerow([doc[field] for field in _CSV_FIELDS])
        self.count += 1


class RingAlertSink:
    """Bounded in-memory buffer of the newest alerts (the read path
    behind ``GET /v1/alerts``)."""

    def __init__(self, capacity: int = 1024) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = int(capacity)
        self._ring: deque[Alert] = deque(maxlen=self.capacity)
        self.count = 0

    def emit(self, alert: Alert) -> None:
        self._ring.append(alert)
        self.count += 1

    def alerts(self) -> list[Alert]:
        """The retained alerts, oldest first."""
        return list(self._ring)


class CallbackSink:
    """Webhook-style sink: every alert invokes the callable."""

    def __init__(self, fn: Callable[[Alert], None]) -> None:
        self.fn = fn
        self.count = 0

    def emit(self, alert: Alert) -> None:
        self.fn(alert)
        self.count += 1


class MonitorHub:
    """Fan-out publisher with per-sink failure isolation.

    Publish-side counts (total and per kind) live on the hub itself —
    they are the service's ``/v1/alerts`` summary — while the
    ``monitor.alerts*`` telemetry counters are incremented where the
    alerts are *detected* (worker side, shipped back in admission
    order), so parallel runs count identically to serial ones.  The hub
    only owns the ``monitor.sink_errors`` counter: sink failures happen
    wherever the hub lives.
    """

    def __init__(self, sinks: Iterable[object] = ()) -> None:
        self.sinks = list(sinks)
        self.published = 0
        self.by_kind: dict[str, int] = {}
        self.sink_errors = 0

    def add_sink(self, sink: object) -> None:
        """Attach one more sink (takes effect for future alerts)."""
        self.sinks.append(sink)

    def publish(self, alert: Alert) -> None:
        """Fan one alert out to every sink; a raising sink is isolated."""
        self.published += 1
        self.by_kind[alert.kind] = self.by_kind.get(alert.kind, 0) + 1
        for sink in self.sinks:
            try:
                sink.emit(alert)
            except Exception:
                self.sink_errors += 1
                metrics().inc("monitor.sink_errors")
                logger.warning(
                    "alert sink %s failed on %s/%s day %d; alert dropped "
                    "for this sink only",
                    type(sink).__name__,
                    alert.user_id,
                    alert.kind,
                    alert.day,
                    exc_info=True,
                )

    def publish_many(self, alerts: Iterable[Alert]) -> None:
        """Publish alerts in order."""
        for alert in alerts:
            self.publish(alert)

    def close(self) -> None:
        """Close every closeable sink, isolating failures like emit."""
        for sink in self.sinks:
            close = getattr(sink, "close", None)
            if close is None:
                continue
            try:
                close()
            except Exception:
                self.sink_errors += 1
                metrics().inc("monitor.sink_errors")
                logger.warning(
                    "alert sink %s failed to close", type(sink).__name__,
                    exc_info=True,
                )
