"""The fleet-monitoring experiment behind ``python -m repro monitor``.

Grades the whole observe → detect → publish → act loop against
labelled ground truth.  A cohort streams through the online engine
with the monitor attached; a seeded minority of users carries a
:class:`~repro.faults.anomalies.AnomalyInjector` scenario (runaway-app
energy burst or a radio pinned in DCH) from a known onset day.  The
experiment then *asserts* the subsystem's three contracts end-to-end:

* **quiet monitor is a no-op** — every clean user produces zero alerts
  and a stream summary byte-identical to the unmonitored drive;
* **the matching detector fires** — runaway users raise
  ``runaway_energy``, stuck-DCH users raise ``dch_stuck``;
* **feedback bites** — an alerted user is quarantined to
  duty-cycle-only degradation, visible as extra degraded days relative
  to the same (anomalous) trace streamed without a monitor.

Alongside detection precision/recall it reports the online
least-squares energy model's one-day-ahead MAE against the trailing
and day-type mean baselines, each predictor scored causally (predict
before observe) over the clean users' day signals.

Set ``REPRO_MONITOR_ALERTS_OUT=/path/alerts.jsonl`` to tee every alert
to an append-only JSONL sink (the CI smoke job uploads it on failure).
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import dataclass

from repro.monitor.detectors import Alert, MonitorConfig
from repro.monitor.energy_model import (
    DayTypeMeanPredictor,
    OnlineEnergyModel,
    TrailingMeanPredictor,
)
from repro.monitor.feedback import day_signals
from repro.monitor.sinks import JsonlAlertSink, MonitorHub, RingAlertSink
from repro.stream.fleet import (
    FleetConfig,
    SummaryAccumulator,
    _spec_trace,
    stream_one_user,
    stream_one_user_monitored,
)
from repro.stream.ingest import stream_trace
from repro.stream.online_netmaster import OnlineNetMaster
from repro.stream.specgen import iter_fleet_specs
from repro.telemetry import tracer
from repro.traces.events import Trace

DEFAULT_SEED = 2014
DEFAULT_USERS = 24
DEFAULT_DAYS = 20
DEFAULT_TRAIN_DAYS = 10

#: Environment knob: tee alerts to this JSONL path when set.
ALERTS_OUT_ENV = "REPRO_MONITOR_ALERTS_OUT"

#: Anomaly kind -> the detector expected to name it.
EXPECTED_DETECTOR = {"runaway": "runaway_energy", "dch": "dch_stuck"}


class MonitorContractError(AssertionError):
    """An end-to-end monitoring contract failed (detection or no-op)."""


@dataclass(frozen=True)
class MonitorResult:
    """Everything the monitoring experiment measured (and asserted)."""

    n_users: int
    n_days: int
    train_days: int
    onset_day: int
    clean_users: int
    anomalous_users: int
    injected: dict[str, str]  # user_id -> anomaly kind
    alerts_total: int
    alerts_by_kind: dict[str, int]
    false_alert_users: int
    detected_users: int
    kind_matched_users: int
    precision: float
    recall: float
    kind_recall: float
    quarantine_effective_users: int
    degraded_days_monitored: int
    degraded_days_clean: int
    clean_byte_equal: bool
    model_mae_j: float
    trailing_mae_j: float
    daytype_mae_j: float
    model_days: int
    elapsed_s: float
    sink_errors: int = 0
    alerts_path: str | None = None


def _clean_signals(trace: Trace, *, config: FleetConfig) -> list:
    """Day signals of an unmonitored causal drive (for the MAE study)."""
    engine = OnlineNetMaster(
        trace.user_id,
        config=config.netmaster,
        start_weekday=trace.start_weekday,
        train_days=config.train_days,
        update_model=config.update_model,
        window_days=config.window_days,
        decay=config.decay,
    )
    power = config.netmaster.power
    acc = SummaryAccumulator()
    signals = []
    for record in stream_trace(trace):
        engine.observe(record)
        done = engine.drain()
        if done:
            signals.extend(day_signals(engine, done, acc.consume(done, power)))
    final = engine.finish(trace.n_days)
    if final:
        signals.extend(day_signals(engine, final, acc.consume(final, power)))
    return signals


def _mae_study(
    per_user_signals: list[tuple[int, list]],
) -> tuple[float, float, float, int]:
    """Causal one-day-ahead MAE of the three energy predictors.

    Each predictor scores a day *before* observing it; a day only
    counts once every predictor has enough history to answer, so the
    three MAEs cover the identical day set.
    """
    errors = {"model": 0.0, "trailing": 0.0, "daytype": 0.0}
    days = 0
    for start_weekday, signals in per_user_signals:
        model = OnlineEnergyModel()
        trailing = TrailingMeanPredictor()
        daytype = DayTypeMeanPredictor()
        for signal in signals:
            weekday = (start_weekday + signal.day) % 7
            features = OnlineEnergyModel.features_of(signal)
            p_model = model.predict(features)
            p_trail = trailing.predict()
            p_dtype = daytype.predict(weekday)
            if p_model is not None and p_trail is not None and p_dtype is not None:
                errors["model"] += abs(p_model - signal.energy_j)
                errors["trailing"] += abs(p_trail - signal.energy_j)
                errors["daytype"] += abs(p_dtype - signal.energy_j)
                days += 1
            model.observe(features, signal.energy_j)
            trailing.observe(signal.energy_j)
            daytype.observe(weekday, signal.energy_j)
    if not days:
        return 0.0, 0.0, 0.0, 0
    return (
        errors["model"] / days,
        errors["trailing"] / days,
        errors["daytype"] / days,
        days,
    )


def _summary_doc(summary) -> str:
    """Canonical byte-form of a stream summary for equality checks."""
    return json.dumps(summary.__dict__, sort_keys=True)


def monitor_experiment(
    *,
    seed: int = DEFAULT_SEED,
    n_users: int = DEFAULT_USERS,
    n_days: int = DEFAULT_DAYS,
    train_days: int = DEFAULT_TRAIN_DAYS,
    anomalous_every: int = 4,
    onset_day: int | None = None,
    monitor: MonitorConfig | None = None,
) -> MonitorResult:
    """Closed-loop fleet monitoring graded against seeded anomalies.

    Every ``anomalous_every``-th user carries an injected scenario
    (alternating runaway-app and stuck-DCH) from ``onset_day`` on; the
    default onset leaves four executed days of per-user history so the
    z-score detectors are armed when the anomaly lands.  Raises
    :class:`MonitorContractError` if any monitoring contract fails —
    the experiment doubles as the subsystem's end-to-end gate.
    """
    from repro.faults import AnomalyInjector

    if anomalous_every < 2:
        raise ValueError(f"anomalous_every must be >= 2, got {anomalous_every}")
    monitor_config = monitor or MonitorConfig()
    if onset_day is None:
        onset_day = train_days + monitor_config.runaway_min_days
    if not train_days < onset_day < n_days:
        raise ValueError(
            f"onset_day must be in ({train_days}, {n_days}), got {onset_day}"
        )
    config = FleetConfig(train_days=train_days, monitor=monitor_config)

    ring = RingAlertSink(capacity=4096)
    sinks: list = [ring]
    alerts_path = os.environ.get(ALERTS_OUT_ENV) or None
    if alerts_path:
        sinks.append(JsonlAlertSink(alerts_path))
    hub = MonitorHub(sinks)

    injector = AnomalyInjector(seed=seed)
    specs = list(iter_fleet_specs(seed=seed, n_users=n_users, n_days=n_days))
    injected: dict[str, str] = {}
    alerts_by_user: dict[str, list[Alert]] = {}
    degraded_mon = degraded_clean = 0
    false_alert_users = detected = kind_matched = quarantine_effective = 0
    clean_byte_equal = True
    clean_signal_sets: list[tuple[int, list]] = []

    start = time.perf_counter()
    trc = tracer()
    with trc.span("monitor-fleet", "monitor", users=n_users, days=n_days):
        for i, spec in enumerate(specs):
            trace = _spec_trace(spec)
            anomalous = i % anomalous_every == 0
            if anomalous:
                kind = "runaway" if (i // anomalous_every) % 2 == 0 else "dch"
                injected[spec.user_id] = kind
                streamed = (
                    injector.runaway_app(trace, start_day=onset_day)
                    if kind == "runaway"
                    else injector.stuck_dch(trace, start_day=onset_day)
                )
            else:
                streamed = trace
            summary, alerts = stream_one_user_monitored(streamed, config=config)
            hub.publish_many(alerts)
            alerts_by_user[spec.user_id] = alerts
            # The unmonitored reference streams the *same* trace the
            # monitored drive saw — anomaly included — so the degraded-day
            # delta isolates the quarantine feedback, nothing else.
            reference = stream_one_user(streamed, config=config)
            degraded_mon += summary.degraded_days
            degraded_clean += reference.degraded_days

            if anomalous:
                if alerts:
                    detected += 1
                kinds = {a.kind for a in alerts}
                if EXPECTED_DETECTOR[injected[spec.user_id]] in kinds:
                    kind_matched += 1
                if summary.degraded_days > reference.degraded_days:
                    quarantine_effective += 1
            else:
                if alerts:
                    false_alert_users += 1
                if _summary_doc(summary) != _summary_doc(reference):
                    clean_byte_equal = False
                clean_signal_sets.append(
                    (trace.start_weekday, _clean_signals(trace, config=config))
                )
    hub.close()

    # --- contract assertions: this experiment is the e2e gate -------
    if false_alert_users or not clean_byte_equal:
        raise MonitorContractError(
            f"quiet-monitor contract violated: {false_alert_users} clean "
            f"users alerted, byte_equal={clean_byte_equal}"
        )
    missed = {
        uid: kind
        for uid, kind in injected.items()
        if EXPECTED_DETECTOR[kind] not in {a.kind for a in alerts_by_user[uid]}
    }
    if missed:
        raise MonitorContractError(
            f"matching-detector contract violated: {missed} fired "
            f"{ {u: sorted({a.kind for a in alerts_by_user[u]}) for u in missed} }"
        )
    unquarantined = quarantine_effective < len(injected)
    if monitor_config.action == "quarantine" and unquarantined:
        raise MonitorContractError(
            f"feedback contract violated: only {quarantine_effective} of "
            f"{len(injected)} anomalous users show extra degraded days"
        )

    model_mae, trailing_mae, daytype_mae, model_days = _mae_study(
        clean_signal_sets
    )
    by_kind: dict[str, int] = {}
    for alerts in alerts_by_user.values():
        for alert in alerts:
            by_kind[alert.kind] = by_kind.get(alert.kind, 0) + 1
    n_anomalous = len(injected)
    alerting_users = sum(1 for a in alerts_by_user.values() if a)
    return MonitorResult(
        n_users=n_users,
        n_days=n_days,
        train_days=train_days,
        onset_day=onset_day,
        clean_users=n_users - n_anomalous,
        anomalous_users=n_anomalous,
        injected=dict(injected),
        alerts_total=ring.count,
        alerts_by_kind=by_kind,
        false_alert_users=false_alert_users,
        detected_users=detected,
        kind_matched_users=kind_matched,
        precision=detected / alerting_users if alerting_users else 0.0,
        recall=detected / n_anomalous if n_anomalous else 0.0,
        kind_recall=kind_matched / n_anomalous if n_anomalous else 0.0,
        quarantine_effective_users=quarantine_effective,
        degraded_days_monitored=degraded_mon,
        degraded_days_clean=degraded_clean,
        clean_byte_equal=clean_byte_equal,
        model_mae_j=model_mae,
        trailing_mae_j=trailing_mae,
        daytype_mae_j=daytype_mae,
        model_days=model_days,
        elapsed_s=time.perf_counter() - start,
        sink_errors=hub.sink_errors,
        alerts_path=alerts_path,
    )
