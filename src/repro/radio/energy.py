"""Energy accounting over traces and activity schedules.

Bridges the event world (:class:`~repro.traces.events.NetworkActivity`)
and the RRC world (transfer windows): compute the network energy of an
entire trace, of an arbitrary re-scheduled activity list, and the per-
activity ΔE quantities the scheduler's profit model needs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.radio.power import RadioPowerModel
from repro.radio.rrc import EnergyReport, TailPolicy, radio_on_intervals, simulate
from repro.traces.events import NetworkActivity, Trace


def activity_windows(activities: Sequence[NetworkActivity]) -> list[tuple[float, float]]:
    """Transfer windows ``(start, end)`` of an activity list."""
    return [a.interval for a in activities]


def activities_energy(
    activities: Sequence[NetworkActivity],
    model: RadioPowerModel,
    tail_policy: TailPolicy | None = None,
) -> EnergyReport:
    """RRC energy of executing ``activities`` at their recorded times."""
    return simulate(activity_windows(activities), model, tail_policy)


def trace_energy(
    trace: Trace,
    model: RadioPowerModel,
    tail_policy: TailPolicy | None = None,
) -> EnergyReport:
    """RRC energy of a whole trace executed as recorded."""
    return activities_energy(trace.activities, model, tail_policy)


def activities_radio_intervals(
    activities: Sequence[NetworkActivity],
    model: RadioPowerModel,
    tail_policy: TailPolicy | None = None,
) -> list[tuple[float, float]]:
    """Radio-on intervals induced by an activity schedule."""
    return radio_on_intervals(activity_windows(activities), model, tail_policy)


def isolated_activity_energy(activity: NetworkActivity, model: RadioPowerModel) -> float:
    """``g(t_j)``: energy of this activity run alone on an idle radio."""
    return model.isolated_transfer_energy_j(activity.duration)


def delta_e(activity: NetworkActivity, model: RadioPowerModel) -> float:
    """ΔE_j: energy saved by merging this activity into an active slot.

    The transfer's own DCH energy must be paid either way; the promotion
    and the inactivity tail are eliminated.
    """
    return model.saved_energy_j(activity.duration)


@dataclass(frozen=True, slots=True)
class EnergyComparison:
    """Side-by-side energy accounting of two schedules of the same work."""

    before: EnergyReport
    after: EnergyReport

    @property
    def saving_fraction(self) -> float:
        """Relative energy saving of ``after`` vs ``before``."""
        if self.before.energy_j == 0:
            return 0.0
        return 1.0 - self.after.energy_j / self.before.energy_j

    @property
    def radio_time_saving_fraction(self) -> float:
        """Relative radio-on-time saving of ``after`` vs ``before``."""
        if self.before.radio_on_s == 0:
            return 0.0
        return 1.0 - self.after.radio_on_s / self.before.radio_on_s


def compare_schedules(
    before: Sequence[NetworkActivity],
    after: Sequence[NetworkActivity],
    model: RadioPowerModel,
    *,
    before_policy: TailPolicy | None = None,
    after_policy: TailPolicy | None = None,
) -> EnergyComparison:
    """Energy comparison of two schedules (e.g. stock vs NetMaster).

    Raises :class:`ValueError` if the two schedules do not carry the same
    total payload — a rescheduler must conserve the work it moves.
    """
    payload_before = sum(a.total_bytes for a in before)
    payload_after = sum(a.total_bytes for a in after)
    if abs(payload_before - payload_after) > 1e-6 * max(payload_before, 1.0):
        raise ValueError(
            f"schedules move different payloads: {payload_before} vs {payload_after} bytes"
        )
    return EnergyComparison(
        before=activities_energy(before, model, before_policy),
        after=activities_energy(after, model, after_policy),
    )
