"""Time-varying channel model (the paper's future-work item).

Section VI-A notes NetMaster "doesn't increase the peak rate... the peak
rate is determined by the channel state, no matter what scheduling scheme
is used. We include this part in our future work."  The obvious follow-up
— scheduling deferrable transfers into *good-channel* windows, à la
Bartendr (Schulman et al., MobiCom'10) — needs a channel substrate, which
this module provides:

* a smooth, seeded signal-quality process over the day (sum of slow
  sinusoids plus a daily commute dip, mimicking mobility-driven RSSI
  swings);
* per-instant effective bandwidth and per-byte energy multipliers (bad
  signal costs more transmit power per byte, per Ding et al.,
  SIGMETRICS'13);
* :func:`best_window` — the greedy good-channel window picker a
  channel-aware scheduler uses.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro._util import DAY, as_rng, check_positive


@dataclass
class ChannelModel:
    """A deterministic (seeded) signal-quality process over one day.

    Quality is a value in [0, 1]; 1 means the nominal link bandwidth and
    nominal per-byte energy, lower quality scales bandwidth down and
    transmit energy up.
    """

    seed: int | np.random.Generator | None = 0
    n_components: int = 4
    min_quality: float = 0.25
    resolution_s: float = 60.0

    def __post_init__(self) -> None:
        check_positive("resolution_s", self.resolution_s)
        if not 0.0 < self.min_quality <= 1.0:
            raise ValueError(f"min_quality must be in (0, 1], got {self.min_quality}")
        rng = as_rng(self.seed)
        n = int(DAY / self.resolution_s)
        t = np.linspace(0.0, 2 * np.pi, n, endpoint=False)
        signal = np.zeros(n)
        for k in range(1, self.n_components + 1):
            amplitude = float(rng.uniform(0.2, 1.0)) / k
            phase = float(rng.uniform(0.0, 2 * np.pi))
            signal += amplitude * np.sin(k * t + phase)
        # Normalize into [min_quality, 1].
        signal = (signal - signal.min()) / max(float(np.ptp(signal)), 1e-12)
        self._grid = self.min_quality + (1.0 - self.min_quality) * signal

    @property
    def grid(self) -> np.ndarray:
        """The quality samples (one per ``resolution_s``)."""
        return self._grid

    def quality_at(self, time_s: float) -> float:
        """Signal quality in [min_quality, 1] at a second-of-day."""
        idx = int((time_s % DAY) / self.resolution_s) % self._grid.size
        return float(self._grid[idx])

    def bandwidth_factor(self, time_s: float) -> float:
        """Multiplier on link bandwidth at ``time_s``."""
        return self.quality_at(time_s)

    def energy_factor(self, time_s: float) -> float:
        """Multiplier on transmit energy per byte at ``time_s``.

        Bad signal roughly doubles the per-byte cost at the floor quality
        (linear interpolation, following the measured RSSI-vs-drain trend
        of Ding et al.).
        """
        quality = self.quality_at(time_s)
        return 2.0 - quality

    def mean_quality(self, start: float, end: float) -> float:
        """Average quality over ``[start, end)`` (seconds-of-day)."""
        if end <= start:
            raise ValueError(f"need start < end, got [{start}, {end}]")
        lo = int(start / self.resolution_s)
        hi = max(lo + 1, int(np.ceil(end / self.resolution_s)))
        idx = np.arange(lo, hi) % self._grid.size
        return float(self._grid[idx].mean())


def best_window(
    channel: ChannelModel,
    window_s: float,
    *,
    within: tuple[float, float] = (0.0, DAY),
) -> tuple[float, float]:
    """The ``window_s``-long window of best average quality in ``within``.

    Greedy sliding-window maximum over the channel grid — what a
    channel-aware scheduler uses to place a deferred batch inside a
    user-active slot.
    """
    check_positive("window_s", window_s)
    start, end = within
    if end - start < window_s:
        raise ValueError(
            f"window_s={window_s} longer than the search range {within}"
        )
    step = channel.resolution_s
    best_start = start
    best_quality = -1.0
    t = start
    while t + window_s <= end + 1e-9:
        quality = channel.mean_quality(t, t + window_s)
        if quality > best_quality:
            best_quality = quality
            best_start = t
        t += step
    return best_start, best_start + window_s


def transfer_energy_multiplier(
    channel: ChannelModel, start: float, duration_s: float
) -> float:
    """Mean per-byte energy multiplier over a transfer window."""
    return 2.0 - channel.mean_quality(start, start + duration_s)
