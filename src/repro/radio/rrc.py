"""RRC state-machine simulation over transfer schedules.

Given a set of transfer windows (absolute ``(start, end)`` intervals) and a
:class:`~repro.radio.power.RadioPowerModel`, :func:`simulate` walks the
radio through DCH transfers, inactivity tails, demotions and promotions,
and returns an :class:`EnergyReport` with the total network energy and
radio-on time.

Two simplifications (both standard in trace-driven RRC studies, and shared
by the paper's model-based accounting):

* promotion energy/latency is charged at the start of a transfer without
  shifting the transfer window itself;
* IDLE baseline power is excluded from ``energy_j`` — the paper reports
  "energy consumption of network activities", not whole-device drain.

Tail handling is pluggable via :class:`TailPolicy`: the default
:class:`FullTail` follows the carrier's inactivity timers (what a stock
Android radio does), while :class:`TruncatedTail` models software that
force-disables the radio some seconds after the last byte — exactly
NetMaster's "turn off radio whenever necessary" behaviour (`svc data
disable`, Section V-C).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Protocol, Sequence

import numpy as np

from repro._util import check_positive
from repro.radio.intervals import (
    ReplayDecomposition,
    decompose_replay,
    extend_by_tails,
    merge_windows,
    merge_windows_with_allowances,
    sequential_sum,
)
from repro.radio.power import RadioPowerModel
from repro.telemetry import metrics, tracer


class TailPolicy(Protocol):
    """Decides how much inactivity tail the radio keeps after a transfer."""

    def max_tail_s(self) -> float:
        """Upper bound on post-transfer tail time before a forced IDLE."""
        ...


@dataclass(frozen=True, slots=True)
class FullTail:
    """Stock behaviour: carrier inactivity timers run to completion."""

    def max_tail_s(self) -> float:
        """No software cutoff — tails are bounded only by the timers."""
        return math.inf


@dataclass(frozen=True, slots=True)
class TruncatedTail:
    """Force the radio to IDLE ``guard_s`` seconds after the last byte.

    ``guard_s = 0`` is the aggressive ideal; a small positive guard models
    the detection delay of polling ``TELEPHONY_SERVICE`` for ongoing
    transfers before dropping the connection.
    """

    guard_s: float = 1.0

    def __post_init__(self) -> None:
        check_positive("guard_s", self.guard_s, strict=False)

    def max_tail_s(self) -> float:
        """Tail time is capped at the guard interval."""
        return self.guard_s


@dataclass(frozen=True, slots=True)
class EnergyReport:
    """Outcome of one RRC simulation.

    ``energy_j`` excludes IDLE baseline; ``radio_on_s`` counts every
    non-IDLE second (transfers, promotions, tails).
    """

    energy_j: float
    radio_on_s: float
    transfer_s: float
    tail_s: float
    promo_idle_count: int
    promo_fach_count: int
    window_count: int
    state_energy_j: dict[str, float] = field(default_factory=dict)

    @property
    def tail_energy_j(self) -> float:
        """Energy spent in inactivity tails."""
        return self.state_energy_j.get("tail", 0.0)

    @property
    def promo_energy_j(self) -> float:
        """Energy spent in promotions."""
        return self.state_energy_j.get("promo", 0.0)

    @property
    def transfer_energy_j(self) -> float:
        """Energy spent actually moving bytes (DCH)."""
        return self.state_energy_j.get("transfer", 0.0)


def simulate(
    windows: Sequence[tuple[float, float]],
    model: RadioPowerModel,
    tail_policy: TailPolicy | None = None,
    *,
    window_tails: Sequence[float] | None = None,
) -> EnergyReport:
    """Run the RRC machine over (possibly overlapping) transfer windows.

    Windows are merged first; energy then decomposes into per-window DCH
    transfer energy, inter-window gap handling (stay-DCH, partial tail with
    FACH→DCH re-promotion, or full demotion with IDLE→DCH re-promotion),
    and the final tail.

    ``window_tails`` optionally assigns each *input* window its own tail
    allowance (seconds) — the fast-dormancy hook: a batching scheme can
    release its aggregated screen-off transfers with a near-zero tail
    while foreground traffic keeps the carrier timers.  When windows merge,
    the merged window inherits the allowance of the member that ends last
    (the tail follows the final transfer).  Mutually exclusive with a
    non-default ``tail_policy``.
    """
    if tail_policy is None:
        tail_policy = FullTail()
    if window_tails is not None:
        if len(window_tails) != len(windows):
            raise ValueError(
                f"window_tails must match windows: {len(window_tails)} vs {len(windows)}"
            )
        if not isinstance(tail_policy, FullTail):
            raise ValueError("window_tails cannot be combined with a custom tail_policy")
        return _simulate_per_window(windows, model, window_tails)
    merged = merge_windows(windows)
    allowances = [tail_policy.max_tail_s()] * len(merged)
    return _run_machine(merged, model, allowances)


def _merge_with_allowances(
    windows: Sequence[tuple[float, float]], window_tails: Sequence[float]
) -> tuple[list[tuple[float, float]], list[float]]:
    """Merge overlapping windows, carrying each merged window's tail
    allowance: the allowance of the member that ends last (ties take the
    larger allowance — the most permissive holder keeps the radio up)."""
    return merge_windows_with_allowances(windows, window_tails)


def _simulate_per_window(
    windows: Sequence[tuple[float, float]],
    model: RadioPowerModel,
    window_tails: Sequence[float],
) -> EnergyReport:
    """Fast-dormancy path: each window carries its own tail allowance."""
    merged, allowances = _merge_with_allowances(windows, window_tails)
    return _run_machine(merged, model, allowances)


def _run_machine(
    merged: list[tuple[float, float]],
    model: RadioPowerModel,
    allowances: list[float],
) -> EnergyReport:
    """Core RRC walk over disjoint sorted windows with per-window tails."""
    reg = metrics()
    if reg.enabled:
        reg.inc("radio.rrc.simulations")
        reg.inc("radio.rrc.windows", len(merged))
    if not merged:
        return EnergyReport(
            energy_j=0.0,
            radio_on_s=0.0,
            transfer_s=0.0,
            tail_s=0.0,
            promo_idle_count=0,
            promo_fach_count=0,
            window_count=0,
            state_energy_j={"transfer": 0.0, "tail": 0.0, "promo": 0.0},
        )

    decomp = decompose_replay(
        merged, allowances, tail_s=model.tail_s, dch_tail_s=model.dch_tail_s
    )

    # Sequential left-to-right sums over the elementwise arrays: each
    # accumulator reproduces the serial loop's float accumulation order
    # exactly (see repro.radio.intervals for the bit-identity contract).
    transfer_s = sequential_sum(decomp.durations)
    transfer_e = sequential_sum(decomp.durations * model.p_dch_w)
    tail_s = sequential_sum(decomp.budgets)
    tail_e = sequential_sum(
        decomp.dch_parts * model.p_dch_w + decomp.fach_parts * model.p_fach_w
    )

    # First window always promotes from IDLE; re-promotions follow the
    # per-gap classification.  The per-window energy/latency arrays keep
    # the serial ordering of mixed FACH/IDLE promotion constants.
    promo_idle = 1 + int(np.count_nonzero(decomp.promo_idle))
    promo_fach = int(np.count_nonzero(decomp.promo_fach))
    promo_e = sequential_sum(
        np.where(
            decomp.promo_fach,
            model.promo_fach_energy_j,
            np.where(decomp.promo_idle, model.promo_idle_energy_j, 0.0),
        ),
        initial=model.promo_idle_energy_j,
    )
    promo_s_total = sequential_sum(
        np.where(
            decomp.promo_fach,
            model.promo_fach_dch_s,
            np.where(decomp.promo_idle, model.promo_idle_dch_s, 0.0),
        ),
        initial=model.promo_idle_dch_s,
    )

    if reg.enabled:
        reg.inc("radio.rrc.promotions_idle", promo_idle)
        reg.inc("radio.rrc.promotions_fach", promo_fach)
    trc = tracer()
    if trc.enabled:
        _record_rrc_spans(trc, decomp)

    radio_on = transfer_s + tail_s + promo_s_total
    return EnergyReport(
        energy_j=transfer_e + tail_e + promo_e,
        radio_on_s=radio_on,
        transfer_s=transfer_s,
        tail_s=tail_s,
        promo_idle_count=promo_idle,
        promo_fach_count=promo_fach,
        window_count=len(merged),
        state_energy_j={"transfer": transfer_e, "tail": tail_e, "promo": promo_e},
    )


def _record_rrc_spans(trc, decomp: ReplayDecomposition) -> None:
    """One span per DCH residency plus its (possibly truncated) tail,
    on the simulated-seconds timeline."""
    rows = zip(
        decomp.starts.tolist(),
        decomp.ends.tolist(),
        decomp.budgets.tolist(),
        decomp.dch_parts.tolist(),
    )
    for start, end, budget, dch_part in rows:
        trc.record_span("dch", "rrc", start, end)
        if dch_part > 0:
            trc.record_span("tail-dch", "rrc", end, end + dch_part)
        if budget > dch_part:
            trc.record_span("tail-fach", "rrc", end + dch_part, end + budget)


def radio_on_intervals(
    windows: Sequence[tuple[float, float]],
    model: RadioPowerModel,
    tail_policy: TailPolicy | None = None,
    *,
    window_tails: Sequence[float] | None = None,
) -> list[tuple[float, float]]:
    """The absolute intervals during which the radio is non-IDLE.

    Each merged transfer window is extended by its (possibly truncated)
    tail; windows whose gaps stay within the tail budget fuse into one
    radio-on interval.  Promotion latency is not laid on the timeline, in
    keeping with :func:`simulate`.  ``window_tails`` follows the same
    fast-dormancy semantics as in :func:`simulate`.
    """
    if tail_policy is None:
        tail_policy = FullTail()
    if window_tails is not None:
        if len(window_tails) != len(windows):
            raise ValueError(
                f"window_tails must match windows: {len(window_tails)} vs {len(windows)}"
            )
        if not isinstance(tail_policy, FullTail):
            raise ValueError("window_tails cannot be combined with a custom tail_policy")
        merged, allowances = _merge_with_allowances(windows, window_tails)
    else:
        merged = merge_windows(windows)
        allowances = [tail_policy.max_tail_s()] * len(merged)
    decomp = decompose_replay(
        merged, allowances, tail_s=model.tail_s, dch_tail_s=model.dch_tail_s
    )
    return extend_by_tails(decomp)
