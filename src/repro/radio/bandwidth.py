"""Carrier link model: bandwidth, slot capacity, utilization.

The paper's Eq. (5) defines a user-active slot's capacity as
``C(t_i) = Bandwidth · t_i``.  Because an hour-level slot at carrier
bandwidth could hold far more than any realistic background payload, the
*usable* seconds of a slot are the seconds the radio is expected to be on
for foreground traffic anyway (scheduled transfers piggyback on those
windows); :meth:`LinkModel.slot_capacity_bytes` therefore takes the
expected active seconds, not the wall-clock slot length.  Passing the full
slot length reproduces the literal Eq. (5).

Utilization metrics (average/peak down- and uplink rate over radio-on
time) back the Fig. 7(c) bandwidth-improvement evaluation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro._util import check_positive, total_length
from repro.traces.events import NetworkActivity

#: Default effective carrier bandwidth, bytes/second (WCDMA-era HSPA
#: effective goodput; far above the ≤5 kBps application rates of Fig. 1(b)).
DEFAULT_BANDWIDTH_BPS = 24_000.0


@dataclass(frozen=True, slots=True)
class LinkModel:
    """A cellular uplink/downlink with a fixed effective bandwidth."""

    bandwidth_bps: float = DEFAULT_BANDWIDTH_BPS

    def __post_init__(self) -> None:
        check_positive("bandwidth_bps", self.bandwidth_bps)

    def slot_capacity_bytes(self, active_seconds: float) -> float:
        """Eq. (5): payload capacity of ``active_seconds`` of link time."""
        check_positive("active_seconds", active_seconds, strict=False)
        return self.bandwidth_bps * active_seconds

    def transfer_time_s(self, payload_bytes: float) -> float:
        """Link time needed to move ``payload_bytes`` at full bandwidth."""
        check_positive("payload_bytes", payload_bytes, strict=False)
        return payload_bytes / self.bandwidth_bps


@dataclass(frozen=True, slots=True)
class UtilizationStats:
    """Bandwidth-utilization digest of one schedule (Fig. 7(c) axes)."""

    avg_down_bps: float
    avg_up_bps: float
    peak_down_bps: float
    peak_up_bps: float

    def ratio_to(self, other: "UtilizationStats") -> dict[str, float]:
        """Improvement ratios of ``self`` relative to ``other``."""

        def ratio(a: float, b: float) -> float:
            return a / b if b > 0 else 0.0

        return {
            "down_avg": ratio(self.avg_down_bps, other.avg_down_bps),
            "up_avg": ratio(self.avg_up_bps, other.avg_up_bps),
            "down_peak": ratio(self.peak_down_bps, other.peak_down_bps),
            "up_peak": ratio(self.peak_up_bps, other.peak_up_bps),
        }


def utilization(
    activities: Sequence[NetworkActivity],
    radio_on: Sequence[tuple[float, float]],
) -> UtilizationStats:
    """Bandwidth utilization of a schedule over its radio-on intervals.

    Average rates divide the total payload by total radio-on time (so
    eliminating wasted radio-on time *raises* utilization even at constant
    payload — the effect NetMaster exploits).  Peak rates are the maximum
    per-activity instantaneous rates, which no scheduler can raise because
    they are set by the channel (paper, Section VI-A).
    """
    return utilization_over_time(activities, total_length(radio_on))


def activity_digest(
    activities: Sequence[NetworkActivity],
) -> tuple[float, float, float, float, float]:
    """``(down, up, peak_down, peak_up, payload)`` in one pass.

    Each component is bit-equal to its standalone reduction: the sums
    add left-to-right from zero exactly as ``sum()`` over per-field
    generators would, the peaks keep the running maximum exactly as
    ``max()`` would, and ``payload`` adds per-activity
    ``total_bytes`` (= ``down + up``) in the same order as
    ``sum(a.total_bytes for a in activities)``.  Interleaving them in
    one loop changes no intermediate value — this sits under every
    priced cell, and the columnar batch pricer caches it per list.
    """
    down = up = payload = 0.0
    peak_down = peak_up = 0.0
    first = True
    for a in activities:
        d = a.down_bytes
        u = a.up_bytes
        down += d
        up += u
        payload += d + u
        d_rate = d / a.duration
        u_rate = u / a.duration
        if first:
            peak_down = d_rate
            peak_up = u_rate
            first = False
        else:
            if d_rate > peak_down:
                peak_down = d_rate
            if u_rate > peak_up:
                peak_up = u_rate
    return (down, up, peak_down, peak_up, payload)


def utilization_from_digest(
    digest: tuple[float, float, float, float, float], on_time: float
) -> UtilizationStats:
    """Finish :func:`utilization` from a precomputed activity digest."""
    down, up, peak_down, peak_up, _ = digest
    return UtilizationStats(
        avg_down_bps=down / on_time if on_time > 0 else 0.0,
        avg_up_bps=up / on_time if on_time > 0 else 0.0,
        peak_down_bps=peak_down,
        peak_up_bps=peak_up,
    )


def utilization_over_time(
    activities: Sequence[NetworkActivity], on_time: float
) -> UtilizationStats:
    """:func:`utilization` with the radio-on time already totalled.

    The columnar batch pricer computes merged radio-on lengths inside
    the lane kernel, so it enters here with the scalar directly; the
    stats are bit-identical to the interval-list entry point.
    """
    return utilization_from_digest(activity_digest(activities), on_time)
