"""Carrier link model: bandwidth, slot capacity, utilization.

The paper's Eq. (5) defines a user-active slot's capacity as
``C(t_i) = Bandwidth · t_i``.  Because an hour-level slot at carrier
bandwidth could hold far more than any realistic background payload, the
*usable* seconds of a slot are the seconds the radio is expected to be on
for foreground traffic anyway (scheduled transfers piggyback on those
windows); :meth:`LinkModel.slot_capacity_bytes` therefore takes the
expected active seconds, not the wall-clock slot length.  Passing the full
slot length reproduces the literal Eq. (5).

Utilization metrics (average/peak down- and uplink rate over radio-on
time) back the Fig. 7(c) bandwidth-improvement evaluation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro._util import check_positive, total_length
from repro.traces.events import NetworkActivity

#: Default effective carrier bandwidth, bytes/second (WCDMA-era HSPA
#: effective goodput; far above the ≤5 kBps application rates of Fig. 1(b)).
DEFAULT_BANDWIDTH_BPS = 24_000.0


@dataclass(frozen=True, slots=True)
class LinkModel:
    """A cellular uplink/downlink with a fixed effective bandwidth."""

    bandwidth_bps: float = DEFAULT_BANDWIDTH_BPS

    def __post_init__(self) -> None:
        check_positive("bandwidth_bps", self.bandwidth_bps)

    def slot_capacity_bytes(self, active_seconds: float) -> float:
        """Eq. (5): payload capacity of ``active_seconds`` of link time."""
        check_positive("active_seconds", active_seconds, strict=False)
        return self.bandwidth_bps * active_seconds

    def transfer_time_s(self, payload_bytes: float) -> float:
        """Link time needed to move ``payload_bytes`` at full bandwidth."""
        check_positive("payload_bytes", payload_bytes, strict=False)
        return payload_bytes / self.bandwidth_bps


@dataclass(frozen=True, slots=True)
class UtilizationStats:
    """Bandwidth-utilization digest of one schedule (Fig. 7(c) axes)."""

    avg_down_bps: float
    avg_up_bps: float
    peak_down_bps: float
    peak_up_bps: float

    def ratio_to(self, other: "UtilizationStats") -> dict[str, float]:
        """Improvement ratios of ``self`` relative to ``other``."""

        def ratio(a: float, b: float) -> float:
            return a / b if b > 0 else 0.0

        return {
            "down_avg": ratio(self.avg_down_bps, other.avg_down_bps),
            "up_avg": ratio(self.avg_up_bps, other.avg_up_bps),
            "down_peak": ratio(self.peak_down_bps, other.peak_down_bps),
            "up_peak": ratio(self.peak_up_bps, other.peak_up_bps),
        }


def utilization(
    activities: Sequence[NetworkActivity],
    radio_on: Sequence[tuple[float, float]],
) -> UtilizationStats:
    """Bandwidth utilization of a schedule over its radio-on intervals.

    Average rates divide the total payload by total radio-on time (so
    eliminating wasted radio-on time *raises* utilization even at constant
    payload — the effect NetMaster exploits).  Peak rates are the maximum
    per-activity instantaneous rates, which no scheduler can raise because
    they are set by the channel (paper, Section VI-A).
    """
    on_time = total_length(radio_on)
    down = sum(a.down_bytes for a in activities)
    up = sum(a.up_bytes for a in activities)
    if activities:
        peak_down = float(np.max([a.down_bytes / a.duration for a in activities]))
        peak_up = float(np.max([a.up_bytes / a.duration for a in activities]))
    else:
        peak_down = peak_up = 0.0
    return UtilizationStats(
        avg_down_bps=down / on_time if on_time > 0 else 0.0,
        avg_up_bps=up / on_time if on_time > 0 else 0.0,
        peak_down_bps=peak_down,
        peak_up_bps=peak_up,
    )
