"""Radio substrate: RRC state machine, power models, energy accounting."""

from repro.radio.bandwidth import (
    DEFAULT_BANDWIDTH_BPS,
    LinkModel,
    UtilizationStats,
    utilization,
)
from repro.radio.channel import (
    ChannelModel,
    best_window,
    transfer_energy_multiplier,
)
from repro.radio.energy import (
    EnergyComparison,
    activities_energy,
    activities_radio_intervals,
    activity_windows,
    compare_schedules,
    delta_e,
    isolated_activity_energy,
    trace_energy,
)
from repro.radio.power import RadioPowerModel, RRCState, lte_model, model_by_name, wcdma_model
from repro.radio.rrc import (
    EnergyReport,
    FullTail,
    TailPolicy,
    TruncatedTail,
    radio_on_intervals,
    simulate,
)

__all__ = [
    "DEFAULT_BANDWIDTH_BPS",
    "ChannelModel",
    "EnergyComparison",
    "EnergyReport",
    "FullTail",
    "LinkModel",
    "RRCState",
    "RadioPowerModel",
    "TailPolicy",
    "TruncatedTail",
    "UtilizationStats",
    "activities_energy",
    "best_window",
    "activities_radio_intervals",
    "activity_windows",
    "compare_schedules",
    "delta_e",
    "isolated_activity_energy",
    "lte_model",
    "model_by_name",
    "radio_on_intervals",
    "simulate",
    "trace_energy",
    "transfer_energy_multiplier",
    "utilization",
    "wcdma_model",
]
