"""Columnar multi-lane replay: many RRC problems per numpy pass.

:mod:`repro.radio.intervals` vectorized *one* replay; cohort-scale sweeps
still paid one Python round-trip through that engine per (user, day,
policy) cell.  This module packs many independent replay problems —
"lanes" — into a single structure-of-arrays representation (concatenated
window ``starts``/``ends`` plus per-lane ``offsets``) and runs the whole
pipeline (merge, allowance merge, decomposition, tail extension, energy
reduction) across all lanes in a handful of array passes:

* lane-major sorting via ``np.lexsort`` with the lane id as the primary
  key reproduces each lane's private sort;
* the running-maximum merge becomes a *segmented* cumulative maximum
  (Hillis–Steele doubling scan) that resets at lane boundaries;
* per-lane left-to-right energy sums use a padded-row cumulative sum
  (one zero-padded row per lane, seeded with the lane's initial term)
  instead of ``np.add.reduceat``, whose pairwise accumulation would
  break the bit-identity contract.

**Bit-identity contract.**  Every lane's result is bit-for-bit equal to
running the per-lane :mod:`repro.radio.intervals` /
:func:`repro.radio.rrc.simulate` path on that lane alone.  Elementwise
arithmetic is exact under batching; sorts stay per-lane-stable because
``np.lexsort`` is stable and the lane id dominates; the segmented scan
only ever *selects* one of its float inputs (max is associative); and
the padded cumulative sums append only trailing ``+0.0`` terms, which
cannot change an accumulator that is never ``-0.0`` (all summed series
here start from a ``>= +0.0`` initial and add ``>= +0.0`` terms).

Memory note: the padded sum materializes ``n_lanes × (max_lane_len + 1)``
rows, so one pathologically long lane among many short ones inflates the
pad.  Grid cells (one day of one user) are naturally same-order-of-
magnitude, which keeps the pad dense.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from itertools import chain
from typing import Sequence

import numpy as np

from repro._util import check_interval
from repro.radio.intervals import ReplayDecomposition, pair_durations
from repro.radio.power import RadioPowerModel
from repro.radio.rrc import (
    EnergyReport,
    FullTail,
    TailPolicy,
    _record_rrc_spans,
)
from repro.telemetry import metrics, tracer

__all__ = [
    "LaneDecomposition",
    "LaneWindows",
    "decompose_lanes",
    "extend_lanes_by_tails",
    "lane_ids",
    "lane_sequential_sums",
    "merge_lanes",
    "merge_lanes_with_allowances",
    "pack_lanes",
    "replay_many",
    "segmented_cummax",
    "simulate_many",
]

_EMPTY_F = np.empty(0)
_EMPTY_B = np.empty(0, dtype=bool)


@dataclass(frozen=True, slots=True)
class LaneWindows:
    """Ragged windows of many lanes in structure-of-arrays form.

    ``starts``/``ends`` concatenate every lane's windows lane-major;
    ``offsets`` has ``n_lanes + 1`` entries with lane ``i`` occupying
    ``starts[offsets[i]:offsets[i + 1]]``.
    """

    starts: np.ndarray
    ends: np.ndarray
    offsets: np.ndarray

    @property
    def n_lanes(self) -> int:
        """Number of lanes (including empty ones)."""
        return int(self.offsets.size - 1)

    @property
    def n_windows(self) -> int:
        """Total windows across all lanes."""
        return int(self.starts.size)

    def counts(self) -> np.ndarray:
        """Per-lane window counts."""
        return np.diff(self.offsets)

    def lane(self, i: int) -> list[tuple[float, float]]:
        """Lane ``i``'s windows as the per-lane list-of-tuples form."""
        lo, hi = int(self.offsets[i]), int(self.offsets[i + 1])
        return list(zip(self.starts[lo:hi].tolist(), self.ends[lo:hi].tolist()))


def pack_lanes(
    window_lists: Sequence[Sequence[tuple[float, float]]],
) -> LaneWindows:
    """Pack per-lane window lists into one :class:`LaneWindows`."""
    n_lanes = len(window_lists)
    counts = np.fromiter(
        (len(w) for w in window_lists), dtype=np.intp, count=n_lanes
    )
    offsets = np.zeros(n_lanes + 1, dtype=np.intp)
    np.cumsum(counts, out=offsets[1:])
    total = int(offsets[-1])
    if total == 0:
        return LaneWindows(starts=_EMPTY_F, ends=_EMPTY_F, offsets=offsets)
    # One flat conversion with a preallocated target: cheaper than a
    # per-lane asarray/concatenate when the grid has hundreds of small
    # lanes, and cheaper than asarray on a list of tuples.
    flat: list[tuple[float, float]] = []
    for w in window_lists:
        flat.extend(w)
    stacked = np.fromiter(
        chain.from_iterable(flat), dtype=np.float64, count=2 * total
    ).reshape(-1, 2)
    return LaneWindows(
        starts=np.ascontiguousarray(stacked[:, 0]),
        ends=np.ascontiguousarray(stacked[:, 1]),
        offsets=offsets,
    )


def lane_ids(offsets: np.ndarray) -> np.ndarray:
    """Member → lane map: ``lane_ids(offsets)[j]`` is window ``j``'s lane."""
    return np.repeat(np.arange(offsets.size - 1, dtype=np.intp), np.diff(offsets))


def segmented_cummax(values: np.ndarray, head: np.ndarray) -> np.ndarray:
    """Per-segment running maximum, resetting where ``head`` is True.

    Hillis–Steele doubling scan: at stride ``d`` each position takes the
    max of itself and the value ``d`` back, unless a segment head lies in
    between (tracked by OR-ing the head flags along).  Exact by
    construction — max only ever returns one of its float inputs.
    """
    out = values.astype(np.float64, copy=True)
    blocked = np.array(head, dtype=bool, copy=True)
    n = out.size
    d = 1
    while d < n:
        # np.where materializes a fresh array, so the in-place maximum
        # never aliases its shifted input.
        np.maximum(
            out[d:],
            np.where(blocked[d:], -np.inf, out[:-d]),
            out=out[d:],
        )
        blocked[d:] |= blocked[:-d].copy()
        d <<= 1
    return out


def _lane_heads(offsets: np.ndarray, n: int) -> np.ndarray:
    """Boolean head mask: True at the first window of each non-empty lane."""
    head = np.zeros(n, dtype=bool)
    head[offsets[:-1][np.diff(offsets) > 0]] = True
    return head


def _group_lanes(
    starts: np.ndarray,
    run_end: np.ndarray,
    head: np.ndarray,
    lids: np.ndarray,
    n_lanes: int,
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Fused-group bounds across all lanes at once.

    Mirrors ``intervals._group_bounds`` with one extra rule: a lane head
    always opens a group (the running maximum never carries across
    lanes).  Returns ``(first, last, group_ids, merged_offsets)``.
    """
    n = starts.size
    new_group = np.empty(n, dtype=bool)
    new_group[0] = True
    np.greater(starts[1:], run_end[:-1], out=new_group[1:])
    new_group |= head
    first = np.flatnonzero(new_group)
    group_ids = np.cumsum(new_group) - 1
    last = np.empty_like(first)
    last[:-1] = first[1:] - 1
    last[-1] = n - 1
    merged_offsets = np.searchsorted(
        lids[first], np.arange(n_lanes + 1), side="left"
    ).astype(np.intp)
    return first, last, group_ids, merged_offsets


def merge_lanes(lanes: LaneWindows) -> LaneWindows:
    """All-lane :func:`repro.radio.intervals.merge_windows` in one pass.

    Each lane of the result equals ``merge_windows(lanes.lane(i))``
    bit-for-bit: the lane-major ``lexsort`` reproduces every lane's
    private ``(start, end)`` sort, and the segmented running maximum
    reproduces its private ``np.maximum.accumulate``.
    """
    n = lanes.n_windows
    if n == 0:
        return LaneWindows(
            starts=_EMPTY_F, ends=_EMPTY_F, offsets=lanes.offsets.copy()
        )
    # Validate in concatenated input order — identical to looping lanes
    # and letting each lane's merge_windows raise on its first bad window.
    bad = np.flatnonzero(lanes.starts > lanes.ends)
    if bad.size:
        i = int(bad[0])
        check_interval(float(lanes.starts[i]), float(lanes.ends[i]))
    lids = lane_ids(lanes.offsets)
    order = np.lexsort((lanes.ends, lanes.starts, lids))
    starts = lanes.starts[order]
    ends = lanes.ends[order]
    lids = lids[order]
    head = np.empty(n, dtype=bool)
    head[0] = True
    np.not_equal(lids[1:], lids[:-1], out=head[1:])
    run_end = segmented_cummax(ends, head)
    first, last, _, merged_offsets = _group_lanes(
        starts, run_end, head, lids, lanes.n_lanes
    )
    return LaneWindows(
        starts=starts[first], ends=run_end[last], offsets=merged_offsets
    )


def merge_lanes_with_allowances(
    lanes: LaneWindows, window_tails: np.ndarray
) -> tuple[LaneWindows, np.ndarray]:
    """All-lane fast-dormancy merge, carrying per-window tail allowances.

    Per lane this is exactly
    :func:`repro.radio.intervals.merge_windows_with_allowances`: sort by
    start (stable), fuse on the running maximum end, and give each fused
    window the largest allowance among members achieving its final end.
    """
    n = lanes.n_windows
    if n == 0:
        return (
            LaneWindows(
                starts=_EMPTY_F, ends=_EMPTY_F, offsets=lanes.offsets.copy()
            ),
            _EMPTY_F,
        )
    tails = np.asarray(window_tails, dtype=np.float64)
    lids = lane_ids(lanes.offsets)
    order = np.lexsort((lanes.starts, lids))
    starts = lanes.starts[order]
    ends = lanes.ends[order]
    tails = tails[order]
    lids = lids[order]
    # Validate in lane-major sorted order — the per-lane iteration order.
    bad = np.flatnonzero((starts > ends) | (tails < 0))
    if bad.size:
        i = int(bad[0])
        check_interval(float(starts[i]), float(ends[i]))
        raise ValueError(
            f"window tail allowance must be >= 0, got {float(tails[i])}"
        )
    head = np.empty(n, dtype=bool)
    head[0] = True
    np.not_equal(lids[1:], lids[:-1], out=head[1:])
    run_end = segmented_cummax(ends, head)
    first, last, group_ids, merged_offsets = _group_lanes(
        starts, run_end, head, lids, lanes.n_lanes
    )
    merged_end = run_end[last]
    eligible = ends == merged_end[group_ids]
    masked = np.where(eligible, tails, -np.inf)
    # first is strictly increasing (every group is non-empty), so the
    # reduceat segments are exactly the groups; max never rounds.
    allowances = np.maximum.reduceat(masked, first)
    return (
        LaneWindows(starts=starts[first], ends=merged_end, offsets=merged_offsets),
        allowances,
    )


@dataclass(frozen=True, slots=True)
class LaneDecomposition:
    """Per-window replay arrays of many lanes, plus lane ``offsets``.

    Lane ``i``'s slice is bit-equal to the
    :class:`~repro.radio.intervals.ReplayDecomposition` of that lane.
    """

    offsets: np.ndarray
    starts: np.ndarray
    ends: np.ndarray
    durations: np.ndarray
    gaps: np.ndarray
    budgets: np.ndarray
    dch_parts: np.ndarray
    fach_parts: np.ndarray
    promo_fach: np.ndarray
    promo_idle: np.ndarray

    @property
    def n_lanes(self) -> int:
        """Number of lanes (including empty ones)."""
        return int(self.offsets.size - 1)

    def lane(self, i: int) -> ReplayDecomposition:
        """Lane ``i``'s slice as a per-lane decomposition (views)."""
        lo, hi = int(self.offsets[i]), int(self.offsets[i + 1])
        return ReplayDecomposition(
            starts=self.starts[lo:hi],
            ends=self.ends[lo:hi],
            durations=self.durations[lo:hi],
            gaps=self.gaps[lo:hi],
            budgets=self.budgets[lo:hi],
            dch_parts=self.dch_parts[lo:hi],
            fach_parts=self.fach_parts[lo:hi],
            promo_fach=self.promo_fach[lo:hi],
            promo_idle=self.promo_idle[lo:hi],
        )


def decompose_lanes(
    merged: LaneWindows,
    allowances: np.ndarray,
    *,
    tail_s: float,
    dch_tail_s: float,
) -> LaneDecomposition:
    """All-lane :func:`repro.radio.intervals.decompose_replay`.

    Gaps are computed globally (``starts[1:] - ends[:-1]``) and the last
    window of every non-empty lane is then reset to ``inf`` — which also
    erases the meaningless cross-lane differences at lane boundaries.
    """
    starts, ends, offsets = merged.starts, merged.ends, merged.offsets
    n = starts.size
    if n == 0:
        return LaneDecomposition(
            offsets=offsets.copy(),
            starts=_EMPTY_F,
            ends=_EMPTY_F,
            durations=_EMPTY_F,
            gaps=_EMPTY_F,
            budgets=_EMPTY_F,
            dch_parts=_EMPTY_F,
            fach_parts=_EMPTY_F,
            promo_fach=_EMPTY_B,
            promo_idle=_EMPTY_B,
        )
    allow = np.asarray(allowances, dtype=np.float64)
    lane_last = offsets[1:][np.diff(offsets) > 0] - 1
    gaps = np.empty(n)
    np.subtract(starts[1:], ends[:-1], out=gaps[:-1])
    gaps[n - 1] = math.inf
    gaps[lane_last] = math.inf
    budgets = np.minimum(np.minimum(gaps, allow), tail_s)
    dch_parts = np.minimum(budgets, dch_tail_s)
    fach_parts = budgets - dch_parts
    has_next = np.ones(n, dtype=bool)
    has_next[lane_last] = False
    stay_dch = gaps <= np.minimum(allow, dch_tail_s)
    within_tail = gaps <= np.minimum(allow, tail_s)
    promo_fach = has_next & ~stay_dch & within_tail
    promo_idle = has_next & ~within_tail
    return LaneDecomposition(
        offsets=offsets,
        starts=starts,
        ends=ends,
        durations=pair_durations(starts, ends),
        gaps=gaps,
        budgets=budgets,
        dch_parts=dch_parts,
        fach_parts=fach_parts,
        promo_fach=promo_fach,
        promo_idle=promo_idle,
    )


def extend_lanes_by_tails(decomp: LaneDecomposition) -> LaneWindows:
    """All-lane :func:`repro.radio.intervals.extend_by_tails`.

    Each lane of the result equals ``extend_by_tails(decomp.lane(i))``:
    windows extended to ``end + budget`` and re-fused with the segmented
    running maximum (budgets never bridge lanes — the last window of a
    lane has an ``inf`` gap but its budget is still finite).
    """
    n = decomp.starts.size
    offsets = decomp.offsets
    if n == 0:
        return LaneWindows(
            starts=_EMPTY_F, ends=_EMPTY_F, offsets=offsets.copy()
        )
    extended = decomp.ends + decomp.budgets
    head = _lane_heads(offsets, n)
    run_end = segmented_cummax(extended, head)
    lids = lane_ids(offsets)
    first, last, _, merged_offsets = _group_lanes(
        decomp.starts, run_end, head, lids, decomp.n_lanes
    )
    return LaneWindows(
        starts=decomp.starts[first], ends=run_end[last], offsets=merged_offsets
    )


def lane_radio_on_lengths(extended: LaneWindows) -> np.ndarray:
    """Per-lane merged ``total_length`` of extended radio-on windows.

    :func:`extend_lanes_by_tails` already returns each lane fused,
    sorted, and with strictly positive gaps, so ``merge_intervals`` over
    such a lane is the identity and its total length is the
    left-to-right float sum of window lengths.  ``result[i]`` is
    bit-equal to ``total_length(merge_intervals(extended.lane(i)))``.
    """
    lengths = extended.ends - extended.starts
    return lane_sequential_sums(lengths[None, :], extended.offsets, (0.0,))[0]


def lane_sequential_sums(
    rows: np.ndarray, offsets: np.ndarray, initials: Sequence[float]
) -> np.ndarray:
    """Per-lane left-to-right float sums for ``k`` value rows at once.

    ``rows`` is ``(k, n_windows)`` lane-major values; ``initials`` seeds
    row ``j``'s accumulator in every lane.  Returns ``(k, n_lanes)``
    totals, each bit-equal to
    ``sequential_sum(rows[j, lane_slice], initial=initials[j])``.

    The trick: scatter each lane's values into a zero-padded row whose
    column 0 holds the initial, cumulative-sum along the rows, and read
    the last column.  ``np.cumsum`` along the last axis accumulates
    strictly left-to-right (unlike ``np.sum``/``np.add.reduceat``), and
    the trailing ``+0.0`` padding is exact for the ``>= +0.0`` series
    summed here (a ``-0.0`` accumulator can never arise).
    """
    init = np.asarray(initials, dtype=np.float64)
    counts = np.diff(offsets)
    n_lanes = counts.size
    k, n = rows.shape
    if n == 0 or n_lanes == 0:
        return np.broadcast_to(init[:, None], (k, n_lanes)).copy()
    width = int(counts.max()) + 1
    padded = np.zeros((k, n_lanes, width))
    padded[:, :, 0] = init[:, None]
    lids = lane_ids(offsets)
    cols = np.arange(n, dtype=np.intp) - offsets[:-1][lids] + 1
    padded[:, lids, cols] = rows
    flat = padded.reshape(k * n_lanes, width)
    np.cumsum(flat, axis=-1, out=flat)
    return flat[:, -1].reshape(k, n_lanes)


_ZERO_REPORT = EnergyReport(
    energy_j=0.0,
    radio_on_s=0.0,
    transfer_s=0.0,
    tail_s=0.0,
    promo_idle_count=0,
    promo_fach_count=0,
    window_count=0,
)


def _machine_reports(
    merged: LaneWindows, decomp: LaneDecomposition, model: RadioPowerModel
) -> list[EnergyReport]:
    """Per-lane :func:`repro.radio.rrc._run_machine` outputs in one pass."""
    n_lanes = merged.n_lanes
    counts = merged.counts()
    reg = metrics()
    if reg.enabled:
        reg.inc("radio.rrc.simulations", n_lanes)
        reg.inc("radio.rrc.windows", merged.n_windows)
    rows = np.stack(
        (
            decomp.durations,
            decomp.durations * model.p_dch_w,
            decomp.budgets,
            decomp.dch_parts * model.p_dch_w
            + decomp.fach_parts * model.p_fach_w,
            np.where(
                decomp.promo_fach,
                model.promo_fach_energy_j,
                np.where(decomp.promo_idle, model.promo_idle_energy_j, 0.0),
            ),
            np.where(
                decomp.promo_fach,
                model.promo_fach_dch_s,
                np.where(decomp.promo_idle, model.promo_idle_dch_s, 0.0),
            ),
        )
    )
    totals = lane_sequential_sums(
        rows,
        merged.offsets,
        (0.0, 0.0, 0.0, 0.0, model.promo_idle_energy_j, model.promo_idle_dch_s),
    )
    transfer_s, transfer_e, tail_s, tail_e, promo_e, promo_s = (
        t.tolist() for t in totals
    )
    lids = lane_ids(merged.offsets)
    idle_counts = np.bincount(lids[decomp.promo_idle], minlength=n_lanes)
    fach_counts = np.bincount(lids[decomp.promo_fach], minlength=n_lanes)
    trc = tracer()
    reports: list[EnergyReport] = []
    total_idle = 0
    total_fach = 0
    for i in range(n_lanes):
        count = int(counts[i])
        if count == 0:
            # _run_machine's empty shortcut: no promotions, fresh dict.
            reports.append(
                EnergyReport(
                    energy_j=0.0,
                    radio_on_s=0.0,
                    transfer_s=0.0,
                    tail_s=0.0,
                    promo_idle_count=0,
                    promo_fach_count=0,
                    window_count=0,
                    state_energy_j={"transfer": 0.0, "tail": 0.0, "promo": 0.0},
                )
            )
            continue
        promo_idle = 1 + int(idle_counts[i])
        promo_fach = int(fach_counts[i])
        total_idle += promo_idle
        total_fach += promo_fach
        if trc.enabled:
            _record_rrc_spans(trc, decomp.lane(i))
        reports.append(
            EnergyReport(
                energy_j=transfer_e[i] + tail_e[i] + promo_e[i],
                radio_on_s=transfer_s[i] + tail_s[i] + promo_s[i],
                transfer_s=transfer_s[i],
                tail_s=tail_s[i],
                promo_idle_count=promo_idle,
                promo_fach_count=promo_fach,
                window_count=count,
                state_energy_j={
                    "transfer": transfer_e[i],
                    "tail": tail_e[i],
                    "promo": promo_e[i],
                },
            )
        )
    if reg.enabled:
        reg.inc("radio.rrc.promotions_idle", total_idle)
        reg.inc("radio.rrc.promotions_fach", total_fach)
    return reports


def _replay_group(
    window_lists: list[Sequence[tuple[float, float]]],
    flat_tails: np.ndarray | None,
    lane_allowances: list[float] | None,
    model: RadioPowerModel,
    want_radio_on: bool,
    keep: list[bool] | None = None,
) -> tuple[
    list[EnergyReport],
    list[list[tuple[float, float]] | None] | None,
    list[float] | None,
]:
    """Merge, decompose and price one homogeneous group of lanes.

    With ``keep`` set (lengths mode), the third return element carries
    the per-lane merged radio-on lengths and the interval lists are only
    materialized for lanes whose ``keep`` flag is True.
    """
    lanes = pack_lanes(window_lists)
    if flat_tails is not None:
        merged, allowances = merge_lanes_with_allowances(lanes, flat_tails)
    else:
        merged = merge_lanes(lanes)
        allowances = np.repeat(
            np.asarray(lane_allowances, dtype=np.float64), merged.counts()
        )
    decomp = decompose_lanes(
        merged, allowances, tail_s=model.tail_s, dch_tail_s=model.dch_tail_s
    )
    reports = _machine_reports(merged, decomp, model)
    if not want_radio_on:
        return reports, None, None
    extended = extend_lanes_by_tails(decomp)
    if keep is None:
        radio_on = [extended.lane(i) for i in range(extended.n_lanes)]
        return reports, radio_on, None
    lengths = lane_radio_on_lengths(extended).tolist()
    radio_on = [
        extended.lane(i) if keep[i] else None for i in range(extended.n_lanes)
    ]
    return reports, radio_on, lengths


def _replay_lanes(
    window_lists: Sequence[Sequence[tuple[float, float]]],
    model: RadioPowerModel,
    tail_policies: Sequence[TailPolicy | None] | None,
    window_tails: Sequence[Sequence[float] | None] | None,
    want_radio_on: bool,
    keep_intervals: Sequence[bool] | None = None,
) -> tuple[
    list[EnergyReport],
    list[list[tuple[float, float]] | None] | None,
    list[float] | None,
]:
    n = len(window_lists)
    if tail_policies is None:
        tail_policies = [None] * n
    if window_tails is None:
        window_tails = [None] * n
    if len(tail_policies) != n or len(window_tails) != n:
        raise ValueError(
            "tail_policies and window_tails must parallel window_lists"
        )
    plain_idx: list[int] = []
    plain_lanes: list[Sequence[tuple[float, float]]] = []
    plain_allow: list[float] = []
    tailed_idx: list[int] = []
    tailed_lanes: list[Sequence[tuple[float, float]]] = []
    tailed_tails: list[float] = []
    # Per-lane argument validation in input order — the errors (and their
    # ordering across lanes) match calling simulate() lane by lane.
    for i, windows in enumerate(window_lists):
        tails = window_tails[i]
        policy = tail_policies[i]
        if policy is None:
            policy = FullTail()
        if tails is not None:
            if len(tails) != len(windows):
                raise ValueError(
                    f"window_tails must match windows: {len(tails)} vs {len(windows)}"
                )
            if not isinstance(policy, FullTail):
                raise ValueError(
                    "window_tails cannot be combined with a custom tail_policy"
                )
            tailed_idx.append(i)
            tailed_lanes.append(windows)
            tailed_tails.extend(tails)
        else:
            plain_idx.append(i)
            plain_lanes.append(windows)
            plain_allow.append(policy.max_tail_s())
    reports: list[EnergyReport | None] = [None] * n
    radio_on: list[list[tuple[float, float]] | None] = [None] * n
    lengths: list[float | None] = [None] * n
    for idx, lanes, flat_tails, lane_allow in (
        (
            tailed_idx,
            tailed_lanes,
            (
                np.asarray(tailed_tails, dtype=np.float64)
                if tailed_tails
                else _EMPTY_F
            ),
            None,
        ),
        (plain_idx, plain_lanes, None, plain_allow),
    ):
        if not idx:
            continue
        keep = (
            None
            if keep_intervals is None
            else [bool(keep_intervals[i]) for i in idx]
        )
        grp_reports, grp_radio, grp_lengths = _replay_group(
            lanes, flat_tails, lane_allow, model, want_radio_on, keep
        )
        for j, i in enumerate(idx):
            reports[i] = grp_reports[j]
            if grp_radio is not None:
                radio_on[i] = grp_radio[j]
            if grp_lengths is not None:
                lengths[i] = grp_lengths[j]
    return (
        reports,
        (radio_on if want_radio_on else None),
        (lengths if keep_intervals is not None else None),
    )


def simulate_many(
    window_lists: Sequence[Sequence[tuple[float, float]]],
    model: RadioPowerModel,
    tail_policies: Sequence[TailPolicy | None] | None = None,
    *,
    window_tails: Sequence[Sequence[float] | None] | None = None,
) -> list[EnergyReport]:
    """Batched :func:`repro.radio.rrc.simulate` over many lanes.

    ``reports[i]`` is bit-equal to
    ``simulate(window_lists[i], model, tail_policies[i],
    window_tails=window_tails[i])``.  Lanes with per-window tails and
    lanes without are batched as two separate groups (their merges have
    different tie rules); telemetry counter totals match the per-lane
    path exactly.
    """
    reports, _, _ = _replay_lanes(
        window_lists, model, tail_policies, window_tails, want_radio_on=False
    )
    return reports


def replay_many(
    window_lists: Sequence[Sequence[tuple[float, float]]],
    model: RadioPowerModel,
    tail_policies: Sequence[TailPolicy | None] | None = None,
    *,
    window_tails: Sequence[Sequence[float] | None] | None = None,
) -> list[tuple[EnergyReport, list[tuple[float, float]]]]:
    """Batched energy *and* radio-on pricing sharing one decomposition.

    ``results[i]`` is ``(report, radio_on_intervals)``, bit-equal to the
    pair ``(simulate(...), radio_on_intervals(...))`` for lane ``i`` —
    but the merge and decomposition run once per lane instead of twice,
    on top of the cross-lane batching.
    """
    reports, radio_on, _ = _replay_lanes(
        window_lists, model, tail_policies, window_tails, want_radio_on=True
    )
    assert radio_on is not None
    return list(zip(reports, radio_on))


def replay_many_lengths(
    window_lists: Sequence[Sequence[tuple[float, float]]],
    model: RadioPowerModel,
    tail_policies: Sequence[TailPolicy | None] | None = None,
    *,
    window_tails: Sequence[Sequence[float] | None] | None = None,
    keep_intervals: Sequence[bool],
) -> list[tuple[EnergyReport, float, list[tuple[float, float]] | None]]:
    """:func:`replay_many` returning merged radio-on *lengths*.

    ``results[i]`` is ``(report, radio_on_length, intervals)`` where
    ``radio_on_length`` is bit-equal to
    ``total_length(merge_intervals(radio_on_intervals(...)))`` for lane
    ``i`` — the scalar most consumers actually need — computed inside
    the lane batch without materializing Python interval lists.  The
    ``intervals`` element is only built (and only for lanes whose
    ``keep_intervals`` flag is True) for callers that must re-merge with
    extra windows; it is ``None`` elsewhere.
    """
    if len(keep_intervals) != len(window_lists):
        raise ValueError(
            "keep_intervals must parallel window_lists: "
            f"{len(keep_intervals)} vs {len(window_lists)}"
        )
    reports, radio_on, lengths = _replay_lanes(
        window_lists,
        model,
        tail_policies,
        window_tails,
        want_radio_on=True,
        keep_intervals=keep_intervals,
    )
    assert radio_on is not None and lengths is not None
    return list(zip(reports, lengths, radio_on))
