"""Vectorized interval engine for RRC replay.

The RRC accounting in :mod:`repro.radio.rrc` used to walk transfer
windows one Python iteration at a time; on cohort-scale sweeps that loop
(and the interval merging feeding it) dominated replay cost.  This module
reformulates the walk as flat :mod:`numpy` array passes:

* window merging sorts start/end arrays and finds group boundaries with
  a running ``np.maximum.accumulate`` over the end times;
* tail handling computes every window's gap, tail budget and DCH/FACH
  split elementwise (``np.diff`` for durations, ``np.minimum`` chains
  for the budgets);
* radio-on intervals extend windows by their budgets and fuse them with
  the same running-maximum trick, locating each fused group's last
  member via ``np.searchsorted``.

**Bit-identity contract.**  Every function here must reproduce the
original scalar loops bit-for-bit (the figure-reproduction invariant).
Elementwise float arithmetic is exact under vectorization, but
*reductions are not*: ``np.sum`` accumulates pairwise while the old
loops accumulated left-to-right.  The engine therefore never sums —
callers reduce the returned arrays with :func:`sequential_sum`, which
re-runs the serial left-to-right accumulation over ``ndarray.tolist()``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro._util import check_interval

__all__ = [
    "ReplayDecomposition",
    "decompose_replay",
    "extend_by_tails",
    "merge_windows",
    "merge_windows_with_allowances",
    "pair_durations",
    "sequential_sum",
]


def sequential_sum(values: np.ndarray, initial: float = 0.0) -> float:
    """Left-to-right float accumulation, matching a serial ``+=`` loop.

    ``np.sum`` uses pairwise accumulation and returns different low bits;
    this is the reduction the bit-identity contract requires.  ``initial``
    seeds the accumulator (a loop whose first ``+=`` happens before the
    per-element terms must keep that grouping: float addition does not
    reassociate).
    """
    total = float(initial)
    for v in values.tolist():
        total += v
    return total


def pair_durations(starts: np.ndarray, ends: np.ndarray) -> np.ndarray:
    """Per-interval lengths ``end - start`` (elementwise, exact)."""
    if starts.size == 0:
        return np.empty(0)
    return np.diff(np.stack((starts, ends)), axis=0).ravel()


def _as_window_arrays(
    windows: Sequence[tuple[float, float]],
) -> tuple[np.ndarray, np.ndarray]:
    arr = np.asarray(windows, dtype=np.float64)
    if arr.size == 0:
        return np.empty(0), np.empty(0)
    return np.ascontiguousarray(arr[:, 0]), np.ascontiguousarray(arr[:, 1])


def _check_windows(starts: np.ndarray, ends: np.ndarray) -> None:
    bad = np.flatnonzero(starts > ends)
    if bad.size:
        i = int(bad[0])
        check_interval(float(starts[i]), float(ends[i]))


def _group_bounds(
    starts: np.ndarray, run_end: np.ndarray
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """First/last member indices (and member→group map) of fused groups.

    ``run_end`` is the running maximum of (possibly extended) end times;
    a new group opens exactly where a start clears everything before it.
    """
    n = starts.size
    new_group = np.empty(n, dtype=bool)
    new_group[0] = True
    np.greater(starts[1:], run_end[:-1], out=new_group[1:])
    first = np.flatnonzero(new_group)
    group_ids = np.cumsum(new_group) - 1
    last = np.searchsorted(group_ids, np.arange(first.size), side="right") - 1
    return first, last, group_ids


def merge_windows(
    windows: Sequence[tuple[float, float]],
) -> list[tuple[float, float]]:
    """Vectorized :func:`repro._util.merge_intervals` (``gap=0``).

    Sorts by ``(start, end)`` and fuses wherever a start does not exceed
    the running maximum end — the same rule, same tie behaviour, same
    float values as the scalar merge.
    """
    starts, ends = _as_window_arrays(windows)
    if starts.size == 0:
        return []
    _check_windows(starts, ends)
    order = np.lexsort((ends, starts))
    starts = starts[order]
    ends = ends[order]
    run_end = np.maximum.accumulate(ends)
    first, last, _ = _group_bounds(starts, run_end)
    return list(zip(starts[first].tolist(), run_end[last].tolist()))


def merge_windows_with_allowances(
    windows: Sequence[tuple[float, float]],
    window_tails: Sequence[float],
) -> tuple[list[tuple[float, float]], list[float]]:
    """Vectorized fast-dormancy merge: fuse windows, carry allowances.

    A fused window keeps the tail allowance of the member that ends last;
    ties take the larger allowance (the most permissive holder keeps the
    radio up) — exactly the scalar rule in :mod:`repro.radio.rrc`.
    """
    starts, ends = _as_window_arrays(windows)
    if starts.size == 0:
        return [], []
    tails = np.asarray(window_tails, dtype=np.float64)
    order = np.argsort(starts, kind="stable")
    starts = starts[order]
    ends = ends[order]
    tails = tails[order]
    # Validate in iteration (sorted) order so the first offending window
    # raises, matching the scalar loop's error behaviour.
    bad = np.flatnonzero((starts > ends) | (tails < 0))
    if bad.size:
        i = int(bad[0])
        check_interval(float(starts[i]), float(ends[i]))
        raise ValueError(
            f"window tail allowance must be >= 0, got {float(tails[i])}"
        )
    run_end = np.maximum.accumulate(ends)
    first, last, group_ids = _group_bounds(starts, run_end)
    merged_end = run_end[last]
    # The carried allowance is the max over members achieving the fused
    # window's final end (the scalar loop resets on a strictly later end
    # and maxes on ties, which reduces to exactly this).
    eligible = ends == merged_end[group_ids]
    masked = np.where(eligible, tails, -np.inf)
    allowances = np.maximum.reduceat(masked, first)
    return (
        list(zip(starts[first].tolist(), merged_end.tolist())),
        allowances.tolist(),
    )


@dataclass(frozen=True, slots=True)
class ReplayDecomposition:
    """Per-window arrays of one RRC replay over disjoint sorted windows.

    All arrays are parallel to the merged windows.  ``gaps[i]`` is the
    idle time before the next window (``inf`` after the last);
    ``budgets`` is the granted tail per window, split into ``dch_parts``
    and ``fach_parts``; ``promo_fach``/``promo_idle`` flag which windows
    are followed by a FACH→DCH or IDLE→DCH re-promotion (never the last).
    """

    starts: np.ndarray
    ends: np.ndarray
    durations: np.ndarray
    gaps: np.ndarray
    budgets: np.ndarray
    dch_parts: np.ndarray
    fach_parts: np.ndarray
    promo_fach: np.ndarray
    promo_idle: np.ndarray

    @property
    def n_windows(self) -> int:
        """Number of merged transfer windows in the replay."""
        return int(self.starts.size)


def decompose_replay(
    merged: Sequence[tuple[float, float]],
    allowances: Sequence[float],
    *,
    tail_s: float,
    dch_tail_s: float,
) -> ReplayDecomposition:
    """Vectorize one RRC walk over disjoint, sorted transfer windows.

    Reproduces, per window ``i`` of the scalar machine::

        gap      = start[i+1] - end[i]          (inf for the last)
        budget   = min(gap, allowance[i], tail_s)
        dch_part = min(budget, dch_tail_s)
        fach     = dch_tail_s-exceeding gap still inside the FACH timer
        idle     = gap past the (possibly truncated) tail entirely

    as elementwise array passes with identical float results.
    """
    starts, ends = _as_window_arrays(merged)
    n = starts.size
    if n == 0:
        empty = np.empty(0)
        return ReplayDecomposition(
            starts=empty,
            ends=empty,
            durations=empty,
            gaps=empty,
            budgets=empty,
            dch_parts=empty,
            fach_parts=empty,
            promo_fach=np.empty(0, dtype=bool),
            promo_idle=np.empty(0, dtype=bool),
        )
    allow = np.asarray(allowances, dtype=np.float64)
    gaps = np.empty(n)
    np.subtract(starts[1:], ends[:-1], out=gaps[:-1])
    gaps[n - 1] = math.inf
    budgets = np.minimum(np.minimum(gaps, allow), tail_s)
    dch_parts = np.minimum(budgets, dch_tail_s)
    fach_parts = budgets - dch_parts
    has_next = np.ones(n, dtype=bool)
    has_next[n - 1] = False
    stay_dch = gaps <= np.minimum(allow, dch_tail_s)
    within_tail = gaps <= np.minimum(allow, tail_s)
    promo_fach = has_next & ~stay_dch & within_tail
    promo_idle = has_next & ~within_tail
    return ReplayDecomposition(
        starts=starts,
        ends=ends,
        durations=pair_durations(starts, ends),
        gaps=gaps,
        budgets=budgets,
        dch_parts=dch_parts,
        fach_parts=fach_parts,
        promo_fach=promo_fach,
        promo_idle=promo_idle,
    )


def extend_by_tails(decomp: ReplayDecomposition) -> list[tuple[float, float]]:
    """Radio-on intervals: windows extended by their tail budgets, fused.

    Equivalent to extending each merged window to ``end + budget`` and
    re-merging — windows whose gaps stay within the tail budget fuse into
    one radio-on interval.
    """
    if decomp.n_windows == 0:
        return []
    extended = decomp.ends + decomp.budgets
    run_end = np.maximum.accumulate(extended)
    first, last, _ = _group_bounds(decomp.starts, run_end)
    return list(zip(decomp.starts[first].tolist(), run_end[last].tolist()))
