"""Cellular radio power models.

The paper estimates network energy with the model-based approach of
Huang et al. (MobiSys'12) and Schulman et al. (MobiCom'10): a radio is in
one of a few RRC states, each with a characteristic power draw, and state
transitions follow promotion delays and inactivity ("tail") timers.  The
tail energy after each transfer is what makes isolated small screen-off
transfers so expensive — and what NetMaster's batching amortizes.

Two parameter sets are bundled: UMTS/WCDMA (the paper's China Unicom 3G
testbed) and LTE (for the generality experiments).  All powers are watts,
all times seconds, all energies joules.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

from repro._util import check_positive


class RRCState(Enum):
    """Radio Resource Control states of the simplified machine.

    ``PROMO`` covers both IDLE→DCH and FACH→DCH promotions; the tail
    states reuse DCH/FACH power levels per the 3G measurements.
    """

    IDLE = "idle"
    PROMO = "promo"
    DCH = "dch"
    FACH = "fach"


@dataclass(frozen=True, slots=True)
class RadioPowerModel:
    """RRC power/timer parameters for one radio technology.

    Parameters
    ----------
    name:
        Human-readable label (``"wcdma"``, ``"lte"``).
    p_idle_w:
        Baseline power in IDLE (kept out of "radio-on" accounting).
    p_dch_w:
        Power while transferring (DCH / LTE continuous reception).
    p_fach_w:
        Power in the shared-channel / DRX-tail state.
    promo_idle_dch_s, promo_idle_dch_w:
        IDLE→DCH promotion latency and average power.
    promo_fach_dch_s, promo_fach_dch_w:
        FACH→DCH promotion latency and average power.
    dch_tail_s:
        Inactivity time held at DCH power after the last byte.
    fach_tail_s:
        Further inactivity time at FACH power before demotion to IDLE.
    """

    name: str
    p_idle_w: float
    p_dch_w: float
    p_fach_w: float
    promo_idle_dch_s: float
    promo_idle_dch_w: float
    promo_fach_dch_s: float
    promo_fach_dch_w: float
    dch_tail_s: float
    fach_tail_s: float

    def __post_init__(self) -> None:
        check_positive("p_idle_w", self.p_idle_w, strict=False)
        check_positive("p_dch_w", self.p_dch_w)
        check_positive("p_fach_w", self.p_fach_w, strict=False)
        check_positive("promo_idle_dch_s", self.promo_idle_dch_s, strict=False)
        check_positive("promo_idle_dch_w", self.promo_idle_dch_w, strict=False)
        check_positive("promo_fach_dch_s", self.promo_fach_dch_s, strict=False)
        check_positive("promo_fach_dch_w", self.promo_fach_dch_w, strict=False)
        check_positive("dch_tail_s", self.dch_tail_s, strict=False)
        check_positive("fach_tail_s", self.fach_tail_s, strict=False)
        if self.p_dch_w < self.p_fach_w:
            raise ValueError("p_dch_w must be >= p_fach_w")

    @property
    def tail_s(self) -> float:
        """Total inactivity tail (DCH tail + FACH tail)."""
        return self.dch_tail_s + self.fach_tail_s

    @property
    def full_tail_energy_j(self) -> float:
        """Energy of one complete (untruncated) tail."""
        return self.dch_tail_s * self.p_dch_w + self.fach_tail_s * self.p_fach_w

    @property
    def promo_idle_energy_j(self) -> float:
        """Energy of one IDLE→DCH promotion."""
        return self.promo_idle_dch_s * self.promo_idle_dch_w

    @property
    def promo_fach_energy_j(self) -> float:
        """Energy of one FACH→DCH promotion."""
        return self.promo_fach_dch_s * self.promo_fach_dch_w

    def isolated_transfer_energy_j(self, duration_s: float) -> float:
        """Energy of one isolated transfer: promotion + DCH + full tail.

        This is the paper's ``g`` function for ΔE (the energy a screen-off
        activity costs when executed on an otherwise-idle radio, all of
        which is saved by merging it into an already-active slot except the
        marginal DCH transfer time).
        """
        check_positive("duration_s", duration_s)
        return (
            self.promo_idle_energy_j
            + duration_s * self.p_dch_w
            + self.full_tail_energy_j
        )

    def marginal_transfer_energy_j(self, duration_s: float) -> float:
        """Energy of a transfer piggybacked on an already-DCH radio."""
        check_positive("duration_s", duration_s)
        return duration_s * self.p_dch_w

    def saved_energy_j(self, duration_s: float) -> float:
        """ΔE of rescheduling one screen-off activity into an active slot.

        The promotion and tail are eliminated entirely; the DCH transfer
        time itself must still be paid, so it cancels out.
        """
        return self.isolated_transfer_energy_j(duration_s) - self.marginal_transfer_energy_j(
            duration_s
        )


def wcdma_model() -> RadioPowerModel:
    """UMTS/WCDMA parameters (3G; the paper's China Unicom testbed).

    Powers and timers follow the published 3G measurements the paper cites
    (Huang et al. / Qian et al.): DCH ≈ 0.8 W, FACH ≈ 0.46 W, 2 s
    IDLE→DCH promotion, 5 s DCH tail and 12 s FACH tail.
    """
    return RadioPowerModel(
        name="wcdma",
        p_idle_w=0.01,
        p_dch_w=0.80,
        p_fach_w=0.46,
        promo_idle_dch_s=2.0,
        promo_idle_dch_w=0.53,
        promo_fach_dch_s=1.5,
        promo_fach_dch_w=0.70,
        dch_tail_s=5.0,
        fach_tail_s=12.0,
    )


def lte_model() -> RadioPowerModel:
    """LTE parameters from Huang et al. (MobiSys'12).

    LTE has a single continuous-reception tail (~11.6 s at ~1.06 W) before
    entering DRX; we map it onto the FACH-tail leg with a zero DCH tail.
    """
    return RadioPowerModel(
        name="lte",
        p_idle_w=0.025,
        p_dch_w=1.21,
        p_fach_w=1.06,
        promo_idle_dch_s=0.26,
        promo_idle_dch_w=1.2,
        promo_fach_dch_s=0.1,
        promo_fach_dch_w=1.2,
        dch_tail_s=0.0,
        fach_tail_s=11.6,
    )


def model_by_name(name: str) -> RadioPowerModel:
    """Look up a bundled power model by name (``"wcdma"`` or ``"lte"``)."""
    models = {"wcdma": wcdma_model, "lte": lte_model}
    try:
        return models[name]()
    except KeyError:
        raise KeyError(f"unknown radio model {name!r}; choose from {sorted(models)}") from None
