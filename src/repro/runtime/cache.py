"""Content-addressed trace cache: never simulate the same cohort twice.

Cohort generation is the single hottest shared step of the evaluation
pipeline — every ``fig*`` driver and every benchmark module rebuilds
byte-identical synthetic traces from the same ``(profiles, seed, n_days,
start_weekday)`` tuple.  This module keys each generated cohort by a
stable SHA-256 digest of that tuple's full content (including every
persona parameter and app-model field, so custom profiles are cached
correctly and config changes can never alias) and serves repeats from:

* an in-process LRU of recently generated cohorts, and
* an optional on-disk store (one JSONL file per trace under a digest
  directory), which survives process restarts and is safe to share
  between concurrent runs — writes go to a temp directory that is
  atomically renamed into place.

Cache hits return *independent* :class:`~repro.traces.events.Trace`
objects: event lists are fresh, so a caller mutating its cohort cannot
poison later hits (the event records themselves are frozen dataclasses
and safely shared).  Because generation is fully deterministic, a hit is
bit-identical to a regeneration; the cache is therefore enabled by
default and :func:`cache_stats` exposes hit/miss counters for
observability.

Environment knobs (read when the default cache is first created):

* ``REPRO_TRACE_CACHE=0`` — disable caching entirely;
* ``REPRO_TRACE_CACHE_DIR=<path>`` — enable the on-disk store there.
"""

from __future__ import annotations

import copy
import hashlib
import json
import logging
import os
import tempfile
from collections import OrderedDict
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable

import numpy as np

from repro.telemetry import metrics
from repro.traces.events import Trace
from repro.traces.io import trace_from_jsonl, trace_to_jsonl
from repro.traces.users import UserProfile

logger = logging.getLogger(__name__)

#: Default size of the in-process LRU (whole cohorts, not traces).
DEFAULT_MAX_ENTRIES = 32

#: Manifest schema version for the on-disk store.
_DISK_FORMAT_VERSION = 1


@dataclass(frozen=True)
class TraceRef:
    """Content-addressed provenance of a trace served by the cache.

    ``generate_cohort`` tags every trace it returns with one of these
    (``trace.cache_ref``); ``Trace.day_view`` propagates the tag with the
    day index filled in.  The parallel runner ships refs instead of
    pickled traces whenever the on-disk store holds the cohort — workers
    then rehydrate from disk once per process instead of receiving the
    same trace bytes in every task.
    """

    key: str
    user_index: int
    day_index: int | None = None


# ----------------------------------------------------------------------
# digests
# ----------------------------------------------------------------------


def _array_token(arr: np.ndarray) -> str:
    """Exact, stable token for a float array (byte-level, not repr)."""
    return np.ascontiguousarray(arr, dtype=np.float64).tobytes().hex()


def _profile_payload(profile: UserProfile) -> dict:
    """Canonical JSON-able content of one persona, catalog included."""
    return {
        "user_id": profile.user_id,
        "weekday_intensity": _array_token(profile.weekday_intensity),
        "weekend_intensity": _array_token(profile.weekend_intensity),
        "session_median_s": profile.session_median_s,
        "session_sigma": profile.session_sigma,
        "fg_utilization": profile.fg_utilization,
        "day_jitter": profile.day_jitter,
        "day_shift_sigma_h": profile.day_shift_sigma_h,
        "bg_scale": profile.bg_scale,
        "catalog": [
            {
                "name": app.name,
                "foreground_weight": app.foreground_weight,
                "fg_net_prob": app.fg_net_prob,
                "fg_rate_median_bps": app.fg_rate_median_bps,
                "fg_rate_sigma": app.fg_rate_sigma,
                "fg_rate_cap_bps": app.fg_rate_cap_bps,
                "background_interval_s": app.background_interval_s,
                "bg_rate_median_bps": app.bg_rate_median_bps,
                "bg_rate_sigma": app.bg_rate_sigma,
                "bg_duration_mean_s": app.bg_duration_mean_s,
                "upload_fraction": app.upload_fraction,
            }
            for app in profile.catalog
        ],
    }


def cohort_cache_key(
    profiles: list[UserProfile],
    seed: int,
    n_days: int,
    start_weekday: int,
) -> str | None:
    """SHA-256 digest of everything that determines a generated cohort.

    Returns ``None`` when the inputs are not digestible (a non-integer
    seed, e.g. a live :class:`numpy.random.Generator`) — callers then
    bypass the cache rather than risk a wrong hit.
    """
    if not isinstance(seed, (int, np.integer)):
        return None
    payload = {
        "generator": "repro.traces.generator",
        "seed": int(seed),
        "n_days": int(n_days),
        "start_weekday": int(start_weekday),
        "profiles": [_profile_payload(p) for p in profiles],
    }
    blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


# ----------------------------------------------------------------------
# independent-copy construction
# ----------------------------------------------------------------------


def _copy_trace(trace: Trace) -> Trace:
    """An independent view of a cached trace.

    Event records are frozen dataclasses and safely shared; only the
    containing lists must be fresh so callers can append/remove without
    poisoning the cache.  ``copy.copy`` skips ``__post_init__`` so the
    already-validated, already-sorted structure is not re-checked.
    """
    dup = copy.copy(trace)
    dup.screen_sessions = list(trace.screen_sessions)
    dup.usages = list(trace.usages)
    dup.activities = list(trace.activities)
    return dup


def _copy_cohort(traces: list[Trace]) -> list[Trace]:
    return [_copy_trace(t) for t in traces]


# ----------------------------------------------------------------------
# the cache
# ----------------------------------------------------------------------


@dataclass
class CacheStats:
    """Counters exposed through :func:`cache_stats`."""

    hits: int = 0
    misses: int = 0
    disk_hits: int = 0
    disk_stores: int = 0
    evictions: int = 0

    def as_dict(self) -> dict[str, int]:
        """Plain-dict view (JSON-friendly)."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "disk_hits": self.disk_hits,
            "disk_stores": self.disk_stores,
            "evictions": self.evictions,
        }


@dataclass
class TraceCache:
    """In-process LRU + optional on-disk store for generated cohorts."""

    max_entries: int = DEFAULT_MAX_ENTRIES
    cache_dir: Path | None = None
    enabled: bool = True
    stats: CacheStats = field(default_factory=CacheStats)

    def __post_init__(self) -> None:
        if self.max_entries < 1:
            raise ValueError(f"max_entries must be >= 1, got {self.max_entries}")
        if self.cache_dir is not None:
            self.cache_dir = Path(self.cache_dir)
        self._memory: OrderedDict[str, list[Trace]] = OrderedDict()

    # -- lookup/store --------------------------------------------------
    def lookup(self, key: str) -> list[Trace] | None:
        """Fetch a cohort by digest, memory first, then disk."""
        if not self.enabled:
            return None
        cached = self._memory.get(key)
        if cached is not None:
            self._memory.move_to_end(key)
            self.stats.hits += 1
            metrics().inc("runtime.cache.hits")
            return _copy_cohort(cached)
        traces = self._disk_load(key)
        if traces is not None:
            self.stats.hits += 1
            self.stats.disk_hits += 1
            metrics().inc("runtime.cache.hits")
            metrics().inc("runtime.cache.disk_hits")
            self._memory_put(key, traces)
            return _copy_cohort(traces)
        return None

    def put(self, key: str, traces: list[Trace]) -> None:
        """Store a cohort under its digest (memory and, if set, disk)."""
        if not self.enabled:
            return
        self._memory_put(key, _copy_cohort(traces))
        self._disk_store(key, traces)

    def get_or_generate(
        self, key: str, factory: Callable[[], list[Trace]]
    ) -> list[Trace]:
        """The main entry: serve ``key`` from cache or build and store."""
        cached = self.lookup(key)
        if cached is not None:
            return cached
        self.stats.misses += 1
        metrics().inc("runtime.cache.misses")
        traces = factory()
        self.put(key, traces)
        return traces

    def has_disk_entry(self, key: str) -> bool:
        """Whether the on-disk store holds a (complete) entry for ``key``.

        Only the manifest's presence is checked — a stored entry is
        written atomically, so a manifest implies complete trace files.
        """
        entry = self._entry_dir(key)
        return entry is not None and (entry / "manifest.json").exists()

    def clear(self, *, disk: bool = False) -> None:
        """Drop the in-memory LRU (and optionally the on-disk store)."""
        self._memory.clear()
        if disk and self.cache_dir is not None and self.cache_dir.exists():
            for entry in self.cache_dir.iterdir():
                if entry.is_dir() and (entry / "manifest.json").exists():
                    for child in entry.iterdir():
                        child.unlink()
                    entry.rmdir()

    def __len__(self) -> int:
        return len(self._memory)

    # -- memory LRU ----------------------------------------------------
    def _memory_put(self, key: str, traces: list[Trace]) -> None:
        self._memory[key] = traces
        self._memory.move_to_end(key)
        while len(self._memory) > self.max_entries:
            self._memory.popitem(last=False)
            self.stats.evictions += 1

    # -- disk store ----------------------------------------------------
    def _entry_dir(self, key: str) -> Path | None:
        if self.cache_dir is None:
            return None
        return self.cache_dir / key

    def _disk_load(self, key: str) -> list[Trace] | None:
        entry = self._entry_dir(key)
        if entry is None:
            return None
        manifest_path = entry / "manifest.json"
        try:
            manifest = json.loads(manifest_path.read_text())
        except FileNotFoundError:
            return None  # plain miss: the entry has never been stored
        except (OSError, json.JSONDecodeError) as exc:
            logger.warning(
                "trace cache: unreadable manifest %s (%s); treating as a miss",
                manifest_path,
                exc,
            )
            return None
        if manifest.get("version") != _DISK_FORMAT_VERSION:
            logger.warning(
                "trace cache: entry %s has format version %r (expected %d); "
                "treating as a miss",
                entry,
                manifest.get("version"),
                _DISK_FORMAT_VERSION,
            )
            return None
        try:
            return [trace_from_jsonl(entry / name) for name in manifest["files"]]
        except (OSError, KeyError, ValueError) as exc:
            # A torn or foreign entry: treat as a miss, regeneration wins.
            logger.warning(
                "trace cache: corrupt entry %s (%s: %s); regenerating",
                entry,
                type(exc).__name__,
                exc,
            )
            return None

    def _disk_store(self, key: str, traces: list[Trace]) -> None:
        entry = self._entry_dir(key)
        if entry is None or entry.exists():
            return
        self.cache_dir.mkdir(parents=True, exist_ok=True)
        tmp = Path(
            tempfile.mkdtemp(prefix=f".tmp-{key[:12]}-", dir=self.cache_dir)
        )
        try:
            files = []
            for index, trace in enumerate(traces):
                name = f"{index:03d}_{trace.user_id}.jsonl"
                trace_to_jsonl(trace, tmp / name)
                files.append(name)
            manifest = {
                "version": _DISK_FORMAT_VERSION,
                "key": key,
                "n_traces": len(traces),
                "files": files,
            }
            (tmp / "manifest.json").write_text(json.dumps(manifest, indent=1))
            os.replace(tmp, entry)
            self.stats.disk_stores += 1
        except OSError as exc:
            # Lost a store race (or a full disk): the cache is best-effort.
            logger.warning(
                "trace cache: could not store entry %s (%s); continuing uncached",
                entry,
                exc,
            )
            for child in tmp.glob("*"):
                child.unlink(missing_ok=True)
            if tmp.exists():
                tmp.rmdir()


# ----------------------------------------------------------------------
# module-level default cache
# ----------------------------------------------------------------------

_default_cache: TraceCache | None = None


def default_cache() -> TraceCache:
    """The process-wide cache used by ``generate_cohort``.

    Created lazily; honours ``REPRO_TRACE_CACHE`` (``"0"`` disables) and
    ``REPRO_TRACE_CACHE_DIR`` (enables the on-disk store).
    """
    global _default_cache
    if _default_cache is None:
        enabled = os.environ.get("REPRO_TRACE_CACHE", "1") != "0"
        cache_dir = os.environ.get("REPRO_TRACE_CACHE_DIR")
        _default_cache = TraceCache(
            enabled=enabled,
            cache_dir=Path(cache_dir) if cache_dir else None,
        )
    return _default_cache


def configure_cache(
    *,
    enabled: bool | None = None,
    max_entries: int | None = None,
    cache_dir: str | Path | None | type[...] = ...,
) -> TraceCache:
    """Adjust the default cache in place; returns it.

    ``cache_dir`` accepts a path, ``None`` (disable the disk store), or
    is left untouched when omitted.
    """
    cache = default_cache()
    if enabled is not None:
        cache.enabled = enabled
    if max_entries is not None:
        if max_entries < 1:
            raise ValueError(f"max_entries must be >= 1, got {max_entries}")
        cache.max_entries = max_entries
        while len(cache._memory) > cache.max_entries:
            cache._memory.popitem(last=False)
            cache.stats.evictions += 1
    if cache_dir is not ...:
        cache.cache_dir = Path(cache_dir) if cache_dir is not None else None
    return cache


def read_disk_cohort(cache_dir: str | Path, key: str) -> list[Trace] | None:
    """Load a cohort straight from an on-disk store directory.

    The worker-side rehydration entry point for shipped
    :class:`TraceRef` handles: reads the JSONL entry without touching
    the process-default cache or any telemetry counters, so rehydrating
    in a pool worker cannot perturb the merged-registry determinism
    contract.  Returns ``None`` when the entry is missing or corrupt.
    """
    reader = TraceCache(cache_dir=Path(cache_dir))
    return reader._disk_load(key)


def cache_stats() -> dict[str, int]:
    """Hit/miss counters of the default cache (plus current size)."""
    cache = default_cache()
    out = cache.stats.as_dict()
    out["entries"] = len(cache)
    return out


def clear_cache(*, disk: bool = False) -> None:
    """Empty the default cache's LRU (and optionally its disk store)."""
    default_cache().clear(disk=disk)
