"""Perf benchmark harness: the numbers behind ``BENCH_perf.json``.

Times the three hot paths the runtime layer optimizes and writes a JSON
report so subsequent PRs can track the perf trajectory:

* **cohort generation** — cold (cache cleared) vs warm (in-process LRU
  hit) for the paper's 8-user cohort;
* **policy sweep** — a Fig. 7-style (user × policy) grid at 1 and N
  workers, with a cross-check that every worker count produces identical
  energy totals;
* **FPTAS batch** — a batch of ``knapsack_fptas`` solves on random
  instances (exercises the packed-bits DP take table).

Run it directly::

    python -m repro.runtime.bench --jobs 2 --out BENCH_perf.json
    python -m repro.runtime.bench --quick --check   # CI smoke mode

``--check`` exits non-zero unless the warm-cache cohort path beat the
cold path — the invariant the CI perf smoke step asserts.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import time
from pathlib import Path

import numpy as np

from repro.baselines import (
    DelayBatchPolicy,
    NaivePolicy,
    NetMasterPolicy,
    OraclePolicy,
)
from repro.core.knapsack import knapsack_fptas
from repro.core.netmaster import NetMasterConfig
from repro.evaluation.experiments import split_history
from repro.radio.power import wcdma_model
from repro.runtime.cache import cache_stats, clear_cache, default_cache
from repro.runtime.parallel import PolicyTask, run_policy_tasks
from repro.traces.generator import generate_cohort


def _timed(fn) -> tuple[float, object]:
    start = time.perf_counter()
    result = fn()
    return time.perf_counter() - start, result


# ----------------------------------------------------------------------
# individual benchmarks
# ----------------------------------------------------------------------


def bench_cohort(n_days: int = 21, seed: int = 2014, warm_repeats: int = 3) -> dict:
    """Cold vs warm cohort generation through the content-addressed cache."""
    cache = default_cache()
    was_enabled = cache.enabled
    cache.enabled = True
    clear_cache()
    try:
        cold_s, cohort = _timed(lambda: generate_cohort(n_days, seed=seed))
        warm_times = []
        for _ in range(warm_repeats):
            warm_s, again = _timed(lambda: generate_cohort(n_days, seed=seed))
            warm_times.append(warm_s)
        warm_s = min(warm_times)
        assert [t.user_id for t in again] == [t.user_id for t in cohort]
        return {
            "n_days": n_days,
            "n_users": len(cohort),
            "cold_s": cold_s,
            "warm_s": warm_s,
            "warm_speedup": cold_s / warm_s if warm_s > 0 else float("inf"),
            "cache": cache_stats(),
        }
    finally:
        cache.enabled = was_enabled


def bench_policy_sweep(
    jobs: int = 2,
    n_days: int = 28,
    n_history_days: int = 14,
    seed: int = 7,
) -> dict:
    """A Fig. 7-style (user × policy) grid at 1 and ``jobs`` workers.

    Uses the 8-user profiling cohort over ``n_days`` so the grid is wide
    enough (8 users × 6 policies) for the pool to matter.  Asserts the
    parallel energy totals match the serial ones exactly before
    reporting the speedup.
    """
    model = wcdma_model()
    cohort = generate_cohort(n_days, seed=seed)
    tasks = []
    for trace in cohort:
        history, test_days = split_history(trace, n_history_days)
        for name, policy in (
            ("baseline", NaivePolicy()),
            ("oracle", OraclePolicy()),
            ("netmaster", NetMasterPolicy(history, NetMasterConfig())),
            ("delay-batch-10s", DelayBatchPolicy(10.0)),
            ("delay-batch-20s", DelayBatchPolicy(20.0)),
            ("delay-batch-60s", DelayBatchPolicy(60.0)),
        ):
            tasks.append(
                PolicyTask(name=name, policy=policy, days=tuple(test_days), model=model)
            )

    def total_energy(grid) -> list[float]:
        return [sum(m.energy_j for m in metrics) for metrics in grid]

    serial_s, serial_grid = _timed(lambda: run_policy_tasks(tasks, jobs=1))
    parallel_s, parallel_grid = _timed(lambda: run_policy_tasks(tasks, jobs=jobs))
    serial_energy = total_energy(serial_grid)
    parallel_energy = total_energy(parallel_grid)
    if serial_energy != parallel_energy:
        raise AssertionError(
            "parallel policy sweep diverged from the serial sweep "
            f"(jobs={jobs}); determinism contract broken"
        )
    return {
        "n_tasks": len(tasks),
        "n_users": len(cohort),
        "n_days": n_days,
        "jobs": jobs,
        "serial_s": serial_s,
        "parallel_s": parallel_s,
        "speedup": serial_s / parallel_s if parallel_s > 0 else float("inf"),
        "identical_results": True,
    }


def bench_fptas_batch(
    n_solves: int = 40, n_items: int = 120, eps: float = 0.05, seed: int = 11
) -> dict:
    """A batch of FPTAS solves (the per-slot SinKnap hot path)."""
    rng = np.random.default_rng(seed)
    instances = []
    for _ in range(n_solves):
        profits = rng.uniform(0.5, 50.0, n_items)
        weights = rng.uniform(0.5, 12.0, n_items)
        capacity = float(weights.sum() * 0.35)
        instances.append((profits, weights, capacity))

    def solve_all() -> float:
        return sum(
            knapsack_fptas(p, w, c, eps=eps).profit for p, w, c in instances
        )

    batch_s, total_profit = _timed(solve_all)
    return {
        "n_solves": n_solves,
        "n_items": n_items,
        "eps": eps,
        "batch_s": batch_s,
        "solves_per_s": n_solves / batch_s if batch_s > 0 else float("inf"),
        "total_profit": total_profit,
    }


# ----------------------------------------------------------------------
# the full report
# ----------------------------------------------------------------------


def run_bench(
    out_path: str | Path | None = "BENCH_perf.json",
    *,
    jobs: int = 2,
    quick: bool = False,
) -> dict:
    """Run every perf benchmark and (optionally) write ``BENCH_perf.json``.

    ``quick`` shrinks the workloads for CI smoke runs; the structure of
    the report is identical so trend tooling can read both.
    """
    if quick:
        cohort = bench_cohort(n_days=7, warm_repeats=2)
        sweep = bench_policy_sweep(jobs=jobs, n_days=14, n_history_days=10)
        fptas = bench_fptas_batch(n_solves=10, n_items=60)
    else:
        cohort = bench_cohort()
        sweep = bench_policy_sweep(jobs=jobs)
        fptas = bench_fptas_batch()
    report = {
        "schema": 1,
        "quick": quick,
        "python": platform.python_version(),
        "platform": platform.platform(),
        "cpu_count": os.cpu_count(),
        "cohort_generation": cohort,
        "policy_sweep": sweep,
        "fptas_batch": fptas,
    }
    if out_path is not None:
        Path(out_path).write_text(json.dumps(report, indent=2) + "\n")
    return report


def main(argv: list[str] | None = None) -> int:
    """CLI: run the perf suite, print a summary, write the JSON report."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.runtime.bench",
        description="Time the evaluation pipeline's hot paths.",
    )
    parser.add_argument("--out", default="BENCH_perf.json", help="report path")
    parser.add_argument("--jobs", type=int, default=2, help="parallel worker count")
    parser.add_argument(
        "--quick", action="store_true", help="shrink workloads (CI smoke mode)"
    )
    parser.add_argument(
        "--check",
        action="store_true",
        help="exit non-zero unless warm-cache cohort generation beat cold",
    )
    args = parser.parse_args(argv)
    report = run_bench(args.out, jobs=args.jobs, quick=args.quick)
    cohort = report["cohort_generation"]
    sweep = report["policy_sweep"]
    fptas = report["fptas_batch"]
    print(
        f"cohort generation: cold {cohort['cold_s']:.3f}s, "
        f"warm {cohort['warm_s']:.4f}s ({cohort['warm_speedup']:.1f}x)"
    )
    print(
        f"policy sweep ({sweep['n_tasks']} tasks): serial {sweep['serial_s']:.3f}s, "
        f"jobs={sweep['jobs']} {sweep['parallel_s']:.3f}s ({sweep['speedup']:.2f}x)"
    )
    print(
        f"fptas batch: {fptas['n_solves']} solves in {fptas['batch_s']:.3f}s "
        f"({fptas['solves_per_s']:.1f}/s)"
    )
    print(f"report written to {args.out}")
    if args.check and cohort["warm_s"] >= cohort["cold_s"]:
        print(
            "PERF CHECK FAILED: warm-cache cohort generation was not faster than cold",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
