"""Perf benchmark harness: the numbers behind ``BENCH_perf.json``.

Times the hot paths the runtime layer optimizes — one section per
optimization tier — and writes a JSON report so subsequent PRs can track
the perf trajectory:

* **cohort generation** — cold (cache cleared) vs warm (in-process LRU
  hit) vs disk-warm (LRU dropped, rehydrated from the on-disk store)
  for the paper's 8-user cohort;
* **policy sweep** — a Fig. 7-style (user × policy) grid at 1 and N
  workers with chunked dispatch and content-addressed trace shipping,
  plus a cross-check that every worker count produces identical energy
  totals.  ``parallel_regression`` flags runs where the workers lost to
  the serial loop (expected — and not warned about — when
  ``cpu_count == 1``);
* **grid throughput** — the headline: the whole sweep grid priced
  through the columnar lane kernel
  (:func:`repro.core.batch.measure_outcomes_columnar`) vs the per-lane
  ``measure_outcome`` loop, with a bit-identity cross-check;
  ``grid_user_days_per_s`` is the number the perf trajectory tracks;
* **FPTAS batch** — the per-slot solver tier: scalar-loop vs batched
  kernel vs memo-warm batched kernel on identical random instances;
* **replay kernel** — the vectorized RRC interval engine
  (:func:`repro.radio.simulate`) on synthetic window lists;
* **stream** — the online engine end to end: a fleet of personas
  streamed through :class:`~repro.stream.fleet.FleetService`
  (incremental mining, causal execution, checkpoint round-trips),
  headline ``stream_events_per_s``;
* **monitor** — the anomaly monitor attached to that same fleet: clean
  (alert-free) stream throughput vs the plain path
  (``overhead_frac``, budgeted at 10% under ``--compare``) and alert
  throughput on a seeded anomalous cohort (``alerts_per_s``);
* **shard recovery** — the durable sharded fleet: sustained WAL-logged
  throughput (``durable_events_per_s``) and crash-recovery replay time
  at growing WAL lengths (``recovery_points``);
* **service load** — the HTTP control plane (:mod:`repro.service`)
  under concurrent clients over real sockets: sustained ingest
  (``service_events_per_s``) plus p50/p95/p99 request latency.

Run it directly::

    python -m repro.runtime.bench --jobs 2 --out BENCH_perf.json
    python -m repro.runtime.bench --quick --check   # CI smoke mode
    python -m repro.runtime.bench --quick --compare BENCH_perf.json

``--check`` exits non-zero unless the warm-cache cohort path beat the
cold path; ``--compare`` exits non-zero on a >2x regression in solver
throughput or warm-cohort time versus a committed report.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import tempfile
import time
from pathlib import Path

import numpy as np

from repro.baselines import (
    DelayBatchPolicy,
    NaivePolicy,
    NetMasterPolicy,
    OraclePolicy,
)
from repro.core.knapsack import SolutionMemo, knapsack_fptas, knapsack_fptas_batch
from repro.core.netmaster import NetMasterConfig
from repro.evaluation.experiments import split_history
from repro.radio import simulate
from repro.radio.power import wcdma_model
from repro.runtime.cache import cache_stats, clear_cache, configure_cache, default_cache
from repro.runtime.parallel import PolicyTask, run_policy_tasks
from repro.traces.generator import generate_cohort


def _timed(fn) -> tuple[float, object]:
    start = time.perf_counter()
    result = fn()
    return time.perf_counter() - start, result


# ----------------------------------------------------------------------
# individual benchmarks
# ----------------------------------------------------------------------


def bench_cohort(n_days: int = 21, seed: int = 2014, warm_repeats: int = 3) -> dict:
    """Cold vs warm vs disk-warm cohort generation through the cache.

    The disk-warm phase drops the in-process LRU and regenerates, so the
    cohort must come back from the on-disk JSONL store — the same path
    pool workers use to rehydrate shipped traces.  Requires the caller
    to have configured a cache dir (``--cache-dir`` / ``run_bench``);
    without one the disk fields are ``None``.
    """
    cache = default_cache()
    was_enabled = cache.enabled
    cache.enabled = True
    clear_cache(disk=cache.cache_dir is not None)
    try:
        cold_s, cohort = _timed(lambda: generate_cohort(n_days, seed=seed))
        warm_times = []
        for _ in range(warm_repeats):
            warm_s, again = _timed(lambda: generate_cohort(n_days, seed=seed))
            warm_times.append(warm_s)
        warm_s = min(warm_times)
        assert [t.user_id for t in again] == [t.user_id for t in cohort]
        disk_warm_s = None
        if cache.cache_dir is not None:
            cache.clear()  # drop the LRU only; the JSONL store survives
            disk_warm_s, from_disk = _timed(lambda: generate_cohort(n_days, seed=seed))
            assert [t.user_id for t in from_disk] == [t.user_id for t in cohort]
        stats = cache_stats()
        return {
            "n_days": n_days,
            "n_users": len(cohort),
            "cold_s": cold_s,
            "warm_s": warm_s,
            "warm_speedup": cold_s / warm_s if warm_s > 0 else float("inf"),
            "disk_warm_s": disk_warm_s,
            "disk_stores": stats["disk_stores"],
            "disk_hits": stats["disk_hits"],
            "cache": stats,
        }
    finally:
        cache.enabled = was_enabled


def _sweep_tasks(
    n_days: int, n_history_days: int, seed: int
) -> list[PolicyTask]:
    """The Fig. 7-style (user × policy) profiling grid: 8 users × 6 policies."""
    model = wcdma_model()
    cohort = generate_cohort(n_days, seed=seed)
    tasks = []
    for trace in cohort:
        history, test_days = split_history(trace, n_history_days)
        for name, policy in (
            ("baseline", NaivePolicy()),
            ("oracle", OraclePolicy()),
            ("netmaster", NetMasterPolicy(history, NetMasterConfig())),
            ("delay-batch-10s", DelayBatchPolicy(10.0)),
            ("delay-batch-20s", DelayBatchPolicy(20.0)),
            ("delay-batch-60s", DelayBatchPolicy(60.0)),
        ):
            tasks.append(
                PolicyTask(name=name, policy=policy, days=tuple(test_days), model=model)
            )
    return tasks


def bench_policy_sweep(
    jobs: int = 2,
    n_days: int = 28,
    n_history_days: int = 14,
    seed: int = 7,
) -> dict:
    """A Fig. 7-style (user × policy) grid at 1 and ``jobs`` workers.

    Uses the 8-user profiling cohort over ``n_days`` so the grid is wide
    enough (8 users × 6 policies) for the pool to matter.  Asserts the
    parallel energy totals match the serial ones exactly before
    reporting the speedup.
    """
    tasks = _sweep_tasks(n_days, n_history_days, seed)

    def total_energy(grid) -> list[float]:
        return [sum(m.energy_j for m in metrics) for metrics in grid]

    serial_s, serial_grid = _timed(lambda: run_policy_tasks(tasks, jobs=1))
    parallel_s, parallel_grid = _timed(lambda: run_policy_tasks(tasks, jobs=jobs))
    serial_energy = total_energy(serial_grid)
    parallel_energy = total_energy(parallel_grid)
    if serial_energy != parallel_energy:
        raise AssertionError(
            "parallel policy sweep diverged from the serial sweep "
            f"(jobs={jobs}); determinism contract broken"
        )
    regression = parallel_s > serial_s
    # On a single-core host the pool cannot win; losing there is the
    # expected outcome, not a perf signal worth a warning.
    if regression and (os.cpu_count() or 1) > 1:
        print(
            f"WARNING: parallel sweep regression — jobs={jobs} took "
            f"{parallel_s:.3f}s vs {serial_s:.3f}s serial "
            f"(cpu_count={os.cpu_count()})",
            file=sys.stderr,
        )
    return {
        "n_tasks": len(tasks),
        "n_users": len({task.days[0].user_id for task in tasks}),
        "n_days": n_days,
        "user_days": sum(len(task.days) for task in tasks),
        "jobs": jobs,
        "serial_s": serial_s,
        "parallel_s": parallel_s,
        "speedup": serial_s / parallel_s if parallel_s > 0 else float("inf"),
        "parallel_regression": regression,
        "identical_results": True,
    }


def bench_grid_throughput(
    n_days: int = 28,
    n_history_days: int = 14,
    seed: int = 7,
    repeats: int = 3,
) -> dict:
    """Columnar lane-kernel grid pricing vs the per-lane loop.

    Executes the profiling sweep grid once (policy execution is shared
    work either way), then times pricing every (outcome, day) cell —
    the per-lane :func:`~repro.evaluation.metrics.measure_outcome` loop
    against one columnar :func:`~repro.core.batch.measure_outcomes_columnar`
    pass — and asserts both produce identical metrics before reporting.
    Each path is timed ``repeats`` times and the best run is kept (the
    standard microbenchmark guard against scheduler/GC noise).
    ``grid_user_days_per_s`` (columnar cells priced per second) is the
    headline throughput number the perf trajectory tracks.
    """
    from repro.core.batch import measure_outcomes_columnar
    from repro.evaluation.metrics import measure_outcome
    from repro.runtime.parallel import execute_policy_tasks

    tasks = _sweep_tasks(n_days, n_history_days, seed)
    outcomes = execute_policy_tasks(tasks, jobs=1)
    cells = [
        (outcome, day)
        for task, outs in zip(tasks, outcomes)
        for day, outcome in zip(task.days, outs)
    ]
    model = tasks[0].model

    per_lane_s, per_lane = _timed(
        lambda: [measure_outcome(o, model, day) for o, day in cells]
    )
    columnar_s, columnar = _timed(
        lambda: measure_outcomes_columnar(cells, model)
    )
    for _ in range(max(0, repeats - 1)):
        t, _r = _timed(
            lambda: [measure_outcome(o, model, day) for o, day in cells]
        )
        per_lane_s = min(per_lane_s, t)
        t, _r = _timed(lambda: measure_outcomes_columnar(cells, model))
        columnar_s = min(columnar_s, t)
    if columnar != per_lane:
        raise AssertionError(
            "columnar grid pricing diverged from the per-lane loop; "
            "bit-identity contract broken"
        )
    n_user_days = len(cells)
    return {
        "n_tasks": len(tasks),
        "n_user_days": n_user_days,
        "per_lane_s": per_lane_s,
        "columnar_s": columnar_s,
        "grid_user_days_per_s": (
            n_user_days / columnar_s if columnar_s > 0 else float("inf")
        ),
        "columnar_speedup": per_lane_s / columnar_s if columnar_s > 0 else float("inf"),
        "identical_results": True,
    }


def bench_fptas_batch(
    n_solves: int = 40, n_items: int = 120, eps: float = 0.05, seed: int = 11
) -> dict:
    """The per-slot SinKnap solver tier, measured three ways.

    ``solves_per_s`` (the headline trajectory number) times the
    single-solve loop — the same workload every committed
    ``BENCH_perf.json`` measured — now running on the numpy rolling-array
    DP.  ``batch_solves_per_s`` times :func:`knapsack_fptas_batch` on the
    same instances, and ``memo_warm_solves_per_s`` re-runs the batch
    against a warm :class:`SolutionMemo` (the ``solve_overlapped``
    steady state, where repeated slot itemsets skip the DP entirely).
    """
    rng = np.random.default_rng(seed)
    instances = []
    for _ in range(n_solves):
        profits = rng.uniform(0.5, 50.0, n_items)
        weights = rng.uniform(0.5, 12.0, n_items)
        capacity = float(weights.sum() * 0.35)
        instances.append((profits, weights, capacity))

    def solve_all() -> float:
        return sum(
            knapsack_fptas(p, w, c, eps=eps).profit for p, w, c in instances
        )

    batch_s, total_profit = _timed(solve_all)

    memo = SolutionMemo()
    batched_s, batched = _timed(
        lambda: knapsack_fptas_batch(instances, eps=eps, memo=memo)
    )
    memo_s, memoed = _timed(
        lambda: knapsack_fptas_batch(instances, eps=eps, memo=memo)
    )
    batched_profit = sum(sol.profit for sol in batched)
    if batched_profit != total_profit or batched_profit != sum(
        sol.profit for sol in memoed
    ):
        raise AssertionError(
            "batched/memoized FPTAS diverged from the single-solve loop"
        )

    def rate(elapsed: float) -> float:
        return n_solves / elapsed if elapsed > 0 else float("inf")

    return {
        "n_solves": n_solves,
        "n_items": n_items,
        "eps": eps,
        "batch_s": batch_s,
        "solves_per_s": rate(batch_s),
        "batch_solves_per_s": rate(batched_s),
        "memo_warm_solves_per_s": rate(memo_s),
        "memo_entries": len(memo),
        "total_profit": total_profit,
    }


def bench_replay_kernel(
    n_sims: int = 200, n_windows: int = 400, seed: int = 5
) -> dict:
    """The vectorized RRC interval engine on synthetic window lists.

    Draws one day of Poisson-ish transfer windows and replays it
    ``n_sims`` times through :func:`repro.radio.simulate` — the tier-2
    hot path under every policy evaluation day.
    """
    rng = np.random.default_rng(seed)
    starts = np.sort(rng.uniform(0.0, 86_400.0, n_windows))
    durations = rng.uniform(0.5, 30.0, n_windows)
    windows = [(float(s), float(s + d)) for s, d in zip(starts, durations)]
    model = wcdma_model()

    def replay_all() -> float:
        energy = 0.0
        for _ in range(n_sims):
            energy += simulate(windows, model).energy_j
        return energy

    replay_s, total_energy = _timed(replay_all)
    return {
        "n_sims": n_sims,
        "n_windows": n_windows,
        "replay_s": replay_s,
        "sims_per_s": n_sims / replay_s if replay_s > 0 else float("inf"),
        "windows_per_s": (
            n_sims * n_windows / replay_s if replay_s > 0 else float("inf")
        ),
        "total_energy_j": total_energy,
    }


def bench_stream(
    n_users: int = 16,
    n_days: int = 14,
    train_days: int = 10,
    checkpoint_every_days: int = 2,
    seed: int = 2014,
) -> dict:
    """The online streaming engine, end to end, measured as a fleet.

    Streams ``n_users`` synthetic personas through
    :class:`~repro.stream.fleet.FleetService` — incremental habit
    mining, causal day execution, in-line checkpoint round-trips — and
    reports ``stream_events_per_s``, the serving-shaped headline the
    perf trajectory tracks alongside solver throughput.
    """
    # Local import: the stream package pulls the policy stack in.
    from repro.stream.experiment import fleet_specs
    from repro.stream.fleet import FleetConfig, FleetService

    specs = fleet_specs(seed=seed, n_users=n_users, n_days=n_days)
    config = FleetConfig(
        train_days=train_days, checkpoint_every_days=checkpoint_every_days
    )
    result = FleetService(config).run(specs, jobs=1)
    return {
        "n_users": n_users,
        "n_days": n_days,
        "train_days": train_days,
        "user_days_streamed": result.user_days_streamed,
        "days_executed": result.days_executed,
        "events": result.events,
        "checkpoints": sum(s.checkpoints for s in result.summaries),
        "elapsed_s": result.elapsed_s,
        "stream_events_per_s": result.events_per_s,
    }


def bench_monitor(
    n_users: int = 16,
    n_days: int = 14,
    train_days: int = 10,
    seed: int = 2014,
    repeats: int = 3,
) -> dict:
    """Monitoring overhead on the stream path, and alert throughput.

    Runs the same clean fleet as :func:`bench_stream` twice — plain and
    with the anomaly monitor attached (zero alerts fire, so this prices
    the detector/signal machinery itself) — taking the best of
    ``repeats`` for each mode after a shared warm-up, since the
    difference under test is well inside scheduler noise for single
    runs.  ``overhead_frac`` is the gated headline: the monitored
    events/s may not trail the plain path by more than 10% (full runs).
    An anomalous cohort (stuck-DCH injection on every 4th user) then
    measures the detect→publish cost when alerts actually flow
    (``alerts_per_s``).
    """
    # Local import: the stream package pulls the policy stack in.
    from repro.faults import AnomalyInjector
    from repro.monitor import MonitorConfig, MonitorHub, RingAlertSink
    from repro.stream.experiment import fleet_specs
    from repro.stream.fleet import (
        FleetConfig,
        FleetService,
        _spec_trace,
        stream_one_user_monitored,
    )

    specs = fleet_specs(seed=seed, n_users=n_users, n_days=n_days)
    plain_config = FleetConfig(train_days=train_days)
    monitored_config = FleetConfig(train_days=train_days, monitor=MonitorConfig())

    FleetService(plain_config).run(specs, jobs=1)  # warm caches once
    plain_eps = 0.0
    monitored_eps = 0.0
    alerts_clean = 0
    events = 0
    for _ in range(max(1, repeats)):
        result = FleetService(plain_config).run(specs, jobs=1)
        plain_eps = max(plain_eps, result.events_per_s)
        events = result.events
        hub = MonitorHub([RingAlertSink()])
        result = FleetService(monitored_config).run(specs, jobs=1, monitor=hub)
        monitored_eps = max(monitored_eps, result.events_per_s)
        alerts_clean = hub.published

    injector = AnomalyInjector(seed=seed)
    onset = train_days + 1
    hub = MonitorHub([RingAlertSink()])
    anomalous_events = 0
    start = time.perf_counter()
    for i, spec in enumerate(specs):
        trace = _spec_trace(spec)
        if i % 4 == 0:
            trace = injector.stuck_dch(trace, start_day=onset)
        summary, alerts = stream_one_user_monitored(
            trace, config=monitored_config
        )
        hub.publish_many(alerts)
        anomalous_events += summary.events
    anomalous_s = time.perf_counter() - start

    return {
        "n_users": n_users,
        "n_days": n_days,
        "train_days": train_days,
        "events": events,
        "plain_events_per_s": plain_eps,
        "monitored_events_per_s": monitored_eps,
        "overhead_frac": 1.0 - monitored_eps / plain_eps if plain_eps else 0.0,
        "clean_alerts": alerts_clean,
        "anomalous_users": (n_users + 3) // 4,
        "anomalous_events": anomalous_events,
        "anomalous_elapsed_s": anomalous_s,
        "alerts_published": hub.published,
        "alerts_per_s": hub.published / anomalous_s if anomalous_s > 0 else 0.0,
    }


def bench_shard_recovery(
    n_users: int = 16,
    n_days: int = 14,
    train_days: int = 10,
    n_shards: int = 2,
    checkpoint_every_days: int = 2,
    seed: int = 2014,
) -> dict:
    """The durable sharded fleet: sustained throughput and recovery time.

    Streams the same fleet as :func:`bench_stream` through
    :class:`~repro.stream.shards.ShardedFleetService` — every day close
    a CRC-framed WAL append — and reports the sustained durable
    throughput (``durable_events_per_s``) plus its cost relative to the
    non-durable fleet (``durability_overhead``).  Recovery is then timed
    at growing WAL-prefix lengths (``recovery_points``): each point
    rebuilds shard directories holding that many records and times a
    full :meth:`~repro.stream.shards.ShardStore.recover`, giving the
    replay cost a crashed fleet pays before serving resumes.
    """
    # Local import: the stream package pulls the policy stack in.
    from repro.stream.experiment import fleet_specs
    from repro.stream.fleet import FleetConfig
    from repro.stream.shards import (
        ShardConfig,
        ShardedFleetService,
        ShardStore,
        read_wal,
    )

    specs = fleet_specs(seed=seed, n_users=n_users, n_days=n_days)
    config = FleetConfig(
        train_days=train_days, checkpoint_every_days=checkpoint_every_days
    )
    with tempfile.TemporaryDirectory(prefix="repro-bench-shards-") as root:
        root = Path(root)
        # Compaction off: every record stays in generation 0, so the
        # recovery points below sample the worst-case replay cost.
        shards = ShardConfig(
            root=root / "live", n_shards=n_shards, compact_every_records=1_000_000
        )
        service = ShardedFleetService(config, shards=shards)
        result = service.run(specs, jobs=1)
        per_shard = [read_wal(store.wal_path).records for store in service.stores]
        total_records = sum(len(records) for records in per_shard)

        recovery_points = []
        for frac in (0.25, 0.5, 1.0):
            point_root = root / f"recover-{int(frac * 100):03d}"
            count = 0
            for i, records in enumerate(per_shard):
                prefix = records[: round(len(records) * frac)]
                writer = ShardStore(
                    point_root / f"shard-{i:03d}", compact_every_records=1_000_000
                )
                for record in prefix:
                    writer.append(record)
                count += len(prefix)
            stores = [
                ShardStore(point_root / f"shard-{i:03d}") for i in range(n_shards)
            ]
            recovery_s, reports = _timed(
                lambda stores=stores: [store.recover() for store in stores]
            )
            replayed = sum(r.replayed_records for r in reports)
            if replayed != count:
                raise AssertionError(
                    f"recovery replayed {replayed} records, expected {count}"
                )
            recovery_points.append(
                {
                    "wal_records": count,
                    "recovery_s": recovery_s,
                    "records_per_s": count / recovery_s if recovery_s > 0 else float("inf"),
                }
            )

    full = recovery_points[-1]
    return {
        "n_users": n_users,
        "n_days": n_days,
        "train_days": train_days,
        "n_shards": n_shards,
        "events": result.events,
        "wal_records": total_records,
        "wal_appends": sum(store.appends for store in service.stores),
        "elapsed_s": result.elapsed_s,
        "durable_events_per_s": result.events_per_s,
        "recovery_points": recovery_points,
        "full_recovery_s": full["recovery_s"],
        "recovery_records_per_s": full["records_per_s"],
    }


def bench_service_load(
    n_users: int = 8,
    n_days: int = 14,
    train_days: int = 10,
    concurrency: int = 4,
    batch_events: int = 256,
    seed: int = 2014,
) -> dict:
    """The HTTP control plane under concurrent load, over real sockets.

    Starts the :mod:`repro.service` server in-process on an ephemeral
    port and replays a generated cohort through the async load driver
    (:mod:`repro.service.loadgen`): ``concurrency`` keep-alive clients
    pushing event batches, closing streams, and reading decisions and
    savings back.  Headline is ``service_events_per_s`` — sustained
    ingest through parsing, routing, the single-writer queue, and the
    engine — plus p50/p95/p99 request latency.  Any non-200 response
    fails the benchmark: under load the service must shed or serve,
    never error.
    """
    import asyncio

    # Local imports: the service package pulls the stream stack in.
    from repro.service.gateway import FleetGateway
    from repro.service.http import ServiceApp
    from repro.service.loadgen import LoadOptions, run_load
    from repro.stream.fleet import FleetConfig

    config = FleetConfig(
        train_days=train_days,
        netmaster=NetMasterConfig(enable_circuit_breaker=False),
    )

    async def drive() -> dict:
        app = ServiceApp(FleetGateway(config))
        host, port = await app.start("127.0.0.1", 0)
        try:
            return await run_load(
                LoadOptions(
                    host=host,
                    port=port,
                    n_users=n_users,
                    n_days=n_days,
                    seed=seed,
                    concurrency=concurrency,
                    batch_events=batch_events,
                )
            )
        finally:
            await app.shutdown(reason="bench complete")

    report = asyncio.run(drive())
    if report["errors"]:
        raise AssertionError(
            f"service load run saw {report['errors']} non-200 responses"
        )
    report.pop("health", None)
    report["train_days"] = train_days
    return report


def bench_fleet_scale(
    *,
    n_users: int = 12_500,
    n_days: int = 8,
    train_days: int = 7,
    reference_divisor: int = 10,
    n_shards: int = 4,
    batch_size: int = 64,
    seed: int = 2014,
    jobs: int = 1,
) -> dict:
    """Constant-RSS fleet at scale: ≥100k user-days from an iterator.

    Drives ``n_users × n_days`` user-days through
    :class:`~repro.stream.shards.ShardedFleetService` with the whole
    O(active users) pipeline engaged: specs come from the lazy
    :func:`~repro.stream.specgen.iter_fleet_specs` generator (the cohort
    never materializes), summaries fold into the
    :class:`~repro.stream.rollup.FleetRollup` instead of accumulating
    (``retain_summaries=False``), full summary docs spill to JSONL, and
    done users are evicted from the shard stores.  Peak RSS is read off
    ``resource.getrusage`` (sampled at every batch boundary into the
    ``fleet.peak_rss_bytes`` gauge by the service itself).

    The headline is ``rss_flatness_ratio``: peak RSS after the full
    cohort over peak RSS after a ``n_users / reference_divisor``
    reference cohort.  ``ru_maxrss`` is monotonic over the process
    lifetime, so the *smaller* cohort must run first — and for the same
    reason this benchmark does NOT run inside :func:`run_bench`, where
    earlier benchmarks' allocations would mask the fleet's own
    footprint.  It runs standalone via ``python -m repro fleet-scale``,
    which merges the section into an existing ``BENCH_perf.json``.
    """
    # Local import: the stream package pulls the policy stack in.
    from repro._util import peak_rss_bytes
    from repro.stream.fleet import FleetConfig
    from repro.stream.shards import ShardConfig, ShardedFleetService
    from repro.stream.specgen import iter_fleet_specs

    if n_users < reference_divisor:
        raise ValueError(
            f"n_users must be >= reference_divisor, got {n_users} < {reference_divisor}"
        )
    reference_users = n_users // reference_divisor
    config = FleetConfig(
        train_days=train_days,
        batch_size=batch_size,
        retain_summaries=False,
    )

    def run_cohort(root: Path, users: int, spill: Path | None):
        cohort_config = (
            config
            if spill is None
            else FleetConfig(
                train_days=train_days,
                batch_size=batch_size,
                retain_summaries=False,
                summary_spill=spill,
            )
        )
        # Compaction off: rewriting every resident user per 64 appends is
        # an O(users²) term the scale run cannot afford (the recovery
        # bench samples compaction separately).
        shards = ShardConfig(
            root=root, n_shards=n_shards, compact_every_records=1_000_000_000
        )
        service = ShardedFleetService(cohort_config, shards=shards)
        return service.run(
            iter_fleet_specs(seed=seed, n_users=users, n_days=n_days), jobs=jobs
        )

    with tempfile.TemporaryDirectory(prefix="repro-bench-scale-") as tmp:
        tmp = Path(tmp)
        # Reference cohort FIRST: ru_maxrss only ever ratchets up, so
        # running it after the full cohort would measure nothing.
        reference = run_cohort(tmp / "reference", reference_users, None)
        reference_rss = peak_rss_bytes()
        result = run_cohort(
            tmp / "full", n_users, tmp / "full" / "summaries.jsonl"
        )
        peak_rss = peak_rss_bytes()
        spilled = result.rollup.spilled

    if result.users != n_users:
        raise AssertionError(
            f"fleet-scale streamed {result.users} users, expected {n_users}"
        )
    if spilled != n_users:
        raise AssertionError(
            f"fleet-scale spilled {spilled} summaries, expected {n_users}"
        )
    flatness = (
        peak_rss / reference_rss
        if peak_rss is not None and reference_rss
        else None
    )
    user_days = result.user_days_streamed
    return {
        "n_users": n_users,
        "reference_users": reference_users,
        "n_days": n_days,
        "train_days": train_days,
        "n_shards": n_shards,
        "batch_size": batch_size,
        "jobs": jobs,
        "spec_source": "iterator",
        "user_days": user_days,
        "days_executed": result.days_executed,
        "events": result.events,
        "summaries_spilled": spilled,
        "elapsed_s": result.elapsed_s,
        "events_per_s": result.events_per_s,
        "user_days_per_s": (
            user_days / result.elapsed_s if result.elapsed_s > 0 else float("inf")
        ),
        "reference_events": reference.events,
        "reference_peak_rss_bytes": reference_rss,
        "peak_rss_bytes": peak_rss,
        "rss_flatness_ratio": flatness,
    }


# ----------------------------------------------------------------------
# the full report
# ----------------------------------------------------------------------


def run_bench(
    out_path: str | Path | None = "BENCH_perf.json",
    *,
    jobs: int = 2,
    quick: bool = False,
    cache_dir: str | Path | None = None,
) -> dict:
    """Run every perf benchmark and (optionally) write ``BENCH_perf.json``.

    ``quick`` shrinks the workloads for CI smoke runs; the structure of
    the report is identical so trend tooling can read both.  The run
    uses ``cache_dir`` as the on-disk trace store (a throwaway temp dir
    when ``None``) so the disk-store and trace-shipping paths are always
    exercised; the previous cache configuration is restored afterwards.
    """
    cache = default_cache()
    prev_dir = cache.cache_dir
    tmp = None
    if cache_dir is None:
        tmp = tempfile.TemporaryDirectory(prefix="repro-bench-cache-")
        cache_dir = tmp.name
    configure_cache(cache_dir=cache_dir)
    try:
        if quick:
            cohort = bench_cohort(n_days=7, warm_repeats=2)
            sweep = bench_policy_sweep(jobs=jobs, n_days=14, n_history_days=10)
            grid = bench_grid_throughput(n_days=14, n_history_days=10)
            fptas = bench_fptas_batch(n_solves=10, n_items=60)
            replay = bench_replay_kernel(n_sims=50, n_windows=200)
            stream = bench_stream(
                n_users=4, n_days=9, train_days=7, checkpoint_every_days=1
            )
            monitor = bench_monitor(n_users=4, n_days=9, train_days=7, repeats=2)
            shard_recovery = bench_shard_recovery(
                n_users=4, n_days=9, train_days=7, checkpoint_every_days=1
            )
            service_load = bench_service_load(
                n_users=4, n_days=9, train_days=7, concurrency=3
            )
        else:
            cohort = bench_cohort()
            sweep = bench_policy_sweep(jobs=jobs)
            grid = bench_grid_throughput()
            fptas = bench_fptas_batch()
            replay = bench_replay_kernel()
            stream = bench_stream()
            monitor = bench_monitor()
            shard_recovery = bench_shard_recovery()
            service_load = bench_service_load()
    finally:
        configure_cache(cache_dir=prev_dir)
        if tmp is not None:
            tmp.cleanup()
    report = {
        "schema": 1,
        "quick": quick,
        "python": platform.python_version(),
        "platform": platform.platform(),
        "cpu_count": os.cpu_count(),
        "cohort_generation": cohort,
        "policy_sweep": sweep,
        "grid_throughput": grid,
        "fptas_batch": fptas,
        "replay_kernel": replay,
        "stream": stream,
        "monitor": monitor,
        "shard_recovery": shard_recovery,
        "service_load": service_load,
    }
    if out_path is not None:
        Path(out_path).write_text(json.dumps(report, indent=2) + "\n")
    return report


def compare_reports(fresh: dict, baseline: dict, *, factor: float = 2.0) -> list[str]:
    """Regressions of ``fresh`` vs a committed ``baseline`` report.

    Returns human-readable failure strings for every tracked metric that
    regressed by more than ``factor`` — grid pricing throughput
    (``grid_throughput.grid_user_days_per_s``, the headline, lower is
    worse), solver throughput (``fptas_batch.solves_per_s``, lower is
    worse) and warm-cache cohort time (``cohort_generation.warm_s``,
    higher is worse).  Workload sizes may differ between quick and full
    reports, which only makes the check lenient (smaller instances run
    faster), never flaky.  Sections the baseline predates are skipped —
    an old report is "no baseline, record only", never a failure.
    """
    failures = []
    base_grid = baseline.get("grid_throughput")
    if base_grid is not None and "grid_throughput" in fresh:
        fresh_gps = fresh["grid_throughput"]["grid_user_days_per_s"]
        base_gps = base_grid["grid_user_days_per_s"]
        if fresh_gps < base_gps / factor:
            failures.append(
                f"grid_throughput.grid_user_days_per_s regressed >{factor:g}x: "
                f"{fresh_gps:.0f}/s vs committed {base_gps:.0f}/s"
            )
    base_fptas = baseline.get("fptas_batch")
    if base_fptas is not None and "fptas_batch" in fresh:
        fresh_rate = fresh["fptas_batch"]["solves_per_s"]
        base_rate = base_fptas["solves_per_s"]
        if fresh_rate < base_rate / factor:
            failures.append(
                f"fptas_batch.solves_per_s regressed >{factor:g}x: "
                f"{fresh_rate:.1f}/s vs committed {base_rate:.1f}/s"
            )
    base_cohort = baseline.get("cohort_generation")
    if base_cohort is not None and "cohort_generation" in fresh:
        fresh_warm = fresh["cohort_generation"]["warm_s"]
        base_warm = base_cohort["warm_s"]
        if fresh_warm > base_warm * factor:
            failures.append(
                f"cohort_generation.warm_s regressed >{factor:g}x: "
                f"{fresh_warm:.4f}s vs committed {base_warm:.4f}s"
            )
    base_stream = baseline.get("stream")
    if base_stream is not None and "stream" in fresh:
        fresh_eps = fresh["stream"]["stream_events_per_s"]
        base_eps = base_stream["stream_events_per_s"]
        if fresh_eps < base_eps / factor:
            failures.append(
                f"stream.stream_events_per_s regressed >{factor:g}x: "
                f"{fresh_eps:.0f}/s vs committed {base_eps:.0f}/s"
            )
    base_service = baseline.get("service_load")
    if base_service is not None and "service_load" in fresh:
        fresh_seps = fresh["service_load"]["service_events_per_s"]
        base_seps = base_service["service_events_per_s"]
        if fresh_seps < base_seps / factor:
            failures.append(
                f"service_load.service_events_per_s regressed >{factor:g}x: "
                f"{fresh_seps:.0f}/s vs committed {base_seps:.0f}/s"
            )
    base_monitor = baseline.get("monitor")
    if base_monitor is not None and "monitor" in fresh:
        fresh_meps = fresh["monitor"]["monitored_events_per_s"]
        base_meps = base_monitor["monitored_events_per_s"]
        if fresh_meps < base_meps / factor:
            failures.append(
                f"monitor.monitored_events_per_s regressed >{factor:g}x: "
                f"{fresh_meps:.0f}/s vs committed {base_meps:.0f}/s"
            )
        # Absolute bound, not baseline-relative: attaching the monitor
        # may cost at most 10% of stream throughput (quick runs are
        # noisy at their tiny size, so they get slack).
        bound = 0.25 if fresh.get("quick") else 0.10
        fresh_overhead = fresh["monitor"]["overhead_frac"]
        if fresh_overhead > bound:
            failures.append(
                f"monitor.overhead_frac exceeds the {bound:.0%} stream-path "
                f"budget: {fresh_overhead:.3f}"
            )
    base_shards = baseline.get("shard_recovery")
    if base_shards is not None and "shard_recovery" in fresh:
        fresh_deps = fresh["shard_recovery"]["durable_events_per_s"]
        base_deps = base_shards["durable_events_per_s"]
        if fresh_deps < base_deps / factor:
            failures.append(
                f"shard_recovery.durable_events_per_s regressed >{factor:g}x: "
                f"{fresh_deps:.0f}/s vs committed {base_deps:.0f}/s"
            )
        fresh_rps = fresh["shard_recovery"]["recovery_records_per_s"]
        base_rps = base_shards["recovery_records_per_s"]
        if fresh_rps < base_rps / factor:
            failures.append(
                f"shard_recovery.recovery_records_per_s regressed >{factor:g}x: "
                f"{fresh_rps:.0f}/s vs committed {base_rps:.0f}/s"
            )
    base_scale = baseline.get("fleet_scale")
    if base_scale is not None and "fleet_scale" in fresh:
        fresh_feps = fresh["fleet_scale"]["events_per_s"]
        base_feps = base_scale["events_per_s"]
        if fresh_feps < base_feps / factor:
            failures.append(
                f"fleet_scale.events_per_s regressed >{factor:g}x: "
                f"{fresh_feps:.0f}/s vs committed {base_feps:.0f}/s"
            )
    return failures


def fleet_scale_main(argv: list[str] | None = None) -> int:
    """CLI behind ``python -m repro fleet-scale``.

    Runs :func:`bench_fleet_scale` standalone (never inside
    :func:`run_bench`, whose earlier benchmarks would pollute the
    monotonic ``ru_maxrss`` reading) and read-modify-writes the
    ``fleet_scale`` section into an existing ``BENCH_perf.json`` so the
    scale numbers live next to ``shard_recovery``.
    """
    parser = argparse.ArgumentParser(
        prog="python -m repro fleet-scale",
        description="Constant-RSS fleet scale benchmark (iterator-sourced "
        "cohort through the sharded durable fleet).",
    )
    parser.add_argument("--out", default="BENCH_perf.json", help="report path")
    parser.add_argument(
        "--quick",
        action="store_true",
        help="CI smoke cohort: 250 users x 8 days (2k user-days), "
        "reference cohort at half size",
    )
    parser.add_argument("--jobs", type=int, default=1, help="parallel worker count")
    parser.add_argument(
        "--users", type=int, default=None, help="override the cohort size"
    )
    parser.add_argument(
        "--days", type=int, default=None, help="override days per user"
    )
    parser.add_argument(
        "--check",
        action="store_true",
        help="exit non-zero unless the RSS-flatness ratio stays under "
        "--flatness-limit",
    )
    parser.add_argument(
        "--flatness-limit",
        type=float,
        default=1.5,
        metavar="RATIO",
        help="maximum allowed peak-RSS growth for the cohort growth "
        "(default 1.5)",
    )
    parser.add_argument(
        "--compare",
        default=None,
        metavar="PATH",
        help="committed BENCH_perf.json to diff against; exit non-zero on "
        "a >2x events/s regression (reports without a fleet_scale section "
        "are record-only, never a failure)",
    )
    args = parser.parse_args(argv)
    if args.quick:
        n_users = args.users if args.users is not None else 250
        reference_divisor = 2
    else:
        n_users = args.users if args.users is not None else 12_500
        reference_divisor = 10
    n_days = args.days if args.days is not None else 8
    section = bench_fleet_scale(
        n_users=n_users,
        n_days=n_days,
        reference_divisor=reference_divisor,
        jobs=args.jobs,
    )
    rss_mb = (section["peak_rss_bytes"] or 0) / 2**20
    ref_mb = (section["reference_peak_rss_bytes"] or 0) / 2**20
    flatness = section["rss_flatness_ratio"]
    print(
        f"fleet scale: {section['n_users']:,} users x {section['n_days']} days "
        f"= {section['user_days']:,} user-days from an iterator source, "
        f"{section['events']:,} events in {section['elapsed_s']:.1f}s "
        f"({section['events_per_s']:,.0f} events/s, "
        f"{section['user_days_per_s']:,.1f} user-days/s)"
    )
    print(
        f"  peak RSS {rss_mb:.1f} MiB vs {ref_mb:.1f} MiB at "
        f"{section['reference_users']:,} users — flatness "
        + (f"{flatness:.3f}x" if flatness is not None else "unavailable")
        + f" for {section['n_users'] // section['reference_users']}x cohort growth; "
        f"{section['summaries_spilled']:,} summaries spilled"
    )

    out = Path(args.out)
    try:
        report = json.loads(out.read_text()) if out.exists() else {"schema": 1}
    except (OSError, json.JSONDecodeError) as exc:
        print(f"cannot read existing report {out}: {exc}", file=sys.stderr)
        return 2
    report["fleet_scale"] = section
    try:
        out.write_text(json.dumps(report, indent=2) + "\n")
    except OSError as exc:
        print(f"cannot write report {out}: {exc}", file=sys.stderr)
        return 2
    print(f"fleet_scale section merged into {out}")

    failed = False
    if args.check:
        if flatness is None:
            print(
                "PERF CHECK FAILED: peak RSS unavailable on this platform",
                file=sys.stderr,
            )
            failed = True
        elif flatness > args.flatness_limit:
            print(
                f"PERF CHECK FAILED: RSS flatness {flatness:.3f}x exceeds "
                f"{args.flatness_limit:g}x for "
                f"{section['n_users'] // section['reference_users']}x cohort growth",
                file=sys.stderr,
            )
            failed = True
    if args.compare is not None:
        try:
            baseline = json.loads(Path(args.compare).read_text())
        except (OSError, json.JSONDecodeError) as exc:
            print(f"cannot read --compare report {args.compare}: {exc}", file=sys.stderr)
            return 2
        failures = compare_reports(
            {"fleet_scale": section}, baseline
        )
        for failure in failures:
            print(f"PERF CHECK FAILED: {failure}", file=sys.stderr)
        failed = failed or bool(failures)
        if not failures:
            print(f"perf comparison vs {args.compare}: no >2x regressions")
    return 1 if failed else 0


def main(argv: list[str] | None = None) -> int:
    """CLI: run the perf suite, print a summary, write the JSON report."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.runtime.bench",
        description="Time the evaluation pipeline's hot paths.",
    )
    parser.add_argument("--out", default="BENCH_perf.json", help="report path")
    parser.add_argument("--jobs", type=int, default=2, help="parallel worker count")
    parser.add_argument(
        "--quick", action="store_true", help="shrink workloads (CI smoke mode)"
    )
    parser.add_argument(
        "--check",
        action="store_true",
        help="exit non-zero unless warm-cache cohort generation beat cold",
    )
    parser.add_argument(
        "--cache-dir",
        default=None,
        help="on-disk trace store for the run (default: throwaway temp dir)",
    )
    parser.add_argument(
        "--compare",
        default=None,
        metavar="PATH",
        help="committed BENCH_perf.json to diff against; exit non-zero on "
        "a >2x regression in grid pricing, solver throughput, streaming, "
        "or warm-cohort time",
    )
    args = parser.parse_args(argv)
    report = run_bench(
        args.out, jobs=args.jobs, quick=args.quick, cache_dir=args.cache_dir
    )
    cohort = report["cohort_generation"]
    sweep = report["policy_sweep"]
    fptas = report["fptas_batch"]
    replay = report["replay_kernel"]
    disk_warm = (
        f", disk-warm {cohort['disk_warm_s']:.4f}s"
        if cohort["disk_warm_s"] is not None
        else ""
    )
    print(
        f"cohort generation: cold {cohort['cold_s']:.3f}s, "
        f"warm {cohort['warm_s']:.4f}s ({cohort['warm_speedup']:.1f}x)"
        f"{disk_warm} [disk stores {cohort['disk_stores']}, "
        f"hits {cohort['disk_hits']}]"
    )
    print(
        f"policy sweep ({sweep['n_tasks']} tasks): serial {sweep['serial_s']:.3f}s, "
        f"jobs={sweep['jobs']} {sweep['parallel_s']:.3f}s ({sweep['speedup']:.2f}x)"
        + (
            " [PARALLEL REGRESSION]"
            if sweep["parallel_regression"] and (report.get("cpu_count") or 1) > 1
            else ""
        )
    )
    grid = report["grid_throughput"]
    print(
        f"grid throughput: {grid['n_user_days']} user-days priced in "
        f"{grid['columnar_s']:.3f}s columnar vs {grid['per_lane_s']:.3f}s per-lane "
        f"({grid['grid_user_days_per_s']:,.0f} user-days/s, "
        f"{grid['columnar_speedup']:.2f}x)"
    )
    print(
        f"fptas batch: {fptas['n_solves']} solves in {fptas['batch_s']:.3f}s "
        f"({fptas['solves_per_s']:.1f}/s single, "
        f"{fptas['batch_solves_per_s']:.1f}/s batched, "
        f"{fptas['memo_warm_solves_per_s']:.1f}/s memo-warm)"
    )
    print(
        f"replay kernel: {replay['n_sims']} sims x {replay['n_windows']} windows "
        f"in {replay['replay_s']:.3f}s ({replay['sims_per_s']:.1f} sims/s)"
    )
    stream = report["stream"]
    print(
        f"stream fleet: {stream['n_users']} users x {stream['n_days']} days, "
        f"{stream['events']} events in {stream['elapsed_s']:.3f}s "
        f"({stream['stream_events_per_s']:,.0f} events/s, "
        f"{stream['checkpoints']} checkpoints)"
    )
    monitor = report["monitor"]
    print(
        f"monitor: plain {monitor['plain_events_per_s']:,.0f} vs monitored "
        f"{monitor['monitored_events_per_s']:,.0f} events/s "
        f"(overhead {monitor['overhead_frac']:+.3f}, "
        f"{monitor['clean_alerts']} clean alerts); anomalous cohort "
        f"{monitor['alerts_published']} alerts "
        f"({monitor['alerts_per_s']:,.1f} alerts/s)"
    )
    shards = report["shard_recovery"]
    print(
        f"shard recovery: {shards['n_users']} users over {shards['n_shards']} shards, "
        f"{shards['wal_records']} WAL records "
        f"({shards['durable_events_per_s']:,.0f} durable events/s); "
        f"full replay {shards['full_recovery_s'] * 1e3:.1f}ms "
        f"({shards['recovery_records_per_s']:,.0f} records/s)"
    )
    service = report["service_load"]
    print(
        f"service load: {service['n_users']} users x {service['concurrency']} "
        f"clients, {service['events']} events over {service['requests']} "
        f"requests ({service['service_events_per_s']:,.0f} events/s; "
        f"p50 {service['latency_p50_s'] * 1e3:.1f}ms, "
        f"p95 {service['latency_p95_s'] * 1e3:.1f}ms, "
        f"p99 {service['latency_p99_s'] * 1e3:.1f}ms)"
    )
    print(f"report written to {args.out}")
    failed = False
    if args.check and cohort["warm_s"] >= cohort["cold_s"]:
        print(
            "PERF CHECK FAILED: warm-cache cohort generation was not faster than cold",
            file=sys.stderr,
        )
        failed = True
    if args.compare is not None:
        try:
            baseline = json.loads(Path(args.compare).read_text())
        except (OSError, json.JSONDecodeError) as exc:
            print(f"cannot read --compare report {args.compare}: {exc}", file=sys.stderr)
            return 2
        failures = compare_reports(report, baseline)
        for failure in failures:
            print(f"PERF CHECK FAILED: {failure}", file=sys.stderr)
        failed = failed or bool(failures)
        if not failures:
            print(f"perf comparison vs {args.compare}: no >2x regressions")
    return 1 if failed else 0


if __name__ == "__main__":
    raise SystemExit(main())
