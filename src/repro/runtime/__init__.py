"""Runtime layer: trace caching and process-parallel experiment fan-out.

``repro.runtime`` makes the evaluation pipeline cache-aware and parallel
end to end:

* :mod:`repro.runtime.cache` — a content-addressed cohort cache keyed by
  a SHA-256 digest of (profiles, seed, n_days, start_weekday), with an
  in-process LRU plus an optional on-disk JSONL store;
* :mod:`repro.runtime.parallel` — :class:`ParallelRunner` and picklable
  :class:`PolicyTask` descriptors fanning the (user × day × policy)
  evaluation grid over a process pool with deterministic ordering;
* :mod:`repro.runtime.bench` — the perf benchmark harness behind
  ``BENCH_perf.json`` (cold/warm cohort generation, 1-vs-N-worker policy
  sweeps, FPTAS solve batches).
"""

from repro.runtime.cache import (
    CacheStats,
    TraceCache,
    cache_stats,
    clear_cache,
    cohort_cache_key,
    configure_cache,
    default_cache,
)
from repro.runtime.parallel import (
    ParallelRunner,
    PolicyTask,
    PolicyTaskError,
    execute_policy_tasks,
    parallel_map,
    run_policy_tasks,
)

__all__ = [
    "CacheStats",
    "ParallelRunner",
    "PolicyTask",
    "PolicyTaskError",
    "TraceCache",
    "cache_stats",
    "clear_cache",
    "cohort_cache_key",
    "configure_cache",
    "default_cache",
    "execute_policy_tasks",
    "parallel_map",
    "run_policy_tasks",
]
