"""Process-parallel fan-out for the evaluation pipeline.

The Section-VI experiments are embarrassingly parallel: every
``(policy, held-out day)`` cell of the evaluation grid is independent,
and all task inputs (policies, single-day traces, radio models) are
plain picklable dataclasses.  :class:`ParallelRunner` fans such grids
over a :class:`~concurrent.futures.ProcessPoolExecutor` while keeping
three guarantees the figure reproductions rely on:

* **deterministic ordering** — results come back in task-submission
  order (``Executor.map`` semantics), so floating-point reductions sum
  in exactly the serial order and outputs stay bit-identical;
* **graceful fallback** — ``jobs=1``, a single task, or a pool that
  cannot be created/kept alive (sandboxed environments, fork limits)
  all degrade to the plain serial loop;
* **picklable task descriptors** — the worker entry points live at
  module top level and tasks are frozen dataclasses, so the grid works
  under every start method, not just ``fork``.

Worker processes inherit nothing mutable from the parent: each task
carries its full inputs, which is what makes the fan-out safe to use
from tests, benchmarks and the CLI alike.
"""

from __future__ import annotations

import atexit
import math
import os
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from functools import partial
from pickle import PicklingError
from typing import TYPE_CHECKING, Callable, Iterable, Sequence, TypeVar

from repro.baselines.policy import PolicyOutcome, SchedulingPolicy
from repro.radio.power import RadioPowerModel
from repro.runtime.cache import TraceRef, default_cache, read_disk_cohort
from repro.traces.events import Trace

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, hints only
    from repro.evaluation.metrics import PolicyDayMetrics

T = TypeVar("T")
R = TypeVar("R")

#: Environment knob: fixed number of tasks per worker submission.  Unset
#: (the default) splits the grid into one chunk per worker.
CHUNK_ENV = "REPRO_PARALLEL_CHUNK"

_POOL_ERRORS = (
    OSError,
    AttributeError,  # local/lambda callables fail pickling this way
    BrokenProcessPool,
    PicklingError,
    RuntimeError,
)


class ParallelRunner:
    """Order-preserving map over a process pool with serial fallback.

    ``jobs=1`` (the default) runs the plain serial loop; ``jobs>1``
    dispatches to a :class:`ProcessPoolExecutor` with ``jobs`` workers.
    If the pool cannot be created or breaks mid-run the whole batch is
    re-run serially — tasks are pure functions of their inputs, so the
    retry is safe and the results identical.  ``fallbacks`` counts how
    often that happened (observability for constrained environments).

    ``persistent=True`` keeps the pool (and its initialized workers —
    imported modules, forked caches) alive across :meth:`map` calls, so
    multi-phase sweeps pay process start-up once; call :meth:`close` (or
    let interpreter exit do it) to release the workers.
    """

    def __init__(
        self, jobs: int = 1, *, chunksize: int = 1, persistent: bool = False
    ) -> None:
        jobs = int(jobs)
        if jobs < 1:
            raise ValueError(f"jobs must be >= 1, got {jobs}")
        if chunksize < 1:
            raise ValueError(f"chunksize must be >= 1, got {chunksize}")
        self.jobs = jobs
        self.chunksize = int(chunksize)
        self.persistent = bool(persistent)
        self.fallbacks = 0
        self._pool: ProcessPoolExecutor | None = None

    def map(self, fn: Callable[[T], R], items: Iterable[T]) -> list[R]:
        """Apply ``fn`` to every item, results in input order."""
        tasks = list(items)
        if self.jobs == 1 or len(tasks) <= 1:
            return [fn(task) for task in tasks]
        try:
            if self.persistent:
                pool = self._ensure_pool()
                return list(pool.map(fn, tasks, chunksize=self.chunksize))
            with ProcessPoolExecutor(
                max_workers=min(self.jobs, len(tasks))
            ) as pool:
                return list(pool.map(fn, tasks, chunksize=self.chunksize))
        except _POOL_ERRORS:
            # Pool unavailable (sandbox, fork limit, no /dev/shm), the
            # callable not picklable, or a worker died: fall back to the
            # serial loop.  A genuine task exception of these types also
            # lands here, and the serial rerun re-raises it unchanged.
            self.fallbacks += 1
            self.close()
            return [fn(task) for task in tasks]

    def _ensure_pool(self) -> ProcessPoolExecutor:
        if self._pool is None:
            self._pool = ProcessPoolExecutor(max_workers=self.jobs)
        return self._pool

    def close(self) -> None:
        """Shut down the persistent pool (a later map recreates it)."""
        if self._pool is not None:
            self._pool.shutdown(wait=False, cancel_futures=True)
            self._pool = None


_shared_runners: dict[int, ParallelRunner] = {}


def shared_runner(jobs: int) -> ParallelRunner:
    """The process-wide persistent runner for ``jobs`` workers.

    Grid fan-outs share these pools across sweep phases (fig7 → fig8 →
    …), so worker start-up and module import costs are paid once per
    process, not once per figure.
    """
    runner = _shared_runners.get(jobs)
    if runner is None:
        runner = ParallelRunner(jobs, persistent=True)
        _shared_runners[jobs] = runner
    return runner


def shutdown_shared_runners() -> None:
    """Release every shared persistent pool (idempotent)."""
    for runner in _shared_runners.values():
        runner.close()
    _shared_runners.clear()


atexit.register(shutdown_shared_runners)


def parallel_map(
    fn: Callable[[T], R], items: Iterable[T], *, jobs: int = 1
) -> list[R]:
    """One-shot :meth:`ParallelRunner.map` convenience wrapper."""
    return ParallelRunner(jobs).map(fn, items)


# ----------------------------------------------------------------------
# picklable task descriptors + module-level workers
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class PolicyTask:
    """One cell of the evaluation grid: a policy over some held-out days."""

    name: str
    policy: SchedulingPolicy
    days: tuple[Trace, ...]
    model: RadioPowerModel


class PolicyTaskError(Exception):
    """A specific grid cell failed; the message names the cell.

    Inherits :class:`Exception` directly (not :class:`RuntimeError`) so
    :meth:`ParallelRunner.map`'s pool-failure fallback never mistakes a
    genuine task failure for a broken pool and re-runs the whole grid.
    Built with a single string argument so it survives pickling back
    from a worker process intact.
    """


def _cell_label(task: PolicyTask, day_index: int) -> str:
    return f"{task.name}:d{day_index + 1}"


def _cell_error(task: PolicyTask, day_index: int, exc: BaseException) -> PolicyTaskError:
    return PolicyTaskError(
        f"policy task {task.name!r} failed on day {day_index + 1}/{len(task.days)} "
        f"(policy {type(task.policy).__name__}): {type(exc).__name__}: {exc}"
    )


def _measure_task(task: PolicyTask) -> list[PolicyDayMetrics]:
    """Worker: execute and price a policy over its days, in order."""
    # Imported here, not at module top: repro.evaluation pulls in this
    # module (experiments/robustness fan their grids through it), so a
    # top-level import would be circular.
    from repro.evaluation.metrics import measure_outcome
    from repro.telemetry import tracer

    trc = tracer()
    out: list[PolicyDayMetrics] = []
    for i, day in enumerate(task.days):
        with trc.sim_context(_cell_label(task, i)), trc.span(
            "replay-day", "evaluation", track=f"replay/{task.name}", day=i + 1
        ):
            try:
                out.append(
                    measure_outcome(task.policy.execute_day(day), task.model, day)
                )
            except PolicyTaskError:
                raise
            except Exception as exc:
                raise _cell_error(task, i, exc) from exc
    return out


def _execute_task(task: PolicyTask) -> list[PolicyOutcome]:
    """Worker: execute a policy over its days, returning raw outcomes."""
    from repro.telemetry import tracer

    trc = tracer()
    out: list[PolicyOutcome] = []
    for i, day in enumerate(task.days):
        with trc.sim_context(_cell_label(task, i)), trc.span(
            "replay-day", "evaluation", track=f"replay/{task.name}", day=i + 1
        ):
            try:
                out.append(task.policy.execute_day(day))
            except PolicyTaskError:
                raise
            except Exception as exc:
                raise _cell_error(task, i, exc) from exc
    return out


# ----------------------------------------------------------------------
# content-addressed trace shipping + chunked dispatch
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class _DayHandle:
    """Content-addressed stand-in for one day trace in a shipped task.

    Workers resolve the handle against the on-disk trace store: the
    cohort JSONL is read once per worker process (see ``_WORKER_COHORTS``)
    instead of pickling the same trace into every grid cell.
    """

    cache_dir: str
    key: str
    user_index: int
    day_index: int | None


@dataclass(frozen=True)
class _WireTask:
    """A :class:`PolicyTask` with day traces replaced by handles where
    the on-disk store can serve them."""

    name: str
    policy: SchedulingPolicy
    days: tuple  # of Trace | _DayHandle
    model: RadioPowerModel


#: Per-worker-process cohort memo: (cache_dir, key) → loaded traces.
_WORKER_COHORTS: dict[tuple[str, str], list[Trace]] = {}


def _to_wire(tasks: Sequence[PolicyTask]) -> list[_WireTask]:
    """Swap shippable day traces for content-addressed handles.

    A day is shipped by reference only when it carries provenance (a
    ``cache_ref`` tag from ``generate_cohort``/``day_view``) *and* the
    default cache's on-disk store is confirmed to hold the cohort —
    otherwise the trace travels inline, exactly as before.
    """
    cache = default_cache()
    cache_dir = cache.cache_dir
    on_disk: dict[str, bool] = {}

    def handle_for(day: Trace) -> _DayHandle | None:
        if cache_dir is None or not cache.enabled:
            return None
        ref = getattr(day, "cache_ref", None)
        if not isinstance(ref, TraceRef):
            return None
        if ref.key not in on_disk:
            on_disk[ref.key] = cache.has_disk_entry(ref.key)
        if not on_disk[ref.key]:
            return None
        return _DayHandle(
            cache_dir=str(cache_dir),
            key=ref.key,
            user_index=ref.user_index,
            day_index=ref.day_index,
        )

    return [
        _WireTask(
            name=task.name,
            policy=task.policy,
            days=tuple(handle_for(day) or day for day in task.days),
            model=task.model,
        )
        for task in tasks
    ]


def _rehydrate_day(handle: _DayHandle) -> Trace:
    """Worker side: resolve a handle against the on-disk trace store.

    Keeps telemetry untouched (no cache counters, no spans) so shipped
    and inline runs merge to identical registries.
    """
    memo_key = (handle.cache_dir, handle.key)
    cohort = _WORKER_COHORTS.get(memo_key)
    if cohort is None:
        cohort = read_disk_cohort(handle.cache_dir, handle.key)
        if cohort is None:
            raise PolicyTaskError(
                f"trace cache entry {handle.key[:12]}… disappeared from "
                f"{handle.cache_dir}; cannot rehydrate shipped policy task"
            )
        _WORKER_COHORTS[memo_key] = cohort
    trace = cohort[handle.user_index]
    if handle.day_index is None:
        return trace
    return trace.day_view(handle.day_index)


def _rebuild_task(wire: _WireTask) -> PolicyTask:
    return PolicyTask(
        name=wire.name,
        policy=wire.policy,
        days=tuple(
            _rehydrate_day(day) if isinstance(day, _DayHandle) else day
            for day in wire.days
        ),
        model=wire.model,
    )


def _run_chunk(
    chunk: Sequence[_WireTask], fn: Callable[[PolicyTask], R]
) -> list[R]:
    return [fn(_rebuild_task(wire)) for wire in chunk]


def _measure_chunk(chunk: Sequence[_WireTask]):
    return _run_chunk(chunk, _measure_task)


def _execute_chunk(chunk: Sequence[_WireTask]):
    return _run_chunk(chunk, _execute_task)


def _shipped(fn: Callable[[T], R], payload: T, *, with_tracing: bool):
    """Worker wrapper: run ``fn`` under a fresh registry/tracer and ship
    the result together with the captured telemetry.

    ``telemetry.isolated`` guarantees the capture covers exactly this
    payload even when ``fork`` hands the worker a copy of the parent's
    half-filled registry.
    """
    from repro import telemetry

    with telemetry.isolated(with_tracing=with_tracing) as (registry, trc):
        result = fn(payload)
        return result, registry.snapshot(), trc.export_spans()


def _measure_chunk_shipped(chunk: Sequence[_WireTask], *, with_tracing: bool = True):
    return _shipped(_measure_chunk, chunk, with_tracing=with_tracing)


def _execute_chunk_shipped(chunk: Sequence[_WireTask], *, with_tracing: bool = True):
    return _shipped(_execute_chunk, chunk, with_tracing=with_tracing)


def _chunk_size(n_tasks: int, jobs: int) -> int:
    """Tasks per submission: one chunk per worker unless overridden."""
    env = os.environ.get(CHUNK_ENV, "").strip()
    if env:
        try:
            size = int(env)
        except ValueError:
            raise ValueError(
                f"{CHUNK_ENV} must be a positive integer, got {env!r}"
            ) from None
        if size < 1:
            raise ValueError(f"{CHUNK_ENV} must be >= 1, got {size}")
        return size
    return math.ceil(n_tasks / jobs)


def _fan_out(
    tasks: Sequence[PolicyTask],
    plain_fn: Callable[[PolicyTask], R],
    chunk_fn: Callable[[Sequence[_WireTask]], list[R]],
    chunk_shipped_fn: Callable[..., tuple[list[R], dict, list[dict]]],
    jobs: int,
) -> list[R]:
    """Run a grid, shipping worker telemetry back when it is enabled.

    Serial runs use ``plain_fn`` against the process-global registry and
    tracer.  Parallel runs split the grid into worker-chunks (one pool
    submission per chunk, not per cell), swap day traces for
    content-addressed handles where the on-disk store can serve them,
    and dispatch over the shared persistent pool.  With telemetry on,
    each chunk's snapshot and spans merge back **in task order**, which
    reproduces the serial registry exactly (see
    :mod:`repro.telemetry.registry`).
    """
    from repro import telemetry

    registry = telemetry.metrics()
    trc = telemetry.tracer()
    registry.inc("runtime.parallel.tasks", len(tasks))
    registry.inc("runtime.parallel.days", sum(len(t.days) for t in tasks))

    if jobs == 1 or len(tasks) <= 1:
        return [plain_fn(task) for task in tasks]

    wire = _to_wire(tasks)
    size = _chunk_size(len(wire), jobs)
    chunks = [wire[i : i + size] for i in range(0, len(wire), size)]
    registry.inc("runner.chunk_count", len(chunks))
    runner = shared_runner(jobs)

    if not (registry.enabled or trc.enabled):
        return [r for chunk in runner.map(chunk_fn, chunks) for r in chunk]

    fn = partial(chunk_shipped_fn, with_tracing=trc.enabled)
    results: list[R] = []
    for chunk_results, snap, spans in runner.map(fn, chunks):
        registry.merge_snapshot(snap)
        trc.ingest(spans)
        results.extend(chunk_results)
    return results


def run_policy_tasks(
    tasks: Sequence[PolicyTask], *, jobs: int = 1
) -> list[list[PolicyDayMetrics]]:
    """Fan a grid of :class:`PolicyTask` over ``jobs`` workers.

    Returns one metrics list per task, in task order — the parallel twin
    of calling :func:`repro.evaluation.metrics.run_policy_over_days`
    once per task.  A failing cell raises :class:`PolicyTaskError`
    naming the task, day and policy.
    """
    return _fan_out(tasks, _measure_task, _measure_chunk, _measure_chunk_shipped, jobs)


def execute_policy_tasks(
    tasks: Sequence[PolicyTask], *, jobs: int = 1
) -> list[list[PolicyOutcome]]:
    """Like :func:`run_policy_tasks` but returning raw day outcomes
    (for pipelines that post-process outcomes, e.g. fault injection)."""
    return _fan_out(tasks, _execute_task, _execute_chunk, _execute_chunk_shipped, jobs)
