"""Process-parallel fan-out for the evaluation pipeline.

The Section-VI experiments are embarrassingly parallel: every
``(policy, held-out day)`` cell of the evaluation grid is independent,
and all task inputs (policies, single-day traces, radio models) are
plain picklable dataclasses.  :class:`ParallelRunner` fans such grids
over a :class:`~concurrent.futures.ProcessPoolExecutor` while keeping
three guarantees the figure reproductions rely on:

* **deterministic ordering** — results come back in task-submission
  order (``Executor.map`` semantics), so floating-point reductions sum
  in exactly the serial order and outputs stay bit-identical;
* **graceful fallback** — ``jobs=1``, a single task, or a pool that
  cannot be created/kept alive (sandboxed environments, fork limits)
  all degrade to the plain serial loop;
* **picklable task descriptors** — the worker entry points live at
  module top level and tasks are frozen dataclasses, so the grid works
  under every start method, not just ``fork``.

Worker processes inherit nothing mutable from the parent: each task
carries its full inputs, which is what makes the fan-out safe to use
from tests, benchmarks and the CLI alike.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from functools import partial
from pickle import PicklingError
from typing import TYPE_CHECKING, Callable, Iterable, Sequence, TypeVar

from repro.baselines.policy import PolicyOutcome, SchedulingPolicy
from repro.radio.power import RadioPowerModel
from repro.traces.events import Trace

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, hints only
    from repro.evaluation.metrics import PolicyDayMetrics

T = TypeVar("T")
R = TypeVar("R")


class ParallelRunner:
    """Order-preserving map over a process pool with serial fallback.

    ``jobs=1`` (the default) runs the plain serial loop; ``jobs>1``
    dispatches to a :class:`ProcessPoolExecutor` with ``jobs`` workers.
    If the pool cannot be created or breaks mid-run the whole batch is
    re-run serially — tasks are pure functions of their inputs, so the
    retry is safe and the results identical.  ``fallbacks`` counts how
    often that happened (observability for constrained environments).
    """

    def __init__(self, jobs: int = 1, *, chunksize: int = 1) -> None:
        jobs = int(jobs)
        if jobs < 1:
            raise ValueError(f"jobs must be >= 1, got {jobs}")
        if chunksize < 1:
            raise ValueError(f"chunksize must be >= 1, got {chunksize}")
        self.jobs = jobs
        self.chunksize = int(chunksize)
        self.fallbacks = 0

    def map(self, fn: Callable[[T], R], items: Iterable[T]) -> list[R]:
        """Apply ``fn`` to every item, results in input order."""
        tasks = list(items)
        if self.jobs == 1 or len(tasks) <= 1:
            return [fn(task) for task in tasks]
        try:
            with ProcessPoolExecutor(
                max_workers=min(self.jobs, len(tasks))
            ) as pool:
                return list(pool.map(fn, tasks, chunksize=self.chunksize))
        except (
            OSError,
            AttributeError,  # local/lambda callables fail pickling this way
            BrokenProcessPool,
            PicklingError,
            RuntimeError,
        ):
            # Pool unavailable (sandbox, fork limit, no /dev/shm), the
            # callable not picklable, or a worker died: fall back to the
            # serial loop.  A genuine task exception of these types also
            # lands here, and the serial rerun re-raises it unchanged.
            self.fallbacks += 1
            return [fn(task) for task in tasks]


def parallel_map(
    fn: Callable[[T], R], items: Iterable[T], *, jobs: int = 1
) -> list[R]:
    """One-shot :meth:`ParallelRunner.map` convenience wrapper."""
    return ParallelRunner(jobs).map(fn, items)


# ----------------------------------------------------------------------
# picklable task descriptors + module-level workers
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class PolicyTask:
    """One cell of the evaluation grid: a policy over some held-out days."""

    name: str
    policy: SchedulingPolicy
    days: tuple[Trace, ...]
    model: RadioPowerModel


class PolicyTaskError(Exception):
    """A specific grid cell failed; the message names the cell.

    Inherits :class:`Exception` directly (not :class:`RuntimeError`) so
    :meth:`ParallelRunner.map`'s pool-failure fallback never mistakes a
    genuine task failure for a broken pool and re-runs the whole grid.
    Built with a single string argument so it survives pickling back
    from a worker process intact.
    """


def _cell_label(task: PolicyTask, day_index: int) -> str:
    return f"{task.name}:d{day_index + 1}"


def _cell_error(task: PolicyTask, day_index: int, exc: BaseException) -> PolicyTaskError:
    return PolicyTaskError(
        f"policy task {task.name!r} failed on day {day_index + 1}/{len(task.days)} "
        f"(policy {type(task.policy).__name__}): {type(exc).__name__}: {exc}"
    )


def _measure_task(task: PolicyTask) -> list[PolicyDayMetrics]:
    """Worker: execute and price a policy over its days, in order."""
    # Imported here, not at module top: repro.evaluation pulls in this
    # module (experiments/robustness fan their grids through it), so a
    # top-level import would be circular.
    from repro.evaluation.metrics import measure_outcome
    from repro.telemetry import tracer

    trc = tracer()
    out: list[PolicyDayMetrics] = []
    for i, day in enumerate(task.days):
        with trc.sim_context(_cell_label(task, i)), trc.span(
            "replay-day", "evaluation", track=f"replay/{task.name}", day=i + 1
        ):
            try:
                out.append(
                    measure_outcome(task.policy.execute_day(day), task.model, day)
                )
            except PolicyTaskError:
                raise
            except Exception as exc:
                raise _cell_error(task, i, exc) from exc
    return out


def _execute_task(task: PolicyTask) -> list[PolicyOutcome]:
    """Worker: execute a policy over its days, returning raw outcomes."""
    from repro.telemetry import tracer

    trc = tracer()
    out: list[PolicyOutcome] = []
    for i, day in enumerate(task.days):
        with trc.sim_context(_cell_label(task, i)), trc.span(
            "replay-day", "evaluation", track=f"replay/{task.name}", day=i + 1
        ):
            try:
                out.append(task.policy.execute_day(day))
            except PolicyTaskError:
                raise
            except Exception as exc:
                raise _cell_error(task, i, exc) from exc
    return out


def _shipped(fn: Callable[[PolicyTask], R], task: PolicyTask, *, with_tracing: bool):
    """Worker wrapper: run ``fn`` under a fresh registry/tracer and ship
    the result together with the captured telemetry.

    ``telemetry.isolated`` guarantees the capture covers exactly this
    task even when ``fork`` hands the worker a copy of the parent's
    half-filled registry.
    """
    from repro import telemetry

    with telemetry.isolated(with_tracing=with_tracing) as (registry, trc):
        result = fn(task)
        return result, registry.snapshot(), trc.export_spans()


def _measure_task_shipped(task: PolicyTask, *, with_tracing: bool = True):
    return _shipped(_measure_task, task, with_tracing=with_tracing)


def _execute_task_shipped(task: PolicyTask, *, with_tracing: bool = True):
    return _shipped(_execute_task, task, with_tracing=with_tracing)


def _fan_out(
    tasks: Sequence[PolicyTask],
    plain_fn: Callable[[PolicyTask], R],
    shipped_fn: Callable[..., tuple[R, dict, list[dict]]],
    jobs: int,
) -> list[R]:
    """Run a grid, shipping worker telemetry back when it is enabled.

    Serial runs (and runs with all telemetry off) use ``plain_fn``
    against the process-global registry/tracer.  Parallel runs with
    telemetry on use ``shipped_fn`` and merge each worker's snapshot and
    spans back **in task order**, which reproduces the serial registry
    exactly (see :mod:`repro.telemetry.registry`).
    """
    from repro import telemetry

    registry = telemetry.metrics()
    trc = telemetry.tracer()
    registry.inc("runtime.parallel.tasks", len(tasks))
    registry.inc("runtime.parallel.days", sum(len(t.days) for t in tasks))

    serial = jobs == 1 or len(tasks) <= 1
    if serial or not (registry.enabled or trc.enabled):
        return ParallelRunner(jobs).map(plain_fn, tasks)

    fn = partial(shipped_fn, with_tracing=trc.enabled)
    results: list[R] = []
    for result, snap, spans in ParallelRunner(jobs).map(fn, tasks):
        registry.merge_snapshot(snap)
        trc.ingest(spans)
        results.append(result)
    return results


def run_policy_tasks(
    tasks: Sequence[PolicyTask], *, jobs: int = 1
) -> list[list[PolicyDayMetrics]]:
    """Fan a grid of :class:`PolicyTask` over ``jobs`` workers.

    Returns one metrics list per task, in task order — the parallel twin
    of calling :func:`repro.evaluation.metrics.run_policy_over_days`
    once per task.  A failing cell raises :class:`PolicyTaskError`
    naming the task, day and policy.
    """
    return _fan_out(tasks, _measure_task, _measure_task_shipped, jobs)


def execute_policy_tasks(
    tasks: Sequence[PolicyTask], *, jobs: int = 1
) -> list[list[PolicyOutcome]]:
    """Like :func:`run_policy_tasks` but returning raw day outcomes
    (for pipelines that post-process outcomes, e.g. fault injection)."""
    return _fan_out(tasks, _execute_task, _execute_task_shipped, jobs)
