"""The combined "delay and batch" comparator of Fig. 7.

Screen-off activities are held for at most a fixed interval; if the user
turns the screen on first, the whole pending batch rides the session's
radio window (and transfers at carrier speed, like any aggregated
release).  This combines the interval-fixed deferral of Qian et al. [10]
with the screen-on batching *and fast dormancy* of Huang et al. [2] —
the strongest prior method the paper compares NetMaster against (22.54%
average saving in their traces).  Fast dormancy releases the RRC
connection right after a deferred batch completes instead of letting the
carrier's 17 s inactivity timers run; foreground traffic keeps the stock
timers (the method never touches the user's own transfers).
"""

from __future__ import annotations

import bisect
import math
from dataclasses import dataclass, field

from repro._util import DAY, check_positive
from repro.baselines.policy import PolicyOutcome
from repro.radio.bandwidth import LinkModel
from repro.radio.rrc import FullTail
from repro.traces.events import NetworkActivity, Trace

#: Gap between transfers released together.
_PACK_GAP_S = 0.2


@dataclass
class DelayBatchPolicy:
    """Hold screen-off traffic ≤ ``interval_s``; flush early on screen-on."""

    interval_s: float
    link: LinkModel = field(default_factory=LinkModel)
    #: Tail allowed after a deferred release (fast dormancy); ``None``
    #: keeps the carrier timers even for deferred traffic.
    fast_dormancy_s: float | None = 0.5
    name: str = ""

    #: Pure function of the day: safe to fan days over worker processes.
    day_independent = True

    def __post_init__(self) -> None:
        check_positive("interval_s", self.interval_s)
        if self.fast_dormancy_s is not None:
            check_positive("fast_dormancy_s", self.fast_dormancy_s, strict=False)
        if not self.name:
            self.name = f"delay-batch-{self.interval_s:g}s"

    def execute_day(self, day: Trace) -> PolicyOutcome:
        """Defer screen-off activities to screen-on or interval expiry."""
        if day.n_days != 1:
            raise ValueError("execute_day expects a single-day trace")
        session_starts = [s.start for s in day.screen_sessions]
        executed: list[tuple[NetworkActivity, bool]] = []
        hold_windows: list[tuple[float, float]] = []
        release_cursor: dict[float, float] = {}
        deferred = 0

        for activity in day.activities:
            if activity.screen_on:
                executed.append((activity, False))
                continue
            idx = bisect.bisect_left(session_starts, activity.time)
            next_on = session_starts[idx] if idx < len(session_starts) else None
            timeout = activity.time + self.interval_s
            if next_on is not None and next_on < timeout:
                release = next_on
                # Batched releases riding a session aggregate and move at
                # carrier speed.
                moved = activity.compressed(self.link.bandwidth_bps)
            else:
                release = timeout
                moved = activity
            cursor = release_cursor.get(release, release)
            cursor = min(cursor, DAY - moved.duration)
            executed.append((moved.moved_to(cursor), True))
            release_cursor[release] = cursor + moved.duration + _PACK_GAP_S
            hold_windows.append((activity.time, release))
            deferred += 1

        executed.sort(key=lambda pair: pair[0].time)
        activities = [a for a, _ in executed]
        tails: list[float] | None = None
        if self.fast_dormancy_s is not None:
            tails = [
                self.fast_dormancy_s if was_deferred else math.inf
                for _, was_deferred in executed
            ]
        affected = sum(
            1
            for usage in day.usages
            if any(lo <= usage.time < hi for lo, hi in hold_windows)
        )
        return PolicyOutcome(
            policy=self.name,
            activities=activities,
            tail_policy=FullTail(),
            activity_tails=tails,
            user_interactions=len(day.usages),
            affected_user_activities=affected,
            deferred=deferred,
        )
