"""The offline oracle: minimal energy for the same network activities.

With perfect knowledge of the day ("solution under optimal condition",
Section IV-B), every screen-off activity rides the radio window of the
*nearest actual screen session* at full link bandwidth, and the radio is
force-idled one guard second after the last byte moves (the same guard
NetMaster's real-time control uses, so the comparison isolates the value
of perfect prediction rather than a different radio-off latency).  This is the "Oracle" bar of
Fig. 7(a) — the paper reports NetMaster within 5% of it in 81.6% of
tests.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass, field

from repro._util import DAY, check_positive
from repro.baselines.policy import PolicyOutcome
from repro.radio.bandwidth import LinkModel
from repro.radio.rrc import TruncatedTail
from repro.traces.events import NetworkActivity, Trace


@dataclass
class OraclePolicy:
    """Perfect-knowledge scheduler (lower bound on network energy)."""

    link: LinkModel = field(default_factory=LinkModel)
    guard_s: float = 1.0
    name: str = "oracle"

    #: Pure function of the day: safe to fan days over worker processes.
    day_independent = True

    def __post_init__(self) -> None:
        check_positive("guard_s", self.guard_s, strict=False)

    def execute_day(self, day: Trace) -> PolicyOutcome:
        """Pack all screen-off traffic onto actual session windows."""
        if day.n_days != 1:
            raise ValueError("execute_day expects a single-day trace")
        session_starts = [s.start for s in day.screen_sessions]
        cursor: dict[int, float] = {}
        executed: list[NetworkActivity] = []
        deferred = 0
        for activity in day.activities:
            if activity.screen_on:
                executed.append(activity)
                continue
            compressed = activity.compressed(self.link.bandwidth_bps)
            idx = _nearest_session(session_starts, activity.time)
            if idx is None:
                # A day with no sessions at all: nothing to ride; the
                # oracle still batches everything at one moment.
                executed.append(compressed.moved_to(min(activity.time, DAY - compressed.duration)))
                deferred += 1
                continue
            start = cursor.get(idx, session_starts[idx])
            start = min(start, DAY - compressed.duration)
            executed.append(compressed.moved_to(start))
            cursor[idx] = start + compressed.duration + 0.2
            deferred += 1
        executed.sort(key=lambda a: a.time)
        return PolicyOutcome(
            policy=self.name,
            activities=executed,
            tail_policy=TruncatedTail(self.guard_s),
            user_interactions=len(day.usages),
            deferred=deferred,
        )


def _nearest_session(session_starts: list[float], time_s: float) -> int | None:
    """Index of the session whose start is closest to ``time_s``."""
    if not session_starts:
        return None
    idx = bisect.bisect_left(session_starts, time_s)
    candidates = [i for i in (idx - 1, idx) if 0 <= i < len(session_starts)]
    return min(candidates, key=lambda i: abs(session_starts[i] - time_s))
