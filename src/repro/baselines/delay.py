"""The "naive delay and batch" baseline (Qian et al. / Huang et al.).

Screen-off activities are held and released together at the next multiple
of a fixed interval ("uses a fixed interval to aggregate/delay screen-off
network activities") — so syncs landing inside the same interval tick
coalesce into one radio burst and share one tail.  The paper sweeps the
interval from 1 s to 600 s (Fig. 8) and deploys 10/20/60 s variants in
the Fig. 7 comparison, exposing the method's dilemma: small intervals
save almost nothing, large intervals interrupt the user — a user
interaction arriving while traffic is held means stale data or a blocked
sync (the "affected user activities" of Fig. 8(c)); the paper also notes
17% of interactions fall between adjacent sub-100 s screen-off slots,
which is why interval-fixed delays hurt.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro._util import DAY, check_positive
from repro.baselines.policy import PolicyOutcome
from repro.radio.rrc import FullTail
from repro.traces.events import NetworkActivity, Trace

#: Gap between transfers released at the same tick (stays within DCH).
_RELEASE_PACK_GAP_S = 0.2


@dataclass
class DelayPolicy:
    """Fixed-interval aggregate-and-release of screen-off activities."""

    interval_s: float
    name: str = ""

    #: Pure function of the day: safe to fan days over worker processes.
    day_independent = True

    def __post_init__(self) -> None:
        check_positive("interval_s", self.interval_s, strict=False)
        if not self.name:
            self.name = f"delay-{self.interval_s:g}s"

    def execute_day(self, day: Trace) -> PolicyOutcome:
        """Release each screen-off activity at the next interval tick.

        Screen-on (foreground) traffic is never delayed.  Activities whose
        release tick coincides are packed back-to-back so they share one
        radio burst.  A user interaction counts as *affected* when it
        starts while at least one activity is being held.
        """
        if day.n_days != 1:
            raise ValueError("execute_day expects a single-day trace")
        if self.interval_s == 0.0:
            return PolicyOutcome(
                policy=self.name,
                activities=list(day.activities),
                tail_policy=FullTail(),
                user_interactions=len(day.usages),
            )

        executed: list[NetworkActivity] = []
        hold_windows: list[tuple[float, float]] = []
        tick_cursor: dict[int, float] = {}
        deferred = 0
        for activity in day.activities:
            if activity.screen_on:
                executed.append(activity)
                continue
            tick = int(math.floor(activity.time / self.interval_s)) + 1
            release = tick * self.interval_s
            cursor = tick_cursor.get(tick, release)
            cursor = min(cursor, DAY - activity.duration)
            hold_windows.append((activity.time, max(release, activity.time)))
            executed.append(activity.moved_to(cursor))
            tick_cursor[tick] = cursor + activity.duration + _RELEASE_PACK_GAP_S
            deferred += 1
        executed.sort(key=lambda a: a.time)

        affected = sum(
            1
            for usage in day.usages
            if any(lo <= usage.time < hi for lo, hi in hold_windows)
        )
        return PolicyOutcome(
            policy=self.name,
            activities=executed,
            tail_policy=FullTail(),
            user_interactions=len(day.usages),
            affected_user_activities=affected,
            deferred=deferred,
        )
