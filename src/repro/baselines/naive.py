"""The stock-Android baseline: execute everything as recorded.

Every activity runs at its original time; the radio follows the carrier's
full inactivity timers.  This is the "Without NetMaster" / "Baseline" bar
of Fig. 7(a) and the denominator of every energy-saving fraction.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.baselines.policy import PolicyOutcome
from repro.radio.rrc import FullTail
from repro.traces.events import Trace


@dataclass
class NaivePolicy:
    """Default device behaviour — no scheduling, full RRC tails."""

    name: str = "baseline"

    #: Pure function of the day: safe to fan days over worker processes.
    day_independent = True

    def execute_day(self, day: Trace) -> PolicyOutcome:
        """Everything executes exactly as logged."""
        if day.n_days != 1:
            raise ValueError("execute_day expects a single-day trace")
        return PolicyOutcome(
            policy=self.name,
            activities=list(day.activities),
            tail_policy=FullTail(),
            user_interactions=len(day.usages),
        )
