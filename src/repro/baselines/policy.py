"""The scheduling-policy protocol shared by NetMaster and the baselines.

A policy takes one held-out day (plus optional training history) and
produces a :class:`PolicyOutcome`: the transfer schedule that actually
executed, the radio tail behaviour, any extra radio-on windows (duty-cycle
wake-ups), and the user-impact accounting.  The evaluation harness then
prices every outcome with the same RRC machine, which is what makes the
Fig. 7-9 comparisons apples-to-apples.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Protocol, runtime_checkable

from repro.radio.power import RadioPowerModel
from repro.radio.rrc import EnergyReport, FullTail, TailPolicy, radio_on_intervals, simulate
from repro.traces.events import NetworkActivity, Trace


@dataclass
class PolicyOutcome:
    """Everything a day under one policy produced."""

    policy: str
    activities: list[NetworkActivity]
    tail_policy: TailPolicy = field(default_factory=FullTail)
    extra_windows: list[tuple[float, float]] = field(default_factory=list)
    #: Optional per-activity tail allowances (fast dormancy): parallel to
    #: ``activities``; extra windows always get a zero tail when set.
    activity_tails: list[float] | None = None
    interrupts: int = 0
    user_interactions: int = 0
    affected_user_activities: int = 0
    deferred: int = 0
    #: Partial radio windows burned by failed transfer attempts (fault
    #: injection); priced as DCH time with a zero tail allowance when the
    #: outcome uses per-activity tails, with the policy tail otherwise.
    failed_windows: list[tuple[float, float]] = field(default_factory=list)
    #: RRC promotions that failed (charged promotion energy, no transfer).
    failed_promotions: int = 0
    #: Extra transfer attempts beyond the first, across all activities.
    retries: int = 0

    def transfer_windows(self) -> list[tuple[float, float]]:
        """Transfer intervals only (idle wake-ups are priced separately)."""
        # Same tuples as ``a.interval`` without the two property hops —
        # this listcomp runs once per priced cell.
        return [(a.time, a.time + a.duration) for a in self.activities]

    def priced_windows(self) -> list[tuple[float, float]]:
        """Transfer windows plus the partial windows of failed attempts."""
        return self.transfer_windows() + list(self.failed_windows)

    def priced_tail_policy(self) -> TailPolicy | None:
        """The tail policy the RRC pricing pass should use.

        ``None`` when per-activity tails are set — the allowances carry
        the tail semantics and the simulator must not also apply a
        policy-level cutoff.
        """
        return self.tail_policy if self.activity_tails is None else None

    def priced_window_tails(self) -> list[float] | None:
        """Per-window tail allowances aligned with :meth:`priced_windows`."""
        if self.activity_tails is None:
            return None
        if len(self.activity_tails) != len(self.activities):
            raise ValueError(
                f"activity_tails length {len(self.activity_tails)} does not match "
                f"{len(self.activities)} activities"
            )
        # A failed attempt never earns a tail: the radio is cut as soon as
        # the attempt aborts.
        return list(self.activity_tails) + [0.0] * len(self.failed_windows)

    def wake_energy_j(self, model: RadioPowerModel) -> float:
        """Cost of the idle duty-cycle wake-ups in ``extra_windows``.

        A wake-up with pending traffic is already priced through the
        transfer it services; an *idle* wake-up enables data briefly and
        exchanges control signalling without a data promotion — modelled
        as a FACH-level window (FACH promotion + FACH power).
        """
        if not self.extra_windows:
            return 0.0
        return sum(
            model.promo_fach_energy_j + model.p_fach_w * (hi - lo)
            for lo, hi in self.extra_windows
        )

    def energy(self, model: RadioPowerModel) -> EnergyReport:
        """RRC energy of this outcome under ``model`` (incl. wake-ups).

        Fault accounting rides on top of the base simulation: failed
        attempts are priced as extra (partial, tail-less) DCH windows and
        each failed promotion is charged one IDLE→DCH promotion.
        """
        base = simulate(
            self.priced_windows(),
            model,
            self.priced_tail_policy(),
            window_tails=self.priced_window_tails(),
        )
        return self.finalize_energy(base, model)

    def finalize_energy(self, base: EnergyReport, model: RadioPowerModel) -> EnergyReport:
        """Fold wake-up and fault surcharges into a base RRC report.

        Split out of :meth:`energy` so the columnar batch pricer
        (:mod:`repro.core.batch`) can apply the identical scalar
        adjustment to reports produced by the lane kernel.
        """
        wake_e = self.wake_energy_j(model)
        extra_e = wake_e + self.failed_promotions * model.promo_idle_energy_j
        if extra_e == 0.0:
            return base
        wake_s = sum(hi - lo for lo, hi in self.extra_windows)
        state = dict(base.state_energy_j)
        if wake_e:
            state["wake"] = wake_e
        if self.failed_promotions:
            state["promo"] = (
                state.get("promo", 0.0) + self.failed_promotions * model.promo_idle_energy_j
            )
        return EnergyReport(
            energy_j=base.energy_j + extra_e,
            radio_on_s=base.radio_on_s
            + wake_s
            + self.failed_promotions * model.promo_idle_dch_s,
            transfer_s=base.transfer_s,
            tail_s=base.tail_s,
            promo_idle_count=base.promo_idle_count + self.failed_promotions,
            promo_fach_count=base.promo_fach_count + len(self.extra_windows),
            window_count=base.window_count,
            state_energy_j=state,
        )

    def radio_on(self, model: RadioPowerModel) -> list[tuple[float, float]]:
        """Radio-on intervals of this outcome under ``model``.

        Includes the idle wake windows — the radio is enabled there even
        though no data moves.
        """
        intervals = radio_on_intervals(
            self.priced_windows(),
            model,
            self.priced_tail_policy(),
            window_tails=self.priced_window_tails(),
        )
        return self.merge_radio_on(intervals)

    def merge_radio_on(
        self, intervals: list[tuple[float, float]]
    ) -> list[tuple[float, float]]:
        """Fuse RRC radio-on intervals with the idle wake windows."""
        from repro._util import merge_intervals

        return merge_intervals(list(intervals) + list(self.extra_windows))

    @property
    def interrupt_ratio(self) -> float:
        """Wrong decisions per user interaction."""
        if self.user_interactions == 0:
            return 0.0
        return self.interrupts / self.user_interactions

    @property
    def affected_ratio(self) -> float:
        """Fraction of user interactions falling in deferral windows."""
        if self.user_interactions == 0:
            return 0.0
        return self.affected_user_activities / self.user_interactions

    def validate_payload(
        self,
        day: Trace,
        *,
        src_bytes: float | None = None,
        out_bytes: float | None = None,
    ) -> None:
        """Check payload conservation against the source day.

        ``src_bytes`` / ``out_bytes`` let batch pricers pass precomputed
        activity-payload sums (grids reuse the same day across policies);
        they must equal the sums computed here.
        """
        src = (
            sum(a.total_bytes for a in day.activities)
            if src_bytes is None
            else src_bytes
        )
        out = (
            sum(a.total_bytes for a in self.activities)
            if out_bytes is None
            else out_bytes
        )
        if abs(src - out) > 1e-6 * max(src, 1.0):
            raise ValueError(
                f"{self.policy}: payload not conserved ({src} -> {out} bytes)"
            )


@runtime_checkable
class SchedulingPolicy(Protocol):
    """A day-level network-activity scheduler.

    Policies may additionally expose a ``day_independent: bool`` class
    attribute: ``True`` declares that ``execute_day`` is a pure function
    of the day (no state carried between calls), which lets the parallel
    runner fan individual days of one policy over worker processes.
    Policies without the attribute are treated as stateful and only
    parallelized at the (policy × user) grid level, where each worker
    replays a full day sequence in order.
    """

    name: str

    def execute_day(self, day: Trace) -> PolicyOutcome:
        """Replay one single-day trace under this policy."""
        ...
