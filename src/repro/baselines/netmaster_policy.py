"""Adapter exposing the NetMaster middleware as a SchedulingPolicy.

Lets the evaluation harness run NetMaster side-by-side with the naive,
delay, batch and oracle baselines under identical accounting.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.baselines.policy import PolicyOutcome
from repro.core.netmaster import NetMaster, NetMasterConfig
from repro.traces.events import Trace


@dataclass
class NetMasterPolicy:
    """NetMaster trained on a history trace, replayed day by day."""

    history: Trace
    config: NetMasterConfig = field(default_factory=NetMasterConfig)
    name: str = "netmaster"

    #: The misprediction circuit breaker carries state between days, so
    #: a day sequence must replay in order inside one process; the
    #: parallel runner therefore only fans NetMaster at the grid level.
    day_independent = False

    def __post_init__(self) -> None:
        self._middleware = NetMaster(self.config)
        self._middleware.train(self.history)

    @property
    def middleware(self) -> NetMaster:
        """The trained middleware (for plan introspection in tests)."""
        return self._middleware

    def execute_day(self, day: Trace) -> PolicyOutcome:
        """Run the full middleware pipeline over one held-out day."""
        execution = self._middleware.execute_day(day)
        return PolicyOutcome(
            policy=self.name,
            activities=execution.activities,
            activity_tails=execution.activity_tails,
            extra_windows=execution.wake_windows,
            interrupts=execution.interrupts,
            user_interactions=execution.user_interactions,
            deferred=execution.deferred_to_slots + execution.duty_serviced,
        )
