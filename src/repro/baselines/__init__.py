"""Scheduling policies: stock baseline, delay, batch, oracle, NetMaster."""

from repro.baselines.batch import BatchPolicy
from repro.baselines.delay import DelayPolicy
from repro.baselines.delay_batch import DelayBatchPolicy
from repro.baselines.naive import NaivePolicy
from repro.baselines.netmaster_policy import NetMasterPolicy
from repro.baselines.oracle import OraclePolicy
from repro.baselines.policy import PolicyOutcome, SchedulingPolicy

__all__ = [
    "BatchPolicy",
    "DelayBatchPolicy",
    "DelayPolicy",
    "NaivePolicy",
    "NetMasterPolicy",
    "OraclePolicy",
    "PolicyOutcome",
    "SchedulingPolicy",
]
