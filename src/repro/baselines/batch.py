"""The "naive batch" baseline (Huang et al., Fig. 9).

Up to ``max_batch`` consecutive screen-off activities are held and
released together when the batch fills; the screen coming on flushes
whatever is pending (the user's radio is up anyway).  The paper finds the
benefit saturates past 5 batched activities because users rarely have
more simultaneous background streams than that, given the ≤1% interrupt
constraint.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass

from repro._util import DAY
from repro.baselines.policy import PolicyOutcome
from repro.radio.rrc import FullTail
from repro.traces.events import NetworkActivity, Trace


@dataclass
class BatchPolicy:
    """Aggregate up to ``max_batch`` consecutive screen-off activities."""

    max_batch: int
    name: str = ""

    #: Pure function of the day: safe to fan days over worker processes.
    day_independent = True

    def __post_init__(self) -> None:
        if self.max_batch < 0:
            raise ValueError(f"max_batch must be >= 0, got {self.max_batch}")
        if not self.name:
            self.name = f"batch-{self.max_batch}"

    def execute_day(self, day: Trace) -> PolicyOutcome:
        """Hold screen-off activities until the batch fills or flushes."""
        if day.n_days != 1:
            raise ValueError("execute_day expects a single-day trace")
        if self.max_batch <= 1:
            # Batch size 0/1 degenerates to no batching at all.
            return PolicyOutcome(
                policy=self.name,
                activities=list(day.activities),
                tail_policy=FullTail(),
                user_interactions=len(day.usages),
            )

        session_starts = [s.start for s in day.screen_sessions]
        executed: list[NetworkActivity] = []
        hold_windows: list[tuple[float, float]] = []
        pending: list[NetworkActivity] = []
        deferred = 0

        def flush(at: float) -> None:
            nonlocal deferred
            cursor = at
            for held in pending:
                hold_windows.append((held.time, at))
                executed.append(held.moved_to(min(cursor, DAY - held.duration)))
                cursor += held.duration + 0.2
                deferred += 1
            pending.clear()

        for activity in day.activities:
            # The screen coming on flushes the pending batch first.
            while pending:
                next_on = _next_session_on(session_starts, pending[0].time)
                if next_on is not None and next_on <= activity.time:
                    flush(next_on)
                else:
                    break
            if activity.screen_on:
                executed.append(activity)
                continue
            pending.append(activity)
            if len(pending) >= self.max_batch:
                flush(activity.time)
        if pending:
            next_on = _next_session_on(session_starts, pending[0].time)
            flush(next_on if next_on is not None else DAY - 1.0)

        executed.sort(key=lambda a: a.time)
        affected = sum(
            1
            for usage in day.usages
            if any(lo <= usage.time < hi for lo, hi in hold_windows)
        )
        return PolicyOutcome(
            policy=self.name,
            activities=executed,
            tail_policy=FullTail(),
            user_interactions=len(day.usages),
            affected_user_activities=affected,
            deferred=deferred,
        )


def _next_session_on(session_starts: list[float], after: float) -> float | None:
    """First screen-on time at or after ``after``."""
    idx = bisect.bisect_left(session_starts, after)
    if idx < len(session_starts):
        return session_starts[idx]
    return None
