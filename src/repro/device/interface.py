"""The cellular network interface of the simulated device.

Tracks the data switch (`svc data enable` / `svc data disable` in the
real middleware), accepts transfer requests, records the resulting
transfer windows, and reports energy through the RRC machine at the end
of a run.  Transfers requested while data is disabled are refused — that
refusal is what the NetMaster runtime observes as a potential wrong
decision when the requester turns out to be the user.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.device.kernel import Simulator
from repro.radio.power import RadioPowerModel
from repro.radio.rrc import EnergyReport, TailPolicy, simulate
from repro.telemetry import metrics
from repro.traces.events import NetworkActivity


@dataclass
class TransferRecord:
    """One completed transfer on the interface."""

    start: float
    end: float
    app: str
    payload_bytes: float

    @property
    def interval(self) -> tuple[float, float]:
        """``(start, end)`` window of the transfer."""
        return (self.start, self.end)


@dataclass
class NetworkInterface:
    """Data-switch plus transfer recorder."""

    simulator: Simulator
    model: RadioPowerModel
    data_enabled: bool = True
    transfers: list[TransferRecord] = field(default_factory=list)
    refused: list[tuple[float, str]] = field(default_factory=list)
    switch_events: list[tuple[float, bool]] = field(default_factory=list)
    #: Partial radio windows burned by failed transfer attempts.
    failed_windows: list[tuple[float, float]] = field(default_factory=list)
    #: RRC promotions that failed before any data moved.
    failed_promotions: int = 0

    # ------------------------------------------------------------------
    # the data switch
    # ------------------------------------------------------------------
    def enable(self) -> None:
        """`svc data enable` — allow transfers from now on."""
        if not self.data_enabled:
            self.data_enabled = True
            self.switch_events.append((self.simulator.now, True))

    def disable(self) -> None:
        """`svc data disable` — refuse transfers from now on."""
        if self.data_enabled:
            self.data_enabled = False
            self.switch_events.append((self.simulator.now, False))

    # ------------------------------------------------------------------
    # transfers
    # ------------------------------------------------------------------
    def request_transfer(self, activity: NetworkActivity) -> bool:
        """Attempt a transfer now; returns whether it was admitted.

        The transfer occupies ``activity.duration`` seconds of link time
        starting at the current simulation instant.
        """
        now = self.simulator.now
        if not self.data_enabled:
            self.refused.append((now, activity.app))
            metrics().inc("device.interface.refused")
            return False
        self.transfers.append(
            TransferRecord(
                start=now,
                end=now + activity.duration,
                app=activity.app,
                payload_bytes=activity.total_bytes,
            )
        )
        metrics().inc("device.interface.transfers")
        return True

    def record_failed_attempt(self, start: float, end: float) -> None:
        """Account a transfer attempt that aborted mid-flight.

        The radio burned DCH power over ``[start, end)`` but no payload
        completed; the window is priced alongside the real transfers.
        """
        if end < start:
            raise ValueError(f"invalid failed-attempt window [{start}, {end}]")
        self.failed_windows.append((float(start), float(end)))
        metrics().inc("device.interface.failed_attempts")

    def record_failed_promotion(self) -> None:
        """Account an RRC promotion that failed before any data moved."""
        self.failed_promotions += 1
        metrics().inc("device.interface.failed_promotions")

    # ------------------------------------------------------------------
    # accounting
    # ------------------------------------------------------------------
    def windows(self) -> list[tuple[float, float]]:
        """All completed transfer windows."""
        return [t.interval for t in self.transfers]

    def energy(self, tail_policy: TailPolicy | None = None) -> EnergyReport:
        """RRC energy of everything transferred so far.

        Failed attempts are priced as extra DCH windows; each failed
        promotion is charged one IDLE→DCH promotion on top.
        """
        base = simulate(
            self.windows() + self.failed_windows, self.model, tail_policy
        )
        if self.failed_promotions == 0:
            return base
        promo_e = self.failed_promotions * self.model.promo_idle_energy_j
        state = dict(base.state_energy_j)
        state["promo"] = state.get("promo", 0.0) + promo_e
        return EnergyReport(
            energy_j=base.energy_j + promo_e,
            radio_on_s=base.radio_on_s
            + self.failed_promotions * self.model.promo_idle_dch_s,
            transfer_s=base.transfer_s,
            tail_s=base.tail_s,
            promo_idle_count=base.promo_idle_count + self.failed_promotions,
            promo_fach_count=base.promo_fach_count,
            window_count=base.window_count,
            state_energy_j=state,
        )

    @property
    def total_payload_bytes(self) -> float:
        """Total bytes moved over the interface."""
        return sum(t.payload_bytes for t in self.transfers)
