"""The cellular network interface of the simulated device.

Tracks the data switch (`svc data enable` / `svc data disable` in the
real middleware), accepts transfer requests, records the resulting
transfer windows, and reports energy through the RRC machine at the end
of a run.  Transfers requested while data is disabled are refused — that
refusal is what the NetMaster runtime observes as a potential wrong
decision when the requester turns out to be the user.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.device.kernel import Simulator
from repro.radio.power import RadioPowerModel
from repro.radio.rrc import EnergyReport, TailPolicy, simulate
from repro.traces.events import NetworkActivity


@dataclass
class TransferRecord:
    """One completed transfer on the interface."""

    start: float
    end: float
    app: str
    payload_bytes: float

    @property
    def interval(self) -> tuple[float, float]:
        """``(start, end)`` window of the transfer."""
        return (self.start, self.end)


@dataclass
class NetworkInterface:
    """Data-switch plus transfer recorder."""

    simulator: Simulator
    model: RadioPowerModel
    data_enabled: bool = True
    transfers: list[TransferRecord] = field(default_factory=list)
    refused: list[tuple[float, str]] = field(default_factory=list)
    switch_events: list[tuple[float, bool]] = field(default_factory=list)

    # ------------------------------------------------------------------
    # the data switch
    # ------------------------------------------------------------------
    def enable(self) -> None:
        """`svc data enable` — allow transfers from now on."""
        if not self.data_enabled:
            self.data_enabled = True
            self.switch_events.append((self.simulator.now, True))

    def disable(self) -> None:
        """`svc data disable` — refuse transfers from now on."""
        if self.data_enabled:
            self.data_enabled = False
            self.switch_events.append((self.simulator.now, False))

    # ------------------------------------------------------------------
    # transfers
    # ------------------------------------------------------------------
    def request_transfer(self, activity: NetworkActivity) -> bool:
        """Attempt a transfer now; returns whether it was admitted.

        The transfer occupies ``activity.duration`` seconds of link time
        starting at the current simulation instant.
        """
        now = self.simulator.now
        if not self.data_enabled:
            self.refused.append((now, activity.app))
            return False
        self.transfers.append(
            TransferRecord(
                start=now,
                end=now + activity.duration,
                app=activity.app,
                payload_bytes=activity.total_bytes,
            )
        )
        return True

    # ------------------------------------------------------------------
    # accounting
    # ------------------------------------------------------------------
    def windows(self) -> list[tuple[float, float]]:
        """All completed transfer windows."""
        return [t.interval for t in self.transfers]

    def energy(self, tail_policy: TailPolicy | None = None) -> EnergyReport:
        """RRC energy of everything transferred so far."""
        return simulate(self.windows(), self.model, tail_policy)

    @property
    def total_payload_bytes(self) -> float:
        """Total bytes moved over the interface."""
        return sum(t.payload_bytes for t in self.transfers)
