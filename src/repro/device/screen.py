"""Screen state model for the device simulator.

Replays a trace's screen sessions on the DES clock and notifies
registered listeners on every transition — the same role the
``SCREEN_ON``/``SCREEN_OFF`` broadcast receivers play in NetMaster's
monitoring component on a real handset.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.device.kernel import Simulator
from repro.traces.events import ScreenSession

ScreenListener = Callable[[float, bool], None]


@dataclass
class ScreenModel:
    """Drives screen on/off events and answers state queries."""

    simulator: Simulator
    sessions: list[ScreenSession] = field(default_factory=list)
    _on: bool = field(init=False, default=False)
    _listeners: list[ScreenListener] = field(default_factory=list, init=False)
    _transitions: int = field(init=False, default=0)

    def __post_init__(self) -> None:
        self.sessions = sorted(self.sessions, key=lambda s: s.start)
        for session in self.sessions:
            self.simulator.schedule_at(session.start, self._make_flip(True))
            self.simulator.schedule_at(session.end, self._make_flip(False))

    def _make_flip(self, on: bool) -> Callable[[], None]:
        def flip() -> None:
            if self._on == on:
                return
            self._on = on
            self._transitions += 1
            for listener in list(self._listeners):
                listener(self.simulator.now, on)

        return flip

    @property
    def is_on(self) -> bool:
        """Current screen state."""
        return self._on

    @property
    def transitions(self) -> int:
        """Number of on/off flips fired so far."""
        return self._transitions

    def subscribe(self, listener: ScreenListener) -> None:
        """Register a ``(time, is_on)`` transition callback."""
        self._listeners.append(listener)

    def unsubscribe(self, listener: ScreenListener) -> None:
        """Remove a previously registered callback."""
        self._listeners.remove(listener)
