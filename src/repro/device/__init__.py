"""Device simulator substrate: DES kernel, screen, interface, monitor."""

from repro.device.interface import NetworkInterface, TransferRecord
from repro.device.kernel import EventHandle, SimulationError, Simulator
from repro.device.monitoring import (
    SCREEN_OFF_SAMPLE_S,
    SCREEN_ON_SAMPLE_S,
    MonitoringComponent,
)
from repro.device.screen import ScreenModel
from repro.device.simulator import DeviceRunReport, DeviceSimulator

__all__ = [
    "SCREEN_OFF_SAMPLE_S",
    "SCREEN_ON_SAMPLE_S",
    "DeviceRunReport",
    "DeviceSimulator",
    "EventHandle",
    "MonitoringComponent",
    "NetworkInterface",
    "ScreenModel",
    "SimulationError",
    "Simulator",
    "TransferRecord",
]
