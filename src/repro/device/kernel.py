"""A small discrete-event simulation kernel.

The device simulator replays traces as streams of timestamped events
(screen flips, app launches, transfers, duty-cycle timers).  This kernel
provides the usual DES machinery: a monotonic clock, a binary-heap event
queue with stable FIFO ordering for simultaneous events, one-shot and
periodic timers, and cancellation.

It is deliberately minimal — callbacks, not coroutines — because every
process in this system is short and reactive; the HPC guides' advice
("make it work, profile before optimizing") applies: the heap operations
are nowhere near the profile's hot spots, which live in the NumPy energy
accounting.
"""

from __future__ import annotations

import heapq
import itertools
import math
from dataclasses import dataclass, field
from typing import Callable


class SimulationError(RuntimeError):
    """Raised on kernel misuse (scheduling in the past, etc.)."""


@dataclass(frozen=True, slots=True)
class EventHandle:
    """Opaque handle returned by the ``schedule_*`` methods; cancellable."""

    seq: int
    time: float


@dataclass(order=True)
class _QueuedEvent:
    time: float
    seq: int
    callback: Callable[[], None] = field(compare=False)
    cancelled: bool = field(default=False, compare=False)


class Simulator:
    """Event-driven simulator with a float-seconds clock."""

    def __init__(self, start_time: float = 0.0) -> None:
        self._now = float(start_time)
        self._queue: list[_QueuedEvent] = []
        self._handles: dict[int, _QueuedEvent] = {}
        self._seq = itertools.count()
        self._events_run = 0
        self._periodic_chains: dict[int, dict] = {}

    @property
    def now(self) -> float:
        """Current simulation time (seconds)."""
        return self._now

    @property
    def events_run(self) -> int:
        """Total callbacks executed so far."""
        return self._events_run

    @property
    def pending(self) -> int:
        """Number of live (non-cancelled) queued events."""
        return sum(1 for e in self._queue if not e.cancelled)

    # ------------------------------------------------------------------
    # scheduling
    # ------------------------------------------------------------------
    def schedule_at(self, time: float, callback: Callable[[], None]) -> EventHandle:
        """Run ``callback`` at absolute ``time`` (must not be in the past)."""
        if time < self._now:
            raise SimulationError(f"cannot schedule at t={time} < now={self._now}")
        event = _QueuedEvent(time=float(time), seq=next(self._seq), callback=callback)
        heapq.heappush(self._queue, event)
        self._handles[event.seq] = event
        return EventHandle(seq=event.seq, time=event.time)

    def schedule_in(self, delay: float, callback: Callable[[], None]) -> EventHandle:
        """Run ``callback`` after ``delay`` seconds."""
        if delay < 0:
            raise SimulationError(f"delay must be >= 0, got {delay}")
        return self.schedule_at(self._now + delay, callback)

    def schedule_every(
        self,
        interval: float,
        callback: Callable[[], None],
        *,
        start_in: float | None = None,
        until: float = math.inf,
    ) -> EventHandle:
        """Run ``callback`` every ``interval`` seconds until ``until``.

        Returns a handle representing the whole periodic chain; passing it
        to :meth:`cancel` stops future occurrences.
        """
        if interval <= 0:
            raise SimulationError(f"interval must be > 0, got {interval}")
        state: dict = {"cancelled": False, "handle": None}

        def tick() -> None:
            if state["cancelled"]:
                return
            callback()
            next_time = self._now + interval
            if next_time < until:
                state["handle"] = self.schedule_at(next_time, tick)

        first = self.schedule_in(interval if start_in is None else start_in, tick)
        state["handle"] = first
        self._periodic_chains[first.seq] = state
        return first

    def cancel(self, handle: EventHandle) -> bool:
        """Cancel a pending event or periodic chain.

        Returns ``False`` when the event already ran or was cancelled.
        """
        chain = self._periodic_chains.pop(handle.seq, None)
        if chain is not None:
            chain["cancelled"] = True
            inner = chain.get("handle")
            if isinstance(inner, EventHandle):
                handle = inner
        event = self._handles.get(handle.seq)
        if event is None or event.cancelled:
            return False
        event.cancelled = True
        return True

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def step(self) -> bool:
        """Run the next live event; returns False when the queue is empty."""
        while self._queue:
            event = heapq.heappop(self._queue)
            self._handles.pop(event.seq, None)
            if event.cancelled:
                continue
            self._now = event.time
            self._events_run += 1
            event.callback()
            return True
        return False

    def run(self, until: float = math.inf) -> None:
        """Run until the queue drains or the clock would pass ``until``.

        With a finite ``until`` the clock is advanced to exactly ``until``
        afterwards (events scheduled at ``until`` itself still run).
        """
        while self._queue:
            head = self._queue[0]
            if head.cancelled:
                heapq.heappop(self._queue)
                self._handles.pop(head.seq, None)
                continue
            if head.time > until:
                break
            self.step()
        if not math.isinf(until) and self._now < until:
            self._now = until
