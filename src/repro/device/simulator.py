"""Whole-device replay: trace in, monitored store and energy out.

:class:`DeviceSimulator` wires the DES kernel, screen model, network
interface and monitoring component into one simulated handset and replays
a (possibly rescheduled) day through it.  It serves two purposes:

* **validation** — the energy a replay reports must agree with the
  analytic RRC accounting used by the evaluation harness (the
  integration tests assert exactly this);
* **closing the loop** — the monitoring store a replay produces can be
  fed straight back into :class:`~repro.habits.prediction.HabitModel`,
  demonstrating the full monitor → mine → schedule cycle of Fig. 6 on
  simulated hardware.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Sequence

from repro._util import DAY
from repro.device.interface import NetworkInterface
from repro.device.kernel import Simulator
from repro.device.monitoring import MonitoringComponent
from repro.device.screen import ScreenModel
from repro.radio.power import RadioPowerModel, wcdma_model
from repro.radio.rrc import EnergyReport, TailPolicy
from repro.telemetry import metrics, tracer
from repro.traces.events import NetworkActivity, Trace
from repro.traces.store import TraceStore

if TYPE_CHECKING:  # imported lazily at runtime to keep device free of faults
    from repro.faults.injector import FaultInjector
    from repro.faults.retry import RetryPolicy


@dataclass
class DeviceRunReport:
    """Everything one replayed day produced."""

    energy: EnergyReport
    store: TraceStore
    transfers: int
    refused: list[tuple[float, str]]
    payload_bytes: float
    monitor_samples: int
    screen_transitions: int
    events_run: int
    #: Fault accounting (non-zero only when replaying with an injector).
    retries: int = 0
    failed_attempts: int = 0
    failed_promotions: int = 0
    forced_deliveries: int = 0


@dataclass
class DeviceSimulator:
    """Replays single-day traces on a simulated handset."""

    model: RadioPowerModel = field(default_factory=wcdma_model)

    def replay(
        self,
        day: Trace,
        *,
        schedule: Sequence[NetworkActivity] | None = None,
        tail_policy: TailPolicy | None = None,
        data_off_windows: Sequence[tuple[float, float]] | None = None,
        injector: "FaultInjector | None" = None,
        retry: "RetryPolicy | None" = None,
        day_key: int = 0,
    ) -> DeviceRunReport:
        """Replay one day; optionally with a rescheduled activity list.

        ``schedule`` defaults to the day's own activities (stock replay).
        ``data_off_windows`` force the data switch off during the given
        intervals — transfers requested there are refused and reported.

        When an ``injector`` is given, every transfer runs through the
        deadline-aware retry loop before being scheduled: failed attempts
        are charged on the interface as partial radio windows, failed
        promotions as promotion energy, and the transfer itself executes
        at its (possibly later) success time — never more than the retry
        policy's ``max_delay_s`` past its scheduled time.
        """
        if day.n_days != 1:
            raise ValueError("replay expects a single-day trace")
        sim = Simulator()
        screen = ScreenModel(sim, list(day.screen_sessions))
        interface = NetworkInterface(sim, self.model)
        monitor = MonitoringComponent(sim, screen, interface)

        for usage in day.usages:
            sim.schedule_at(usage.time, _make_launch(monitor, usage))

        activities = list(day.activities) if schedule is None else list(schedule)
        retries = failed_attempts = forced = 0
        if injector is not None and not injector.plan.inert:
            from repro.faults.retry import RetryPolicy, run_with_retries

            if retry is None:
                retry = RetryPolicy()
            faulted: list[NetworkActivity] = []
            for index, activity in enumerate(activities):
                deadline = max(DAY - activity.duration, activity.time)
                attempt = run_with_retries(
                    activity,
                    activity.time,
                    injector,
                    retry,
                    day_key=day_key,
                    index=index,
                    deadline=deadline,
                )
                retries += attempt.retries
                failed_attempts += len(attempt.failed_windows)
                forced += int(attempt.forced)
                for lo, hi in attempt.failed_windows:
                    interface.record_failed_attempt(lo, hi)
                for _ in range(attempt.failed_promotions):
                    interface.record_failed_promotion()
                faulted.append(
                    activity
                    if attempt.time == activity.time
                    else activity.moved_to(attempt.time)
                )
            activities = faulted
        for activity in activities:
            sim.schedule_at(activity.time, _make_transfer(monitor, interface, activity))

        if data_off_windows:
            for off_start, off_end in data_off_windows:
                if off_end < off_start:
                    raise ValueError(f"invalid data-off window [{off_start}, {off_end}]")
                sim.schedule_at(off_start, interface.disable)
                sim.schedule_at(off_end, interface.enable)

        with tracer().span("device-replay", "device", events=len(activities)):
            sim.run(until=DAY)
        store = monitor.finalize(at=DAY)
        reg = metrics()
        if reg.enabled:
            reg.inc("device.simulator.replays")
            reg.inc("device.simulator.events_run", sim.events_run)
            if retries:
                reg.inc("device.simulator.retries", retries)
            if forced:
                reg.inc("device.simulator.forced_deliveries", forced)
        return DeviceRunReport(
            energy=interface.energy(tail_policy),
            store=store,
            transfers=len(interface.transfers),
            refused=list(interface.refused),
            payload_bytes=interface.total_payload_bytes,
            monitor_samples=monitor.samples_taken,
            screen_transitions=screen.transitions,
            events_run=sim.events_run,
            retries=retries,
            failed_attempts=failed_attempts,
            failed_promotions=interface.failed_promotions,
            forced_deliveries=forced,
        )


def _make_launch(monitor: MonitoringComponent, usage):
    def launch() -> None:
        monitor.record_app_launch(usage)

    return launch


def _make_transfer(
    monitor: MonitoringComponent,
    interface: NetworkInterface,
    activity: NetworkActivity,
):
    def transfer() -> None:
        if interface.request_transfer(activity):
            monitor.record_network_activity(activity)

    return transfer
