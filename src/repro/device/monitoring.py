"""The monitoring component running on the simulated device.

Implements the hybrid recording model of paper Section V-A on the DES:

* **event triggers** — broadcast receivers for screen transitions and app
  launches record state changes the moment they happen;
* **time triggers** — byte counters are sampled by a 1 s timer while the
  screen is on and a 30 s timer while it is off (user intensity is heavy
  when the screen is on, so the sampling rate follows);
* records pass through the 500 KB in-memory :class:`WriteCache` so flash
  writes are batched.

The component's output is a :class:`~repro.traces.store.TraceStore`, the
database the mining component reads.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.device.interface import NetworkInterface
from repro.device.kernel import EventHandle, Simulator
from repro.device.screen import ScreenModel
from repro.telemetry import metrics
from repro.traces.events import AppUsage, NetworkActivity, ScreenSession
from repro.traces.store import TraceStore

#: Sampling period of the byte counters while the screen is on.
SCREEN_ON_SAMPLE_S = 1.0

#: Sampling period while the screen is off.
SCREEN_OFF_SAMPLE_S = 30.0


@dataclass
class MonitoringComponent:
    """Event/time-triggered recorder feeding the on-device store."""

    simulator: Simulator
    screen: ScreenModel
    interface: NetworkInterface
    store: TraceStore = field(default_factory=TraceStore)
    samples_taken: int = 0
    _session_start: float | None = field(init=False, default=None)
    _sample_timer: EventHandle | None = field(init=False, default=None)
    _sampled_transfers: int = field(init=False, default=0)

    def __post_init__(self) -> None:
        self.screen.subscribe(self._on_screen)
        self._arm_timer(self.screen.is_on)

    # ------------------------------------------------------------------
    # event triggers
    # ------------------------------------------------------------------
    def _on_screen(self, time: float, on: bool) -> None:
        if on:
            self._session_start = time
        else:
            if self._session_start is not None:
                self.store.record_screen(ScreenSession(self._session_start, time))
                self._session_start = None
        # The sampling timer follows the screen state.
        self._arm_timer(on)

    def record_app_launch(self, usage: AppUsage) -> None:
        """Event trigger: a foreground app came up."""
        self.store.record_usage(usage)

    def record_network_activity(self, activity: NetworkActivity) -> None:
        """Event trigger: the interface admitted a transfer."""
        self.store.record_network(activity)

    # ------------------------------------------------------------------
    # time triggers
    # ------------------------------------------------------------------
    def _arm_timer(self, screen_on: bool) -> None:
        if self._sample_timer is not None:
            self.simulator.cancel(self._sample_timer)
        period = SCREEN_ON_SAMPLE_S if screen_on else SCREEN_OFF_SAMPLE_S
        self._sample_timer = self.simulator.schedule_every(period, self._sample)

    def _sample(self) -> None:
        """Sample the interface byte counters (non-state variables)."""
        self.samples_taken += 1
        self._sampled_transfers = len(self.interface.transfers)

    # ------------------------------------------------------------------
    # shutdown
    # ------------------------------------------------------------------
    def finalize(self, at: float | None = None) -> TraceStore:
        """Close any open session, flush the cache, return the store."""
        if self._session_start is not None:
            end = self.simulator.now if at is None else at
            if end > self._session_start:
                self.store.record_screen(ScreenSession(self._session_start, end))
            self._session_start = None
        if self._sample_timer is not None:
            self.simulator.cancel(self._sample_timer)
            self._sample_timer = None
        self.store.checkpoint()
        # Aggregated here rather than per sample — _sample runs every
        # simulated second of screen-on time, far too hot to instrument.
        metrics().inc("device.monitoring.samples", self.samples_taken)
        return self.store
