"""Trace serialization: JSONL and CSV round-tripping.

Generated cohorts can be persisted and re-loaded so experiments need not
regenerate traces, and so external traces in the same schema can be fed to
the library.  JSONL keeps one event per line with a ``kind`` tag; CSV
writes three sibling files (``*_sessions.csv``, ``*_usages.csv``,
``*_activities.csv``).
"""

from __future__ import annotations

import csv
import json
from pathlib import Path

from repro.traces.events import AppUsage, NetworkActivity, ScreenSession, Trace

_FORMAT_VERSION = 1


def trace_to_jsonl(trace: Trace, path: str | Path) -> None:
    """Write a trace as JSON-lines (header line + one line per event)."""
    path = Path(path)
    with path.open("w") as fh:
        header = {
            "kind": "header",
            "version": _FORMAT_VERSION,
            "user_id": trace.user_id,
            "n_days": trace.n_days,
            "start_weekday": trace.start_weekday,
        }
        fh.write(json.dumps(header) + "\n")
        for s in trace.screen_sessions:
            fh.write(json.dumps({"kind": "screen", "start": s.start, "end": s.end}) + "\n")
        for u in trace.usages:
            fh.write(
                json.dumps(
                    {"kind": "usage", "time": u.time, "app": u.app, "duration": u.duration}
                )
                + "\n"
            )
        for a in trace.activities:
            fh.write(
                json.dumps(
                    {
                        "kind": "network",
                        "time": a.time,
                        "app": a.app,
                        "down_bytes": a.down_bytes,
                        "up_bytes": a.up_bytes,
                        "duration": a.duration,
                        "screen_on": a.screen_on,
                    }
                )
                + "\n"
            )


def trace_from_jsonl(path: str | Path) -> Trace:
    """Load a trace previously written by :func:`trace_to_jsonl`."""
    path = Path(path)
    header = None
    sessions: list[ScreenSession] = []
    usages: list[AppUsage] = []
    activities: list[NetworkActivity] = []
    with path.open() as fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            obj = json.loads(line)
            kind = obj.pop("kind")
            if kind == "header":
                if obj.get("version") != _FORMAT_VERSION:
                    raise ValueError(f"unsupported trace format version: {obj.get('version')}")
                header = obj
            elif kind == "screen":
                sessions.append(ScreenSession(obj["start"], obj["end"]))
            elif kind == "usage":
                usages.append(AppUsage(obj["time"], obj["app"], obj["duration"]))
            elif kind == "network":
                activities.append(NetworkActivity(**obj))
            else:
                raise ValueError(f"unknown record kind: {kind!r}")
    if header is None:
        raise ValueError(f"{path} has no header line")
    return Trace(
        user_id=header["user_id"],
        n_days=header["n_days"],
        start_weekday=header["start_weekday"],
        screen_sessions=sessions,
        usages=usages,
        activities=activities,
    )


def trace_to_csv(trace: Trace, prefix: str | Path) -> list[Path]:
    """Write a trace as three CSV files sharing ``prefix``.

    Returns the paths written: ``<prefix>_meta.csv``,
    ``<prefix>_sessions.csv``, ``<prefix>_usages.csv``,
    ``<prefix>_activities.csv``.
    """
    prefix = Path(prefix)
    paths = []

    meta_path = prefix.with_name(prefix.name + "_meta.csv")
    with meta_path.open("w", newline="") as fh:
        writer = csv.writer(fh)
        writer.writerow(["user_id", "n_days", "start_weekday", "version"])
        writer.writerow([trace.user_id, trace.n_days, trace.start_weekday, _FORMAT_VERSION])
    paths.append(meta_path)

    sessions_path = prefix.with_name(prefix.name + "_sessions.csv")
    with sessions_path.open("w", newline="") as fh:
        writer = csv.writer(fh)
        writer.writerow(["start", "end"])
        for s in trace.screen_sessions:
            writer.writerow([s.start, s.end])
    paths.append(sessions_path)

    usages_path = prefix.with_name(prefix.name + "_usages.csv")
    with usages_path.open("w", newline="") as fh:
        writer = csv.writer(fh)
        writer.writerow(["time", "app", "duration"])
        for u in trace.usages:
            writer.writerow([u.time, u.app, u.duration])
    paths.append(usages_path)

    activities_path = prefix.with_name(prefix.name + "_activities.csv")
    with activities_path.open("w", newline="") as fh:
        writer = csv.writer(fh)
        writer.writerow(["time", "app", "down_bytes", "up_bytes", "duration", "screen_on"])
        for a in trace.activities:
            writer.writerow(
                [a.time, a.app, a.down_bytes, a.up_bytes, a.duration, int(a.screen_on)]
            )
    paths.append(activities_path)
    return paths


def trace_from_csv(prefix: str | Path) -> Trace:
    """Load a trace previously written by :func:`trace_to_csv`."""
    prefix = Path(prefix)

    meta_path = prefix.with_name(prefix.name + "_meta.csv")
    with meta_path.open() as fh:
        rows = list(csv.DictReader(fh))
    if len(rows) != 1:
        raise ValueError(f"{meta_path} must contain exactly one metadata row")
    meta = rows[0]

    sessions_path = prefix.with_name(prefix.name + "_sessions.csv")
    with sessions_path.open() as fh:
        sessions = [
            ScreenSession(float(r["start"]), float(r["end"])) for r in csv.DictReader(fh)
        ]

    usages_path = prefix.with_name(prefix.name + "_usages.csv")
    with usages_path.open() as fh:
        usages = [
            AppUsage(float(r["time"]), r["app"], float(r["duration"]))
            for r in csv.DictReader(fh)
        ]

    activities_path = prefix.with_name(prefix.name + "_activities.csv")
    with activities_path.open() as fh:
        activities = [
            NetworkActivity(
                time=float(r["time"]),
                app=r["app"],
                down_bytes=float(r["down_bytes"]),
                up_bytes=float(r["up_bytes"]),
                duration=float(r["duration"]),
                screen_on=bool(int(r["screen_on"])),
            )
            for r in csv.DictReader(fh)
        ]

    return Trace(
        user_id=meta["user_id"],
        n_days=int(meta["n_days"]),
        start_weekday=int(meta["start_weekday"]),
        screen_sessions=sessions,
        usages=usages,
        activities=activities,
    )


def cohort_to_dir(traces: list[Trace], directory: str | Path) -> list[Path]:
    """Persist a cohort as one JSONL file per user under ``directory``."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    paths = []
    for trace in traces:
        path = directory / f"{trace.user_id}.jsonl"
        trace_to_jsonl(trace, path)
        paths.append(path)
    return paths


def cohort_from_dir(directory: str | Path) -> list[Trace]:
    """Load every ``*.jsonl`` trace under ``directory`` (sorted by name)."""
    directory = Path(directory)
    return [trace_from_jsonl(p) for p in sorted(directory.glob("*.jsonl"))]
