"""Trace serialization: JSONL and CSV round-tripping.

Generated cohorts can be persisted and re-loaded so experiments need not
regenerate traces, and so external traces in the same schema can be fed to
the library.  JSONL keeps one event per line with a ``kind`` tag; CSV
writes three sibling files (``*_sessions.csv``, ``*_usages.csv``,
``*_activities.csv``).

Two loading modes exist for each format.  The strict loaders
(:func:`trace_from_jsonl`, :func:`trace_from_csv`) raise on the first
malformed record — right for traces this library wrote itself.  The
lenient loaders (:func:`trace_from_jsonl_lenient`,
:func:`trace_from_csv_lenient`) accept what a real fleet uploads:
truncated lines, corrupt JSON, impossible values, and sessions that
contradict activity flags are skipped (or repaired) and *reported*
instead of crashing the pipeline, so one bad phone cannot poison a
cohort-wide ingest.
"""

from __future__ import annotations

import csv
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterator, Union

from repro._util import DAY
from repro.traces.events import AppUsage, NetworkActivity, ScreenSession, Trace

_FORMAT_VERSION = 1

#: What :func:`iter_trace_records` yields after the header.
TraceRecord = Union[ScreenSession, AppUsage, NetworkActivity]


@dataclass(frozen=True, slots=True)
class TraceHeader:
    """The metadata line of a JSONL trace file.

    Always the first item yielded by :func:`iter_trace_records`; carries
    everything needed to build a :class:`Trace` around the event records
    that follow.
    """

    user_id: str
    n_days: int
    start_weekday: int


@dataclass
class TraceLoadReport:
    """What a lenient load skipped or repaired.

    ``skipped`` maps a human-readable location (e.g. ``"line 17"``) to
    the reason the record was dropped; ``repaired_screen_flags`` counts
    activities whose ``screen_on`` flag was recomputed to match the
    surviving screen sessions.
    """

    skipped: list[tuple[str, str]] = field(default_factory=list)
    repaired_screen_flags: int = 0

    @property
    def n_skipped(self) -> int:
        """Number of records dropped."""
        return len(self.skipped)

    @property
    def clean(self) -> bool:
        """Whether the file loaded without any skip or repair."""
        return not self.skipped and self.repaired_screen_flags == 0


def _build_trace_lenient(
    header: dict,
    sessions: list[ScreenSession],
    usages: list[AppUsage],
    activities: list[NetworkActivity],
    report: TraceLoadReport,
) -> Trace:
    """Assemble a valid :class:`Trace` from possibly-inconsistent parts.

    Sessions that overlap a kept neighbour or spill past the trace
    horizon are dropped (reported); activity ``screen_on`` flags are then
    recomputed against the surviving sessions so the Trace invariants
    hold by construction.
    """
    n_days = int(header["n_days"])
    horizon = n_days * DAY
    kept_sessions: list[ScreenSession] = []
    prev_end = float("-inf")
    for s in sorted(sessions, key=lambda s: s.start):
        if s.start < prev_end:
            report.skipped.append(
                (f"session@{s.start:g}", "overlaps the previous screen session")
            )
            continue
        if s.end > horizon:
            report.skipped.append(
                (f"session@{s.start:g}", "extends past the trace horizon")
            )
            continue
        kept_sessions.append(s)
        prev_end = s.end

    skeleton = Trace(
        user_id=str(header["user_id"]),
        n_days=n_days,
        start_weekday=int(header["start_weekday"]),
        screen_sessions=kept_sessions,
        usages=[],
        activities=[],
    )
    fixed: list[NetworkActivity] = []
    for a in activities:
        on = skeleton.screen_on_at(a.time)
        if on != a.screen_on:
            report.repaired_screen_flags += 1
            a = NetworkActivity(
                time=a.time,
                app=a.app,
                down_bytes=a.down_bytes,
                up_bytes=a.up_bytes,
                duration=a.duration,
                screen_on=on,
            )
        fixed.append(a)
    return Trace(
        user_id=str(header["user_id"]),
        n_days=n_days,
        start_weekday=int(header["start_weekday"]),
        screen_sessions=kept_sessions,
        usages=usages,
        activities=fixed,
    )


def trace_to_jsonl(trace: Trace, path: str | Path) -> None:
    """Write a trace as JSON-lines (header line + one line per event)."""
    path = Path(path)
    with path.open("w") as fh:
        header = {
            "kind": "header",
            "version": _FORMAT_VERSION,
            "user_id": trace.user_id,
            "n_days": trace.n_days,
            "start_weekday": trace.start_weekday,
        }
        fh.write(json.dumps(header) + "\n")
        for s in trace.screen_sessions:
            fh.write(json.dumps({"kind": "screen", "start": s.start, "end": s.end}) + "\n")
        for u in trace.usages:
            fh.write(
                json.dumps(
                    {"kind": "usage", "time": u.time, "app": u.app, "duration": u.duration}
                )
                + "\n"
            )
        for a in trace.activities:
            fh.write(
                json.dumps(
                    {
                        "kind": "network",
                        "time": a.time,
                        "app": a.app,
                        "down_bytes": a.down_bytes,
                        "up_bytes": a.up_bytes,
                        "duration": a.duration,
                        "screen_on": a.screen_on,
                    }
                )
                + "\n"
            )


def _check_header(obj: dict, path: Path) -> dict:
    """Validate a parsed JSONL header record; returns it sans ``kind``."""
    if obj.get("kind") != "header":
        raise ValueError(
            f"{path}: first record must be the header line, got kind={obj.get('kind')!r}"
        )
    version = obj.get("version")
    if version != _FORMAT_VERSION:
        raise ValueError(
            f"unsupported trace format version: {version!r} "
            f"(this build reads version {_FORMAT_VERSION})"
        )
    for key in ("user_id", "n_days", "start_weekday"):
        if key not in obj:
            raise ValueError(f"{path}: header line is missing {key!r}")
    return {k: v for k, v in obj.items() if k != "kind"}


def _parse_record(
    kind: str, obj: dict
) -> ScreenSession | AppUsage | NetworkActivity:
    """Parse one non-header JSONL record; raises on anything malformed."""
    if kind == "screen":
        return ScreenSession(float(obj["start"]), float(obj["end"]))
    if kind == "usage":
        return AppUsage(float(obj["time"]), str(obj["app"]), float(obj["duration"]))
    if kind == "network":
        return NetworkActivity(
            time=float(obj["time"]),
            app=str(obj["app"]),
            down_bytes=float(obj["down_bytes"]),
            up_bytes=float(obj["up_bytes"]),
            duration=float(obj["duration"]),
            screen_on=bool(obj["screen_on"]),
        )
    raise ValueError(f"unknown record kind: {kind!r}")


def iter_trace_records(
    path: str | Path,
    *,
    lenient: bool = False,
    report: TraceLoadReport | None = None,
) -> Iterator[TraceHeader | TraceRecord]:
    """Stream the records of a JSONL trace file without building a Trace.

    Yields the :class:`TraceHeader` first, then every validated event
    record (:class:`ScreenSession` / :class:`AppUsage` /
    :class:`NetworkActivity`) in file order, holding only one line in
    memory at a time — the ingestion substrate of :mod:`repro.stream`.

    In strict mode (the default) any malformed line raises, exactly like
    :func:`trace_from_jsonl`.  With ``lenient=True`` malformed non-header
    records are skipped and recorded in ``report`` (header problems still
    raise: the file cannot be interpreted without one).  A file with no
    header line raises :class:`ValueError` once the iterator is
    exhausted.
    """
    path = Path(path)
    saw_header = False
    with path.open() as fh:
        for lineno, line in enumerate(fh, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                obj = json.loads(line)
            except json.JSONDecodeError as exc:
                if not saw_header:
                    if lenient:
                        raise ValueError(
                            f"{path}: header line is unreadable: {exc}"
                        ) from exc
                    raise
                if not lenient:
                    raise
                if report is not None:
                    report.skipped.append(
                        (f"line {lineno}", f"invalid JSON: {exc.msg}")
                    )
                continue
            if not saw_header:
                header = _check_header(obj, path)
                saw_header = True
                yield TraceHeader(
                    user_id=header["user_id"],
                    n_days=header["n_days"],
                    start_weekday=header["start_weekday"],
                )
                continue
            try:
                yield _parse_record(obj.get("kind"), obj)
            except (KeyError, TypeError, ValueError) as exc:
                if not lenient:
                    raise
                if report is not None:
                    report.skipped.append((f"line {lineno}", str(exc)))
    if not saw_header:
        raise ValueError(f"{path} has no header line")


def _collect_records(
    records: Iterator[TraceHeader | TraceRecord],
) -> tuple[TraceHeader, list[ScreenSession], list[AppUsage], list[NetworkActivity]]:
    """Drain a record iterator into kind-partitioned lists."""
    header = next(records)
    assert isinstance(header, TraceHeader)
    sessions: list[ScreenSession] = []
    usages: list[AppUsage] = []
    activities: list[NetworkActivity] = []
    for record in records:
        if isinstance(record, ScreenSession):
            sessions.append(record)
        elif isinstance(record, AppUsage):
            usages.append(record)
        else:
            activities.append(record)
    return header, sessions, usages, activities


def trace_from_jsonl(path: str | Path) -> Trace:
    """Load a trace previously written by :func:`trace_to_jsonl`.

    The first non-blank line must be a valid header record of a
    supported format version; any malformed record raises.  Use
    :func:`trace_from_jsonl_lenient` for files of unknown provenance.
    """
    header, sessions, usages, activities = _collect_records(
        iter_trace_records(path)
    )
    return Trace(
        user_id=header.user_id,
        n_days=header.n_days,
        start_weekday=header.start_weekday,
        screen_sessions=sessions,
        usages=usages,
        activities=activities,
    )


def trace_from_jsonl_lenient(path: str | Path) -> tuple[Trace, TraceLoadReport]:
    """Load a JSONL trace, skipping and reporting malformed records.

    The header line is still mandatory (the file cannot be interpreted
    without it); every other malformed record — broken JSON, unknown
    kind, missing or impossible fields — is skipped and listed in the
    returned :class:`TraceLoadReport`.  Activities whose ``screen_on``
    flag contradicts the surviving sessions are repaired rather than
    dropped.
    """
    report = TraceLoadReport()
    header, sessions, usages, activities = _collect_records(
        iter_trace_records(path, lenient=True, report=report)
    )
    return (
        _build_trace_lenient(
            {
                "user_id": header.user_id,
                "n_days": header.n_days,
                "start_weekday": header.start_weekday,
            },
            sessions,
            usages,
            activities,
            report,
        ),
        report,
    )


def trace_to_csv(trace: Trace, prefix: str | Path) -> list[Path]:
    """Write a trace as three CSV files sharing ``prefix``.

    Returns the paths written: ``<prefix>_meta.csv``,
    ``<prefix>_sessions.csv``, ``<prefix>_usages.csv``,
    ``<prefix>_activities.csv``.
    """
    prefix = Path(prefix)
    paths = []

    meta_path = prefix.with_name(prefix.name + "_meta.csv")
    with meta_path.open("w", newline="") as fh:
        writer = csv.writer(fh)
        writer.writerow(["user_id", "n_days", "start_weekday", "version"])
        writer.writerow([trace.user_id, trace.n_days, trace.start_weekday, _FORMAT_VERSION])
    paths.append(meta_path)

    sessions_path = prefix.with_name(prefix.name + "_sessions.csv")
    with sessions_path.open("w", newline="") as fh:
        writer = csv.writer(fh)
        writer.writerow(["start", "end"])
        for s in trace.screen_sessions:
            writer.writerow([s.start, s.end])
    paths.append(sessions_path)

    usages_path = prefix.with_name(prefix.name + "_usages.csv")
    with usages_path.open("w", newline="") as fh:
        writer = csv.writer(fh)
        writer.writerow(["time", "app", "duration"])
        for u in trace.usages:
            writer.writerow([u.time, u.app, u.duration])
    paths.append(usages_path)

    activities_path = prefix.with_name(prefix.name + "_activities.csv")
    with activities_path.open("w", newline="") as fh:
        writer = csv.writer(fh)
        writer.writerow(["time", "app", "down_bytes", "up_bytes", "duration", "screen_on"])
        for a in trace.activities:
            writer.writerow(
                [a.time, a.app, a.down_bytes, a.up_bytes, a.duration, int(a.screen_on)]
            )
    paths.append(activities_path)
    return paths


def trace_from_csv(prefix: str | Path) -> Trace:
    """Load a trace previously written by :func:`trace_to_csv`."""
    prefix = Path(prefix)

    meta_path = prefix.with_name(prefix.name + "_meta.csv")
    with meta_path.open() as fh:
        rows = list(csv.DictReader(fh))
    if len(rows) != 1:
        raise ValueError(f"{meta_path} must contain exactly one metadata row")
    meta = rows[0]

    sessions_path = prefix.with_name(prefix.name + "_sessions.csv")
    with sessions_path.open() as fh:
        sessions = [
            ScreenSession(float(r["start"]), float(r["end"])) for r in csv.DictReader(fh)
        ]

    usages_path = prefix.with_name(prefix.name + "_usages.csv")
    with usages_path.open() as fh:
        usages = [
            AppUsage(float(r["time"]), r["app"], float(r["duration"]))
            for r in csv.DictReader(fh)
        ]

    activities_path = prefix.with_name(prefix.name + "_activities.csv")
    with activities_path.open() as fh:
        activities = [
            NetworkActivity(
                time=float(r["time"]),
                app=r["app"],
                down_bytes=float(r["down_bytes"]),
                up_bytes=float(r["up_bytes"]),
                duration=float(r["duration"]),
                screen_on=bool(int(r["screen_on"])),
            )
            for r in csv.DictReader(fh)
        ]

    return Trace(
        user_id=meta["user_id"],
        n_days=int(meta["n_days"]),
        start_weekday=int(meta["start_weekday"]),
        screen_sessions=sessions,
        usages=usages,
        activities=activities,
    )


def trace_from_csv_lenient(prefix: str | Path) -> tuple[Trace, TraceLoadReport]:
    """Load a CSV trace, skipping and reporting malformed rows.

    The metadata file must still parse (one valid row); malformed rows in
    the sessions/usages/activities files are skipped and reported, and
    contradictory ``screen_on`` flags repaired, as in
    :func:`trace_from_jsonl_lenient`.
    """
    prefix = Path(prefix)

    meta_path = prefix.with_name(prefix.name + "_meta.csv")
    with meta_path.open() as fh:
        rows = list(csv.DictReader(fh))
    if len(rows) != 1:
        raise ValueError(f"{meta_path} must contain exactly one metadata row")
    meta = rows[0]
    header = {
        "user_id": meta["user_id"],
        "n_days": int(meta["n_days"]),
        "start_weekday": int(meta["start_weekday"]),
    }

    report = TraceLoadReport()

    def load_rows(suffix: str, build) -> list:
        rows_path = prefix.with_name(prefix.name + suffix)
        out = []
        with rows_path.open() as fh:
            for rowno, row in enumerate(csv.DictReader(fh), start=2):
                try:
                    out.append(build(row))
                except (KeyError, TypeError, ValueError) as exc:
                    report.skipped.append((f"{rows_path.name}:{rowno}", str(exc)))
        return out

    sessions = load_rows(
        "_sessions.csv", lambda r: ScreenSession(float(r["start"]), float(r["end"]))
    )
    usages = load_rows(
        "_usages.csv",
        lambda r: AppUsage(float(r["time"]), r["app"], float(r["duration"])),
    )
    activities = load_rows(
        "_activities.csv",
        lambda r: NetworkActivity(
            time=float(r["time"]),
            app=r["app"],
            down_bytes=float(r["down_bytes"]),
            up_bytes=float(r["up_bytes"]),
            duration=float(r["duration"]),
            screen_on=bool(int(r["screen_on"])),
        ),
    )
    return _build_trace_lenient(header, sessions, usages, activities, report), report


def cohort_to_dir(traces: list[Trace], directory: str | Path) -> list[Path]:
    """Persist a cohort as one JSONL file per user under ``directory``."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    paths = []
    for trace in traces:
        path = directory / f"{trace.user_id}.jsonl"
        trace_to_jsonl(trace, path)
        paths.append(path)
    return paths


def cohort_from_dir(directory: str | Path) -> list[Trace]:
    """Load every ``*.jsonl`` trace under ``directory`` (sorted by name)."""
    directory = Path(directory)
    return [trace_from_jsonl(p) for p in sorted(directory.glob("*.jsonl"))]
