"""The monitoring component's on-device database.

NetMaster's monitoring component (paper Section V-A) records four feature
groups — time, app, cellular network, and screen — into a database on the
phone, buffered through a 500 KB in-memory write cache so flash writes are
batched.  :class:`TraceStore` reproduces that storage layer: typed record
tables, an explicit write cache with flush accounting, and the query
surface the mining component needs (per-day / per-hour aggregates).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum

import numpy as np

from repro._util import DAY, HOURS_PER_DAY, check_positive, day_of, hour_of
from repro.traces.events import AppUsage, NetworkActivity, ScreenSession, Trace

#: Default write-cache capacity, matching the paper's 500 KB buffer.
DEFAULT_CACHE_BYTES = 500 * 1024

#: Approximate flash footprint of one record, used for cache accounting.
RECORD_BYTES = 64


class RecordKind(Enum):
    """The four record tables kept by the monitoring component."""

    SCREEN = "screen"
    USAGE = "usage"
    NETWORK = "network"


@dataclass(frozen=True, slots=True)
class Record:
    """One row in the store: a kind tag plus the payload event."""

    kind: RecordKind
    payload: ScreenSession | AppUsage | NetworkActivity

    @property
    def time(self) -> float:
        """Record timestamp (event start time)."""
        if isinstance(self.payload, ScreenSession):
            return self.payload.start
        return self.payload.time


@dataclass
class WriteCache:
    """Byte-budgeted write buffer batching flash writes.

    Mirrors the 500 KB memory cache of Section V-A: records accumulate in
    memory and are flushed to the backing table only when the budget is
    exhausted (or on explicit :meth:`flush`).  ``flush_count`` exposes how
    many flash write bursts occurred, which tests use to verify batching.
    """

    capacity_bytes: int = DEFAULT_CACHE_BYTES
    record_bytes: int = RECORD_BYTES
    flush_count: int = 0
    _pending: list[Record] = field(default_factory=list)

    def __post_init__(self) -> None:
        check_positive("capacity_bytes", self.capacity_bytes)
        check_positive("record_bytes", self.record_bytes)

    @property
    def pending_bytes(self) -> int:
        """Bytes currently buffered."""
        return len(self._pending) * self.record_bytes

    def add(self, record: Record) -> list[Record]:
        """Buffer a record; returns flushed records when the cache fills."""
        self._pending.append(record)
        if self.pending_bytes >= self.capacity_bytes:
            return self.flush()
        return []

    def flush(self) -> list[Record]:
        """Flush all buffered records, returning them in insertion order."""
        if not self._pending:
            return []
        out, self._pending = self._pending, []
        self.flush_count += 1
        return out


@dataclass
class TraceStore:
    """Typed record store with the mining component's query surface."""

    cache: WriteCache = field(default_factory=WriteCache)
    _screen: list[ScreenSession] = field(default_factory=list)
    _usage: list[AppUsage] = field(default_factory=list)
    _network: list[NetworkActivity] = field(default_factory=list)

    # ------------------------------------------------------------------
    # ingestion
    # ------------------------------------------------------------------
    def record_screen(self, session: ScreenSession) -> None:
        """Record one screen-on session."""
        self._ingest(Record(RecordKind.SCREEN, session))

    def record_usage(self, usage: AppUsage) -> None:
        """Record one foreground app usage."""
        self._ingest(Record(RecordKind.USAGE, usage))

    def record_network(self, activity: NetworkActivity) -> None:
        """Record one network activity."""
        self._ingest(Record(RecordKind.NETWORK, activity))

    def _ingest(self, record: Record) -> None:
        for flushed in self.cache.add(record):
            self._commit(flushed)

    def _commit(self, record: Record) -> None:
        if record.kind is RecordKind.SCREEN:
            self._screen.append(record.payload)  # type: ignore[arg-type]
        elif record.kind is RecordKind.USAGE:
            self._usage.append(record.payload)  # type: ignore[arg-type]
        else:
            self._network.append(record.payload)  # type: ignore[arg-type]

    def ingest_trace(self, trace: Trace) -> None:
        """Bulk-load a whole trace (history import for the miner)."""
        for session in trace.screen_sessions:
            self.record_screen(session)
        for usage in trace.usages:
            self.record_usage(usage)
        for activity in trace.activities:
            self.record_network(activity)
        self.checkpoint()

    def checkpoint(self) -> None:
        """Force a cache flush so all records become queryable."""
        for flushed in self.cache.flush():
            self._commit(flushed)

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    @property
    def screen_sessions(self) -> list[ScreenSession]:
        """All committed screen sessions, sorted by start."""
        return sorted(self._screen, key=lambda s: s.start)

    @property
    def usages(self) -> list[AppUsage]:
        """All committed app usages, sorted by time."""
        return sorted(self._usage, key=lambda u: u.time)

    @property
    def activities(self) -> list[NetworkActivity]:
        """All committed network activities, sorted by time."""
        return sorted(self._network, key=lambda a: a.time)

    def n_days(self) -> int:
        """Number of (whole) days spanned by committed records.

        Screen sessions contribute their end times too, so a session
        crossing midnight extends the store into the next day.
        """
        times = [max(r.start, r.end - 1e-9) for r in self._screen]
        times += [r.time for r in self._usage]
        times += [r.time for r in self._network]
        if not times:
            return 0
        return day_of(max(times)) + 1

    def apps_seen(self) -> set[str]:
        """Every package name appearing in usage or network records."""
        return {u.app for u in self._usage} | {a.app for a in self._network}

    def usage_matrix(self) -> np.ndarray:
        """``(n_days, 24)`` counts of app usages per day-hour cell."""
        days = self.n_days()
        matrix = np.zeros((days, HOURS_PER_DAY), dtype=np.float64)
        for usage in self._usage:
            matrix[day_of(usage.time), hour_of(usage.time)] += 1.0
        return matrix

    def screen_use_matrix(self) -> np.ndarray:
        """``(n_days, 24)`` binary matrix: phone used in that day-hour.

        This is the paper's ``u(t_i)_j`` indicator (Table I): 1 when any
        screen-on session overlaps the hour slot on that day.
        """
        days = self.n_days()
        matrix = np.zeros((days, HOURS_PER_DAY), dtype=np.float64)
        for session in self._screen:
            day = day_of(session.start)
            first = hour_of(session.start)
            last_t = max(session.start, session.end - 1e-9)
            last_day = day_of(last_t)
            last = hour_of(last_t)
            if last_day == day:
                matrix[day, first : last + 1] = 1.0
            else:  # session crosses midnight
                matrix[day, first:] = 1.0
                if last_day < days:
                    matrix[last_day, : last + 1] = 1.0
        return matrix

    def network_matrix(self, *, screen_off_only: bool = True) -> np.ndarray:
        """``(n_days, 24)`` count of network activities per day-hour.

        With ``screen_off_only`` this is the paper's ``n(p_m, t_i)_j``
        aggregated over apps — the raw material for screen-off network
        slot prediction.
        """
        days = self.n_days()
        matrix = np.zeros((days, HOURS_PER_DAY), dtype=np.float64)
        for activity in self._network:
            if screen_off_only and activity.screen_on:
                continue
            matrix[day_of(activity.time), hour_of(activity.time)] += 1.0
        return matrix

    def app_network_counts(self) -> dict[str, int]:
        """Per-app network-activity counts (Special Apps evidence)."""
        counts: dict[str, int] = {}
        for activity in self._network:
            counts[activity.app] = counts.get(activity.app, 0) + 1
        return counts

    def app_usage_counts(self) -> dict[str, int]:
        """Per-app foreground usage counts."""
        counts: dict[str, int] = {}
        for usage in self._usage:
            counts[usage.app] = counts.get(usage.app, 0) + 1
        return counts

    def activities_in_day(self, day_index: int) -> list[NetworkActivity]:
        """Committed activities whose start falls on trace day ``day_index``."""
        lo, hi = day_index * DAY, (day_index + 1) * DAY
        return [a for a in self.activities if lo <= a.time < hi]
