"""Trace substrate: event model, personas, generator, store, I/O, analysis.

This package replaces the paper's on-phone trace collection.  See
``DESIGN.md`` for the substitution rationale.
"""

from repro.traces.analysis import (
    ScreenUtilization,
    TrafficSplit,
    active_app_share,
    app_intensity,
    cohort_traffic_split,
    cohort_utilization,
    rate_cdf,
    rate_percentile,
    rate_values,
    screen_utilization,
    traffic_split,
)
from repro.traces.apps import AppCatalog, AppModel, default_catalog
from repro.traces.events import AppUsage, NetworkActivity, ScreenSession, Trace
from repro.traces.generator import TraceGenerator, generate_cohort, generate_volunteers
from repro.traces.io import (
    TraceHeader,
    TraceLoadReport,
    cohort_from_dir,
    cohort_to_dir,
    iter_trace_records,
    trace_from_csv,
    trace_from_csv_lenient,
    trace_from_jsonl,
    trace_from_jsonl_lenient,
    trace_to_csv,
    trace_to_jsonl,
)
from repro.traces.store import TraceStore, WriteCache
from repro.traces.users import (
    UserProfile,
    default_profiles,
    intensity_profile,
    profile_by_id,
    volunteer_profiles,
)

__all__ = [
    "AppCatalog",
    "AppModel",
    "AppUsage",
    "NetworkActivity",
    "ScreenSession",
    "ScreenUtilization",
    "Trace",
    "TraceGenerator",
    "TraceHeader",
    "TraceLoadReport",
    "TraceStore",
    "TrafficSplit",
    "UserProfile",
    "WriteCache",
    "active_app_share",
    "app_intensity",
    "cohort_from_dir",
    "cohort_to_dir",
    "cohort_traffic_split",
    "cohort_utilization",
    "default_catalog",
    "default_profiles",
    "generate_cohort",
    "generate_volunteers",
    "intensity_profile",
    "iter_trace_records",
    "profile_by_id",
    "rate_cdf",
    "rate_percentile",
    "rate_values",
    "screen_utilization",
    "trace_from_csv",
    "trace_from_csv_lenient",
    "trace_from_jsonl",
    "trace_from_jsonl_lenient",
    "trace_to_csv",
    "trace_to_jsonl",
    "traffic_split",
]
