"""Application catalog and per-app behaviour models.

The paper's traces contain ~23 installed apps per phone of which only a
handful ("Special Apps", Fig. 5) are actually used and generate network
traffic; background services sync periodically even with the screen off.
This module provides a parameterized :class:`AppModel` plus a default
catalog whose names follow the packages visible in the paper's Fig. 5.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro._util import check_fraction, check_positive


@dataclass(frozen=True, slots=True)
class AppModel:
    """Static behaviour description of one application.

    Parameters
    ----------
    name:
        Android-style package name.
    foreground_weight:
        Relative probability mass of this app being the one used in a
        screen-on session (0 disables foreground use).
    fg_net_prob:
        Probability that a foreground use triggers a network activity.
    fg_rate_median_bps, fg_rate_sigma:
        Log-normal parameters of the foreground transfer rate in
        bytes/second (median and log-space sigma).
    fg_rate_cap_bps:
        Channel peak rate; sampled foreground rates are clipped here.
    background_interval_s:
        Mean interval between background syncs while the screen is off;
        ``None`` disables background traffic for this app.
    bg_rate_median_bps, bg_rate_sigma:
        Log-normal rate parameters for background transfers.
    bg_duration_mean_s:
        Mean duration of one background transfer (exponential).
    upload_fraction:
        Fraction of transferred bytes that are uplink.
    """

    name: str
    foreground_weight: float = 0.0
    fg_net_prob: float = 0.75
    fg_rate_median_bps: float = 1200.0
    fg_rate_sigma: float = 0.9
    fg_rate_cap_bps: float = 24000.0
    background_interval_s: float | None = None
    bg_rate_median_bps: float = 250.0
    bg_rate_sigma: float = 0.9
    bg_duration_mean_s: float = 6.0
    upload_fraction: float = 0.2

    def __post_init__(self) -> None:
        check_positive("foreground_weight", self.foreground_weight, strict=False)
        check_fraction("fg_net_prob", self.fg_net_prob)
        check_positive("fg_rate_median_bps", self.fg_rate_median_bps)
        check_positive("fg_rate_sigma", self.fg_rate_sigma, strict=False)
        check_positive("fg_rate_cap_bps", self.fg_rate_cap_bps)
        if self.background_interval_s is not None:
            check_positive("background_interval_s", self.background_interval_s)
        check_positive("bg_rate_median_bps", self.bg_rate_median_bps)
        check_positive("bg_duration_mean_s", self.bg_duration_mean_s)
        check_fraction("upload_fraction", self.upload_fraction)

    @property
    def has_background(self) -> bool:
        """Whether this app produces screen-off background traffic."""
        return self.background_interval_s is not None

    def sample_fg_rate(self, rng: np.random.Generator) -> float:
        """Draw a foreground transfer rate (bytes/second), channel-capped.

        The cap makes the *observed peak* rate of a trace sit at the
        channel limit — which is why no scheduler can raise peak rates in
        Fig. 7(c).
        """
        rate = self.fg_rate_median_bps * np.exp(rng.normal(0.0, self.fg_rate_sigma))
        return float(min(rate, self.fg_rate_cap_bps))

    def sample_bg_rate(self, rng: np.random.Generator) -> float:
        """Draw a background transfer rate (bytes/second)."""
        return float(
            self.bg_rate_median_bps * np.exp(rng.normal(0.0, self.bg_rate_sigma))
        )

    def sample_bg_duration(self, rng: np.random.Generator) -> float:
        """Draw a background transfer duration (seconds, >= 0.5)."""
        return float(max(0.5, rng.exponential(self.bg_duration_mean_s)))


@dataclass
class AppCatalog:
    """A set of installed applications with weighted foreground sampling."""

    apps: list[AppModel] = field(default_factory=list)

    def __post_init__(self) -> None:
        names = [a.name for a in self.apps]
        if len(names) != len(set(names)):
            raise ValueError("duplicate app names in catalog")

    def __len__(self) -> int:
        return len(self.apps)

    def __iter__(self):
        return iter(self.apps)

    def get(self, name: str) -> AppModel:
        """Look up an app by package name."""
        for app in self.apps:
            if app.name == name:
                return app
        raise KeyError(name)

    @property
    def names(self) -> list[str]:
        """All package names in catalog order."""
        return [a.name for a in self.apps]

    def foreground_apps(self) -> list[AppModel]:
        """Apps with nonzero foreground weight."""
        return [a for a in self.apps if a.foreground_weight > 0]

    def background_apps(self) -> list[AppModel]:
        """Apps generating screen-off background traffic."""
        return [a for a in self.apps if a.has_background]

    def sample_foreground(self, rng: np.random.Generator) -> AppModel:
        """Draw the app used in a screen-on session, by foreground weight."""
        candidates = self.foreground_apps()
        if not candidates:
            raise ValueError("catalog has no foreground apps")
        weights = np.array([a.foreground_weight for a in candidates], dtype=np.float64)
        weights /= weights.sum()
        idx = int(rng.choice(len(candidates), p=weights))
        return candidates[idx]

    def restrict(self, names: list[str]) -> "AppCatalog":
        """A sub-catalog with only the given package names."""
        return AppCatalog([self.get(n) for n in names])


def default_catalog() -> AppCatalog:
    """The 23-app catalog used by the default user personas.

    Mirrors the structure visible in the paper's Fig. 5: one dominant
    messaging app (``com.tencent.mm`` ≈ 59% of usage for user 3), a few
    frequently used utilities, and a long tail of installed-but-unused
    packages.  Background sync intervals give the ~41% screen-off traffic
    share of Fig. 1(a) at the default persona intensities.
    """
    active = [
        AppModel(
            "com.tencent.mm",
            foreground_weight=10.0,
            fg_net_prob=0.85,
            background_interval_s=6400.0,
            bg_duration_mean_s=5.0,
        ),
        AppModel(
            "browser",
            foreground_weight=2.2,
            fg_net_prob=0.95,
            fg_rate_median_bps=1800.0,
            fg_rate_sigma=1.3,
        ),
        AppModel(
            "com.sinovatech.unicom.ui",
            foreground_weight=1.0,
            fg_net_prob=0.7,
            background_interval_s=41000.0,
        ),
        AppModel("com.android.contacts", foreground_weight=1.2, fg_net_prob=0.1),
        AppModel("com.android.phone", foreground_weight=1.5, fg_net_prob=0.05),
        AppModel(
            "com.google.docs",
            foreground_weight=0.6,
            fg_net_prob=0.8,
            background_interval_s=31000.0,
        ),
        AppModel("com.android.settings", foreground_weight=0.5, fg_net_prob=0.1),
        AppModel(
            "wali.miui.networkassistant",
            foreground_weight=0.4,
            fg_net_prob=0.6,
            background_interval_s=31000.0,
        ),
        AppModel(
            "com.android.email",
            foreground_weight=0.0,
            background_interval_s=18000.0,
            bg_duration_mean_s=4.0,
        ),
        AppModel(
            "com.facebook.katana",
            foreground_weight=0.0,
            background_interval_s=18000.0,
        ),
    ]
    dormant_names = [
        "com.android.calendar",
        "com.android.calculator2",
        "com.android.camera",
        "com.android.gallery3d",
        "com.android.music",
        "com.android.deskclock",
        "com.android.quicksearchbox",
        "com.android.soundrecorder",
        "com.android.providers.downloads.ui",
        "com.miui.notes",
        "com.miui.weather",
        "com.miui.compass",
        "com.miui.fm",
    ]
    dormant = [AppModel(name) for name in dormant_names]
    return AppCatalog(active + dormant)
