"""Habit-driven synthetic trace generation.

This is the stand-in for the paper's 3-week, 8-user trace collection.  A
:class:`TraceGenerator` turns a :class:`~repro.traces.users.UserProfile`
into a concrete multi-day :class:`~repro.traces.events.Trace`:

* screen-on sessions arrive as an inhomogeneous Poisson process whose
  hourly rate follows the persona's weekday/weekend intensity curve, with
  per-day multiplicative jitter (this produces the high intra-user /
  low cross-user Pearson structure of Figs. 3-4);
* each session runs one foreground app drawn from the persona's catalog
  and, with that app's probability, one network transfer covering roughly
  ``fg_utilization`` of the session (Fig. 2's ~45% radio utilization);
* background apps sync as independent Poisson processes around the clock;
  syncs landing outside screen sessions become the deferrable screen-off
  traffic that NetMaster targets (Fig. 1(a)'s ~41% share).

Everything is driven by a single seeded :class:`numpy.random.Generator`,
so traces are bit-for-bit reproducible.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro._util import DAY, HOUR, HOURS_PER_DAY, as_rng, is_weekend
from repro.traces.apps import AppModel
from repro.traces.events import AppUsage, NetworkActivity, ScreenSession, Trace
from repro.traces.users import UserProfile, default_profiles, volunteer_profiles

#: Minimum gap enforced between consecutive screen sessions (seconds).
_MIN_SESSION_GAP = 2.0

#: Minimum duration of any generated transfer (seconds).
_MIN_TRANSFER_S = 0.5

#: Mean interval between background sync-cluster anchors (seconds).
_BG_CLUSTER_INTERVAL_S = 1800.0

#: Width of the window inside which clustered syncs scatter (seconds).
_BG_CLUSTER_JITTER_S = 90.0


@dataclass
class TraceGenerator:
    """Generates reproducible synthetic traces for one user profile."""

    profile: UserProfile
    seed: int | np.random.Generator | None = None

    def __post_init__(self) -> None:
        self._rng = as_rng(self.seed)

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------
    def generate(self, n_days: int, *, start_weekday: int = 0) -> Trace:
        """Generate an ``n_days`` trace starting on ``start_weekday``.

        ``start_weekday`` follows :mod:`datetime` convention (Monday=0).
        """
        if n_days <= 0:
            raise ValueError(f"n_days must be > 0, got {n_days}")
        rng = self._rng
        sessions: list[ScreenSession] = []
        usages: list[AppUsage] = []
        activities: list[NetworkActivity] = []

        spill_floor = 0.0
        for day in range(n_days):
            weekend = is_weekend(day, start_weekday)
            day_sessions = self._generate_sessions(
                rng, day, weekend, n_days, spill_floor
            )
            sessions.extend(day_sessions)
            if day_sessions:
                spill_floor = day_sessions[-1].end
            day_usages, day_fg = self._generate_foreground(rng, day_sessions)
            usages.extend(day_usages)
            activities.extend(day_fg)

        trace_sessions = sorted(sessions, key=lambda s: s.start)
        activities.extend(
            self._generate_background(rng, trace_sessions, n_days)
        )
        return Trace(
            user_id=self.profile.user_id,
            n_days=n_days,
            start_weekday=start_weekday,
            screen_sessions=trace_sessions,
            usages=usages,
            activities=activities,
        )

    # ------------------------------------------------------------------
    # screen sessions
    # ------------------------------------------------------------------
    def _generate_sessions(
        self,
        rng: np.random.Generator,
        day: int,
        weekend: bool,
        n_days: int,
        spill_floor: float = 0.0,
    ) -> list[ScreenSession]:
        profile = self.profile
        base = profile.intensity_for(weekend)
        if profile.day_shift_sigma_h > 0:
            shift = float(rng.normal(0.0, profile.day_shift_sigma_h))
            base = _circular_shift(base, shift)
        jitter = np.exp(rng.normal(0.0, profile.day_jitter, HOURS_PER_DAY))
        lam = base * jitter
        horizon = n_days * DAY

        starts: list[float] = []
        for hour in range(HOURS_PER_DAY):
            count = int(rng.poisson(lam[hour]))
            if count:
                offsets = rng.uniform(0.0, HOUR, count)
                starts.extend(day * DAY + hour * HOUR + offsets)
        starts.sort()

        sessions: list[ScreenSession] = []
        cursor = day * DAY
        for start in starts:
            # ``spill_floor`` is where the previous day's last session
            # ended — it can reach into this day.  Floor at it exactly
            # (no extra gap, touching sessions are valid) so only draws
            # that would overlap are moved; every other trace is
            # bit-identical to the pre-floor generator.
            start = max(start, cursor + _MIN_SESSION_GAP, spill_floor)
            duration = float(
                profile.session_median_s * np.exp(rng.normal(0.0, profile.session_sigma))
            )
            duration = max(2.0, duration)
            end = min(start + duration, horizon)
            if end <= start or start >= horizon:
                continue
            sessions.append(ScreenSession(float(start), float(end)))
            cursor = end
        return sessions

    # ------------------------------------------------------------------
    # foreground usage & traffic
    # ------------------------------------------------------------------
    def _generate_foreground(
        self, rng: np.random.Generator, sessions: list[ScreenSession]
    ) -> tuple[list[AppUsage], list[NetworkActivity]]:
        profile = self.profile
        usages: list[AppUsage] = []
        activities: list[NetworkActivity] = []
        for session in sessions:
            app = profile.catalog.sample_foreground(rng)
            usages.append(AppUsage(session.start, app.name, session.duration))
            if rng.random() >= app.fg_net_prob:
                continue
            # Utilization fraction jitters around the persona mean but is
            # clipped away from 0/1 so rates stay finite.
            frac = float(np.clip(rng.normal(profile.fg_utilization, 0.15), 0.1, 0.95))
            duration = max(_MIN_TRANSFER_S, frac * session.duration)
            duration = min(duration, session.duration)
            latest = session.end - duration
            start = session.start if latest <= session.start else float(
                rng.uniform(session.start, latest)
            )
            rate = app.sample_fg_rate(rng)
            total = rate * duration
            activities.append(
                NetworkActivity(
                    time=start,
                    app=app.name,
                    down_bytes=total * (1.0 - app.upload_fraction),
                    up_bytes=total * app.upload_fraction,
                    duration=duration,
                    screen_on=True,
                )
            )
        return usages, activities

    # ------------------------------------------------------------------
    # background traffic
    # ------------------------------------------------------------------
    def _generate_background(
        self,
        rng: np.random.Generator,
        sessions: list[ScreenSession],
        n_days: int,
    ) -> list[NetworkActivity]:
        """Cluster-anchored background sync generation.

        Real background traffic is temporally correlated: push services and
        sync alarms wake several apps within a short burst.  We draw
        cluster *anchors* as a Poisson process and let each background app
        participate in an anchor with probability ``anchor_interval /
        app_interval`` (jittered inside the cluster window), which keeps
        each app's expected daily sync count identical to an independent
        Poisson process while producing the bursts that make interval-
        based delay/batch aggregation (Figs. 8-9) meaningful at all.
        """
        profile = self.profile
        horizon = n_days * DAY
        activities: list[NetworkActivity] = []
        lookup = _SessionLookup(sessions)
        bg_apps = profile.catalog.background_apps()
        if not bg_apps:
            return activities

        anchor_interval = _BG_CLUSTER_INTERVAL_S
        participation = {
            app.name: min(
                1.0,
                anchor_interval / (float(app.background_interval_s) * profile.bg_scale),
            )
            for app in bg_apps
        }
        t = float(rng.exponential(anchor_interval))
        while t < horizon:
            for app in bg_apps:
                if rng.random() >= participation[app.name]:
                    continue
                start = float(t) + float(rng.uniform(0.0, _BG_CLUSTER_JITTER_S))
                if start >= horizon:
                    continue
                duration = min(app.sample_bg_duration(rng), horizon - start)
                if duration < _MIN_TRANSFER_S:
                    continue
                rate = app.sample_bg_rate(rng)
                total = rate * duration
                activities.append(
                    NetworkActivity(
                        time=start,
                        app=app.name,
                        down_bytes=total * (1.0 - app.upload_fraction),
                        up_bytes=total * app.upload_fraction,
                        duration=duration,
                        screen_on=bool(lookup.screen_on_at(start)),
                    )
                )
            t += float(rng.exponential(anchor_interval))
        return activities


def _circular_shift(curve: np.ndarray, shift_h: float) -> np.ndarray:
    """Shift a 24-hour curve by a fractional number of hours (wrapping)."""
    hours = np.arange(HOURS_PER_DAY, dtype=np.float64)
    src = (hours - shift_h) % HOURS_PER_DAY
    lo = np.floor(src).astype(int) % HOURS_PER_DAY
    hi = (lo + 1) % HOURS_PER_DAY
    frac = src - np.floor(src)
    return (1.0 - frac) * curve[lo] + frac * curve[hi]


class _SessionLookup:
    """O(log n) screen-state lookup over sorted, disjoint sessions."""

    def __init__(self, sessions: list[ScreenSession]) -> None:
        self._starts = np.array([s.start for s in sessions], dtype=np.float64)
        self._ends = np.array([s.end for s in sessions], dtype=np.float64)

    def screen_on_at(self, time_s: float) -> bool:
        idx = int(np.searchsorted(self._starts, time_s, side="right")) - 1
        return idx >= 0 and time_s < self._ends[idx]


def generate_cohort(
    n_days: int = 21,
    *,
    seed: int = 2014,
    start_weekday: int = 0,
    profiles: list[UserProfile] | None = None,
) -> list[Trace]:
    """Generate the 8-user, 3-week profiling cohort of the paper.

    Each user gets an independent child seed derived from ``seed`` so the
    cohort is reproducible as a whole yet users are statistically
    independent.

    Generation is fully deterministic, so results are served from the
    content-addressed :mod:`repro.runtime.cache` when the same
    ``(profiles, seed, n_days, start_weekday)`` tuple was built before
    in this process (or, with a cache dir configured, by any process).
    Cache hits are bit-identical to a fresh generation and return
    independent ``Trace`` objects.
    """
    if profiles is None:
        profiles = default_profiles()

    def build() -> list[Trace]:
        from repro.telemetry import metrics, tracer

        with tracer().span(
            "generate-cohort", "traces", users=len(profiles), days=n_days
        ):
            root = np.random.SeedSequence(seed)
            children = root.spawn(len(profiles))
            cohort = [
                TraceGenerator(profile, np.random.default_rng(child)).generate(
                    n_days, start_weekday=start_weekday
                )
                for profile, child in zip(profiles, children)
            ]
        reg = metrics()
        if reg.enabled:
            reg.inc("traces.generator.cohorts")
            reg.inc("traces.generator.traces", len(cohort))
        return cohort

    # Imported lazily so the trace substrate has no hard runtime-package
    # dependency at import time.
    from repro.runtime.cache import TraceRef, cohort_cache_key, default_cache

    cache = default_cache()
    key = cohort_cache_key(profiles, seed, n_days, start_weekday)
    if key is None or not cache.enabled:
        return build()
    cohort = cache.get_or_generate(key, build)
    # Tag each trace with its content-addressed provenance so downstream
    # fan-outs can ship a reference instead of the trace itself (workers
    # rehydrate from the on-disk store; see runtime.parallel).
    for user_index, trace in enumerate(cohort):
        trace.cache_ref = TraceRef(key=key, user_index=user_index)
    return cohort


def generate_volunteers(
    n_days: int = 14,
    *,
    seed: int = 43,
    start_weekday: int = 0,
) -> list[Trace]:
    """Generate traces for the 3 evaluation volunteers of Section VI."""
    return generate_cohort(
        n_days, seed=seed, start_weekday=start_weekday, profiles=volunteer_profiles()
    )
