"""Event data model for smartphone usage traces.

These types mirror the records NetMaster's monitoring component collects on
a real handset (Section V-A of the paper): screen state, foreground app
usage, and cellular network activity.  Every downstream subsystem — habit
mining, scheduling, the device simulator, and the evaluation harness —
consumes traces expressed in these types.

Times are absolute seconds from the trace epoch (midnight of day 0).
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass, field, replace
from typing import Iterator

import numpy as np

from repro._util import DAY, check_interval, check_positive, day_of, hour_of, is_weekend


@dataclass(frozen=True, slots=True)
class ScreenSession:
    """A contiguous screen-on (and unlocked) interval.

    Corresponds to the paper's notion of "using the phone": screen on and
    keyboard unlocked.
    """

    start: float
    end: float

    def __post_init__(self) -> None:
        check_interval(self.start, self.end, name="ScreenSession")

    @property
    def duration(self) -> float:
        """Session length in seconds."""
        return self.end - self.start

    def contains(self, time_s: float) -> bool:
        """Whether ``time_s`` falls inside this session (half-open)."""
        return self.start <= time_s < self.end


@dataclass(frozen=True, slots=True)
class AppUsage:
    """A foreground interaction with one application."""

    time: float
    app: str
    duration: float

    def __post_init__(self) -> None:
        check_positive("AppUsage.duration", self.duration, strict=False)

    @property
    def end(self) -> float:
        """End time of the interaction."""
        return self.time + self.duration


@dataclass(frozen=True, slots=True)
class NetworkActivity:
    """One cellular data transfer attributed to an application.

    ``screen_on`` records the screen state at the *original* time of the
    activity; schedulers may move the activity but the provenance flag is
    preserved so analyses can still distinguish foreground traffic from
    deferrable background traffic.
    """

    time: float
    app: str
    down_bytes: float
    up_bytes: float
    duration: float
    screen_on: bool

    def __post_init__(self) -> None:
        check_positive("NetworkActivity.down_bytes", self.down_bytes, strict=False)
        check_positive("NetworkActivity.up_bytes", self.up_bytes, strict=False)
        check_positive("NetworkActivity.duration", self.duration)

    @property
    def end(self) -> float:
        """End time of the transfer."""
        return self.time + self.duration

    @property
    def total_bytes(self) -> float:
        """Total payload (down + up) in bytes."""
        return self.down_bytes + self.up_bytes

    @property
    def rate_bps(self) -> float:
        """Average transfer rate in bytes/second."""
        return self.total_bytes / self.duration

    @property
    def interval(self) -> tuple[float, float]:
        """The ``(start, end)`` transfer window."""
        return (self.time, self.end)

    def moved_to(self, new_time: float) -> "NetworkActivity":
        """A copy of this activity executing at ``new_time``."""
        return replace(self, time=float(new_time))

    def compressed(
        self, bandwidth_bps: float, *, min_duration_s: float = 0.5
    ) -> "NetworkActivity":
        """A copy transferring the same payload at full link bandwidth.

        Background syncs trickle at app-level rates (Fig. 1(b): 90% below
        1 kBps); when a scheduler batches them it can push the same bytes
        at carrier speed, which is where NetMaster's bandwidth-utilization
        gain (Fig. 7(c)) and much of its DCH-time saving come from.
        """
        if bandwidth_bps <= 0:
            raise ValueError(f"bandwidth_bps must be > 0, got {bandwidth_bps}")
        duration = max(min_duration_s, self.total_bytes / bandwidth_bps)
        if duration >= self.duration:
            return self
        return replace(self, duration=duration)


@dataclass
class Trace:
    """A full multi-day usage trace for one user.

    Invariants (enforced by :meth:`validate`, called on construction):

    * event lists are sorted by start time;
    * screen sessions are disjoint;
    * every screen-on activity's original time falls inside some session,
      and every screen-off activity's falls outside all sessions.
    """

    user_id: str
    n_days: int
    start_weekday: int
    screen_sessions: list[ScreenSession] = field(default_factory=list)
    usages: list[AppUsage] = field(default_factory=list)
    activities: list[NetworkActivity] = field(default_factory=list)

    def __post_init__(self) -> None:
        self.screen_sessions = sorted(self.screen_sessions, key=lambda s: s.start)
        self.usages = sorted(self.usages, key=lambda u: u.time)
        self.activities = sorted(self.activities, key=lambda a: a.time)
        self.validate()

    # ------------------------------------------------------------------
    # validation
    # ------------------------------------------------------------------
    def validate(self) -> None:
        """Check structural invariants; raise :class:`ValueError` on breach."""
        if self.n_days <= 0:
            raise ValueError(f"n_days must be > 0, got {self.n_days}")
        if not 0 <= self.start_weekday < 7:
            raise ValueError(f"start_weekday must be in [0, 7), got {self.start_weekday}")
        horizon = self.n_days * DAY
        prev_end = -np.inf
        for session in self.screen_sessions:
            if session.start < prev_end:
                raise ValueError("screen sessions overlap or are unsorted")
            prev_end = session.end
            if session.end > horizon:
                raise ValueError("screen session extends past the trace horizon")
        for activity in self.activities:
            on = self.screen_on_at(activity.time)
            if on != activity.screen_on:
                raise ValueError(
                    f"activity at t={activity.time} tagged screen_on={activity.screen_on} "
                    f"but the screen was {'on' if on else 'off'}"
                )

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    @property
    def horizon(self) -> float:
        """Trace length in seconds."""
        return self.n_days * DAY

    def is_weekend_day(self, day_index: int) -> bool:
        """Whether trace day ``day_index`` is a Saturday or Sunday."""
        return is_weekend(day_index, self.start_weekday)

    def screen_on_at(self, time_s: float) -> bool:
        """Whether the screen is on at ``time_s``."""
        starts = self._session_starts()
        idx = bisect.bisect_right(starts, time_s) - 1
        if idx < 0:
            return False
        return self.screen_sessions[idx].contains(time_s)

    def session_at(self, time_s: float) -> ScreenSession | None:
        """The screen session covering ``time_s``, if any."""
        starts = self._session_starts()
        idx = bisect.bisect_right(starts, time_s) - 1
        if idx >= 0 and self.screen_sessions[idx].contains(time_s):
            return self.screen_sessions[idx]
        return None

    def _session_starts(self) -> list[float]:
        cached = getattr(self, "_starts_cache", None)
        if cached is None or len(cached) != len(self.screen_sessions):
            cached = [s.start for s in self.screen_sessions]
            object.__setattr__(self, "_starts_cache", cached)
        return cached

    def screen_off_activities(self) -> list[NetworkActivity]:
        """Activities whose original time was in a screen-off period."""
        return [a for a in self.activities if not a.screen_on]

    def screen_on_activities(self) -> list[NetworkActivity]:
        """Activities whose original time was in a screen-on period."""
        return [a for a in self.activities if a.screen_on]

    def activities_between(self, start: float, end: float) -> list[NetworkActivity]:
        """Activities with original start time in ``[start, end)``."""
        return [a for a in self.activities if start <= a.time < end]

    def usages_between(self, start: float, end: float) -> list[AppUsage]:
        """App usages with start time in ``[start, end)``."""
        return [u for u in self.usages if start <= u.time < end]

    def day_view(self, day_index: int) -> "Trace":
        """A single-day sub-trace (times re-based to that day's midnight)."""
        if not 0 <= day_index < self.n_days:
            raise ValueError(f"day_index must be in [0, {self.n_days}), got {day_index}")
        lo, hi = day_index * DAY, (day_index + 1) * DAY
        shift = -lo

        def clip_session(s: ScreenSession) -> ScreenSession | None:
            start, end = max(s.start, lo), min(s.end, hi)
            if end <= start:
                return None
            return ScreenSession(start + shift, end + shift)

        sessions = [c for s in self.screen_sessions if (c := clip_session(s))]
        usages = [
            AppUsage(u.time + shift, u.app, u.duration) for u in self.usages if lo <= u.time < hi
        ]
        activities = [a.moved_to(a.time + shift) for a in self.activities if lo <= a.time < hi]
        view = Trace(
            user_id=self.user_id,
            n_days=1,
            start_weekday=(self.start_weekday + day_index) % 7,
            screen_sessions=sessions,
            usages=usages,
            activities=activities,
        )
        # Propagate content-addressed provenance (set by generate_cohort)
        # so a day view can be shipped as a (cohort key, user, day) ref.
        ref = getattr(self, "cache_ref", None)
        if ref is not None and ref.day_index is None:
            view.cache_ref = replace(ref, day_index=day_index)
        return view

    def days(self) -> Iterator["Trace"]:
        """Iterate single-day sub-traces, in order."""
        for day_index in range(self.n_days):
            yield self.day_view(day_index)

    # ------------------------------------------------------------------
    # numpy accessors (vectorized analytics paths)
    # ------------------------------------------------------------------
    def activity_times(self) -> np.ndarray:
        """Array of activity start times (float64, sorted)."""
        return np.array([a.time for a in self.activities], dtype=np.float64)

    def activity_bytes(self) -> np.ndarray:
        """``(n, 2)`` array of per-activity (down, up) bytes."""
        return np.array(
            [[a.down_bytes, a.up_bytes] for a in self.activities], dtype=np.float64
        ).reshape(-1, 2)

    def activity_rates(self) -> np.ndarray:
        """Array of per-activity average rates (bytes/second)."""
        return np.array([a.rate_bps for a in self.activities], dtype=np.float64)

    def activity_screen_flags(self) -> np.ndarray:
        """Boolean array: original screen state per activity."""
        return np.array([a.screen_on for a in self.activities], dtype=bool)

    def usage_hour_bins(self) -> np.ndarray:
        """Hour-of-day bin (0..23) of each app usage."""
        return np.array([hour_of(u.time) for u in self.usages], dtype=np.int64)

    def usage_day_bins(self) -> np.ndarray:
        """Trace-day index of each app usage."""
        return np.array([day_of(u.time) for u in self.usages], dtype=np.int64)

    def total_screen_on_time(self) -> float:
        """Total seconds of screen-on time over the whole trace."""
        return float(sum(s.duration for s in self.screen_sessions))

    def summary(self) -> dict[str, float]:
        """A small numeric digest used by tests and reporting."""
        off = self.screen_off_activities()
        return {
            "n_days": float(self.n_days),
            "n_sessions": float(len(self.screen_sessions)),
            "n_usages": float(len(self.usages)),
            "n_activities": float(len(self.activities)),
            "screen_off_fraction": (len(off) / len(self.activities)) if self.activities else 0.0,
            "screen_on_time_s": self.total_screen_on_time(),
        }
