"""Trace profiling analyses behind the paper's motivation figures.

Each function here reproduces one measurement from Section III:

* :func:`traffic_split` / :func:`cohort_traffic_split` — Fig. 1(a), the
  screen-on vs screen-off split of network activities (paper: 40.98%
  screen-off on average);
* :func:`rate_values` / :func:`rate_cdf` — Fig. 1(b), the transfer-rate
  CDFs (paper: 90% of screen-off transfers below 1 kBps, 90% of screen-on
  below 5 kBps);
* :func:`screen_utilization` — Fig. 2, average vs utilized screen-on time
  (paper: 45.14% radio utilization ratio);
* :func:`app_intensity` / :func:`active_app_share` — Fig. 5, per-app
  hourly usage and the dominance of a few "Special Apps".
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro._util import HOURS_PER_DAY, hour_of, intersect_length
from repro.traces.events import Trace


@dataclass(frozen=True, slots=True)
class TrafficSplit:
    """Screen-on / screen-off decomposition of one user's traffic."""

    user_id: str
    on_count: int
    off_count: int
    on_bytes: float
    off_bytes: float

    @property
    def total_count(self) -> int:
        """Total number of network activities."""
        return self.on_count + self.off_count

    @property
    def off_fraction(self) -> float:
        """Fraction of network activities occurring with the screen off."""
        return self.off_count / self.total_count if self.total_count else 0.0

    @property
    def off_bytes_fraction(self) -> float:
        """Fraction of transferred bytes moved with the screen off."""
        total = self.on_bytes + self.off_bytes
        return self.off_bytes / total if total else 0.0


def traffic_split(trace: Trace) -> TrafficSplit:
    """Fig. 1(a) decomposition for a single user."""
    flags = trace.activity_screen_flags()
    totals = trace.activity_bytes().sum(axis=1) if trace.activities else np.zeros(0)
    on = flags.sum() if flags.size else 0
    return TrafficSplit(
        user_id=trace.user_id,
        on_count=int(on),
        off_count=int(flags.size - on),
        on_bytes=float(totals[flags].sum()) if flags.size else 0.0,
        off_bytes=float(totals[~flags].sum()) if flags.size else 0.0,
    )


def cohort_traffic_split(traces: list[Trace]) -> tuple[list[TrafficSplit], float]:
    """Per-user splits plus the cohort-average screen-off fraction."""
    splits = [traffic_split(t) for t in traces]
    if not splits:
        return [], 0.0
    avg = float(np.mean([s.off_fraction for s in splits]))
    return splits, avg


def rate_values(traces: list[Trace], *, screen_on: bool) -> np.ndarray:
    """All transfer rates (bytes/second) for one screen state, sorted."""
    rates: list[float] = []
    for trace in traces:
        flags = trace.activity_screen_flags()
        values = trace.activity_rates()
        rates.extend(values[flags == screen_on].tolist())
    return np.sort(np.asarray(rates, dtype=np.float64))


def rate_cdf(
    traces: list[Trace], *, screen_on: bool, grid_kbps: np.ndarray | None = None
) -> tuple[np.ndarray, np.ndarray]:
    """Empirical CDF of transfer rates, evaluated on a kBps grid.

    Returns ``(grid_kbps, cdf)`` matching the axes of Fig. 1(b).
    """
    if grid_kbps is None:
        grid_kbps = np.linspace(0.0, 5.0, 51)
    rates = rate_values(traces, screen_on=screen_on)
    if rates.size == 0:
        return grid_kbps, np.zeros_like(grid_kbps)
    cdf = np.searchsorted(rates, grid_kbps * 1000.0, side="right") / rates.size
    return grid_kbps, cdf


def rate_percentile(traces: list[Trace], q: float, *, screen_on: bool) -> float:
    """The ``q``-quantile (0..1) of transfer rates, in kBps."""
    rates = rate_values(traces, screen_on=screen_on)
    if rates.size == 0:
        return 0.0
    return float(np.quantile(rates, q) / 1000.0)


@dataclass(frozen=True, slots=True)
class ScreenUtilization:
    """Fig. 2 statistics for one user."""

    user_id: str
    avg_session_s: float
    avg_utilized_s: float

    @property
    def utilization_ratio(self) -> float:
        """Fraction of screen-on time with active network communication."""
        return self.avg_utilized_s / self.avg_session_s if self.avg_session_s else 0.0


def screen_utilization(trace: Trace) -> ScreenUtilization:
    """Average screen-on interval vs its network-utilized portion.

    Utilized time is the overlap between screen sessions and transfer
    windows, exactly the paper's "percentage of screen-on time with active
    network communication".
    """
    sessions = [(s.start, s.end) for s in trace.screen_sessions]
    transfers = sorted(a.interval for a in trace.activities)
    # Transfer windows can overlap each other; merge before intersecting so
    # covered time is not double counted.
    merged: list[tuple[float, float]] = []
    for start, end in transfers:
        if merged and start <= merged[-1][1]:
            merged[-1] = (merged[-1][0], max(merged[-1][1], end))
        else:
            merged.append((start, end))
    utilized = intersect_length(sessions, merged)
    n = len(sessions)
    total = sum(end - start for start, end in sessions)
    return ScreenUtilization(
        user_id=trace.user_id,
        avg_session_s=total / n if n else 0.0,
        avg_utilized_s=utilized / n if n else 0.0,
    )


def cohort_utilization(traces: list[Trace]) -> tuple[list[ScreenUtilization], float]:
    """Per-user Fig. 2 stats plus the cohort-average utilization ratio."""
    stats = [screen_utilization(t) for t in traces]
    if not stats:
        return [], 0.0
    avg = float(np.mean([s.utilization_ratio for s in stats]))
    return stats, avg


def app_intensity(trace: Trace) -> dict[str, np.ndarray]:
    """Per-app average hourly usage intensity (Fig. 5).

    Returns a mapping from app name to a length-24 vector of usage counts
    summed over the trace, for apps that were used at least once.
    """
    out: dict[str, np.ndarray] = {}
    for usage in trace.usages:
        vec = out.setdefault(usage.app, np.zeros(HOURS_PER_DAY))
        vec[hour_of(usage.time)] += 1.0
    return out


def active_app_share(trace: Trace) -> dict[str, float]:
    """Usage share per app among apps with both usage and network traffic.

    In the paper's Fig. 5 only 8 of 23 installed apps qualify, and
    ``com.tencent.mm`` alone accounts for 59% of all usage.
    """
    net_apps = {a.app for a in trace.activities}
    counts: dict[str, int] = {}
    for usage in trace.usages:
        if usage.app in net_apps:
            counts[usage.app] = counts.get(usage.app, 0) + 1
    total = sum(counts.values())
    if total == 0:
        return {}
    return {app: count / total for app, count in counts.items()}
