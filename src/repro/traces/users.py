"""User personas: the habit structure behind trace generation.

The paper bases its analysis on 8 users (ages 20-30, different professions)
whose hour-level usage patterns are *distinct across users* (cross-user
Pearson ≈ 0.14, Fig. 3) but *stable day-to-day for the same user*
(intra-user Pearson ≈ 0.54-0.82, Fig. 4).  Each :class:`UserProfile` here
encodes one such habit: an hourly session-intensity curve for weekdays and
weekends, session-length statistics, and the user's personal app mix.

Three additional "volunteer" personas model the evaluation subjects of
Section VI, held out from the 8 profiling users.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro._util import HOURS_PER_DAY, check_fraction, check_positive
from repro.traces.apps import AppCatalog, default_catalog


def intensity_profile(
    peaks: list[tuple[float, float, float]], base: float = 0.0
) -> np.ndarray:
    """Build a 24-hour intensity curve from Gaussian bumps.

    Each peak is ``(center_hour, height, width_hours)``; heights are
    expected screen-on sessions per hour at the peak.  The curve wraps
    around midnight so late-night personas behave sensibly.
    """
    hours = np.arange(HOURS_PER_DAY, dtype=np.float64)
    curve = np.full(HOURS_PER_DAY, float(base))
    for center, height, width in peaks:
        check_positive("peak height", height, strict=False)
        check_positive("peak width", width)
        delta = np.minimum(np.abs(hours - center), HOURS_PER_DAY - np.abs(hours - center))
        curve += height * np.exp(-0.5 * (delta / width) ** 2)
    return curve


@dataclass
class UserProfile:
    """Static description of one user's smartphone habit.

    Parameters
    ----------
    user_id:
        Stable identifier (``"user1"`` .. ``"user8"``, ``"volunteer1"`` ..).
    description:
        Human-readable persona summary.
    weekday_intensity, weekend_intensity:
        Length-24 arrays of expected screen-on sessions per hour.
    session_median_s, session_sigma:
        Log-normal session-duration parameters (median seconds, log-sigma).
    fg_utilization:
        Mean fraction of a session's duration covered by its network
        transfer when one occurs (drives the ~45% radio-utilization ratio
        of Fig. 2).
    day_jitter:
        Log-normal sigma of the per-day multiplicative intensity noise;
        larger values lower the intra-user day-to-day Pearson correlation.
    day_shift_sigma_h:
        Std-dev (hours) of a per-day circular time shift of the whole
        intensity curve — "I had lunch late today".  Spreads the hourly
        usage probabilities Pr[u(t_i)] into the mid range, which is what
        makes the δ threshold trade-off of Fig. 10(c) non-trivial.
    bg_scale:
        Multiplier on every app's background sync interval for this user
        (>1 means rarer background traffic).
    catalog:
        The user's installed apps (defaults to :func:`default_catalog`).
    """

    user_id: str
    description: str
    weekday_intensity: np.ndarray
    weekend_intensity: np.ndarray
    session_median_s: float = 14.0
    session_sigma: float = 0.5
    fg_utilization: float = 0.62
    day_jitter: float = 0.18
    day_shift_sigma_h: float = 0.6
    bg_scale: float = 1.0
    catalog: AppCatalog = field(default_factory=default_catalog)

    def __post_init__(self) -> None:
        self.weekday_intensity = np.asarray(self.weekday_intensity, dtype=np.float64)
        self.weekend_intensity = np.asarray(self.weekend_intensity, dtype=np.float64)
        for name, arr in (
            ("weekday_intensity", self.weekday_intensity),
            ("weekend_intensity", self.weekend_intensity),
        ):
            if arr.shape != (HOURS_PER_DAY,):
                raise ValueError(f"{name} must have shape (24,), got {arr.shape}")
            if (arr < 0).any():
                raise ValueError(f"{name} must be non-negative")
        check_positive("session_median_s", self.session_median_s)
        check_positive("session_sigma", self.session_sigma, strict=False)
        check_fraction("fg_utilization", self.fg_utilization)
        check_positive("day_jitter", self.day_jitter, strict=False)
        check_positive("day_shift_sigma_h", self.day_shift_sigma_h, strict=False)
        check_positive("bg_scale", self.bg_scale)

    def intensity_for(self, weekend: bool) -> np.ndarray:
        """The hourly intensity curve for a weekday or weekend day."""
        return self.weekend_intensity if weekend else self.weekday_intensity

    def expected_sessions_per_day(self, weekend: bool = False) -> float:
        """Expected number of screen-on sessions in one day."""
        return float(self.intensity_for(weekend).sum())


def _persona(
    user_id: str,
    description: str,
    weekday_peaks: list[tuple[float, float, float]],
    weekend_peaks: list[tuple[float, float, float]],
    *,
    base: float = 0.04,
    weekend_base: float | None = None,
    intensity_scale: float = 1.4,
    **kwargs,
) -> UserProfile:
    return UserProfile(
        user_id=user_id,
        description=description,
        weekday_intensity=intensity_scale * intensity_profile(weekday_peaks, base),
        weekend_intensity=intensity_scale
        * intensity_profile(weekend_peaks, base if weekend_base is None else weekend_base),
        **kwargs,
    )


def default_profiles() -> list[UserProfile]:
    """The 8 profiling users of Sections III-IV.

    Peak placements are deliberately spread over the day so the cross-user
    Pearson matrix is weak (paper: avg 0.1353) while each persona's
    day-to-day correlation stays strong (paper: avg 0.54 across users).
    """
    return [
        _persona(
            "user1",
            "office worker: commute, lunch and evening peaks",
            [(8.0, 6.0, 0.8), (12.5, 5.0, 0.7), (20.0, 7.0, 1.5)],
            [(10.0, 4.0, 1.5), (15.0, 3.0, 1.5), (21.0, 5.0, 1.5)],
            session_median_s=7.5,
        ),
        _persona(
            "user2",
            "student: mid-morning, afternoon and late-night peaks",
            [(10.0, 5.0, 1.0), (16.0, 4.0, 1.0), (23.0, 7.0, 1.2)],
            [(13.0, 5.0, 2.0), (23.5, 7.0, 1.2)],
            session_median_s=6.5,
        ),
        _persona(
            "user3",
            "messaging-heavy socialite: noon and long evening peaks",
            [(12.0, 6.0, 1.0), (21.0, 9.0, 2.0)],
            [(12.0, 5.0, 1.5), (22.0, 9.0, 2.0)],
            session_median_s=6.5,
            bg_scale=0.8,
        ),
        _persona(
            "user4",
            "early bird: dawn, noon and dusk peaks, asleep by 22",
            [(6.5, 9.0, 0.8), (12.0, 5.5, 0.8), (18.0, 7.0, 1.0)],
            [(7.5, 6.0, 1.0), (12.0, 5.0, 1.0), (18.0, 5.0, 1.0)],
            session_median_s=5.0,
            day_jitter=0.10,
            day_shift_sigma_h=0.2,
        ),
        _persona(
            "user5",
            "commuter: sharp morning/evening commute peaks",
            [(7.5, 9.0, 0.6), (18.5, 9.0, 0.8), (21.5, 3.0, 1.0)],
            [(11.0, 4.0, 2.0), (20.0, 4.0, 2.0)],
            session_median_s=10.0,
        ),
        _persona(
            "user6",
            "homebody: broad flat daytime usage",
            [(14.0, 4.5, 4.0)],
            [(14.0, 5.0, 4.5)],
            base=0.08,
            session_median_s=12.0,
            day_jitter=0.22,
        ),
        _persona(
            "user7",
            "night owl: afternoon start, heavy after midnight",
            [(15.0, 4.0, 1.5), (0.5, 8.0, 1.5)],
            [(16.0, 4.0, 2.0), (1.0, 8.0, 1.5)],
            session_median_s=12.0,
        ),
        _persona(
            "user8",
            "minimalist: sparse morning/evening check-ins",
            [(9.0, 2.5, 1.0), (21.0, 2.5, 1.0)],
            [(10.0, 2.0, 1.5), (20.0, 2.0, 1.5)],
            base=0.05,
            session_median_s=5.5,
            bg_scale=1.6,
        ),
    ]


def volunteer_profiles() -> list[UserProfile]:
    """The 3 evaluation volunteers of Section VI (held-out personas)."""
    return [
        _persona(
            "volunteer1",
            "graduate student: erratic but evening-weighted usage",
            [(11.0, 4.0, 1.5), (17.0, 3.0, 1.5), (22.0, 6.0, 1.5)],
            [(14.0, 4.0, 2.5), (22.5, 6.0, 1.5)],
            day_jitter=0.25,
            session_median_s=7.0,
        ),
        _persona(
            "volunteer2",
            "salesperson: on the phone through business hours",
            [(9.5, 6.0, 2.5), (14.5, 6.0, 2.5), (19.0, 4.0, 1.5)],
            [(11.0, 3.0, 2.0), (19.0, 3.0, 2.0)],
            session_median_s=9.0,
            bg_scale=0.9,
        ),
        _persona(
            "volunteer3",
            "retiree: light regular usage, morning news and evening chats",
            [(7.5, 3.5, 1.0), (13.0, 2.0, 1.0), (19.5, 4.0, 1.2)],
            [(8.0, 3.5, 1.0), (19.5, 4.0, 1.5)],
            base=0.08,
            session_median_s=10.0,
            day_jitter=0.15,
            bg_scale=1.3,
        ),
    ]


def profile_by_id(user_id: str) -> UserProfile:
    """Look up a built-in persona by its ``user_id``."""
    for profile in default_profiles() + volunteer_profiles():
        if profile.user_id == user_id:
            return profile
    raise KeyError(user_id)
