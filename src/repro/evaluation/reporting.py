"""Plain-text reporting of experiment results.

Each ``print_*`` / ``format_*`` pair renders one experiment's result in
the same rows/series layout as the paper's figure, with the paper's
headline number alongside for comparison.  The benchmark suite calls
these after timing the drivers so ``pytest benchmarks/ --benchmark-only``
doubles as the full results reproduction.
"""

from __future__ import annotations

import dataclasses
import math

import numpy as np

from repro.evaluation import experiments as ex
from repro.evaluation import robustness as rb

PAPER = {
    "fig1a_avg_off": 0.4098,
    "fig1b_p90_off": 1.0,
    "fig1b_p90_on": 5.0,
    "fig2_util": 0.4514,
    "fig3_avg": 0.1353,
    "fig4_avg": 0.8171,
    "fig5_active": 8,
    "fig5_top_share": 0.59,
    "fig7_netmaster": 0.778,
    "fig7_delay_batch": 0.2254,
    "fig7_within5": 0.816,
    "fig7_worst_gap": 0.112,
    "fig7_radio": 0.7539,
    "fig7_down": 3.84,
    "fig7_up": 2.63,
    "fig8_energy_600": 0.092,
    "fig8_radio_600": 0.367,
    "fig8_bw_600": 0.3305,
    "fig8_affected_600": 0.40,
    "fig8_gap100": 0.17,
    "fig9_radio": 0.177,
    "fig9_bw": 0.176,
    "fig10c_crossover": 0.37,
    "ux_ratio": 0.01,
}


def _row(label: str, measured: float, paper: float | None = None, fmt: str = ".3f") -> str:
    base = f"  {label:<42s} {measured:{fmt}}"
    if paper is not None:
        base += f"   (paper: {paper:{fmt}})"
    return base


def format_fig1a(result: ex.Fig1aResult) -> str:
    """Fig. 1(a): per-user screen-off traffic fractions."""
    lines = ["Fig 1(a) — network activity distribution (screen-off fraction)"]
    for user, frac in zip(result.user_ids, result.off_fractions):
        lines.append(_row(user, frac))
    lines.append(_row("average", result.average_off_fraction, PAPER["fig1a_avg_off"]))
    return "\n".join(lines)


def format_fig1b(result: ex.Fig1bResult) -> str:
    """Fig. 1(b): transfer-rate CDF summary."""
    lines = ["Fig 1(b) — bandwidth utilization (kBps at 90th pct)"]
    lines.append(_row("p90 screen-off", result.p90_off_kbps, PAPER["fig1b_p90_off"]))
    lines.append(_row("p90 screen-on", result.p90_on_kbps, PAPER["fig1b_p90_on"]))
    return "\n".join(lines)


def format_fig2(result: ex.Fig2Result) -> str:
    """Fig. 2: screen-on time utilization."""
    lines = ["Fig 2 — screen-on time utilization (avg s / utilized s)"]
    for user, total, used in zip(
        result.user_ids, result.avg_session_s, result.avg_utilized_s
    ):
        lines.append(f"  {user:<42s} {total:6.1f} / {used:5.1f}")
    lines.append(_row("average utilization ratio", result.average_utilization, PAPER["fig2_util"]))
    return "\n".join(lines)


def format_fig3(result: ex.Fig3Result) -> str:
    """Fig. 3: cross-user Pearson parameters."""
    lines = ["Fig 3 — cross-user Pearson matrix"]
    for row in result.matrix:
        lines.append("  " + " ".join(f"{v:6.2f}" for v in row))
    lines.append(_row("average (off-diagonal)", result.average, PAPER["fig3_avg"]))
    return "\n".join(lines)


def format_fig4(result: ex.Fig4Result) -> str:
    """Fig. 4: one user's day-to-day Pearson parameters."""
    lines = [f"Fig 4 — day-by-day Pearson matrix ({result.user_id})"]
    for row in result.matrix:
        lines.append("  " + " ".join(f"{v:6.2f}" for v in row))
    lines.append(_row("average (off-diagonal)", result.average, PAPER["fig4_avg"]))
    return "\n".join(lines)


def format_fig5(result: ex.Fig5Result) -> str:
    """Fig. 5: one-week program pattern."""
    lines = [f"Fig 5 — weekly app pattern ({result.user_id})"]
    lines.append(
        _row("active apps / installed", result.n_active, float(PAPER["fig5_active"]), fmt=".0f")
    )
    lines.append(_row(f"top app share ({result.top_app})", result.top_share, PAPER["fig5_top_share"]))
    for app, vec in sorted(result.hourly_intensity.items()):
        lines.append(f"  {app:<34s} total {vec.sum():6.0f}  peak hour {int(vec.argmax()):2d}")
    return "\n".join(lines)


def format_fig7(result: ex.Fig7Result) -> str:
    """Figs. 7(a)-(c): the policy comparison."""
    lines = ["Fig 7 — overall performance (energy saving vs baseline)"]
    for vol in result.volunteers:
        parts = ", ".join(f"{k}={v:.3f}" for k, v in sorted(vol.energy_saving.items()))
        lines.append(f"  {vol.user_id}: {parts}")
    lines.append(_row("NetMaster mean saving", result.netmaster_mean_saving, PAPER["fig7_netmaster"]))
    lines.append(_row("oracle mean saving", result.oracle_mean_saving))
    lines.append(
        _row("delay&batch mean saving", result.delay_batch_mean_saving, PAPER["fig7_delay_batch"])
    )
    lines.append(_row("tests within 5% of oracle", result.within_5pct_of_oracle, PAPER["fig7_within5"]))
    lines.append(_row("worst oracle gap", result.worst_oracle_gap, PAPER["fig7_worst_gap"]))
    lines.append(_row("radio-on time saving", result.mean_radio_time_saving, PAPER["fig7_radio"]))
    lines.append(_row("download avg-rate ratio", result.mean_down_ratio, PAPER["fig7_down"], fmt=".2f"))
    lines.append(_row("upload avg-rate ratio", result.mean_up_ratio, PAPER["fig7_up"], fmt=".2f"))
    lines.append(_row("download peak-rate ratio", result.mean_peak_down_ratio, 1.0, fmt=".2f"))
    lines.append(_row("upload peak-rate ratio", result.mean_peak_up_ratio, 1.0, fmt=".2f"))
    return "\n".join(lines)


def format_fig8(result: ex.Fig8Result) -> str:
    """Figs. 8(a)-(c): the delay sweep."""
    lines = ["Fig 8 — delay-method sweep"]
    lines.append("  delay_s  energy  radio   bw+     affected")
    for d, e, r, b, a in zip(
        result.delays_s,
        result.energy_saving,
        result.radio_time_saving,
        result.bandwidth_increase,
        result.affected_ratio,
    ):
        lines.append(f"  {d:7.0f}  {e:6.3f}  {r:6.3f}  {b:6.3f}  {a:6.3f}")
    lines.append(
        _row(
            "interactions within 100s gaps",
            result.interactions_within_100s_gaps,
            PAPER["fig8_gap100"],
        )
    )
    return "\n".join(lines)


def format_fig9(result: ex.Fig9Result) -> str:
    """Figs. 9(a)-(b): the batch sweep."""
    lines = ["Fig 9 — batch-method sweep"]
    lines.append("  batch   energy  radio   bw+     affected")
    for n, e, r, b, a in zip(
        result.batch_sizes,
        result.energy_saving,
        result.radio_time_saving,
        result.bandwidth_increase,
        result.affected_ratio,
    ):
        lines.append(f"  {n:5d}   {e:6.3f}  {r:6.3f}  {b:6.3f}  {a:6.3f}")
    return "\n".join(lines)


def format_fig10a(result: ex.Fig10aResult) -> str:
    """Fig. 10(a): duty-cycle radio-on fraction curves."""
    lines = ["Fig 10(a) — radio-on fraction vs wake-up count"]
    header = "  wakeups " + " ".join(f"T={t:.0f}s".rjust(9) for t in result.sleep_intervals_s)
    lines.append(header)
    for i, k in enumerate(result.wakeup_counts):
        row = f"  {k:7d} " + " ".join(
            f"{result.fractions[t][i]:9.4f}" for t in result.sleep_intervals_s
        )
        lines.append(row)
    return "\n".join(lines)


def format_fig10b(result: ex.Fig10bResult) -> str:
    """Fig. 10(b): wake-up counts per sleep scheme."""
    lines = ["Fig 10(b) — cumulative wake-ups over 30 minutes"]
    lines.append("  minute  exponential  fixed  random")
    for i, m in enumerate(result.minutes):
        lines.append(
            f"  {m:6.0f}  {result.exponential[i]:11d}  {result.fixed[i]:5d}  {result.random[i]:6d}"
        )
    return "\n".join(lines)


def format_fig10c(result: ex.Fig10cResult) -> str:
    """Fig. 10(c): δ sweep."""
    lines = ["Fig 10(c) — prediction threshold sweep"]
    lines.append("  delta   accuracy  energy-saving(ratio-to-oracle)")
    for d, a, s in zip(result.thresholds, result.accuracy, result.energy_saving):
        lines.append(f"  {d:5.2f}   {a:8.3f}  {s:8.3f}")
    lines.append(_row("crossover delta", result.crossover, PAPER["fig10c_crossover"]))
    return "\n".join(lines)


def format_user_experience(result: ex.UserExperienceResult) -> str:
    """Section VI-B: wrong-decision rate."""
    lines = ["User experience — wrong decisions"]
    lines.append(f"  interrupts / interactions: {result.interrupts} / {result.user_interactions}")
    lines.append(_row("interrupt ratio", result.interrupt_ratio, PAPER["ux_ratio"]))
    return "\n".join(lines)


def format_stream(result) -> str:
    """Streaming fleet: causal online NetMaster vs the offline harness."""
    lines = [
        f"Streaming fleet — {result.users_streamed} users × {result.n_days} days "
        f"({result.user_days_streamed} user-days, {result.train_days} training)"
    ]
    lines.append(
        f"  events {result.events} in {result.elapsed_s:.2f}s "
        f"({result.events_per_s:,.0f} events/s), "
        f"days executed {result.days_executed}"
    )
    lines.append(
        f"  checkpoints {result.checkpoints}, drift alerts {result.drift_alerts}, "
        f"degraded days {result.degraded_days}, shed users {result.shed_users}"
    )
    lines.append(
        f"  energy (J): naive {result.naive_energy_j:.0f}, "
        f"online {result.online_energy_j:.0f}, offline {result.offline_energy_j:.0f}"
    )
    lines.append(_row("online saving vs naive", result.online_saving))
    lines.append(_row("offline saving vs naive", result.offline_saving))
    lines.append(_row("causality gap (offline-online)", result.online_offline_gap))
    lines.append(_row("online interrupt ratio", result.online_interrupt_ratio))
    lines.append(_row("offline interrupt ratio", result.offline_interrupt_ratio))
    return "\n".join(lines)


def format_shards(result) -> str:
    """Sharded durable fleet: crash, recover, equal the unbroken run."""
    lines = [
        f"Sharded durable fleet — {result.n_users} users × {result.n_days} days "
        f"over {result.n_shards} shards ({result.train_days} training)"
    ]
    lines.append(
        f"  events {result.events} in {result.elapsed_s:.2f}s "
        f"({result.events_per_s:,.0f} events/s), "
        f"users streamed {result.users_streamed}"
    )
    lines.append(
        f"  crash drill: {result.first_pass_users} users durable before the crash, "
        f"{result.replayed_records} WAL records replayed in {result.recovery_s * 1e3:.1f}ms"
    )
    lines.append(
        f"  recovery: {result.recovered_users} served from the log, "
        f"{result.resumed_users} resumed mid-stream, "
        f"{result.wal_appends} WAL appends, {result.compactions} compactions"
    )
    lines.append(
        f"  recovered run == uninterrupted run: {result.matches_baseline}"
    )
    return "\n".join(lines)


def format_monitor(result) -> str:
    """Fleet monitoring: seeded anomalies vs the detect/act loop."""
    lines = [
        f"Fleet monitoring — {result.n_users} users × {result.n_days} days "
        f"({result.anomalous_users} anomalous from day {result.onset_day}, "
        f"{result.train_days} training)"
    ]
    kinds = ", ".join(
        f"{kind} {count}" for kind, count in sorted(result.alerts_by_kind.items())
    )
    lines.append(
        f"  alerts {result.alerts_total} ({kinds or 'none'}), "
        f"sink errors {result.sink_errors}"
    )
    lines.append(
        f"  quiet-monitor contract: {result.false_alert_users} clean users "
        f"alerted, byte-equal {result.clean_byte_equal}"
    )
    lines.append(
        f"  feedback: {result.quarantine_effective_users} of "
        f"{result.anomalous_users} anomalous users quarantined "
        f"({result.degraded_days_monitored} degraded days vs "
        f"{result.degraded_days_clean} unmonitored)"
    )
    lines.append(_row("detection precision", result.precision))
    lines.append(_row("detection recall", result.recall))
    lines.append(_row("matching-detector recall", result.kind_recall))
    lines.append(
        f"  energy model MAE over {result.model_days} clean user-days (J):"
    )
    lines.append(_row("least-squares (usage features)", result.model_mae_j, fmt=".1f"))
    lines.append(_row("trailing mean", result.trailing_mae_j, fmt=".1f"))
    lines.append(_row("day-type mean", result.daytype_mae_j, fmt=".1f"))
    if result.alerts_path:
        lines.append(f"  alerts teed to {result.alerts_path}")
    return "\n".join(lines)


def format_approximation(result: ex.ApproximationResult) -> str:
    """Lemma IV.1: empirical approximation ratios."""
    lines = [f"Lemma IV.1 — approximation ratio over {result.trials} instances (eps={result.eps})"]
    lines.append(_row("worst ratio", result.worst_ratio))
    lines.append(_row("mean ratio", result.mean_ratio))
    lines.append(_row("(1-eps)/2 bound", result.bound))
    return "\n".join(lines)


# ----------------------------------------------------------------------
# machine-readable export
# ----------------------------------------------------------------------

#: Per-experiment headline extractors: (label, extractor, PAPER key).
_HEADLINES = {
    "fig1a": (
        ("average screen-off fraction", lambda r: r.average_off_fraction, "fig1a_avg_off"),
    ),
    "fig1b": (
        ("p90 screen-off rate (kBps)", lambda r: r.p90_off_kbps, "fig1b_p90_off"),
        ("p90 screen-on rate (kBps)", lambda r: r.p90_on_kbps, "fig1b_p90_on"),
    ),
    "fig2": (
        ("average screen-on utilization", lambda r: r.average_utilization, "fig2_util"),
    ),
    "fig3": (("mean cross-user Pearson", lambda r: r.average, "fig3_avg"),),
    "fig4": (("mean day-to-day Pearson", lambda r: r.average, "fig4_avg"),),
    "fig5": (
        ("active apps", lambda r: r.n_active, "fig5_active"),
        ("top app share", lambda r: r.top_share, "fig5_top_share"),
    ),
    "fig7": (
        ("NetMaster mean saving", lambda r: r.netmaster_mean_saving, "fig7_netmaster"),
        ("delay&batch mean saving", lambda r: r.delay_batch_mean_saving, "fig7_delay_batch"),
        ("tests within 5% of oracle", lambda r: r.within_5pct_of_oracle, "fig7_within5"),
        ("worst oracle gap", lambda r: r.worst_oracle_gap, "fig7_worst_gap"),
        ("radio-on time saving", lambda r: r.mean_radio_time_saving, "fig7_radio"),
        ("download avg-rate ratio", lambda r: r.mean_down_ratio, "fig7_down"),
        ("upload avg-rate ratio", lambda r: r.mean_up_ratio, "fig7_up"),
    ),
    "fig8": (
        ("energy saving @ max delay", lambda r: r.energy_saving[-1], "fig8_energy_600"),
        ("radio saving @ max delay", lambda r: r.radio_time_saving[-1], "fig8_radio_600"),
        ("bandwidth increase @ max delay", lambda r: r.bandwidth_increase[-1], "fig8_bw_600"),
        ("affected ratio @ max delay", lambda r: r.affected_ratio[-1], "fig8_affected_600"),
        ("interactions within 100s gaps", lambda r: r.interactions_within_100s_gaps, "fig8_gap100"),
    ),
    "fig9": (
        ("max radio saving", lambda r: max(r.radio_time_saving), "fig9_radio"),
        ("max bandwidth increase", lambda r: max(r.bandwidth_increase), "fig9_bw"),
    ),
    "fig10c": (("crossover delta", lambda r: r.crossover, "fig10c_crossover"),),
    "ux": (("interrupt ratio", lambda r: r.interrupt_ratio, "ux_ratio"),),
    "approx": (
        ("worst approximation ratio", lambda r: r.worst_ratio, None),
        ("(1-eps)/2 bound", lambda r: r.bound, None),
    ),
    "stream": (
        ("online saving vs naive", lambda r: r.online_saving, None),
        ("offline saving vs naive", lambda r: r.offline_saving, None),
        ("causality gap", lambda r: r.online_offline_gap, None),
        ("stream events per second", lambda r: r.events_per_s, None),
        ("online interrupt ratio", lambda r: r.online_interrupt_ratio, None),
    ),
    "monitor": (
        ("detection recall", lambda r: r.recall, None),
        ("matching-detector recall", lambda r: r.kind_recall, None),
        ("detection precision", lambda r: r.precision, None),
        ("quarantined anomalous users", lambda r: r.quarantine_effective_users, None),
        ("energy model MAE (J)", lambda r: r.model_mae_j, None),
    ),
}


def _sanitize(value):
    """JSON-safe deep conversion (numpy → python, keys → str)."""
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return _sanitize(dataclasses.asdict(value))
    if isinstance(value, dict):
        return {str(k): _sanitize(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_sanitize(v) for v in value]
    if isinstance(value, np.ndarray):
        return _sanitize(value.tolist())
    if isinstance(value, np.floating):
        value = float(value)
    elif isinstance(value, np.integer):
        return int(value)
    if isinstance(value, float) and not math.isfinite(value):
        return str(value)  # strict-JSON consumers cannot parse NaN/Infinity
    return value


def results_to_json(results: dict[str, object]) -> dict:
    """Machine-readable export of experiment results vs the paper.

    ``results`` maps experiment names (as used by the CLI registry, e.g.
    ``"fig7"``) to their result dataclasses.  Each entry carries a
    ``headlines`` list pairing the computed statistic with the paper's
    reference value (``paper`` is ``None`` where the paper quotes no
    number) and a fully sanitized ``values`` dump of the result.
    """
    experiments = {}
    for name, result in results.items():
        headlines = [
            {
                "label": label,
                "measured": _sanitize(extract(result)),
                "paper": PAPER.get(key) if key else None,
            }
            for label, extract, key in _HEADLINES.get(name, ())
        ]
        experiments[name] = {"headlines": headlines, "values": _sanitize(result)}
    return {"schema": 1, "experiments": experiments}


def format_robustness(result: rb.RobustnessResult) -> str:
    """Robustness sweep: energy saving / delay / retries vs fault rate."""
    lines = [
        "Robustness — energy saving vs fault rate "
        f"(max delay bound {result.max_delay_s:.0f}s)"
    ]
    for point in result.points:
        parts = ", ".join(
            f"{name}={point.energy_saving[name]:+.3f}" for name in result.policies
        )
        lines.append(f"  rate {point.rate:.2f}: {parts}")
    for name in result.policies:
        retries = sum(p.retries[name] for p in result.points)
        forced = sum(p.forced_deliveries[name] for p in result.points)
        delay_max = max(p.added_delay_max_s[name] for p in result.points)
        lines.append(
            f"  {name:<16s} retries={retries:d} forced={forced:d} "
            f"max added delay={delay_max:.1f}s"
        )
    violations = sum(p.delay_violations for p in result.points)
    lines.append(_row("delay-bound violations", violations, fmt=".0f"))
    return "\n".join(lines)
