"""Robustness experiment: how much saving survives a faulty fleet.

The paper evaluates NetMaster on a perfect radio.  This experiment
replays the Fig. 7 policy comparison through the fault layer
(:mod:`repro.faults`) at increasing fault rates and reports, per rate:

* the energy saving of each policy relative to the **fault-free** stock
  baseline (so the same denominator prices every rate point — savings
  can only shrink as fault energy is added);
* retry counts, failed attempts/promotions and forced deliveries;
* the extra delay retries added, and whether any transfer ever exceeded
  the retry policy's max-delay bound (it must not — the bound is the
  user-facing guarantee).

Determinism: the same ``seed`` drives both the volunteer generation and
the fault plan, and the rate-0 point runs the exact fault-free pipeline
(the injector is inert), so it reproduces Fig. 7's energy numbers
bit-for-bit.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro._util import check_fraction
from repro.baselines import DelayBatchPolicy, NaivePolicy, NetMasterPolicy
from repro.core.netmaster import NetMasterConfig
from repro.evaluation.experiments import DEFAULT_HISTORY_DAYS, split_history
from repro.evaluation.metrics import measure_outcome
from repro.faults import FaultInjector, FaultPlan, RetryPolicy, apply_faults
from repro.radio.power import RadioPowerModel, wcdma_model
from repro.runtime.parallel import PolicyTask, execute_policy_tasks
from repro.traces.generator import generate_volunteers

#: Fault rates swept by default: clean, light, moderate, heavy, hostile.
DEFAULT_RATES = (0.0, 0.05, 0.1, 0.2, 0.4)

#: Spacing of per-day fault-decision indices between volunteers.
_DAY_KEY_STRIDE = 100


@dataclass(frozen=True, slots=True)
class RatePoint:
    """All policies' robustness metrics at one fault rate."""

    rate: float
    #: Per-policy totals over every volunteer test day.
    energy_j: dict[str, float]
    energy_saving: dict[str, float]
    retries: dict[str, int]
    failed_attempts: dict[str, int]
    failed_promotions: dict[str, int]
    forced_deliveries: dict[str, int]
    added_delay_mean_s: dict[str, float]
    added_delay_max_s: dict[str, float]
    #: Transfers whose extra delay exceeded the max-delay bound (must be 0).
    delay_violations: int


@dataclass
class RobustnessResult:
    """Energy saving / delay / retries vs fault rate (NetMaster vs baselines)."""

    rates: list[float]
    policies: list[str]
    points: list[RatePoint]
    max_delay_s: float
    baseline_energy_j: float = 0.0
    notes: list[str] = field(default_factory=list)

    def series(self, policy: str) -> list[float]:
        """Energy-saving series of one policy across the swept rates."""
        return [p.energy_saving[policy] for p in self.points]


def robustness(
    seed: int = 43,
    n_days: int = 14,
    n_history_days: int = DEFAULT_HISTORY_DAYS,
    rates: tuple[float, ...] = DEFAULT_RATES,
    model: RadioPowerModel | None = None,
    config: NetMasterConfig | None = None,
    max_delay_s: float = 3600.0,
    jobs: int = 1,
) -> RobustnessResult:
    """Sweep the Fig. 7 policy comparison over increasing fault rates.

    Fault-free outcomes are computed once per policy and day, then each
    rate point replays them through :func:`repro.faults.apply_faults`
    with a :meth:`FaultPlan.uniform` plan — the counter-based injector
    guarantees the failure sets of successive rates nest, which is what
    makes the saving series decrease with the rate by construction
    rather than by luck.

    ``jobs>1`` fans the fault-free (volunteer × policy) executions over
    a process pool; each worker replays one policy's day sequence in
    order, so the outcomes (and every downstream rate point) are
    bit-identical to the serial run.
    """
    for rate in rates:
        check_fraction("rate", rate)
    model = model or wcdma_model()
    retry = RetryPolicy(max_delay_s=max_delay_s)
    volunteers = generate_volunteers(n_days, seed=seed)

    # Fault-free outcomes, once: (policy, volunteer, day) -> PolicyOutcome.
    policy_names = ["baseline", "netmaster", "delay-batch-60s"]
    prepared = []
    for vol_index, trace in enumerate(volunteers):
        history, test_days = split_history(trace, n_history_days)
        policies = {
            "baseline": NaivePolicy(),
            "netmaster": NetMasterPolicy(history, config or NetMasterConfig()),
            "delay-batch-60s": DelayBatchPolicy(60.0),
        }
        prepared.append((vol_index, test_days, policies))

    tasks = [
        PolicyTask(name=name, policy=policies[name], days=tuple(test_days), model=model)
        for _, test_days, policies in prepared
        for name in policy_names
    ]
    outcome_grid = iter(execute_policy_tasks(tasks, jobs=jobs))

    clean: dict[str, list[tuple[int, object, object]]] = {n: [] for n in policy_names}
    baseline_energy = 0.0
    for vol_index, test_days, policies in prepared:
        for name in policy_names:
            outcomes = next(outcome_grid)
            for day_index, (day, outcome) in enumerate(zip(test_days, outcomes)):
                day_key = vol_index * _DAY_KEY_STRIDE + day_index
                clean[name].append((day_key, day, outcome))
                if name == "baseline":
                    baseline_energy += measure_outcome(outcome, model, day).energy_j

    points: list[RatePoint] = []
    for rate in sorted(rates):
        injector = FaultInjector(FaultPlan.uniform(rate, seed=seed))
        energy: dict[str, float] = {}
        retries: dict[str, int] = {}
        failed: dict[str, int] = {}
        failed_promos: dict[str, int] = {}
        forced: dict[str, int] = {}
        delay_sums: dict[str, float] = {}
        delay_counts: dict[str, int] = {}
        delay_max: dict[str, float] = {}
        violations = 0
        for name in policy_names:
            energy[name] = 0.0
            retries[name] = failed[name] = failed_promos[name] = forced[name] = 0
            delay_sums[name] = delay_max[name] = 0.0
            delay_counts[name] = 0
            for day_key, day, outcome in clean[name]:
                faulted, stats = apply_faults(
                    outcome, injector, retry, day_key=day_key
                )
                metrics = measure_outcome(faulted, model, day)
                energy[name] += metrics.energy_j
                retries[name] += stats.retries
                failed[name] += stats.failed_attempts
                failed_promos[name] += stats.failed_promotions
                forced[name] += stats.forced
                delay_sums[name] += sum(stats.added_delays)
                delay_counts[name] += len(stats.added_delays)
                delay_max[name] = max(delay_max[name], stats.added_delay_max_s)
                violations += sum(
                    1 for d in stats.added_delays if d > max_delay_s + 1e-6
                )
        points.append(
            RatePoint(
                rate=rate,
                energy_j=energy,
                energy_saving={
                    n: 1.0 - energy[n] / baseline_energy if baseline_energy else 0.0
                    for n in policy_names
                },
                retries=dict(retries),
                failed_attempts=dict(failed),
                failed_promotions=dict(failed_promos),
                forced_deliveries=dict(forced),
                added_delay_mean_s={
                    n: delay_sums[n] / delay_counts[n] if delay_counts[n] else 0.0
                    for n in policy_names
                },
                added_delay_max_s=dict(delay_max),
                delay_violations=violations,
            )
        )

    return RobustnessResult(
        rates=sorted(rates),
        policies=policy_names,
        points=points,
        max_delay_s=max_delay_s,
        baseline_energy_j=baseline_energy,
    )
