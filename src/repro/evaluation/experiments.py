"""Experiment drivers: one function per table/figure of the paper.

Each ``fig*`` function is deterministic given its ``seed`` and returns a
small result dataclass carrying exactly the series the corresponding
figure plots, plus the headline statistic quoted in the text.  The
benchmark suite calls these functions and prints the series; the tests
assert the qualitative shape (who wins, roughly by how much, where the
crossovers sit).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro._util import DAY
from repro.baselines import (
    BatchPolicy,
    DelayBatchPolicy,
    DelayPolicy,
    NaivePolicy,
    NetMasterPolicy,
    OraclePolicy,
)
from repro.core.duty_cycle import (
    ExponentialSleep,
    FixedSleep,
    RandomSleep,
    radio_on_fraction_after,
    wakeup_times,
)
from repro.core.batch import run_policy_tasks_columnar
from repro.core.netmaster import NetMasterConfig
from repro.core.overlapped import MKPItem, MKPSlot, solve_exact_bruteforce, solve_overlapped
from repro.evaluation.metrics import (
    PolicyDayMetrics,
    aggregate_energy_saving,
    run_policy_over_days,
)
from repro.runtime.parallel import PolicyTask, run_policy_tasks
from repro.habits.pearson import cross_user_matrix, day_matrix, mean_offdiagonal
from repro.habits.prediction import HabitModel, prediction_accuracy
from repro.habits.threshold import FixedDelta
from repro.radio.power import RadioPowerModel, wcdma_model
from repro.traces.analysis import (
    active_app_share,
    app_intensity,
    cohort_traffic_split,
    cohort_utilization,
    rate_cdf,
    rate_percentile,
)
from repro.telemetry import tracer
from repro.traces.events import Trace
from repro.traces.generator import generate_cohort, generate_volunteers

#: History/test split used for the Section VI experiments: train on the
#: first days of each volunteer trace, evaluate on the rest.
DEFAULT_HISTORY_DAYS = 10
DEFAULT_TEST_DAYS = 4


def _run_grid(
    tasks: list[PolicyTask], *, jobs: int, columnar: bool
) -> list[list[PolicyDayMetrics]]:
    """Run a (policy × days) task grid, per-lane or columnar.

    Both paths return results in submission order and are bit-identical;
    ``columnar`` only changes how the replay arithmetic is batched.
    """
    if columnar:
        return run_policy_tasks_columnar(tasks, jobs=jobs)
    return run_policy_tasks(tasks, jobs=jobs)


def split_history(trace: Trace, n_history_days: int) -> tuple[Trace, list[Trace]]:
    """Split a trace into a training prefix and held-out single days."""
    if not 0 < n_history_days < trace.n_days:
        raise ValueError(
            f"n_history_days must be in (0, {trace.n_days}), got {n_history_days}"
        )
    horizon = n_history_days * DAY
    history = Trace(
        user_id=trace.user_id,
        n_days=n_history_days,
        start_weekday=trace.start_weekday,
        screen_sessions=[s for s in trace.screen_sessions if s.end <= horizon],
        usages=[u for u in trace.usages if u.time < horizon],
        activities=[a for a in trace.activities if a.time < horizon],
    )
    test_days = [trace.day_view(d) for d in range(n_history_days, trace.n_days)]
    return history, test_days


# ======================================================================
# Section III — motivation figures
# ======================================================================


@dataclass
class Fig1aResult:
    """Screen-on/off traffic split per user (Fig. 1(a))."""

    user_ids: list[str]
    off_fractions: list[float]
    average_off_fraction: float  # paper: 0.4098


def fig1a(seed: int = 2014, n_days: int = 21) -> Fig1aResult:
    """Network activity distribution over the 8-user cohort."""
    traces = generate_cohort(n_days, seed=seed)
    splits, avg = cohort_traffic_split(traces)
    return Fig1aResult(
        user_ids=[t.user_id for t in traces],
        off_fractions=[s.off_fraction for s in splits],
        average_off_fraction=avg,
    )


@dataclass
class Fig1bResult:
    """Transfer-rate CDFs (Fig. 1(b))."""

    grid_kbps: np.ndarray
    cdf_screen_on: np.ndarray
    cdf_screen_off: np.ndarray
    p90_on_kbps: float  # paper: < 5 kBps
    p90_off_kbps: float  # paper: < 1 kBps


def fig1b(seed: int = 2014, n_days: int = 21) -> Fig1bResult:
    """Bandwidth utilization CDFs by screen state."""
    traces = generate_cohort(n_days, seed=seed)
    grid, cdf_on = rate_cdf(traces, screen_on=True)
    _, cdf_off = rate_cdf(traces, screen_on=False)
    return Fig1bResult(
        grid_kbps=grid,
        cdf_screen_on=cdf_on,
        cdf_screen_off=cdf_off,
        p90_on_kbps=rate_percentile(traces, 0.9, screen_on=True),
        p90_off_kbps=rate_percentile(traces, 0.9, screen_on=False),
    )


@dataclass
class Fig2Result:
    """Screen-on time utilization (Fig. 2)."""

    user_ids: list[str]
    avg_session_s: list[float]
    avg_utilized_s: list[float]
    average_utilization: float  # paper: 0.4514


def fig2(seed: int = 2014, n_days: int = 21) -> Fig2Result:
    """Average vs utilized screen-on intervals per user."""
    traces = generate_cohort(n_days, seed=seed)
    stats, avg = cohort_utilization(traces)
    return Fig2Result(
        user_ids=[s.user_id for s in stats],
        avg_session_s=[s.avg_session_s for s in stats],
        avg_utilized_s=[s.avg_utilized_s for s in stats],
        average_utilization=avg,
    )


@dataclass
class Fig3Result:
    """Cross-user Pearson matrix (Fig. 3)."""

    matrix: np.ndarray
    average: float  # paper: 0.1353


def fig3(seed: int = 2014, n_days: int = 21) -> Fig3Result:
    """Pearson parameters between all user pairs."""
    traces = generate_cohort(n_days, seed=seed)
    matrix = cross_user_matrix(traces)
    return Fig3Result(matrix=matrix, average=mean_offdiagonal(matrix))


@dataclass
class Fig4Result:
    """Day-by-day Pearson matrix for one user (Fig. 4)."""

    user_id: str
    matrix: np.ndarray
    average: float  # paper: 0.8171 for user 4


def fig4(seed: int = 2014, n_days: int = 21, user_index: int = 3, window_days: int = 8) -> Fig4Result:
    """Intra-user day-to-day correlation (paper shows user 4, 8 days)."""
    traces = generate_cohort(n_days, seed=seed)
    trace = traces[user_index]
    matrix = day_matrix(trace, n_days=window_days)
    return Fig4Result(user_id=trace.user_id, matrix=matrix, average=mean_offdiagonal(matrix))


@dataclass
class Fig5Result:
    """One-week per-app usage pattern (Fig. 5)."""

    user_id: str
    hourly_intensity: dict[str, np.ndarray]
    n_installed: int
    n_active: int  # paper: 8 of 23
    top_app: str
    top_share: float  # paper: weChat, 0.59


def fig5(seed: int = 2014, n_days: int = 7, user_index: int = 2) -> Fig5Result:
    """Per-app hourly usage for the messaging-heavy user (paper user 3)."""
    traces = generate_cohort(n_days, seed=seed)
    trace = traces[user_index]
    share = active_app_share(trace)
    intensity = {
        app: vec for app, vec in app_intensity(trace).items() if app in share
    }
    top_app = max(share, key=share.__getitem__) if share else ""
    from repro.traces.apps import default_catalog

    return Fig5Result(
        user_id=trace.user_id,
        hourly_intensity=intensity,
        n_installed=len(default_catalog()),
        n_active=len(share),
        top_app=top_app,
        top_share=share.get(top_app, 0.0),
    )


# ======================================================================
# Section VI-A — general performance (Fig. 7)
# ======================================================================


@dataclass
class VolunteerResult:
    """Per-volunteer policy comparison."""

    user_id: str
    power_on_s: float
    per_policy: dict[str, list[PolicyDayMetrics]]
    energy_saving: dict[str, float]
    radio_on_s: dict[str, float]
    bandwidth_ratio: dict[str, dict[str, float]]


@dataclass
class Fig7Result:
    """Overall performance comparison (Figs. 7(a)-(c))."""

    volunteers: list[VolunteerResult]
    netmaster_mean_saving: float  # paper: 0.778
    delay_batch_mean_saving: float  # paper: 0.2254
    oracle_mean_saving: float
    within_5pct_of_oracle: float  # paper: 0.816
    worst_oracle_gap: float  # paper: 0.112
    mean_radio_time_saving: float  # paper: 0.7539
    mean_down_ratio: float  # paper: 3.84
    mean_up_ratio: float  # paper: 2.63
    mean_peak_down_ratio: float  # paper: ~1
    mean_peak_up_ratio: float  # paper: ~1


def fig7(
    seed: int = 43,
    n_days: int = 14,
    n_history_days: int = DEFAULT_HISTORY_DAYS,
    model: RadioPowerModel | None = None,
    config: NetMasterConfig | None = None,
    jobs: int = 1,
    columnar: bool = False,
) -> Fig7Result:
    """The three-volunteer evaluation of Section VI-A.

    ``jobs>1`` fans the (volunteer × policy) grid over a process pool;
    results are reassembled in submission order, so the figure output is
    bit-identical to the serial run.  ``columnar=True`` prices the whole
    grid through the lane kernel (`repro.radio.lanes`) in a handful of
    array passes — also bit-identical, just faster.
    """
    model = model or wcdma_model()
    volunteers = generate_volunteers(n_days, seed=seed)
    results: list[VolunteerResult] = []
    nm_savings: list[float] = []
    db_savings: list[float] = []
    oracle_savings: list[float] = []
    gaps: list[float] = []
    radio_savings: list[float] = []
    down_ratios: list[float] = []
    up_ratios: list[float] = []
    peak_down_ratios: list[float] = []
    peak_up_ratios: list[float] = []

    prepared = []
    with tracer().span("fig7-train", "experiment", volunteers=len(volunteers)):
        for trace in volunteers:
            history, test_days = split_history(trace, n_history_days)
            policies = {
                "baseline": NaivePolicy(),
                "oracle": OraclePolicy(),
                "netmaster": NetMasterPolicy(history, config or NetMasterConfig()),
                "delay-batch-10s": DelayBatchPolicy(10.0),
                "delay-batch-20s": DelayBatchPolicy(20.0),
                "delay-batch-60s": DelayBatchPolicy(60.0),
            }
            prepared.append((trace, test_days, policies))

    tasks = [
        PolicyTask(name=f"{trace.user_id}/{name}", policy=policy, days=tuple(test_days), model=model)
        for trace, test_days, policies in prepared
        for name, policy in policies.items()
    ]
    with tracer().span("fig7-grid", "experiment", tasks=len(tasks), jobs=jobs):
        grid = iter(_run_grid(tasks, jobs=jobs, columnar=columnar))

    for trace, test_days, policies in prepared:
        per_policy = {name: next(grid) for name in policies}
        base = per_policy["baseline"]
        saving = {
            name: aggregate_energy_saving(metrics, base)
            for name, metrics in per_policy.items()
        }
        radio = {
            name: sum(m.radio_on_s for m in metrics)
            for name, metrics in per_policy.items()
        }
        # Bandwidth-utilization improvement: aggregate rates over the
        # test window, NetMaster vs baseline.
        def window_rates(metrics: list[PolicyDayMetrics]) -> dict[str, float]:
            on_time = sum(m.radio_on_s for m in metrics)
            down = sum(m.bandwidth.avg_down_bps * m.radio_on_s for m in metrics)
            up = sum(m.bandwidth.avg_up_bps * m.radio_on_s for m in metrics)
            return {
                "down_avg": down / on_time if on_time else 0.0,
                "up_avg": up / on_time if on_time else 0.0,
                "down_peak": max((m.bandwidth.peak_down_bps for m in metrics), default=0.0),
                "up_peak": max((m.bandwidth.peak_up_bps for m in metrics), default=0.0),
            }

        nm_rates = window_rates(per_policy["netmaster"])
        base_rates = window_rates(base)
        ratio = {
            key: (nm_rates[key] / base_rates[key]) if base_rates[key] else 0.0
            for key in nm_rates
        }

        # Per-day oracle gap (Fig. 7(a) text: within 5% in 81.6% of
        # tests; worst case 11.2%).  The gap is the fraction of the
        # oracle's saving that NetMaster failed to realize.
        for nm_day, or_day, base_day in zip(
            per_policy["netmaster"], per_policy["oracle"], base
        ):
            if base_day.energy_j > 0:
                nm_s = 1.0 - nm_day.energy_j / base_day.energy_j
                or_s = 1.0 - or_day.energy_j / base_day.energy_j
                if or_s > 0:
                    gaps.append(1.0 - nm_s / or_s)

        nm_savings.append(saving["netmaster"])
        oracle_savings.append(saving["oracle"])
        db_savings.extend(
            saving[k] for k in ("delay-batch-10s", "delay-batch-20s", "delay-batch-60s")
        )
        radio_savings.append(1.0 - radio["netmaster"] / radio["baseline"])
        down_ratios.append(ratio["down_avg"])
        up_ratios.append(ratio["up_avg"])
        peak_down_ratios.append(ratio["down_peak"])
        peak_up_ratios.append(ratio["up_peak"])

        results.append(
            VolunteerResult(
                user_id=trace.user_id,
                power_on_s=sum(d.total_screen_on_time() for d in test_days),
                per_policy=per_policy,
                energy_saving=saving,
                radio_on_s=radio,
                bandwidth_ratio={"netmaster_vs_baseline": ratio},
            )
        )

    gaps_arr = np.asarray(gaps)
    return Fig7Result(
        volunteers=results,
        netmaster_mean_saving=float(np.mean(nm_savings)),
        delay_batch_mean_saving=float(np.mean(db_savings)),
        oracle_mean_saving=float(np.mean(oracle_savings)),
        within_5pct_of_oracle=float(np.mean(gaps_arr <= 0.05)) if gaps_arr.size else 0.0,
        worst_oracle_gap=float(gaps_arr.max()) if gaps_arr.size else 0.0,
        mean_radio_time_saving=float(np.mean(radio_savings)),
        mean_down_ratio=float(np.mean(down_ratios)),
        mean_up_ratio=float(np.mean(up_ratios)),
        mean_peak_down_ratio=float(np.mean(peak_down_ratios)),
        mean_peak_up_ratio=float(np.mean(peak_up_ratios)),
    )


# ======================================================================
# Section VI-C — delay and batch sweeps (Figs. 8-9)
# ======================================================================

#: The paper's Fig. 8 x-axis.
DELAY_SWEEP_S = (0.0, 1.0, 2.0, 3.0, 4.0, 5.0, 10.0, 20.0, 30.0, 60.0, 120.0, 300.0, 600.0)


@dataclass
class Fig8Result:
    """Delay-method sweep (Figs. 8(a)-(c))."""

    delays_s: list[float]
    energy_saving: list[float]  # paper @600s: 0.092
    radio_time_saving: list[float]  # paper @600s: 0.367
    bandwidth_increase: list[float]  # paper @600s: 0.3305
    affected_ratio: list[float]  # paper @600s: > 0.40
    interactions_within_100s_gaps: float  # paper: 0.17


def fig8(
    seed: int = 43,
    n_days: int = 14,
    n_history_days: int = DEFAULT_HISTORY_DAYS,
    delays_s: tuple[float, ...] = DELAY_SWEEP_S,
    model: RadioPowerModel | None = None,
    jobs: int = 1,
    columnar: bool = False,
) -> Fig8Result:
    """Off-line analysis of the pure delay method."""
    model = model or wcdma_model()
    volunteers = generate_volunteers(n_days, seed=seed)
    split = [split_history(t, n_history_days) for t in volunteers]
    all_days = [day for _, days in split for day in days]

    with tracer().span("fig8-baseline", "experiment", days=len(all_days)):
        base_metrics = run_policy_over_days(
            NaivePolicy(), all_days, model, columnar=columnar
        )
    base_energy = sum(m.energy_j for m in base_metrics)
    base_radio = sum(m.radio_on_s for m in base_metrics)
    base_rate = (
        sum(m.bandwidth.avg_down_bps * m.radio_on_s for m in base_metrics) / base_radio
    )

    tasks = [
        PolicyTask(name=f"delay-{d:g}", policy=DelayPolicy(d), days=tuple(all_days), model=model)
        for d in delays_s
    ]
    with tracer().span("fig8-sweep", "experiment", tasks=len(tasks), jobs=jobs):
        sweep = _run_grid(tasks, jobs=jobs, columnar=columnar)

    energy_saving, radio_saving, bw_increase, affected = [], [], [], []
    for metrics in sweep:
        total_e = sum(m.energy_j for m in metrics)
        total_r = sum(m.radio_on_s for m in metrics)
        rate = sum(m.bandwidth.avg_down_bps * m.radio_on_s for m in metrics) / total_r
        energy_saving.append(1.0 - total_e / base_energy)
        radio_saving.append(1.0 - total_r / base_radio)
        bw_increase.append(rate / base_rate - 1.0)
        total_aff = sum(m.affected_user_activities for m in metrics)
        total_int = sum(m.user_interactions for m in metrics)
        affected.append(total_aff / total_int if total_int else 0.0)

    return Fig8Result(
        delays_s=list(delays_s),
        energy_saving=energy_saving,
        radio_time_saving=radio_saving,
        bandwidth_increase=bw_increase,
        affected_ratio=affected,
        interactions_within_100s_gaps=interactions_in_short_gaps(all_days, 100.0),
    )


def interactions_in_short_gaps(days: list[Trace], gap_s: float) -> float:
    """Fraction of interactions starting within ``gap_s`` of the previous
    session's end — the paper's "17% of user interactions fall just
    between two adjacent screen-off slots with intervals below 100 s"."""
    total = 0
    hits = 0
    for day in days:
        sessions = day.screen_sessions
        for prev, cur in zip(sessions, sessions[1:]):
            total += 1
            if cur.start - prev.end < gap_s:
                hits += 1
    return hits / total if total else 0.0


@dataclass
class Fig9Result:
    """Batch-method sweep (Figs. 9(a)-(b))."""

    batch_sizes: list[int]
    energy_saving: list[float]
    radio_time_saving: list[float]  # paper: up to 0.177
    bandwidth_increase: list[float]  # paper: up to 0.176
    affected_ratio: list[float]  # paper: <= 0.01 target


def fig9(
    seed: int = 43,
    n_days: int = 14,
    n_history_days: int = DEFAULT_HISTORY_DAYS,
    batch_sizes: tuple[int, ...] = (0, 1, 2, 3, 4, 5, 6, 8, 10),
    model: RadioPowerModel | None = None,
    jobs: int = 1,
    columnar: bool = False,
) -> Fig9Result:
    """Off-line analysis of the pure batch method."""
    model = model or wcdma_model()
    volunteers = generate_volunteers(n_days, seed=seed)
    split = [split_history(t, n_history_days) for t in volunteers]
    all_days = [day for _, days in split for day in days]

    with tracer().span("fig9-baseline", "experiment", days=len(all_days)):
        base_metrics = run_policy_over_days(
            NaivePolicy(), all_days, model, columnar=columnar
        )
    base_energy = sum(m.energy_j for m in base_metrics)
    base_radio = sum(m.radio_on_s for m in base_metrics)
    base_rate = (
        sum(m.bandwidth.avg_down_bps * m.radio_on_s for m in base_metrics) / base_radio
    )

    tasks = [
        PolicyTask(name=f"batch-{s}", policy=BatchPolicy(s), days=tuple(all_days), model=model)
        for s in batch_sizes
    ]
    with tracer().span("fig9-sweep", "experiment", tasks=len(tasks), jobs=jobs):
        sweep = _run_grid(tasks, jobs=jobs, columnar=columnar)

    energy_saving, radio_saving, bw_increase, affected = [], [], [], []
    for metrics in sweep:
        total_e = sum(m.energy_j for m in metrics)
        total_r = sum(m.radio_on_s for m in metrics)
        rate = sum(m.bandwidth.avg_down_bps * m.radio_on_s for m in metrics) / total_r
        energy_saving.append(1.0 - total_e / base_energy)
        radio_saving.append(1.0 - total_r / base_radio)
        bw_increase.append(rate / base_rate - 1.0)
        total_aff = sum(m.affected_user_activities for m in metrics)
        total_int = sum(m.user_interactions for m in metrics)
        affected.append(total_aff / total_int if total_int else 0.0)

    return Fig9Result(
        batch_sizes=list(batch_sizes),
        energy_saving=energy_saving,
        radio_time_saving=radio_saving,
        bandwidth_increase=bw_increase,
        affected_ratio=affected,
    )


# ======================================================================
# Section VI-D — parameter analysis (Fig. 10)
# ======================================================================


@dataclass
class Fig10aResult:
    """Radio-on time vs wake-up count per sleep interval (Fig. 10(a))."""

    sleep_intervals_s: list[float]
    wakeup_counts: list[int]
    fractions: dict[float, list[float]]


def fig10a(
    sleep_intervals_s: tuple[float, ...] = (5.0, 10.0, 20.0, 30.0, 120.0, 360.0),
    max_wakeups: int = 20,
    wake_window_s: float = 1.0,
) -> Fig10aResult:
    """Exponential duty cycle: radio-on fraction after k wake-ups."""
    counts = list(range(2, max_wakeups + 1, 2))
    fractions = {}
    for interval in sleep_intervals_s:
        scheme = ExponentialSleep(initial_s=interval)
        fractions[interval] = [
            radio_on_fraction_after(scheme, k, wake_window_s=wake_window_s)
            for k in counts
        ]
    return Fig10aResult(
        sleep_intervals_s=list(sleep_intervals_s),
        wakeup_counts=counts,
        fractions=fractions,
    )


@dataclass
class Fig10bResult:
    """Cumulative wake-ups over 30 minutes per scheme (Fig. 10(b))."""

    minutes: list[float]
    exponential: list[int]
    fixed: list[int]
    random: list[int]


def fig10b(
    horizon_min: float = 30.0,
    initial_s: float = 5.0,
    seed: int = 7,
) -> Fig10bResult:
    """Wake-up counts of exponential vs fixed vs random sleeping."""
    horizon = horizon_min * 60.0
    minutes = [float(m) for m in range(0, int(horizon_min) + 1, 5)]
    series = {}
    for name, scheme in (
        ("exponential", ExponentialSleep(initial_s=initial_s)),
        ("fixed", FixedSleep(interval_s=initial_s)),
        ("random", RandomSleep(lo_s=1.0, hi_s=2.0 * initial_s, seed=seed)),
    ):
        times = wakeup_times(scheme, horizon)
        series[name] = [int(np.searchsorted(times, m * 60.0)) for m in minutes]
    return Fig10bResult(
        minutes=minutes,
        exponential=series["exponential"],
        fixed=series["fixed"],
        random=series["random"],
    )


@dataclass
class Fig10cResult:
    """Prediction accuracy vs energy saving over δ (Fig. 10(c))."""

    thresholds: list[float]
    accuracy: list[float]
    energy_saving: list[float]  # normalized to the oracle saving
    crossover: float  # paper: 0.37


def fig10c(
    seed: int = 43,
    n_days: int = 14,
    n_history_days: int = DEFAULT_HISTORY_DAYS,
    thresholds: tuple[float, ...] = (
        0.0,
        0.05,
        0.1,
        0.15,
        0.2,
        0.25,
        0.3,
        0.35,
        0.4,
        0.45,
        0.5,
    ),
    model: RadioPowerModel | None = None,
    jobs: int = 1,
    columnar: bool = False,
) -> Fig10cResult:
    """Sweep the prediction threshold δ on the volunteer cohort.

    Accuracy is the fraction of user interactions inside the predicted
    slots; energy saving is NetMaster's saving at that δ divided by the
    oracle saving (both against the stock baseline).  ``jobs>1`` fans
    the (δ × volunteer) NetMaster grid over a process pool.
    """
    model = model or wcdma_model()
    volunteers = generate_volunteers(n_days, seed=seed)
    split = [split_history(t, n_history_days) for t in volunteers]

    # Oracle reference saving.
    oracle_e = base_e = 0.0
    with tracer().span("fig10c-oracle", "experiment", volunteers=len(split)):
        for _, days in split:
            base = run_policy_over_days(NaivePolicy(), days, model, columnar=columnar)
            oracle = run_policy_over_days(OraclePolicy(), days, model, columnar=columnar)
            base_e += sum(m.energy_j for m in base)
            oracle_e += sum(m.energy_j for m in oracle)
    oracle_saving = 1.0 - oracle_e / base_e

    # Habit models depend only on the history, not on δ: fit once.
    habits = [HabitModel.fit(history) for history, _ in split]
    tasks = [
        PolicyTask(
            name=f"delta-{delta:g}",
            policy=NetMasterPolicy(
                history,
                NetMasterConfig(
                    delta=FixedDelta(delta),
                    # The paper's offline sweep optimizes only T_n (the
                    # slots outside U); see NetMasterConfig docs.
                    optimize_in_slot_traffic=False,
                ),
            ),
            days=tuple(days),
            model=model,
        )
        for delta in thresholds
        for history, days in split
    ]
    with tracer().span("fig10c-grid", "experiment", tasks=len(tasks), jobs=jobs):
        grid = iter(_run_grid(tasks, jobs=jobs, columnar=columnar))

    accuracy, saving = [], []
    for delta in thresholds:
        acc_num = acc_den = 0
        nm_e = 0.0
        for habit, (history, days) in zip(habits, split):
            metrics = next(grid)
            nm_e += sum(m.energy_j for m in metrics)
            for day in days:
                pred = habit.user_slots(
                    weekend=day.is_weekend_day(0), strategy=FixedDelta(delta)
                )
                acc_num += prediction_accuracy(pred, day) * len(day.usages)
                acc_den += len(day.usages)
        accuracy.append(acc_num / acc_den if acc_den else 1.0)
        nm_saving = 1.0 - nm_e / base_e
        saving.append(nm_saving / oracle_saving if oracle_saving > 0 else 0.0)

    crossover = _crossover(list(thresholds), accuracy, saving)
    return Fig10cResult(
        thresholds=list(thresholds),
        accuracy=accuracy,
        energy_saving=saving,
        crossover=crossover,
    )


def _crossover(x: list[float], a: list[float], b: list[float]) -> float:
    """Interpolated x where series ``a`` and ``b`` cross (or the argmin gap)."""
    diffs = np.asarray(a) - np.asarray(b)
    for i in range(len(x) - 1):
        if diffs[i] == 0.0 or diffs[i] * diffs[i + 1] < 0:
            t = abs(diffs[i]) / (abs(diffs[i]) + abs(diffs[i + 1]) + 1e-12)
            return float(x[i] + t * (x[i + 1] - x[i]))
    return float(x[int(np.argmin(np.abs(diffs)))])


# ======================================================================
# Section VI-B — user experience
# ======================================================================


@dataclass
class UserExperienceResult:
    """Wrong-decision accounting (Section VI-B)."""

    interrupts: int  # paper: 1
    user_interactions: int  # paper: 319 settings appearances
    interrupt_ratio: float  # paper: < 0.01


def user_experience(
    seed: int = 43,
    n_days: int = 14,
    n_history_days: int = DEFAULT_HISTORY_DAYS,
    config: NetMasterConfig | None = None,
) -> UserExperienceResult:
    """Count NetMaster wrong decisions over the volunteer test windows."""
    volunteers = generate_volunteers(n_days, seed=seed)
    interrupts = interactions = 0
    for trace in volunteers:
        history, days = split_history(trace, n_history_days)
        policy = NetMasterPolicy(history, config or NetMasterConfig())
        for day in days:
            outcome = policy.execute_day(day)
            interrupts += outcome.interrupts
            interactions += outcome.user_interactions
    return UserExperienceResult(
        interrupts=interrupts,
        user_interactions=interactions,
        interrupt_ratio=interrupts / interactions if interactions else 0.0,
    )


# ======================================================================
# Lemma IV.1 — approximation-ratio verification
# ======================================================================


@dataclass
class ApproximationResult:
    """Empirical approximation ratios of Algorithm 1."""

    eps: float
    trials: int
    worst_ratio: float
    mean_ratio: float
    bound: float  # (1-eps)/2


def approximation_ratio(
    seed: int = 7, trials: int = 100, eps: float = 0.1
) -> ApproximationResult:
    """Compare Algorithm 1 against the exact optimum on random instances."""
    rng = np.random.default_rng(seed)
    ratios = []
    for _ in range(trials):
        n_slots = int(rng.integers(2, 5))
        slots = [MKPSlot(i, float(rng.uniform(5, 25))) for i in range(n_slots)]
        n_items = int(rng.integers(2, 11))
        items = []
        for j in range(n_items):
            first = int(rng.integers(0, n_slots))
            if rng.random() < 0.3:
                cands = [first]
            else:
                cands = [first, (first + 1) % n_slots]
            profits = {s: float(rng.uniform(0.5, 10.0)) for s in cands}
            items.append(MKPItem(j, float(rng.uniform(0.5, 12.0)), profits))
        approx = solve_overlapped(slots, items, eps=eps)
        exact = solve_exact_bruteforce(slots, items)
        if exact.total_profit > 0:
            ratios.append(approx.total_profit / exact.total_profit)
    arr = np.asarray(ratios)
    return ApproximationResult(
        eps=eps,
        trials=len(ratios),
        worst_ratio=float(arr.min()),
        mean_ratio=float(arr.mean()),
        bound=(1.0 - eps) / 2.0,
    )
