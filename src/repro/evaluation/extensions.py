"""Extension experiments beyond the paper's evaluation.

Each driver here explores something the paper names but does not
evaluate: channel-aware scheduling (the "peak rate" future-work item),
the hidden impact of deferral on push latency (the Limitations section),
cohort scaling ("we will recruit more volunteers"), and the learning
curve of the habit model as history accumulates.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro._util import DAY
from repro.baselines import NaivePolicy, NetMasterPolicy
from repro.core.channel_aware import ChannelComparison, compare_placements
from repro.core.netmaster import NetMasterConfig
from repro.evaluation.experiments import split_history
from repro.evaluation.metrics import run_policy_over_days
from repro.habits.prediction import HabitModel, prediction_accuracy
from repro.radio.bandwidth import LinkModel
from repro.radio.channel import ChannelModel
from repro.radio.power import RadioPowerModel, wcdma_model
from repro.traces.generator import TraceGenerator, generate_volunteers
from repro.traces.users import UserProfile, default_profiles
from repro.traces.apps import default_catalog


# ======================================================================
# channel-aware scheduling (future work of Section VI-A)
# ======================================================================


@dataclass
class ChannelExtensionResult:
    """Blind vs channel-aware batch placement over volunteer plans."""

    comparison: ChannelComparison
    n_batches: int
    energy_multiplier_gain: float
    rate_gain: float


def channel_extension(seed: int = 43, channel_seed: int = 5) -> ChannelExtensionResult:
    """Place each volunteer day-plan batch blind vs channel-aware."""
    channel = ChannelModel(seed=channel_seed)
    link = LinkModel()
    volunteers = generate_volunteers(14, seed=seed)
    slots, payloads = [], []
    for trace in volunteers:
        history, _ = split_history(trace, 10)
        policy = NetMasterPolicy(history)
        plan = policy.middleware.plan_day(weekend=False)
        for slot_id, slot in plan.instance.slot_info.items():
            load = sum(
                item.weight
                for item in plan.instance.items
                if plan.solution.assignment.get(item.item_id) == slot_id
            )
            if load > 0:
                slots.append(slot)
                payloads.append(load)
    comparison = compare_placements(slots, payloads, link, channel)
    return ChannelExtensionResult(
        comparison=comparison,
        n_batches=len(slots),
        energy_multiplier_gain=comparison.energy_multiplier_gain,
        rate_gain=comparison.rate_gain,
    )


# ======================================================================
# hidden impact: push-delay latency (Limitations section)
# ======================================================================


@dataclass
class HiddenImpactResult:
    """Deferral-latency distribution of screen-off traffic."""

    mean_delay_s: float
    p50_delay_s: float
    p95_delay_s: float
    max_delay_s: float
    deferred_fraction: float


def hidden_impact(
    seed: int = 43,
    n_history_days: int = 10,
    config: NetMasterConfig | None = None,
) -> HiddenImpactResult:
    """How long does NetMaster hold a push back?

    Matches executed screen-off activities to their original times and
    reports the deferral-latency distribution — the paper's "hidden
    impact" (a delayed Facebook push) quantified.  Activities moved
    *earlier* (prefetch) count as zero delay.
    """
    delays: list[float] = []
    total = 0
    for trace in generate_volunteers(14, seed=seed):
        history, days = split_history(trace, n_history_days)
        policy = NetMasterPolicy(history, config or NetMasterConfig())
        for day in days:
            original = sorted(
                (a for a in day.activities if not a.screen_on),
                key=lambda a: (a.app, a.time),
            )
            executed = sorted(
                (a for a in policy.execute_day(day).activities if not a.screen_on),
                key=lambda a: (a.app, a.time),
            )
            # Payload conservation guarantees a 1:1 (app-sorted) matching
            # is meaningful at the distribution level.
            total += len(original)
            for before, after in zip(original, executed):
                delays.append(max(0.0, after.time - before.time))
    arr = np.asarray(delays)
    return HiddenImpactResult(
        mean_delay_s=float(arr.mean()),
        p50_delay_s=float(np.quantile(arr, 0.5)),
        p95_delay_s=float(np.quantile(arr, 0.95)),
        max_delay_s=float(arr.max()),
        deferred_fraction=float((arr > 1.0).mean()),
    )


# ======================================================================
# cohort scaling (Limitations: "recruit more volunteers")
# ======================================================================


def random_profile(user_id: str, rng: np.random.Generator) -> UserProfile:
    """A randomized persona for cohort-scaling studies.

    Draws 2-4 Gaussian peaks at random daytime hours plus a small base,
    with session/jitter parameters inside the ranges of the hand-built
    personas — every generated persona stays within the paper's measured
    envelope.
    """
    from repro.traces.users import intensity_profile

    n_peaks = int(rng.integers(2, 5))
    peaks = [
        (float(rng.uniform(7.0, 23.5)), float(rng.uniform(2.0, 9.0)), float(rng.uniform(0.6, 2.5)))
        for _ in range(n_peaks)
    ]
    weekend_peaks = [
        (min(23.9, c + float(rng.uniform(-1.5, 1.5))), h * float(rng.uniform(0.6, 1.1)), w)
        for c, h, w in peaks
    ]
    return UserProfile(
        user_id=user_id,
        description="randomized persona",
        weekday_intensity=1.4 * intensity_profile(peaks, base=0.04),
        weekend_intensity=1.4 * intensity_profile(weekend_peaks, base=0.04),
        session_median_s=float(rng.uniform(5.0, 13.0)),
        day_jitter=float(rng.uniform(0.1, 0.25)),
        day_shift_sigma_h=float(rng.uniform(0.2, 0.9)),
        bg_scale=float(rng.uniform(0.8, 1.6)),
        catalog=default_catalog(),
    )


@dataclass
class ScaleResult:
    """Per-user NetMaster savings over a randomized cohort."""

    n_users: int
    savings: list[float]
    mean_saving: float
    min_saving: float
    max_saving: float


def cohort_scale(
    n_users: int = 12,
    seed: int = 99,
    n_days: int = 14,
    n_history_days: int = 10,
    model: RadioPowerModel | None = None,
) -> ScaleResult:
    """NetMaster savings across ``n_users`` randomized personas."""
    model = model or wcdma_model()
    root = np.random.SeedSequence(seed)
    savings: list[float] = []
    for i, child in enumerate(root.spawn(n_users)):
        rng = np.random.default_rng(child)
        profile = random_profile(f"rand{i}", rng)
        trace = TraceGenerator(profile, rng).generate(n_days)
        history, days = split_history(trace, n_history_days)
        base = run_policy_over_days(NaivePolicy(), days, model)
        nm = run_policy_over_days(NetMasterPolicy(history), days, model)
        base_e = sum(m.energy_j for m in base)
        nm_e = sum(m.energy_j for m in nm)
        if base_e > 0:
            savings.append(1.0 - nm_e / base_e)
    return ScaleResult(
        n_users=len(savings),
        savings=savings,
        mean_saving=float(np.mean(savings)),
        min_saving=float(np.min(savings)),
        max_saving=float(np.max(savings)),
    )


# ======================================================================
# learning curve: prediction vs history length
# ======================================================================


@dataclass
class LearningCurveResult:
    """Prediction accuracy as training history grows."""

    history_days: list[int]
    accuracy: list[float]


def learning_curve(
    seed: int = 43,
    history_lengths: tuple[int, ...] = (2, 4, 7, 10, 12),
    n_days: int = 14,
) -> LearningCurveResult:
    """Held-out prediction accuracy vs number of training days."""
    volunteers = generate_volunteers(n_days, seed=seed)
    accuracy: list[float] = []
    for k in history_lengths:
        num = den = 0.0
        for trace in volunteers:
            history, days = split_history(trace, k)
            habit = HabitModel.fit(history)
            for day in days:
                pred = habit.user_slots(weekend=day.is_weekend_day(0))
                num += prediction_accuracy(pred, day) * len(day.usages)
                den += len(day.usages)
        accuracy.append(num / den if den else 1.0)
    return LearningCurveResult(history_days=list(history_lengths), accuracy=accuracy)
