"""Evaluation metrics shared by all experiments (Section VI).

Every policy outcome is priced by the same RRC machine; the metrics here
wrap that accounting into the three dimensions the paper reports —
energy saving, radio-on time, and bandwidth utilization — plus the user-
experience counters.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro._util import total_length
from repro.baselines.policy import PolicyOutcome, SchedulingPolicy
from repro.radio.bandwidth import (
    UtilizationStats,
    utilization_from_digest,
    utilization_over_time,
)
from repro.radio.power import RadioPowerModel
from repro.traces.events import Trace


@dataclass(frozen=True, slots=True)
class PolicyDayMetrics:
    """One policy's full metric set over one day."""

    policy: str
    energy_j: float
    radio_on_s: float
    transfer_s: float
    bandwidth: UtilizationStats
    interrupts: int
    user_interactions: int
    affected_user_activities: int
    deferred: int

    @property
    def interrupt_ratio(self) -> float:
        """Wrong decisions per user interaction."""
        if self.user_interactions == 0:
            return 0.0
        return self.interrupts / self.user_interactions

    @property
    def affected_ratio(self) -> float:
        """Fraction of interactions falling in deferral windows."""
        if self.user_interactions == 0:
            return 0.0
        return self.affected_user_activities / self.user_interactions


def measure_outcome(
    outcome: PolicyOutcome, model: RadioPowerModel, day: Trace
) -> PolicyDayMetrics:
    """Price a policy outcome with the shared RRC accounting."""
    outcome.validate_payload(day)
    report = outcome.energy(model)
    radio_on = outcome.radio_on(model)
    return assemble_day_metrics(outcome, report, radio_on)


def assemble_day_metrics(
    outcome: PolicyOutcome,
    report,
    radio_on: list[tuple[float, float]],
    *,
    digest: tuple[float, float, float, float, float] | None = None,
) -> PolicyDayMetrics:
    """Build the metric set from an already-priced outcome.

    Shared by :func:`measure_outcome` and the columnar batch pricer
    (:mod:`repro.core.batch`) so both assemble byte-identical rows.
    """
    return assemble_day_metrics_from_time(
        outcome, report, total_length(radio_on), digest=digest
    )


def assemble_day_metrics_from_time(
    outcome: PolicyOutcome,
    report,
    radio_on_s: float,
    *,
    digest: tuple[float, float, float, float, float] | None = None,
) -> PolicyDayMetrics:
    """:func:`assemble_day_metrics` with the radio-on time pre-totalled.

    The columnar pricer computes merged radio-on lengths inside the lane
    kernel; entering with the scalar skips rebuilding interval lists
    while producing bit-identical rows.  ``digest`` optionally supplies
    the precomputed :func:`repro.radio.bandwidth.activity_digest` of
    ``outcome.activities`` so the batch pricer's single cached pass also
    serves the utilization stats.
    """
    if digest is None:
        bandwidth = utilization_over_time(outcome.activities, radio_on_s)
    else:
        bandwidth = utilization_from_digest(digest, radio_on_s)
    return PolicyDayMetrics(
        policy=outcome.policy,
        energy_j=report.energy_j,
        radio_on_s=radio_on_s,
        transfer_s=report.transfer_s,
        bandwidth=bandwidth,
        interrupts=outcome.interrupts,
        user_interactions=outcome.user_interactions,
        affected_user_activities=outcome.affected_user_activities,
        deferred=outcome.deferred,
    )


def run_policy_over_days(
    policy: SchedulingPolicy,
    days: list[Trace],
    model: RadioPowerModel,
    *,
    jobs: int = 1,
    columnar: bool = False,
) -> list[PolicyDayMetrics]:
    """Execute and measure a policy over several held-out days.

    ``jobs>1`` fans the days over a process pool when the policy
    declares ``day_independent`` (each day is then an independent task);
    results keep day order, so the output is bit-identical to the serial
    loop.  Stateful policies (e.g. NetMaster's circuit breaker) always
    replay serially here — parallelize them at the grid level with
    :func:`repro.runtime.parallel.run_policy_tasks` instead.

    ``columnar=True`` executes the days as usual but prices all outcomes
    through the lane kernel in one batch (:mod:`repro.core.batch`) —
    bit-identical results, one array pass instead of ``len(days)``.
    """
    label = getattr(policy, "name", type(policy).__name__)
    if columnar:
        # Imported lazily: repro.core.batch prices via evaluation.metrics.
        from repro.core.batch import run_policy_tasks_columnar
        from repro.runtime.parallel import PolicyTask

        if jobs > 1 and len(days) > 1 and getattr(policy, "day_independent", False):
            tasks = [
                PolicyTask(name="day", policy=policy, days=(day,), model=model)
                for day in days
            ]
        else:
            tasks = [
                PolicyTask(name=label, policy=policy, days=tuple(days), model=model)
            ]
        return [
            m
            for metrics in run_policy_tasks_columnar(tasks, jobs=jobs)
            for m in metrics
        ]
    if jobs > 1 and len(days) > 1 and getattr(policy, "day_independent", False):
        # Imported lazily: repro.runtime.parallel imports this module.
        from repro.runtime.parallel import PolicyTask, run_policy_tasks

        tasks = [
            PolicyTask(name="day", policy=policy, days=(day,), model=model)
            for day in days
        ]
        return [m for metrics in run_policy_tasks(tasks, jobs=jobs) for m in metrics]
    from repro.telemetry import tracer

    trc = tracer()
    out: list[PolicyDayMetrics] = []
    for i, day in enumerate(days):
        with trc.sim_context(f"{label}:d{i + 1}"), trc.span(
            "replay-day", "evaluation", track=f"replay/{label}", day=i + 1
        ):
            out.append(measure_outcome(policy.execute_day(day), model, day))
    return out


def energy_saving(metrics: PolicyDayMetrics, baseline: PolicyDayMetrics) -> float:
    """Relative energy saving of ``metrics`` against ``baseline``."""
    if baseline.energy_j == 0:
        return 0.0
    return 1.0 - metrics.energy_j / baseline.energy_j


def radio_time_saving(metrics: PolicyDayMetrics, baseline: PolicyDayMetrics) -> float:
    """Relative radio-on-time saving against ``baseline``."""
    if baseline.radio_on_s == 0:
        return 0.0
    return 1.0 - metrics.radio_on_s / baseline.radio_on_s


def aggregate_energy_saving(
    metrics: list[PolicyDayMetrics], baselines: list[PolicyDayMetrics]
) -> float:
    """Total-energy saving over a multi-day test window."""
    total_base = sum(m.energy_j for m in baselines)
    total = sum(m.energy_j for m in metrics)
    if total_base == 0:
        return 0.0
    return 1.0 - total / total_base
